//! ABLATION — the exponential backoff (the paper calls it "a fundamental
//! aspect of our algorithm").
//!
//! With the backoff disabled (`max_backoff_exp = 0`), the controller
//! probes a neighbouring level on *every* stable epoch, paying the price of
//! bad levels (e.g. HEAVY at ~27 MB/s instead of LIGHT at ~200 MB/s) far
//! more often. This run quantifies the probing overhead the backoff
//! removes.
//!
//! Run: `cargo run --release -p adcomp-bench --bin ablation_backoff [--quick]`

use adcomp_bench::{experiment_bytes, to_paper_scale};
use adcomp_core::controller::ControllerConfig;
use adcomp_core::model::RateBasedModel;
use adcomp_corpus::Class;
use adcomp_metrics::Table;
use adcomp_vcloud::{run_transfer, ConstantClass, SpeedModel, TransferConfig};

fn main() {
    let total = experiment_bytes();
    let speed = SpeedModel::paper_fit();
    println!("ABLATION backoff: completion time [s, 50 GB scale] and probing volume\n");
    let mut table = Table::new(vec![
        "variant",
        "class",
        "time [s]",
        "level switches",
        "blocks at HEAVY",
    ]);
    for (label, max_exp) in [("with backoff (paper)", 16u32), ("no backoff", 0u32)] {
        for class in [Class::High, Class::Moderate] {
            let cfg = TransferConfig {
                total_bytes: total,
                seed: 41,
                ..TransferConfig::paper_default()
            };
            let model = RateBasedModel::new(ControllerConfig {
                max_backoff_exp: max_exp,
                ..Default::default()
            });
            let out = run_transfer(&cfg, &speed, &mut ConstantClass(class), Box::new(model));
            table.row(vec![
                label.to_string(),
                class.name().to_string(),
                format!("{:.0}", to_paper_scale(out.completion_secs)),
                format!("{}", out.level_trace.len().saturating_sub(1)),
                format!("{}", out.blocks_per_level[3]),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Expected shape: without backoff the controller keeps re-probing expensive\n\
         levels, multiplying level switches and losing completion time — the paper's\n\
         justification for rewarding good levels with exponentially rarer probes."
    );
}
