//! Minimal, dependency-free shim exposing the subset of the `crossbeam` API
//! this workspace uses, built on `std::sync` / `std::thread`.
//!
//! Vendored so the workspace builds in fully offline environments. Provides:
//!
//! - [`channel::bounded`] — MPMC bounded channel with crossbeam's disconnect
//!   semantics (send fails once all receivers are gone; recv fails once the
//!   queue is empty and all senders are gone).
//! - [`thread::scope`] — scoped threads that may borrow from the enclosing
//!   stack frame, wrapping `std::thread::scope` and returning
//!   `std::thread::Result` like crossbeam does.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        inner: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    struct State<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are dropped.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Sending half of a bounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a bounded MPMC channel of capacity `cap` (at least 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(State {
                queue: VecDeque::with_capacity(cap.max(1)),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Blocks until space is available, then enqueues `value`. Fails if
        /// every `Receiver` has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.inner.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < st.cap {
                    st.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().senders += 1;
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.inner.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                // Wake receivers so they observe the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available. Fails once the channel is
        /// empty and every `Sender` has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.inner.lock().unwrap();
            if let Some(v) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Iterates until the channel is disconnected and drained.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap().receivers += 1;
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.inner.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake senders so they observe the disconnect.
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<'a, T> Iterator for Iter<'a, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's signature, wrapping
    //! `std::thread::scope`.

    /// Handle to a scope; lets spawned closures spawn further threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope, so it can
        /// spawn nested threads, mirroring crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope in which threads may borrow non-`'static` data.
    /// Returns `Ok(r)` with the closure's result; like crossbeam, panics in
    /// unjoined child threads surface as `Err` (std::thread::scope
    /// propagates child panics as a resumed panic, which we catch here).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_roundtrip_and_disconnect() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn channel_send_fails_after_rx_drop() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn channel_blocking_handoff_across_threads() {
        let (tx, rx) = channel::bounded::<u64>(1);
        let h = std::thread::spawn(move || {
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            sum
        });
        for i in 0..100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(h.join().unwrap(), 4950);
    }

    #[test]
    fn scoped_threads_borrow_stack() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_scope_spawn() {
        let r = thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2).join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
