//! Entropy estimators used to sanity-check generated corpora and to let the
//! metric-based baseline schemes "probe" data compressibility the way the
//! related-work systems do.

/// Shannon entropy of the byte distribution, in bits per byte (0..=8).
pub fn shannon_bits_per_byte(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in data {
        counts[b as usize] += 1;
    }
    let n = data.len() as f64;
    let mut h = 0.0;
    for &c in &counts {
        if c > 0 {
            let p = c as f64 / n;
            h -= p * p.log2();
        }
    }
    h
}

/// First-order (digram) conditional entropy in bits per byte.
///
/// Captures sequential structure that the order-0 estimate misses — e.g.
/// English text has much lower digram entropy than its byte histogram
/// suggests.
pub fn digram_bits_per_byte(data: &[u8]) -> f64 {
    if data.len() < 2 {
        return shannon_bits_per_byte(data);
    }
    // H(X_{i+1} | X_i) = H(X_i, X_{i+1}) - H(X_i)
    let mut joint = vec![0u32; 65536];
    for w in data.windows(2) {
        joint[((w[0] as usize) << 8) | w[1] as usize] += 1;
    }
    let n = (data.len() - 1) as f64;
    let mut h_joint = 0.0;
    for &c in joint.iter() {
        if c > 0 {
            let p = c as f64 / n;
            h_joint -= p * p.log2();
        }
    }
    (h_joint - shannon_bits_per_byte(&data[..data.len() - 1])).max(0.0)
}

/// A quick compressibility score in `[0, 1]`: 0 = incompressible,
/// 1 = maximally redundant. Combines order-0 and order-1 entropy.
pub fn compressibility_score(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let h1 = digram_bits_per_byte(data);
    (1.0 - h1 / 8.0).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(shannon_bits_per_byte(&[]), 0.0);
        assert_eq!(compressibility_score(&[]), 0.0);
    }

    #[test]
    fn constant_data_has_zero_entropy() {
        let data = vec![7u8; 1000];
        assert!(shannon_bits_per_byte(&data) < 1e-9);
        assert!(digram_bits_per_byte(&data) < 1e-9);
        assert!(compressibility_score(&data) > 0.99);
    }

    #[test]
    fn uniform_bytes_near_eight_bits() {
        // A counter touches every byte value equally.
        let data: Vec<u8> = (0..=255u8).cycle().take(65536).collect();
        assert!((shannon_bits_per_byte(&data) - 8.0).abs() < 1e-6);
    }

    #[test]
    fn digram_detects_sequential_structure() {
        // The cycling counter is order-0 uniform but order-1 deterministic.
        let data: Vec<u8> = (0..=255u8).cycle().take(65536).collect();
        assert!(digram_bits_per_byte(&data) < 0.1);
        assert!(compressibility_score(&data) > 0.9);
    }

    #[test]
    fn two_symbol_data_is_one_bit() {
        let data: Vec<u8> = (0..10_000).map(|i| (i % 2) as u8).collect();
        assert!((shannon_bits_per_byte(&data) - 1.0).abs() < 1e-6);
    }
}
