//! Channels: the edges of a Nephele job graph.
//!
//! As in the paper's framework, "tasks can exchange data through
//! communication channels" of three kinds — in-memory, TCP network and
//! file. Records are length-prefixed byte strings packed into blocks of at
//! most 128 KiB; each block is independently (and, when enabled,
//! adaptively) compressed into a self-describing frame before it reaches
//! the transport. The compression layer is completely transparent to task
//! code.

use crate::error::{NepheleError, Result};
use adcomp_codecs::frame::{
    decode_block_limited, encode_block_flags, RecoveryMode, RecoveryPolicy, RecoveryStats,
    DEFAULT_BLOCK_LEN, FLAG_RECORD_ALIGNED,
};
use adcomp_codecs::{LevelSet, Scratch};
use adcomp_core::controller::ControllerConfig;
use adcomp_core::epoch::{Clock, EpochContext, EpochDriver, WallClock};
use adcomp_core::model::{DecisionModel, RateBasedModel, StaticModel};
use adcomp_core::pipeline::{Completion, CompressPool};
use adcomp_metrics::registry::{self, CounterKind, MetricsRegistry, SpanKind};
use adcomp_trace::{ChannelEvent, TraceHandle, TraceSink as _, NO_EPOCH};
use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

/// Transport flavour of a channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelType {
    /// Blocks move through a bounded in-process queue (no compression
    /// benefit, but supported for symmetry with the paper's engine).
    InMemory,
    /// Blocks move over a real loopback TCP connection.
    Network,
    /// Blocks are spooled through a file on disk.
    File,
}

/// Compression policy of a channel.
#[derive(Debug, Clone)]
pub enum CompressionMode {
    /// Pass blocks through uncompressed (still framed, for uniformity).
    Off,
    /// A fixed compression level.
    Static(usize),
    /// The paper's rate-based adaptive scheme.
    Adaptive(ControllerConfig),
}

impl CompressionMode {
    fn make_model(&self, levels: &LevelSet) -> Box<dyn DecisionModel> {
        match self {
            CompressionMode::Off => Box::new(StaticModel::new(0, levels.len())),
            CompressionMode::Static(l) => Box::new(StaticModel::new(*l, levels.len())),
            CompressionMode::Adaptive(cfg) => Box::new(RateBasedModel::new(*cfg)),
        }
    }
}

/// Statistics of one channel after job completion.
#[derive(Debug, Clone, Default)]
pub struct ChannelStats {
    pub app_bytes: u64,
    pub wire_bytes: u64,
    pub records: u64,
    pub blocks_per_level: Vec<u64>,
    pub epochs: u64,
    /// Fault-recovery counters (all zero on a clean channel). Populated by
    /// [`RecordReader`] when a [`RecoveryPolicy`] other than fail-fast is
    /// installed; the writer side never touches it.
    pub recovery: RecoveryStats,
}

impl ChannelStats {
    pub fn wire_ratio(&self) -> f64 {
        if self.app_bytes == 0 {
            1.0
        } else {
            self.wire_bytes as f64 / self.app_bytes as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Block transports
// ---------------------------------------------------------------------------

/// Moves opaque frame-encoded blocks from a writer to a reader thread.
pub trait BlockTransport: Send {
    fn send(&mut self, frame: &[u8]) -> Result<()>;
    /// Signals end of stream.
    fn close(&mut self) -> Result<()>;
}

/// Receiving half.
pub trait BlockSource: Send {
    /// Next complete frame, or `None` at end of stream.
    fn recv(&mut self) -> Result<Option<Vec<u8>>>;
}

/// In-memory transport over a bounded crossbeam queue.
pub struct MemTransport {
    tx: Option<Sender<Vec<u8>>>,
}

pub struct MemSource {
    rx: Receiver<Vec<u8>>,
}

/// Creates a connected in-memory transport pair with the given block
/// capacity (backpressure bound).
pub fn mem_pair(capacity: usize) -> (MemTransport, MemSource) {
    let (tx, rx) = bounded(capacity.max(1));
    (MemTransport { tx: Some(tx) }, MemSource { rx })
}

impl BlockTransport for MemTransport {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        self.tx
            .as_ref()
            .expect("send after close")
            .send(frame.to_vec())
            .map_err(|_| NepheleError::InvalidGraph("receiver dropped".into()))
    }

    fn close(&mut self) -> Result<()> {
        self.tx = None;
        Ok(())
    }
}

impl BlockSource for MemSource {
    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        Ok(self.rx.recv().ok())
    }
}

/// TCP transport: frames stream over a socket; EOF marks the end.
pub struct TcpTransport {
    stream: Option<TcpStream>,
}

impl TcpTransport {
    pub fn new(stream: TcpStream) -> Self {
        TcpTransport { stream: Some(stream) }
    }
}

impl BlockTransport for TcpTransport {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        self.stream.as_mut().expect("send after close").write_all(frame)?;
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        if let Some(s) = self.stream.take() {
            s.shutdown(std::net::Shutdown::Write).ok();
        }
        Ok(())
    }
}

/// TCP receiving half: reassembles frames from the byte stream.
pub struct TcpSource {
    stream: TcpStream,
}

impl TcpSource {
    pub fn new(stream: TcpStream) -> Self {
        TcpSource { stream }
    }
}

impl BlockSource for TcpSource {
    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        read_frame(&mut self.stream)
    }
}

/// Reads one complete frame (header + payload) from a byte stream.
fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>> {
    use adcomp_codecs::frame::HEADER_LEN;
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(NepheleError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "truncated frame header",
                )))
            }
            Ok(n) => filled += n,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let parsed = adcomp_codecs::frame::FrameHeader::from_bytes(&header)
        .map_err(|e| NepheleError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, e)))?;
    let mut frame = Vec::with_capacity(HEADER_LEN + parsed.payload_len as usize);
    frame.extend_from_slice(&header);
    frame.resize(HEADER_LEN + parsed.payload_len as usize, 0);
    r.read_exact(&mut frame[HEADER_LEN..])?;
    Ok(Some(frame))
}

/// File transport: frames are appended to a spool file; a shared counter +
/// condvar lets the reader tail the file while the writer is still running.
pub struct FileTransport {
    file: std::fs::File,
    state: Arc<FileState>,
}

pub struct FileSource {
    file: std::fs::File,
    state: Arc<FileState>,
    read_pos: u64,
}

struct FileState {
    written: Mutex<(u64, bool)>, // (bytes durable, writer done)
    cond: Condvar,
    path: PathBuf,
}

impl Drop for FileState {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Creates a connected file-spool transport pair in `dir`.
pub fn file_pair(dir: &std::path::Path, name: &str) -> Result<(FileTransport, FileSource)> {
    let path = dir.join(format!("nephele-spool-{name}-{}.bin", std::process::id()));
    let file = std::fs::File::create(&path)?;
    let reader = std::fs::File::open(&path)?;
    let state = Arc::new(FileState {
        written: Mutex::new((0, false)),
        cond: Condvar::new(),
        path,
    });
    Ok((
        FileTransport { file, state: state.clone() },
        FileSource { file: reader, state, read_pos: 0 },
    ))
}

impl Drop for FileTransport {
    fn drop(&mut self) {
        // A writer that dies without close() must not leave the reader
        // blocked on the condvar forever.
        let mut w = self.state.written.lock();
        w.1 = true;
        self.state.cond.notify_all();
    }
}

impl BlockTransport for FileTransport {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        self.file.write_all(frame)?;
        self.file.flush()?;
        let mut w = self.state.written.lock();
        w.0 += frame.len() as u64;
        self.state.cond.notify_all();
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        self.file.flush()?;
        let mut w = self.state.written.lock();
        w.1 = true;
        self.state.cond.notify_all();
        Ok(())
    }
}

impl FileSource {
    /// Blocks until at least `needed` total bytes exist or the writer is
    /// done; returns the currently available byte count.
    fn wait_for(&self, needed: u64) -> u64 {
        let mut w = self.state.written.lock();
        while w.0 < needed && !w.1 {
            self.state.cond.wait(&mut w);
        }
        w.0
    }
}

impl BlockSource for FileSource {
    fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        use adcomp_codecs::frame::HEADER_LEN;
        let avail = self.wait_for(self.read_pos + HEADER_LEN as u64);
        if avail < self.read_pos + HEADER_LEN as u64 {
            return Ok(None); // clean EOF
        }
        let mut header = [0u8; HEADER_LEN];
        self.file.read_exact(&mut header)?;
        let parsed = adcomp_codecs::frame::FrameHeader::from_bytes(&header).map_err(|e| {
            NepheleError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, e))
        })?;
        let total = HEADER_LEN as u64 + parsed.payload_len as u64;
        let avail = self.wait_for(self.read_pos + total);
        if avail < self.read_pos + total {
            return Err(NepheleError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "spool file truncated",
            )));
        }
        let mut frame = Vec::with_capacity(total as usize);
        frame.extend_from_slice(&header);
        frame.resize(total as usize, 0);
        self.file.read_exact(&mut frame[HEADER_LEN..])?;
        self.read_pos += total;
        Ok(Some(frame))
    }
}

// ---------------------------------------------------------------------------
// Record writer / reader (the task-facing API)
// ---------------------------------------------------------------------------

/// Writes length-prefixed records into adaptively compressed blocks.
pub struct RecordWriter {
    transport: Box<dyn BlockTransport>,
    levels: LevelSet,
    driver: EpochDriver,
    clock: Box<dyn Clock>,
    buf: Vec<u8>,
    block_len: usize,
    frame_scratch: Vec<u8>,
    codec_scratch: Scratch,
    stats: ChannelStats,
    trace: TraceHandle,
    /// Record-aligned mode: blocks are flushed before a record would span
    /// them and stamped with [`FLAG_RECORD_ALIGNED`] when their first byte
    /// is a record boundary, so a skip-mode reader can realign after loss.
    aligned: bool,
    /// Whether the block currently accumulating in `buf` starts at a
    /// record boundary.
    cur_block_aligned: bool,
    /// Optional compression worker pool ([`RecordWriter::set_pipeline_workers`]).
    /// `None` keeps the serial in-line encode path bit-for-bit unchanged.
    pool: Option<CompressPool>,
    /// Wire ratio of the most recently *shipped* block, fed to the epoch
    /// driver as `observed_ratio` on the pipelined path (the in-flight
    /// block's ratio is not known at submission time).
    last_ratio: Option<f64>,
}

impl RecordWriter {
    pub fn new(
        transport: Box<dyn BlockTransport>,
        mode: &CompressionMode,
        levels: LevelSet,
        epoch_secs: f64,
    ) -> Self {
        let model = mode.make_model(&levels);
        let clock: Box<dyn Clock> = Box::new(WallClock::new());
        let now = clock.now();
        let nlevels = levels.len();
        RecordWriter {
            transport,
            levels,
            driver: EpochDriver::new(model, epoch_secs, now),
            clock,
            buf: Vec::with_capacity(DEFAULT_BLOCK_LEN),
            block_len: DEFAULT_BLOCK_LEN,
            frame_scratch: Vec::new(),
            codec_scratch: Scratch::new(),
            stats: ChannelStats { blocks_per_level: vec![0; nlevels], ..Default::default() },
            trace: TraceHandle::disabled(),
            aligned: false,
            cur_block_aligned: true,
            pool: None,
            last_ratio: None,
        }
    }

    /// Routes block compression through a bounded pool of `workers`
    /// threads. Levels are still chosen by the epoch driver at submission
    /// time and frames are shipped strictly in submission order, so the
    /// wire stream is byte-identical to the serial path for the same
    /// decision trajectory. `workers <= 1` keeps the in-line serial encode.
    pub fn set_pipeline_workers(&mut self, workers: usize) {
        if workers <= 1 {
            self.pool = None;
            return;
        }
        let mut pool = CompressPool::new(workers);
        if self.trace.enabled() {
            pool.set_trace(self.trace.clone());
        }
        self.pool = Some(pool);
    }

    /// Number of compression workers (1 = serial in-line encoding).
    pub fn pipeline_workers(&self) -> usize {
        self.pool.as_ref().map_or(1, CompressPool::workers)
    }

    /// Enables record-aligned block emission: a record that would span the
    /// current block forces a flush first, and every block whose first
    /// application byte is a record boundary carries
    /// [`FLAG_RECORD_ALIGNED`]. Off by default (the wire stream is then
    /// bit-identical to the pre-fault-model writer); records larger than a
    /// block still span, and the spanned continuation blocks are simply
    /// left unflagged.
    pub fn set_record_aligned(&mut self, on: bool) {
        self.aligned = on;
    }

    /// Overrides the block size (default [`DEFAULT_BLOCK_LEN`]). Must be
    /// called before the first record; the fault-injection soak uses small
    /// blocks to exercise many frames per case cheaply.
    pub fn set_block_len(&mut self, len: usize) {
        assert!(len >= 16, "block length too small");
        assert!(self.buf.is_empty(), "set_block_len after writing");
        self.block_len = len;
    }

    /// Attaches a trace sink: the epoch driver emits epoch/decision events
    /// and the channel emits one [`ChannelEvent`] per shipped block plus a
    /// `"flush"` event for the explicit tail flush in [`RecordWriter::finish`].
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.driver.set_trace(trace.clone());
        if let Some(pool) = self.pool.as_mut() {
            pool.set_trace(trace.clone());
        }
        self.trace = trace;
    }

    /// Writes one record (any byte payload; may span blocks).
    pub fn write_record(&mut self, record: &[u8]) -> Result<()> {
        if self.aligned
            && !self.buf.is_empty()
            && self.buf.len() + 4 + record.len() > self.block_len
        {
            // Flush so this record starts a fresh (aligned) block instead
            // of spanning the current one.
            self.emit_block()?;
        }
        if self.buf.is_empty() {
            // The block about to accumulate starts at a record boundary.
            self.cur_block_aligned = true;
        }
        let len = (record.len() as u32).to_le_bytes();
        self.push_bytes(&len)?;
        self.push_bytes(record)?;
        self.stats.records += 1;
        if let Some(m) = registry::global() {
            m.counter_add(CounterKind::ChannelRecords, 1);
        }
        Ok(())
    }

    fn push_bytes(&mut self, mut data: &[u8]) -> Result<()> {
        while !data.is_empty() {
            let room = self.block_len - self.buf.len();
            let take = room.min(data.len());
            self.buf.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.buf.len() == self.block_len {
                self.emit_block()?;
                // The next block continues mid-record unless the next
                // write_record (which sees an empty buf) says otherwise.
                self.cur_block_aligned = false;
            }
        }
        Ok(())
    }

    fn emit_block(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        if self.pool.is_some() {
            return self.emit_block_pipelined();
        }
        let level = self.driver.level();
        let flags = if self.aligned && self.cur_block_aligned { FLAG_RECORD_ALIGNED } else { 0 };
        self.frame_scratch.clear();
        let metrics = registry::global();
        let timed = self.trace.enabled() || metrics.is_some_and(MetricsRegistry::wall_spans);
        let info;
        if timed {
            let start = std::time::Instant::now();
            info = encode_block_flags(
                &mut self.codec_scratch,
                self.levels.codec(level),
                &self.buf,
                &mut self.frame_scratch,
                flags,
            );
            let encode_ns = start.elapsed().as_nanos() as u64;
            if self.trace.enabled() {
                self.trace.emit(
                    &ChannelEvent {
                        epoch: self.driver.epochs(),
                        t: self.clock.now(),
                        kind: "block",
                        bytes: info.uncompressed_len as u64,
                        wait_ns: encode_ns,
                        level: level as u32,
                    }
                    .into(),
                );
            }
            if let Some(m) = metrics {
                m.span_ns(SpanKind::Compress, encode_ns);
            }
        } else {
            info = encode_block_flags(
                &mut self.codec_scratch,
                self.levels.codec(level),
                &self.buf,
                &mut self.frame_scratch,
                flags,
            );
        }
        self.transport.send(&self.frame_scratch)?;
        self.stats.app_bytes += info.uncompressed_len as u64;
        self.stats.wire_bytes += info.frame_len as u64;
        self.stats.blocks_per_level[level] += 1;
        if let Some(m) = metrics {
            m.counter_add(CounterKind::ChannelBlocks, 1);
            m.level_block(level, 1);
        }
        let bytes = self.buf.len() as u64;
        self.buf.clear();
        let ctx = EpochContext { observed_ratio: Some(info.wire_ratio()), ..Default::default() };
        self.driver.record(bytes, self.clock.now(), &ctx);
        Ok(())
    }

    /// Pipelined variant of [`RecordWriter::emit_block`]: the level is
    /// captured from the driver *now*, the block is handed to a worker, and
    /// whatever earlier blocks have completed are shipped in order. The
    /// application rate is recorded at submission (before compression
    /// finishes), so the rate the epoch driver observes is the true
    /// producer rate, not the pool's drain rate.
    fn emit_block_pipelined(&mut self) -> Result<()> {
        let level = self.driver.level();
        let flags = if self.aligned && self.cur_block_aligned { FLAG_RECORD_ALIGNED } else { 0 };
        let data = std::mem::take(&mut self.buf);
        let bytes = data.len() as u64;
        let traced = self.trace.enabled();
        let epochs = self.driver.epochs();
        let now = self.clock.now();
        let pool = self.pool.as_mut().expect("pipelined emit without pool");
        if traced {
            pool.set_trace_mark(epochs, now);
        }
        let ready = pool.submit(level, self.levels.id(level), flags, data);
        self.ship_completions(ready)?;
        let ctx = EpochContext { observed_ratio: self.last_ratio, ..Default::default() };
        self.driver.record(bytes, self.clock.now(), &ctx);
        Ok(())
    }

    /// Ships pool completions (already in submission order) over the
    /// transport and accounts for them exactly as the serial path does.
    fn ship_completions(&mut self, ready: Vec<Completion>) -> Result<()> {
        for c in ready {
            let level = if c.degraded {
                // A worker's codec panicked; the block was re-emitted raw.
                // Mirror the serial degrade contract: force level NONE
                // until the next epoch decision.
                self.driver.force_level(0, self.clock.now());
                0
            } else {
                c.level
            };
            if self.trace.enabled() {
                self.trace.emit(
                    &ChannelEvent {
                        epoch: self.driver.epochs(),
                        t: self.clock.now(),
                        kind: "block",
                        bytes: c.info.uncompressed_len as u64,
                        wait_ns: c.compress_ns,
                        level: level as u32,
                    }
                    .into(),
                );
            }
            self.transport.send(&c.frame)?;
            self.stats.app_bytes += c.info.uncompressed_len as u64;
            self.stats.wire_bytes += c.info.frame_len as u64;
            self.stats.blocks_per_level[level] += 1;
            if let Some(m) = registry::global() {
                m.counter_add(CounterKind::ChannelBlocks, 1);
                m.level_block(level, 1);
                m.span_ns(SpanKind::Compress, c.compress_ns);
            }
            self.last_ratio = Some(c.info.wire_ratio());
            if self.buf.capacity() == 0 {
                // Recycle the block buffer that just came back from the pool.
                let mut d = c.data;
                d.clear();
                self.buf = d;
            }
        }
        Ok(())
    }

    /// Flushes the tail block and closes the channel; returns final stats.
    pub fn finish(mut self) -> Result<ChannelStats> {
        if self.trace.enabled() {
            self.trace.emit(
                &ChannelEvent {
                    epoch: self.driver.epochs(),
                    t: self.clock.now(),
                    kind: "flush",
                    bytes: self.buf.len() as u64,
                    wait_ns: 0,
                    level: self.driver.level() as u32,
                }
                .into(),
            );
        }
        self.emit_block()?;
        if let Some(mut pool) = self.pool.take() {
            let ready = pool.drain();
            self.ship_completions(ready)?;
        }
        self.transport.close()?;
        self.stats.epochs = self.driver.epochs();
        Ok(self.stats)
    }

    /// Current compression level (for tests / introspection).
    pub fn level(&self) -> usize {
        self.driver.level()
    }
}

/// Reads length-prefixed records from compressed blocks.
///
/// With the default fail-fast [`RecoveryPolicy`] any damaged frame aborts
/// the transfer with a typed error, exactly as before the fault model.
/// Under [`RecoveryMode::SkipAndCount`] the reader drops frames that fail
/// to decode, counts the incidents in [`ChannelStats::recovery`], and —
/// on streams produced by a record-aligned writer
/// ([`RecordWriter::set_record_aligned`]) — realigns its record framing at
/// the next [`FLAG_RECORD_ALIGNED`] block, so every record that did not
/// share bytes with a damaged or lost block is recovered byte-identically.
pub struct RecordReader {
    source: Box<dyn BlockSource>,
    buf: Vec<u8>,
    pos: usize,
    eof: bool,
    stats: ChannelStats,
    trace: TraceHandle,
    started: std::time::Instant,
    policy: RecoveryPolicy,
    /// Set after a skipped frame (or a detected desync): decoded bytes are
    /// discarded until a block flagged [`FLAG_RECORD_ALIGNED`] arrives.
    realign: bool,
}

impl RecordReader {
    pub fn new(source: Box<dyn BlockSource>) -> Self {
        RecordReader::with_policy(source, RecoveryPolicy::default())
    }

    /// A reader with an explicit [`RecoveryPolicy`].
    pub fn with_policy(source: Box<dyn BlockSource>, policy: RecoveryPolicy) -> Self {
        RecordReader {
            source,
            buf: Vec::new(),
            pos: 0,
            eof: false,
            stats: ChannelStats::default(),
            trace: TraceHandle::disabled(),
            started: std::time::Instant::now(),
            policy,
            realign: false,
        }
    }

    /// The active recovery policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Replaces the recovery policy mid-stream.
    pub fn set_policy(&mut self, policy: RecoveryPolicy) {
        self.policy = policy;
    }

    /// Attaches a trace sink: the reader emits a `"stall"` [`ChannelEvent`]
    /// (wait nanoseconds on the transport) for every block fetch. The
    /// reader has no epoch driver, so events carry [`NO_EPOCH`].
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    fn ensure(&mut self, needed: usize) -> Result<bool> {
        while self.buf.len() - self.pos < needed {
            if self.eof {
                return Ok(false);
            }
            let metrics = registry::global();
            let timed = self.trace.enabled() || metrics.is_some_and(MetricsRegistry::wall_spans);
            let received = if timed {
                let start = std::time::Instant::now();
                let received = self.source.recv()?;
                let wait_ns = start.elapsed().as_nanos() as u64;
                if self.trace.enabled() {
                    self.trace.emit(
                        &ChannelEvent {
                            epoch: NO_EPOCH,
                            t: self.started.elapsed().as_secs_f64(),
                            kind: "stall",
                            bytes: received.as_ref().map_or(0, |f| f.len() as u64),
                            wait_ns,
                            level: 0,
                        }
                        .into(),
                    );
                }
                if let Some(m) = metrics {
                    m.span_ns(SpanKind::ChannelStall, wait_ns);
                }
                received
            } else {
                self.source.recv()?
            };
            match received {
                Some(frame) => {
                    // Compact consumed prefix before appending.
                    if self.pos > 0 {
                        self.buf.drain(..self.pos);
                        self.pos = 0;
                    }
                    let before = self.buf.len();
                    match decode_block_limited(&frame, &mut self.buf, self.policy.max_frame) {
                        Ok((header, _consumed)) => {
                            if self.realign {
                                if header.record_aligned {
                                    // Back on a record boundary.
                                    self.realign = false;
                                    self.stats.recovery.resyncs += 1;
                                } else {
                                    // Still desynced: this block's bytes
                                    // cannot be framed; drop them.
                                    let n = self.buf.len() - before;
                                    self.buf.truncate(before);
                                    self.stats.recovery.skipped_bytes += n as u64;
                                    continue;
                                }
                            }
                            self.stats.app_bytes += (self.buf.len() - before) as u64;
                            self.stats.wire_bytes += frame.len() as u64;
                        }
                        Err(e) => {
                            if self.policy.mode == RecoveryMode::FailFast {
                                return Err(NepheleError::Io(std::io::Error::new(
                                    std::io::ErrorKind::InvalidData,
                                    e,
                                )));
                            }
                            // Skip-and-count: drop the damaged frame. On a
                            // record-aligned stream the bytes already in
                            // `buf` end at a record boundary, so parsing
                            // them stays valid; realignment gates the next
                            // appended block.
                            self.stats.recovery.corrupt_frames += 1;
                            self.stats.recovery.skipped_bytes += frame.len() as u64;
                            self.realign = true;
                        }
                    }
                }
                None => self.eof = true,
            }
        }
        Ok(true)
    }

    /// Drops all unconsumed buffered bytes (a detected record-framing
    /// desync) and requires realignment before any further parsing.
    fn drop_buffered(&mut self) {
        let n = self.buf.len() - self.pos;
        self.stats.recovery.skipped_bytes += n as u64;
        self.pos = self.buf.len();
        self.realign = true;
    }

    /// Next record, or `None` at a clean end of stream.
    ///
    /// In skip-and-count mode an implausible record length (a silent
    /// desync from a dropped block on a non-aligned stream) and a trailing
    /// partial record are recovered from rather than fatal; see
    /// [`ChannelStats::recovery`] for what happened.
    pub fn next_record(&mut self) -> Result<Option<Vec<u8>>> {
        loop {
            if !self.ensure(4)? {
                let leftover = self.buf.len() - self.pos;
                if leftover != 0 {
                    if self.policy.mode == RecoveryMode::SkipAndCount {
                        self.stats.recovery.truncations += 1;
                        self.stats.recovery.skipped_bytes += leftover as u64;
                        self.pos = self.buf.len();
                        return Ok(None);
                    }
                    return Err(NepheleError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "trailing partial record",
                    )));
                }
                return Ok(None);
            }
            // Peek the length; only consume once the whole record is here,
            // so recovery never leaves a half-parsed record behind.
            let len =
                u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap()) as usize;
            if len as u64 > self.policy.max_frame as u64 {
                if self.policy.mode == RecoveryMode::SkipAndCount {
                    // Record framing desynced (e.g. a dropped block on a
                    // stream without alignment flags): drop the buffered
                    // bytes and realign at the next aligned block.
                    self.stats.recovery.corrupt_frames += 1;
                    self.drop_buffered();
                    continue;
                }
                return Err(NepheleError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "implausible record length {len} (cap {}): record framing desynced",
                        self.policy.max_frame
                    ),
                )));
            }
            if !self.ensure(4 + len)? {
                let leftover = self.buf.len() - self.pos;
                if self.policy.mode == RecoveryMode::SkipAndCount {
                    self.stats.recovery.truncations += 1;
                    self.stats.recovery.skipped_bytes += leftover as u64;
                    self.pos = self.buf.len();
                    return Ok(None);
                }
                return Err(NepheleError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "record body truncated",
                )));
            }
            self.pos += 4;
            let rec = self.buf[self.pos..self.pos + len].to_vec();
            self.pos += len;
            self.stats.records += 1;
            return Ok(Some(rec));
        }
    }

    /// Reader-side statistics.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(mode: CompressionMode, records: &[Vec<u8>]) -> (Vec<Vec<u8>>, ChannelStats) {
        let (tx, rx) = mem_pair(1024);
        let mut w = RecordWriter::new(Box::new(tx), &mode, LevelSet::paper_default(), 2.0);
        for r in records {
            w.write_record(r).unwrap();
        }
        let stats = w.finish().unwrap();
        let mut reader = RecordReader::new(Box::new(rx));
        let mut out = Vec::new();
        while let Some(r) = reader.next_record().unwrap() {
            out.push(r);
        }
        (out, stats)
    }

    #[test]
    fn mem_channel_roundtrips_records() {
        let records: Vec<Vec<u8>> =
            (0..100).map(|i| format!("record number {i}, payload payload").into_bytes()).collect();
        let (out, stats) = roundtrip(CompressionMode::Off, &records);
        assert_eq!(out, records);
        assert_eq!(stats.records, 100);
    }

    #[test]
    fn static_compression_reduces_wire_bytes() {
        let records: Vec<Vec<u8>> = (0..200)
            .map(|_| b"very repetitive content here. ".repeat(20).to_vec())
            .collect();
        let (out, stats) = roundtrip(CompressionMode::Static(1), &records);
        assert_eq!(out.len(), 200);
        assert!(stats.wire_ratio() < 0.3, "ratio {}", stats.wire_ratio());
        assert!(stats.blocks_per_level[1] > 0);
    }

    #[test]
    fn adaptive_mode_runs_and_roundtrips() {
        let records: Vec<Vec<u8>> =
            (0..500).map(|i| format!("{i} ").repeat(100).into_bytes()).collect();
        let (out, _stats) =
            roundtrip(CompressionMode::Adaptive(ControllerConfig::default()), &records);
        assert_eq!(out.len(), 500);
    }

    #[test]
    fn empty_record_and_empty_stream() {
        let (out, stats) = roundtrip(CompressionMode::Off, &[Vec::new(), b"x".to_vec()]);
        assert_eq!(out, vec![Vec::new(), b"x".to_vec()]);
        assert_eq!(stats.records, 2);
        let (out, _) = roundtrip(CompressionMode::Off, &[]);
        assert!(out.is_empty());
    }

    #[test]
    fn large_record_spans_blocks() {
        let big = vec![0xABu8; 500_000]; // ~4 blocks
        let (out, stats) = roundtrip(CompressionMode::Static(1), std::slice::from_ref(&big));
        assert_eq!(out, vec![big]);
        assert!(stats.blocks_per_level.iter().sum::<u64>() >= 4);
    }

    /// Transport that appends every frame to a shared byte vector, so tests
    /// can compare exact wire output across writer configurations.
    struct CaptureTransport(Arc<Mutex<Vec<u8>>>);

    impl BlockTransport for CaptureTransport {
        fn send(&mut self, frame: &[u8]) -> Result<()> {
            self.0.lock().extend_from_slice(frame);
            Ok(())
        }
        fn close(&mut self) -> Result<()> {
            Ok(())
        }
    }

    fn captured_wire(workers: usize, aligned: bool, records: &[Vec<u8>]) -> (Vec<u8>, ChannelStats) {
        let wire = Arc::new(Mutex::new(Vec::new()));
        let mut w = RecordWriter::new(
            Box::new(CaptureTransport(wire.clone())),
            &CompressionMode::Static(2),
            LevelSet::paper_default(),
            2.0,
        );
        w.set_block_len(4096);
        w.set_record_aligned(aligned);
        if workers > 1 {
            w.set_pipeline_workers(workers);
        }
        for r in records {
            w.write_record(r).unwrap();
        }
        let stats = w.finish().unwrap();
        let bytes = wire.lock().clone();
        (bytes, stats)
    }

    #[test]
    fn pipelined_record_writer_matches_serial_wire() {
        let records: Vec<Vec<u8>> = (0..400)
            .map(|i| format!("record {i}: channel pipelining payload payload ").into_bytes())
            .collect();
        for aligned in [false, true] {
            let (reference, ref_stats) = captured_wire(1, aligned, &records);
            for workers in [2usize, 4] {
                let (wire, stats) = captured_wire(workers, aligned, &records);
                assert_eq!(
                    wire, reference,
                    "aligned={aligned} workers={workers}: pipelined wire differs"
                );
                assert_eq!(stats.app_bytes, ref_stats.app_bytes);
                assert_eq!(stats.wire_bytes, ref_stats.wire_bytes);
                assert_eq!(stats.blocks_per_level, ref_stats.blocks_per_level);
            }
        }
    }

    #[test]
    fn pipelined_record_writer_roundtrips_over_mem_channel() {
        let records: Vec<Vec<u8>> =
            (0..600).map(|i| format!("{i} ").repeat(80).into_bytes()).collect();
        let (tx, rx) = mem_pair(1024);
        let mut w = RecordWriter::new(
            Box::new(tx),
            &CompressionMode::Adaptive(ControllerConfig::default()),
            LevelSet::paper_default(),
            2.0,
        );
        w.set_pipeline_workers(4);
        assert_eq!(w.pipeline_workers(), 4);
        for r in &records {
            w.write_record(r).unwrap();
        }
        let stats = w.finish().unwrap();
        assert_eq!(stats.records, 600);
        let mut reader = RecordReader::new(Box::new(rx));
        let mut out = Vec::new();
        while let Some(r) = reader.next_record().unwrap() {
            out.push(r);
        }
        assert_eq!(out, records);
    }

    #[test]
    fn file_transport_roundtrip() {
        let dir = std::env::temp_dir();
        let (tx, rx) = file_pair(&dir, "test-rt").unwrap();
        let path = tx.state.path.clone();
        let mut w =
            RecordWriter::new(Box::new(tx), &CompressionMode::Static(2), LevelSet::paper_default(), 2.0);
        let records: Vec<Vec<u8>> =
            (0..50).map(|i| format!("file record {i} ").repeat(30).into_bytes()).collect();
        for r in &records {
            w.write_record(r).unwrap();
        }
        w.finish().unwrap();
        let mut reader = RecordReader::new(Box::new(rx));
        let mut out = Vec::new();
        while let Some(r) = reader.next_record().unwrap() {
            out.push(r);
        }
        assert_eq!(out, records);
        drop(reader);
        assert!(!path.exists(), "spool file should be cleaned up");
    }

    #[test]
    fn file_transport_supports_concurrent_tailing() {
        let dir = std::env::temp_dir();
        let (tx, rx) = file_pair(&dir, "test-tail").unwrap();
        let writer = std::thread::spawn(move || {
            let mut w = RecordWriter::new(
                Box::new(tx),
                &CompressionMode::Off,
                LevelSet::paper_default(),
                2.0,
            );
            for i in 0..200 {
                w.write_record(format!("tail {i}").as_bytes()).unwrap();
                if i % 50 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
            w.finish().unwrap()
        });
        let mut reader = RecordReader::new(Box::new(rx));
        let mut n = 0;
        while let Some(r) = reader.next_record().unwrap() {
            assert_eq!(r, format!("tail {n}").as_bytes());
            n += 1;
        }
        assert_eq!(n, 200);
        writer.join().unwrap();
    }

    #[test]
    fn tcp_transport_roundtrip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let records: Vec<Vec<u8>> =
            (0..100).map(|i| format!("tcp record {i} ").repeat(10).into_bytes()).collect();
        let recs = records.clone();
        let sender = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut w = RecordWriter::new(
                Box::new(TcpTransport::new(stream)),
                &CompressionMode::Static(1),
                LevelSet::paper_default(),
                2.0,
            );
            for r in &recs {
                w.write_record(r).unwrap();
            }
            w.finish().unwrap()
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = RecordReader::new(Box::new(TcpSource::new(stream)));
        let mut out = Vec::new();
        while let Some(r) = reader.next_record().unwrap() {
            out.push(r);
        }
        assert_eq!(out, records);
        let stats = sender.join().unwrap();
        assert_eq!(stats.records, 100);
    }

    #[test]
    fn traced_channel_emits_block_flush_and_stall_events() {
        use adcomp_trace::{MemorySink, TraceEvent};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let (tx, rx) = mem_pair(1024);
        let mut w = RecordWriter::new(
            Box::new(tx),
            &CompressionMode::Static(1),
            LevelSet::paper_default(),
            2.0,
        );
        w.set_trace(TraceHandle::new(sink.clone()));
        let records: Vec<Vec<u8>> = (0..200)
            .map(|_| b"channel trace payload, repetitive. ".repeat(40).to_vec())
            .collect();
        for r in &records {
            w.write_record(r).unwrap();
        }
        let stats = w.finish().unwrap();

        let mut reader = RecordReader::new(Box::new(rx));
        reader.set_trace(TraceHandle::new(sink.clone()));
        let mut n = 0;
        while reader.next_record().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 200);

        let events = sink.snapshot();
        let channel_kinds: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Channel(c) => Some(c.kind),
                _ => None,
            })
            .collect();
        let blocks = channel_kinds.iter().filter(|k| **k == "block").count() as u64;
        assert_eq!(blocks, stats.blocks_per_level.iter().sum::<u64>());
        assert_eq!(channel_kinds.iter().filter(|k| **k == "flush").count(), 1);
        // One stall per block fetch plus the terminal EOF fetch.
        let stalls = channel_kinds.iter().filter(|k| **k == "stall").count() as u64;
        assert_eq!(stalls, blocks + 1);
        for e in &events {
            if let TraceEvent::Channel(c) = e {
                if c.kind == "block" {
                    assert_eq!(c.level, 1);
                    assert!(c.bytes > 0);
                }
            }
        }
    }

    #[test]
    fn aligned_writer_flags_blocks_and_roundtrips() {
        let (tx, rx) = mem_pair(1024);
        let mut w = RecordWriter::new(
            Box::new(tx),
            &CompressionMode::Static(1),
            LevelSet::paper_default(),
            2.0,
        );
        w.set_record_aligned(true);
        let records: Vec<Vec<u8>> =
            (0..300).map(|i| format!("aligned record {i} ").repeat(40).into_bytes()).collect();
        for r in &records {
            w.write_record(r).unwrap();
        }
        w.finish().unwrap();
        let mut reader = RecordReader::new(Box::new(rx));
        let mut out = Vec::new();
        while let Some(r) = reader.next_record().unwrap() {
            out.push(r);
        }
        assert_eq!(out, records);
    }

    #[test]
    fn skip_mode_drops_corrupt_block_and_recovers_aligned_records() {
        use adcomp_codecs::frame::RecoveryPolicy;
        // Build an aligned stream, then damage exactly one middle frame.
        let (tx, rx) = mem_pair(4096);
        let mut w = RecordWriter::new(
            Box::new(tx),
            &CompressionMode::Static(1),
            LevelSet::paper_default(),
            2.0,
        );
        w.set_record_aligned(true);
        let records: Vec<Vec<u8>> =
            (0..1200).map(|i| format!("rec {i} ").repeat(60).into_bytes()).collect();
        for r in &records {
            w.write_record(r).unwrap();
        }
        let wstats = w.finish().unwrap();
        let blocks: u64 = wstats.blocks_per_level.iter().sum();
        assert!(blocks >= 3, "need several blocks, got {blocks}");

        // Re-route through a corrupting middleman: flip a payload byte of
        // the second frame.
        let (tx2, rx2) = mem_pair(4096);
        let mut tx2: Box<dyn BlockTransport> = Box::new(tx2);
        let mut idx = 0u64;
        {
            let mut src: Box<dyn BlockSource> = Box::new(rx);
            while let Some(mut frame) = src.recv().unwrap() {
                if idx == 1 {
                    let k = adcomp_codecs::frame::HEADER_LEN + 3;
                    frame[k] ^= 0x40;
                }
                tx2.send(&frame).unwrap();
                idx += 1;
            }
        }
        tx2.close().unwrap();

        let mut reader =
            RecordReader::with_policy(Box::new(rx2), RecoveryPolicy::skip_and_count());
        let mut out = Vec::new();
        while let Some(r) = reader.next_record().unwrap() {
            out.push(r);
        }
        let rec = reader.stats().recovery;
        assert_eq!(rec.corrupt_frames, 1);
        assert_eq!(rec.resyncs, 1);
        assert!(out.len() < records.len(), "some records must be lost");
        // Every surviving record is byte-identical to an original, in order.
        let mut it = records.iter();
        for r in &out {
            assert!(it.any(|orig| orig == r), "recovered record not in original order");
        }
    }

    #[test]
    fn fail_fast_reader_errors_on_corrupt_block() {
        let (mut tx, rx) = mem_pair(8);
        let mut wire = Vec::new();
        let mut payload = Vec::new();
        payload.extend_from_slice(&4u32.to_le_bytes());
        payload.extend_from_slice(b"abcd");
        adcomp_codecs::frame::encode_block(
            adcomp_codecs::codec_for(adcomp_codecs::CodecId::Raw),
            &payload,
            &mut wire,
        );
        wire[adcomp_codecs::frame::HEADER_LEN] ^= 0xFF; // payload damage
        tx.send(&wire).unwrap();
        tx.close().unwrap();
        let mut reader = RecordReader::new(Box::new(rx));
        assert!(reader.next_record().is_err());
    }

    #[test]
    fn reader_detects_truncated_record() {
        // Write a block whose record length header promises more bytes than
        // the stream delivers.
        let (mut tx, rx) = mem_pair(4);
        let mut wire = Vec::new();
        let mut payload = Vec::new();
        payload.extend_from_slice(&100u32.to_le_bytes());
        payload.extend_from_slice(b"only ten b");
        adcomp_codecs::frame::encode_block(
            adcomp_codecs::codec_for(adcomp_codecs::CodecId::Raw),
            &payload,
            &mut wire,
        );
        tx.send(&wire).unwrap();
        tx.close().unwrap();
        let mut reader = RecordReader::new(Box::new(rx));
        assert!(reader.next_record().is_err());
    }
}
