//! Codec calibration: measures real speed and compression ratio of each
//! codec on sample data.
//!
//! The cloud simulator needs per-level `(compress MB/s, decompress MB/s,
//! ratio)` profiles. Rather than assuming numbers, benches measure our
//! actual codecs on the actual generated corpus and then re-scale the speeds
//! to the paper's hardware era with a single factor (the *shape* of the
//! trade-off — ordering and relative gaps — comes from real measurements).

use crate::frame::{encode_block_with, DEFAULT_BLOCK_LEN};
use crate::{codec_for, CodecId, Scratch};
use std::time::Instant;

/// Measured characteristics of one codec on one kind of data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecProfile {
    pub codec: CodecId,
    /// Compression throughput in MB of *input* per second.
    pub compress_mbps: f64,
    /// Decompression throughput in MB of *output* per second.
    pub decompress_mbps: f64,
    /// Wire bytes (frames incl. headers) / application bytes.
    pub ratio: f64,
}

impl CodecProfile {
    /// A profile for the no-compression level: ratio includes only frame
    /// header overhead; speed is effectively a memcpy.
    pub fn raw(memcpy_mbps: f64) -> CodecProfile {
        CodecProfile {
            codec: CodecId::Raw,
            compress_mbps: memcpy_mbps,
            decompress_mbps: memcpy_mbps,
            ratio: 1.0 + crate::frame::HEADER_LEN as f64 / DEFAULT_BLOCK_LEN as f64,
        }
    }
}

/// Measures one codec over `sample`, split into standard 128 KiB blocks.
///
/// `min_duration_secs` bounds the measurement time: the sample is processed
/// repeatedly until that much wall time has elapsed (at least once).
pub fn measure(codec_id: CodecId, sample: &[u8], min_duration_secs: f64) -> CodecProfile {
    assert!(!sample.is_empty(), "cannot calibrate on empty sample");
    let codec = codec_for(codec_id);
    let blocks: Vec<&[u8]> = sample.chunks(DEFAULT_BLOCK_LEN).collect();

    // Compression pass(es). Reuses one scratch across all blocks so the
    // measurement reflects the steady-state (allocation-free) hot path that
    // the adaptive writer actually runs.
    let mut scratch = Scratch::new();
    let mut wire = Vec::new();
    let mut app_bytes = 0u64;
    let mut wire_bytes = 0u64;
    let start = Instant::now();
    loop {
        wire.clear();
        for b in &blocks {
            let info = encode_block_with(&mut scratch, codec, b, &mut wire);
            app_bytes += info.uncompressed_len as u64;
            wire_bytes += info.frame_len as u64;
        }
        if start.elapsed().as_secs_f64() >= min_duration_secs {
            break;
        }
    }
    let comp_secs = start.elapsed().as_secs_f64();
    let compress_mbps = app_bytes as f64 / 1e6 / comp_secs.max(1e-9);
    let ratio = wire_bytes as f64 / app_bytes as f64;

    // Decompression pass(es) over the last wire image.
    let mut out = Vec::new();
    let mut dec_bytes = 0u64;
    let start = Instant::now();
    loop {
        let mut cursor = &wire[..];
        while !cursor.is_empty() {
            out.clear();
            let (_, consumed) = crate::frame::decode_block(cursor, &mut out)
                .expect("calibration wire image must decode");
            dec_bytes += out.len() as u64;
            cursor = &cursor[consumed..];
        }
        if start.elapsed().as_secs_f64() >= min_duration_secs {
            break;
        }
    }
    let dec_secs = start.elapsed().as_secs_f64();
    let decompress_mbps = dec_bytes as f64 / 1e6 / dec_secs.max(1e-9);

    CodecProfile { codec: codec_id, compress_mbps, decompress_mbps, ratio }
}

/// Measures every paper level over `sample`. Returns profiles indexed by
/// compression level (0 = NO ... 3 = HEAVY).
pub fn measure_all(sample: &[u8], min_duration_secs: f64) -> Vec<CodecProfile> {
    CodecId::ALL
        .iter()
        .map(|&id| measure(id, sample, min_duration_secs))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        b"calibration sample text with repetition repetition repetition. ".repeat(512)
    }

    #[test]
    fn measure_produces_sane_numbers() {
        let p = measure(CodecId::QlzLight, &sample(), 0.0);
        assert!(p.compress_mbps > 0.0);
        assert!(p.decompress_mbps > 0.0);
        assert!(p.ratio > 0.0 && p.ratio < 1.0, "ratio {}", p.ratio);
    }

    #[test]
    fn ratio_ordering_matches_levels_on_text() {
        let s = sample();
        let profiles = measure_all(&s, 0.0);
        // NO ratio ≈ 1, LIGHT < NO, HEAVY best.
        assert!(profiles[0].ratio >= 1.0);
        assert!(profiles[1].ratio < 1.0);
        assert!(profiles[3].ratio <= profiles[1].ratio + 0.02);
    }

    #[test]
    fn raw_profile_has_header_overhead_only() {
        let p = CodecProfile::raw(3000.0);
        assert!(p.ratio > 1.0 && p.ratio < 1.001);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        measure(CodecId::Raw, &[], 0.0);
    }
}
