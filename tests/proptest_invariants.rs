//! Property-based tests over the core invariants: codecs are lossless on
//! arbitrary inputs, frames reject corruption or stay lossless, the
//! controller never leaves its level range, and sources conserve bytes.

use adcomp::codecs::frame::{decode_block, encode_block};
use adcomp::codecs::{codec_for, CodecId};
use adcomp::core::controller::{ControllerConfig, RateController};
use adcomp::core::model::{EpochObservation, QueueBasedModel, ThresholdSamplingModel, DecisionModel};
use adcomp::corpus::{ByteSource, CyclicSource, SwitchingSource};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qlz_light_roundtrips_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let codec = codec_for(CodecId::QlzLight);
        let mut wire = Vec::new();
        codec.compress(&data, &mut wire);
        let mut out = Vec::new();
        codec.decompress(&wire, data.len(), &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn qlz_medium_roundtrips_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let codec = codec_for(CodecId::QlzMedium);
        let mut wire = Vec::new();
        codec.compress(&data, &mut wire);
        let mut out = Vec::new();
        codec.decompress(&wire, data.len(), &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn heavy_roundtrips_any_bytes(data in proptest::collection::vec(any::<u8>(), 0..8_000)) {
        let codec = codec_for(CodecId::Heavy);
        let mut wire = Vec::new();
        codec.compress(&data, &mut wire);
        let mut out = Vec::new();
        codec.decompress(&wire, data.len(), &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    #[test]
    fn structured_bytes_roundtrip_all_codecs(
        pattern in proptest::collection::vec(any::<u8>(), 1..64),
        repeats in 1usize..200,
        noise in proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 0..32),
    ) {
        // Repetitive data with injected noise — the adversarial middle
        // ground between random and constant.
        let mut data: Vec<u8> = pattern.iter().cycle().take(pattern.len() * repeats).cloned().collect();
        for (idx, b) in noise {
            let n = data.len();
            data[idx.index(n)] = b;
        }
        for id in CodecId::ALL {
            let codec = codec_for(id);
            let mut wire = Vec::new();
            codec.compress(&data, &mut wire);
            let mut out = Vec::new();
            codec.decompress(&wire, data.len(), &mut out).unwrap();
            prop_assert_eq!(&out, &data, "codec {}", id);
        }
    }

    #[test]
    fn frame_roundtrips_or_detects_corruption(
        data in proptest::collection::vec(any::<u8>(), 0..4_000),
        corrupt_at in any::<prop::sample::Index>(),
        corrupt_mask in 1u8..=255,
    ) {
        let mut wire = Vec::new();
        encode_block(codec_for(CodecId::QlzLight), &data, &mut wire);
        // Clean decode must be lossless.
        let mut out = Vec::new();
        let (_, consumed) = decode_block(&wire, &mut out).unwrap();
        prop_assert_eq!(consumed, wire.len());
        prop_assert_eq!(&out, &data);
        // A corrupted byte must never produce a *different* successful
        // payload (either an error, or — for header-only bit flips that
        // cancel out — the identical payload).
        let mut bad = wire.clone();
        let i = corrupt_at.index(bad.len());
        bad[i] ^= corrupt_mask;
        let mut out2 = Vec::new();
        if let Ok((_, n)) = decode_block(&bad, &mut out2) {
            prop_assert_eq!(n, bad.len());
            prop_assert_eq!(&out2, &data, "corruption at byte {} passed with different payload", i);
        }
    }

    #[test]
    fn controller_level_always_in_range(
        rates in proptest::collection::vec(0.0f64..1e9, 1..300),
        levels in 1usize..8,
    ) {
        let mut ctl = RateController::new(ControllerConfig {
            alpha: 0.2,
            num_levels: levels,
            max_backoff_exp: 16,
        });
        for r in rates {
            let d = ctl.observe(r);
            prop_assert!(d.level < levels, "level {} out of range {}", d.level, levels);
        }
    }

    #[test]
    fn controller_is_deterministic(
        rates in proptest::collection::vec(0.0f64..1e9, 1..100),
    ) {
        let mut a = RateController::paper_default();
        let mut b = RateController::paper_default();
        for r in &rates {
            prop_assert_eq!(a.observe(*r).level, b.observe(*r).level);
        }
    }

    #[test]
    fn baseline_models_stay_in_range(
        rates in proptest::collection::vec(0.0f64..1e9, 1..100),
        depths in proptest::collection::vec(0usize..16, 1..100),
    ) {
        let mut q = QueueBasedModel::new(4);
        let mut s = ThresholdSamplingModel::new(4, 7);
        for (r, d) in rates.iter().zip(depths.iter().cycle()) {
            let mut obs = EpochObservation::rate_only(*r, 2.0);
            obs.queue_depth = *d;
            obs.queue_capacity = 16;
            prop_assert!(q.decide(&obs) < 4);
            prop_assert!(s.decide(&obs) < 4);
        }
    }

    #[test]
    fn cyclic_source_conserves_content(
        file in proptest::collection::vec(any::<u8>(), 1..500),
        reads in proptest::collection::vec(1usize..100, 1..20),
    ) {
        let mut src = CyclicSource::new(file.clone());
        let mut produced = Vec::new();
        for n in reads {
            let mut buf = vec![0u8; n];
            src.fill(&mut buf);
            produced.extend(buf);
        }
        // The produced stream must equal the file repeated.
        let expect: Vec<u8> =
            file.iter().cycle().take(produced.len()).cloned().collect();
        prop_assert_eq!(produced, expect);
    }

    #[test]
    fn switching_source_produces_exact_periods(
        period in 1u64..64,
        reads in proptest::collection::vec(1usize..40, 1..12),
    ) {
        let a = CyclicSource::new(vec![0xAA]);
        let b = CyclicSource::new(vec![0xBB]);
        let mut s = SwitchingSource::new(vec![Box::new(a), Box::new(b)], period);
        let mut produced = Vec::new();
        for n in reads {
            let mut buf = vec![0u8; n];
            s.fill(&mut buf);
            produced.extend(buf);
        }
        for (i, &byte) in produced.iter().enumerate() {
            let phase = (i as u64 / period) % 2;
            let expect = if phase == 0 { 0xAA } else { 0xBB };
            prop_assert_eq!(byte, expect, "byte {} of period {}", i, period);
        }
    }
}
