//! Criterion micro-benchmarks: compression and decompression throughput of
//! every codec on every corpus class — the raw speed/ratio trade-off the
//! adaptive scheme navigates.
//!
//! Two compression variants are measured:
//!
//! * `compress` — the fresh-allocation convenience path (`Codec::compress`),
//!   which builds new hash tables per call; and
//! * `compress_scratch` — the steady-state hot path
//!   (`Codec::compress_with` + reused [`Scratch`]), which is what the
//!   adaptive writer actually runs per block: zero heap allocation.
//!
//! Set `ADCOMP_BENCH_JSON=BENCH_codecs.json` to append machine-readable
//! results (see the baseline file at the repo root).

use adcomp_codecs::{codec_for, CodecId, Scratch};
use adcomp_corpus::{generate, Class};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const SAMPLE_LEN: usize = 512 * 1024;

fn bench_compress(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(SAMPLE_LEN as u64));
    for class in Class::ALL {
        let data = generate(class, SAMPLE_LEN, 42);
        for id in CodecId::ALL {
            if id == CodecId::Raw {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(id.level_name(), class.name()),
                &data,
                |b, data| {
                    let codec = codec_for(id);
                    let mut out = Vec::with_capacity(SAMPLE_LEN * 2);
                    b.iter(|| {
                        out.clear();
                        codec.compress(data, &mut out);
                        out.len()
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_compress_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress_scratch");
    group.throughput(Throughput::Bytes(SAMPLE_LEN as u64));
    for class in Class::ALL {
        let data = generate(class, SAMPLE_LEN, 42);
        for id in CodecId::ALL {
            if id == CodecId::Raw {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(id.level_name(), class.name()),
                &data,
                |b, data| {
                    let codec = codec_for(id);
                    let mut scratch = Scratch::new();
                    let mut out = Vec::with_capacity(SAMPLE_LEN * 2);
                    b.iter(|| {
                        out.clear();
                        codec.compress_with(&mut scratch, data, &mut out);
                        out.len()
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes(SAMPLE_LEN as u64));
    for class in Class::ALL {
        let data = generate(class, SAMPLE_LEN, 42);
        for id in CodecId::ALL {
            if id == CodecId::Raw {
                continue;
            }
            let codec = codec_for(id);
            let mut wire = Vec::new();
            codec.compress(&data, &mut wire);
            group.bench_with_input(
                BenchmarkId::new(id.level_name(), class.name()),
                &wire,
                |b, wire| {
                    let mut out = Vec::with_capacity(SAMPLE_LEN);
                    b.iter(|| {
                        out.clear();
                        codec.decompress(wire, SAMPLE_LEN, &mut out).unwrap();
                        out.len()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_compress, bench_compress_scratch, bench_decompress
}
criterion_main!(benches);
