//! Multi-flow fluid simulation: several *foreground* senders — each with
//! its own decision model — share one link.
//!
//! The paper's Table II keeps the co-located traffic dumb (greedy TCP
//! blasts) and adapts only one flow. The obvious next question, which the
//! paper leaves open, is what happens when *every* co-located VM deploys
//! adaptive compression: do the controllers fight, and does the aggregate
//! goodput still improve? This module answers it with a fluid
//! (time-quantized processor-sharing) model:
//!
//! * each flow runs the same three-stage pipeline as
//!   [`crate::pipeline`] — sender CPU (compression + TCP cost), shared
//!   wire, receiver CPU — with bounded queues and backpressure;
//! * the link serves all flows with queued wire bytes at an equal share of
//!   the (fluctuating) capacity, i.e. ideal TCP fairness;
//! * every flow's controller sees only its own application data rate, at
//!   its own epoch boundaries — exactly the deployment model of the paper.

use crate::fluctuation::Fluctuation;
use crate::platform::Platform;
use crate::speed::SpeedModel;
use adcomp_core::epoch::{EpochContext, EpochDriver};
use adcomp_core::model::DecisionModel;
use adcomp_corpus::Class;
use adcomp_trace::{SimEvent, TraceHandle, TraceSink as _};

/// One sender in the shared-link scenario.
pub struct FlowSpec {
    /// Human-readable flow name for reports.
    pub name: String,
    /// Compressibility class of this flow's data.
    pub class: Class,
    /// Decision model driving this flow's compression level.
    pub model: Box<dyn DecisionModel>,
    /// Application bytes this flow wants to move.
    pub total_bytes: u64,
}

/// Scenario parameters.
pub struct MultiFlowConfig {
    pub platform: Platform,
    /// Decision epoch per flow (paper: 2 s).
    pub epoch_secs: f64,
    /// Sender-side wire queue bound per flow, bytes.
    pub send_queue_bytes: u64,
    /// Fluid time quantum, seconds. Small enough to resolve epochs.
    pub quantum_secs: f64,
    /// Disable bandwidth fluctuation for deterministic tests.
    pub deterministic: bool,
    pub seed: u64,
}

impl Default for MultiFlowConfig {
    fn default() -> Self {
        MultiFlowConfig {
            platform: Platform::KvmPara,
            epoch_secs: 2.0,
            send_queue_bytes: 2 * 1024 * 1024,
            quantum_secs: 0.005,
            deterministic: false,
            seed: 1,
        }
    }
}

/// Per-flow result.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    pub name: String,
    /// When this flow's last byte left the wire (virtual seconds).
    pub completion_secs: f64,
    pub app_bytes: u64,
    pub wire_bytes: u64,
    /// Mean application goodput, bytes/second, over this flow's lifetime.
    pub mean_app_rate: f64,
    /// Fraction of app bytes sent at each level.
    pub level_share: Vec<f64>,
    pub epochs: u64,
}

/// Aggregate result.
#[derive(Debug, Clone)]
pub struct MultiFlowOutcome {
    pub flows: Vec<FlowOutcome>,
    /// Time until the last flow finished.
    pub makespan_secs: f64,
}

impl MultiFlowOutcome {
    /// Aggregate application goodput while any flow was active.
    pub fn aggregate_goodput(&self) -> f64 {
        let total: u64 = self.flows.iter().map(|f| f.app_bytes).sum();
        total as f64 / self.makespan_secs
    }

    /// Jain's fairness index over per-flow mean application rates.
    pub fn jain_fairness(&self) -> f64 {
        let rates: Vec<f64> = self.flows.iter().map(|f| f.mean_app_rate).collect();
        let sum: f64 = rates.iter().sum();
        let sq_sum: f64 = rates.iter().map(|r| r * r).sum();
        if sq_sum == 0.0 {
            return 1.0;
        }
        sum * sum / (rates.len() as f64 * sq_sum)
    }
}

struct FlowState {
    name: String,
    class: Class,
    total_bytes: u64,
    driver: EpochDriver,
    /// App bytes handed to the compressor so far.
    produced: u64,
    /// App bytes accumulated since the last epoch record.
    epoch_pending: u64,
    /// Wire bytes queued for the link.
    queue_bytes: f64,
    /// Wire bytes ever enqueued.
    wire_bytes: f64,
    /// Virtual time when the last wire byte drained.
    done_at: Option<f64>,
    /// App bytes accounted per level.
    level_app_bytes: Vec<u64>,
}

/// Runs the scenario to completion.
pub fn run_multiflow(
    cfg: &MultiFlowConfig,
    speed: &SpeedModel,
    flows: Vec<FlowSpec>,
) -> MultiFlowOutcome {
    run_multiflow_traced(cfg, speed, flows, TraceHandle::disabled())
}

/// [`run_multiflow`] with a trace sink: emits `flow_join` / `flow_leave`
/// lifecycle events per flow and a periodic `link_arbitration` sample
/// (active-flow count + per-flow share) so the arbitration behaviour that
/// used to be invisible is reconstructible from the trace. All timestamps
/// are virtual time.
pub fn run_multiflow_traced(
    cfg: &MultiFlowConfig,
    speed: &SpeedModel,
    flows: Vec<FlowSpec>,
    trace: TraceHandle,
) -> MultiFlowOutcome {
    assert!(!flows.is_empty());
    assert!(
        cfg.quantum_secs > 0.0 && cfg.quantum_secs <= cfg.epoch_secs / 4.0,
        "quantum must resolve epochs"
    );
    let mut fluct: Box<dyn Fluctuation> = if cfg.deterministic {
        Platform::no_fluctuation()
    } else {
        cfg.platform.net_fluctuation(cfg.seed)
    };
    let base_bw = cfg.platform.net_bandwidth_bps();
    let n = flows.len();
    // Co-location CPU pressure: each extra VM's I/O backend costs cycles
    // on every guest (same constant as the single-flow pipeline).
    let cpu_factor = (1.0 - 0.10 * (n - 1) as f64).max(0.5);

    let mut states: Vec<FlowState> = flows
        .into_iter()
        .map(|spec| {
            let levels = spec.model.num_levels();
            assert_eq!(levels, speed.num_levels());
            FlowState {
                name: spec.name,
                class: spec.class,
                total_bytes: spec.total_bytes,
                driver: EpochDriver::new(spec.model, cfg.epoch_secs, 0.0),
                produced: 0,
                epoch_pending: 0,
                queue_bytes: 0.0,
                wire_bytes: 0.0,
                done_at: None,
                level_app_bytes: vec![0; levels],
            }
        })
        .collect();

    if trace.enabled() {
        for (i, s) in states.iter().enumerate() {
            trace.emit(
                &SimEvent {
                    epoch: 0,
                    t: 0.0,
                    kind: "flow_join",
                    flow: i as u32,
                    value: s.total_bytes as f64,
                    aux: 0.0,
                }
                .into(),
            );
        }
    }

    let dt = cfg.quantum_secs;
    let mut t = 0.0f64;
    let mut next_arb_emit = 0.0f64;
    let hard_stop = 1e7; // virtual-seconds safety net
    loop {
        let all_done = states
            .iter()
            .all(|s| s.produced >= s.total_bytes && s.queue_bytes <= 0.0);
        if all_done || t > hard_stop {
            break;
        }

        // --- Sender CPU stage: produce compressed bytes into the queue.
        for s in states.iter_mut() {
            if s.produced >= s.total_bytes {
                continue;
            }
            let level = s.driver.level();
            let prof = speed.profile(s.class, level);
            // CPU seconds per app byte: compression + TCP cost of the
            // resulting wire bytes, scaled by co-location pressure.
            let per_byte =
                (1.0 / prof.compress_bps + prof.ratio / speed.tcp_proc_bps) / cpu_factor;
            let cpu_capacity_bytes = dt / per_byte;
            let queue_room =
                ((cfg.send_queue_bytes as f64 - s.queue_bytes) / prof.ratio).max(0.0);
            let remaining = (s.total_bytes - s.produced) as f64;
            let app_bytes = cpu_capacity_bytes.min(queue_room).min(remaining);
            if app_bytes > 0.0 {
                let app_u = app_bytes as u64;
                s.produced += app_u;
                s.epoch_pending += app_u;
                s.level_app_bytes[level] += app_u;
                let wire = app_bytes * prof.ratio;
                s.queue_bytes += wire;
                s.wire_bytes += wire;
            }
        }

        // --- Shared wire: equal share among flows with queued bytes.
        let active: usize = states.iter().filter(|s| s.queue_bytes > 0.0).count();
        if active > 0 {
            let share = base_bw * fluct.factor_at(t) / active as f64;
            if trace.enabled() && t >= next_arb_emit {
                // Sampled once per epoch interval so trace volume tracks
                // epochs, not fluid quanta.
                trace.emit(
                    &SimEvent {
                        epoch: (t / cfg.epoch_secs) as u64,
                        t,
                        kind: "link_arbitration",
                        flow: SimEvent::NO_FLOW,
                        value: share,
                        aux: active as f64,
                    }
                    .into(),
                );
                next_arb_emit = t + cfg.epoch_secs;
            }
            for (i, s) in states.iter_mut().enumerate() {
                if s.queue_bytes > 0.0 {
                    let drained = (share * dt).min(s.queue_bytes);
                    s.queue_bytes -= drained;
                    if s.queue_bytes <= 1e-6 && s.produced >= s.total_bytes {
                        s.queue_bytes = 0.0;
                        let leave_t = *s.done_at.get_or_insert(t + dt);
                        if trace.enabled() {
                            trace.emit(
                                &SimEvent {
                                    epoch: (leave_t / cfg.epoch_secs) as u64,
                                    t: leave_t,
                                    kind: "flow_leave",
                                    flow: i as u32,
                                    value: s.produced as f64,
                                    aux: s.wire_bytes,
                                }
                                .into(),
                            );
                        }
                    }
                }
            }
        }

        t += dt;

        // --- Epoch boundaries: each flow's controller sees only its own
        // application data rate.
        for s in states.iter_mut() {
            if s.done_at.is_some() {
                continue;
            }
            let pending = std::mem::take(&mut s.epoch_pending);
            s.driver.record(pending, t, &EpochContext::default());
        }
    }

    let makespan = states
        .iter()
        .map(|s| s.done_at.unwrap_or(t))
        .fold(0.0f64, f64::max)
        .max(dt);
    let flows = states
        .into_iter()
        .map(|s| {
            let completion = s.done_at.unwrap_or(t);
            let total: u64 = s.level_app_bytes.iter().sum();
            FlowOutcome {
                name: s.name,
                completion_secs: completion,
                app_bytes: s.produced,
                wire_bytes: s.wire_bytes as u64,
                mean_app_rate: s.produced as f64 / completion.max(1e-9),
                level_share: s
                    .level_app_bytes
                    .iter()
                    .map(|&b| b as f64 / total.max(1) as f64)
                    .collect(),
                epochs: s.driver.epochs(),
            }
        })
        .collect();
    MultiFlowOutcome { flows, makespan_secs: makespan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_core::model::{RateBasedModel, StaticModel};

    fn spec(name: &str, class: Class, level: Option<usize>, gb: u64) -> FlowSpec {
        FlowSpec {
            name: name.to_string(),
            class,
            model: match level {
                Some(l) => Box::new(StaticModel::new(l, 4)),
                None => Box::new(RateBasedModel::paper_default()),
            },
            total_bytes: gb * 1_000_000_000,
        }
    }

    fn det_cfg() -> MultiFlowConfig {
        MultiFlowConfig { deterministic: true, ..Default::default() }
    }

    #[test]
    fn single_flow_matches_wire_bound_rate() {
        let speed = SpeedModel::paper_fit();
        let out = run_multiflow(&det_cfg(), &speed, vec![spec("a", Class::High, Some(0), 1)]);
        let rate = out.flows[0].mean_app_rate / 1e6;
        // Solo uncompressed ≈ the platform's ~100 MB/s wire rate.
        assert!((88.0..105.0).contains(&rate), "rate {rate}");
        assert_eq!(out.flows[0].app_bytes, 1_000_000_000);
    }

    #[test]
    fn two_equal_flows_share_fairly() {
        let speed = SpeedModel::paper_fit();
        let out = run_multiflow(
            &det_cfg(),
            &speed,
            vec![spec("a", Class::Low, Some(0), 1), spec("b", Class::Low, Some(0), 1)],
        );
        assert!(out.jain_fairness() > 0.99, "fairness {}", out.jain_fairness());
        let r0 = out.flows[0].mean_app_rate;
        let r1 = out.flows[1].mean_app_rate;
        assert!((r0 / r1 - 1.0).abs() < 0.02);
        // Each gets roughly half the wire.
        assert!((40.0..60.0).contains(&(r0 / 1e6)), "rate {}", r0 / 1e6);
    }

    #[test]
    fn compressing_flow_frees_wire_for_the_other() {
        let speed = SpeedModel::paper_fit();
        // Both uncompressed baseline.
        let base = run_multiflow(
            &det_cfg(),
            &speed,
            vec![spec("a", Class::High, Some(0), 1), spec("b", Class::Low, Some(0), 1)],
        );
        // Flow a compresses (LIGHT): its wire demand drops ~10×, so flow b
        // should finish markedly faster too.
        let adaptive = run_multiflow(
            &det_cfg(),
            &speed,
            vec![spec("a", Class::High, Some(1), 1), spec("b", Class::Low, Some(0), 1)],
        );
        let b_base = base.flows[1].completion_secs;
        let b_light = adaptive.flows[1].completion_secs;
        assert!(
            b_light < b_base * 0.75,
            "b should benefit from a's compression: {b_light} vs {b_base}"
        );
    }

    #[test]
    fn all_adaptive_beats_all_uncompressed_in_aggregate() {
        let speed = SpeedModel::paper_fit();
        let classes = [Class::High, Class::Moderate, Class::High];
        let none = run_multiflow(
            &det_cfg(),
            &speed,
            classes
                .iter()
                .enumerate()
                .map(|(i, &c)| spec(&format!("f{i}"), c, Some(0), 1))
                .collect(),
        );
        let all = run_multiflow(
            &det_cfg(),
            &speed,
            classes
                .iter()
                .enumerate()
                .map(|(i, &c)| spec(&format!("f{i}"), c, None, 1))
                .collect(),
        );
        assert!(
            all.aggregate_goodput() > none.aggregate_goodput() * 1.5,
            "all-adaptive {} vs all-NO {}",
            all.aggregate_goodput() / 1e6,
            none.aggregate_goodput() / 1e6
        );
    }

    #[test]
    fn adaptive_controllers_do_not_starve_each_other() {
        let speed = SpeedModel::paper_fit();
        let out = run_multiflow(
            &det_cfg(),
            &speed,
            vec![
                spec("a", Class::High, None, 1),
                spec("b", Class::High, None, 1),
                spec("c", Class::High, None, 1),
            ],
        );
        assert!(out.jain_fairness() > 0.9, "fairness {}", out.jain_fairness());
        // Every adaptive flow should carry most bytes at LIGHT.
        for f in &out.flows {
            assert!(
                f.level_share[1] > 0.5,
                "{} level share {:?}",
                f.name,
                f.level_share
            );
        }
    }

    #[test]
    fn mismatched_volumes_finish_in_order() {
        let speed = SpeedModel::paper_fit();
        let out = run_multiflow(
            &det_cfg(),
            &speed,
            vec![spec("small", Class::Low, Some(0), 1), spec("big", Class::Low, Some(0), 3)],
        );
        assert!(out.flows[0].completion_secs < out.flows[1].completion_secs);
        assert!((out.makespan_secs - out.flows[1].completion_secs).abs() < 1.0);
    }

    #[test]
    fn traced_multiflow_emits_lifecycle_and_arbitration_events() {
        use adcomp_trace::{MemorySink, TraceEvent};
        use std::sync::Arc;

        let speed = SpeedModel::paper_fit();
        let sink = Arc::new(MemorySink::new());
        let out = run_multiflow_traced(
            &det_cfg(),
            &speed,
            vec![spec("a", Class::High, Some(1), 1), spec("b", Class::Low, Some(0), 1)],
            TraceHandle::new(sink.clone()),
        );
        let events = sink.snapshot();
        let kinds: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Sim(s) => Some(s.kind),
                _ => None,
            })
            .collect();
        assert_eq!(kinds.iter().filter(|k| **k == "flow_join").count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == "flow_leave").count(), 2);
        assert!(kinds.contains(&"link_arbitration"));
        // The trace is consistent with the outcome: last leave ≈ makespan.
        let last_leave = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Sim(s) if s.kind == "flow_leave" => Some(s.t),
                _ => None,
            })
            .fold(0.0f64, f64::max);
        assert!((last_leave - out.makespan_secs).abs() < 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let speed = SpeedModel::paper_fit();
        let mk = || {
            run_multiflow(
                &MultiFlowConfig { seed: 7, ..Default::default() },
                &speed,
                vec![spec("a", Class::Moderate, None, 1), spec("b", Class::High, Some(0), 1)],
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.flows[0].completion_secs, b.flows[0].completion_secs);
        assert_eq!(a.flows[1].wire_bytes, b.flows[1].wire_bytes);
    }
}
