//! Structural statistics of byte streams: run lengths, byte histograms and
//! repetition measures. Used to validate that the synthetic corpus classes
//! have the structure their Canterbury counterparts are known for, and by
//! the `adcomp probe` CLI to characterize arbitrary inputs.

/// Byte-level structural summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ByteStats {
    pub len: usize,
    /// Number of distinct byte values present.
    pub distinct: usize,
    /// Most common byte and its frequency share.
    pub mode: (u8, f64),
    /// Mean run length (consecutive equal bytes).
    pub mean_run: f64,
    /// Longest run.
    pub max_run: usize,
}

/// Computes [`ByteStats`] in one pass.
pub fn byte_stats(data: &[u8]) -> ByteStats {
    if data.is_empty() {
        return ByteStats { len: 0, distinct: 0, mode: (0, 0.0), mean_run: 0.0, max_run: 0 };
    }
    let mut counts = [0u64; 256];
    let mut runs = 0u64;
    let mut max_run = 1usize;
    let mut cur_run = 1usize;
    counts[data[0] as usize] += 1;
    for w in data.windows(2) {
        counts[w[1] as usize] += 1;
        if w[1] == w[0] {
            cur_run += 1;
            max_run = max_run.max(cur_run);
        } else {
            runs += 1;
            cur_run = 1;
        }
    }
    runs += 1;
    let distinct = counts.iter().filter(|&&c| c > 0).count();
    let (mode_byte, mode_count) =
        counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(b, &c)| (b as u8, c)).unwrap();
    ByteStats {
        len: data.len(),
        distinct,
        mode: (mode_byte, mode_count as f64 / data.len() as f64),
        mean_run: data.len() as f64 / runs as f64,
        max_run,
    }
}

/// Fraction of positions whose 4-byte window *verifiably* re-occurred
/// within the last `window` bytes — a cheap proxy for LZ match density.
pub fn repetition_score(data: &[u8], window: usize) -> f64 {
    if data.len() < 8 {
        return 0.0;
    }
    let mut last_seen = vec![usize::MAX; 1 << 16];
    let mut hits = 0usize;
    let mut total = 0usize;
    for i in 0..data.len() - 4 {
        let h = {
            let x = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
            (x.wrapping_mul(2654435761) >> 16) as usize
        };
        let prev = last_seen[h];
        // Hash buckets collide; count only byte-verified recurrences.
        if prev != usize::MAX && i - prev <= window && data[prev..prev + 4] == data[i..i + 4] {
            hits += 1;
        }
        last_seen[h] = i;
        total += 1;
    }
    hits as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, Class};

    #[test]
    fn empty_input_is_safe() {
        let s = byte_stats(&[]);
        assert_eq!(s.len, 0);
        assert_eq!(repetition_score(&[], 64), 0.0);
    }

    #[test]
    fn constant_run_statistics() {
        let s = byte_stats(&[7u8; 100]);
        assert_eq!(s.distinct, 1);
        assert_eq!(s.mode, (7, 1.0));
        assert_eq!(s.max_run, 100);
        assert_eq!(s.mean_run, 100.0);
    }

    #[test]
    fn alternating_bytes_have_unit_runs() {
        let data: Vec<u8> = (0..100).map(|i| (i % 2) as u8).collect();
        let s = byte_stats(&data);
        assert_eq!(s.max_run, 1);
        assert_eq!(s.mean_run, 1.0);
        assert_eq!(s.distinct, 2);
    }

    #[test]
    fn fax_class_has_long_runs_and_high_repetition() {
        let data = generate(Class::High, 200_000, 1);
        let s = byte_stats(&data);
        assert!(s.mean_run > 8.0, "mean run {}", s.mean_run);
        assert_eq!(s.mode.0, 0, "white pixels dominate");
        assert!(repetition_score(&data, 65536) > 0.8);
    }

    #[test]
    fn jpeg_class_has_short_runs_and_low_repetition() {
        let data = generate(Class::Low, 200_000, 1);
        let s = byte_stats(&data);
        assert!(s.mean_run < 1.3, "mean run {}", s.mean_run);
        assert!(s.distinct > 250, "distinct {}", s.distinct);
        assert!(repetition_score(&data, 65536) < 0.25);
    }

    #[test]
    fn text_class_sits_between() {
        let text = repetition_score(&generate(Class::Moderate, 200_000, 1), 65536);
        let fax = repetition_score(&generate(Class::High, 200_000, 1), 65536);
        let jpeg = repetition_score(&generate(Class::Low, 200_000, 1), 65536);
        assert!(jpeg < text && text < fax, "jpeg {jpeg} text {text} fax {fax}");
    }
}
