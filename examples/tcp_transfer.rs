//! Real-TCP demonstration of the paper's headline effect: on a
//! bandwidth-starved link, adaptive compression recovers throughput —
//! without being told the bandwidth, the CPU load, or the data's
//! compressibility.
//!
//! A sender streams synthetic data over a loopback TCP connection whose
//! outbound side is token-bucket throttled (emulating the contended share
//! of a virtualized 1 GbE). We compare the four static levels against the
//! rate-based DYNAMIC scheme under wall-clock time.
//!
//! Run with: `cargo run --release --example tcp_transfer [-- <MB> <MB/s>]`
//!
//! Pass `--metrics ADDR` (e.g. `--metrics 127.0.0.1:9184`) to install the
//! live wall-clock metrics registry and serve it at `http://ADDR/metrics`
//! in Prometheus text format for the duration of the run — scrape it with
//! `adcomp top --url ADDR` while the transfers execute. `--hold SECS`
//! keeps the endpoint up that long after the last transfer so one-shot
//! scrapes (CI smoke tests) don't race the exit.

use adcomp::core::ThrottledWriter;
use adcomp::metrics::registry::{self, RegistryMode};
use adcomp::prelude::*;
use adcomp::trace::{render_registry, MetricsServer};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn run_one(
    label: &str,
    model: Box<dyn adcomp::core::DecisionModel>,
    class: Class,
    total_bytes: u64,
    link_bps: f64,
) -> (f64, StreamStats) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();

    // Receiver: decompress and count, as fast as possible.
    let receiver = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = AdaptiveReader::new(stream);
        let mut sink = vec![0u8; 256 * 1024];
        let mut total = 0u64;
        loop {
            let n = reader.read(&mut sink).unwrap();
            if n == 0 {
                break;
            }
            total += n as u64;
        }
        total
    });

    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let throttled = ThrottledWriter::new(stream, link_bps);
    let mut writer = AdaptiveWriter::with_params(
        throttled,
        LevelSet::paper_default(),
        model,
        128 * 1024,
        0.1, // short epochs so the demo adapts within seconds
        Box::new(adcomp::core::WallClock::new()),
    );

    let mut source = SourceReader::new(
        CyclicSource::of_class(class, adcomp::corpus::DEFAULT_FILE_LEN, 42),
        total_bytes,
    );
    let start = Instant::now();
    std::io::copy(&mut source, &mut writer).unwrap();
    let (mut inner, stats) = writer.finish().unwrap();
    inner.flush().unwrap();
    drop(inner);
    let received = receiver.join().unwrap();
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(received, total_bytes, "{label}: receiver byte count");
    (secs, stats)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics_addr = None;
    let mut hold_secs = 0.0f64;
    // Strip the flag arguments, leaving the positional MB / MB/s pair.
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics" => {
                metrics_addr = Some(args.remove(i + 1));
                args.remove(i);
            }
            "--hold" => {
                hold_secs = args.remove(i + 1).parse().expect("--hold takes seconds");
                args.remove(i);
            }
            _ => i += 1,
        }
    }
    let total_mb: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(96);
    let link_mbps: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12.0);
    let total_bytes = total_mb * 1_000_000;
    let link_bps = link_mbps * 1e6;

    let _server = metrics_addr.map(|addr| {
        let reg = registry::install(RegistryMode::Wall);
        let server = MetricsServer::start(&addr, move || render_registry(&reg.snapshot()))
            .expect("bind metrics endpoint");
        println!("serving metrics at http://{}/metrics\n", server.local_addr());
        server
    });

    println!(
        "TCP transfer of {total_mb} MB of HIGH-compressibility data over a \
         {link_mbps:.0} MB/s throttled loopback link\n"
    );
    println!(
        "{:<8} {:>9} {:>11} {:>9}  level mix",
        "scheme", "time [s]", "app [MB/s]", "ratio"
    );

    let mut results = Vec::new();
    for level in 0..4usize {
        let (secs, stats) = run_one(
            &format!("static-{level}"),
            Box::new(StaticModel::new(level, 4)),
            Class::High,
            total_bytes,
            link_bps,
        );
        results.push((["NO", "LIGHT", "MEDIUM", "HEAVY"][level].to_string(), secs, stats));
    }
    let (secs, stats) = run_one(
        "dynamic",
        Box::new(RateBasedModel::paper_default()),
        Class::High,
        total_bytes,
        link_bps,
    );
    results.push(("DYNAMIC".to_string(), secs, stats));

    let names = ["NO", "LIGHT", "MEDIUM", "HEAVY"];
    let mut best_static = f64::INFINITY;
    for (name, secs, stats) in &results {
        let mix: Vec<String> = stats
            .blocks_per_level
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(l, c)| format!("{}×{}", names[l], c))
            .collect();
        println!(
            "{:<8} {:>9.2} {:>11.1} {:>9.3}  {}",
            name,
            secs,
            total_bytes as f64 / secs / 1e6,
            stats.wire_ratio(),
            mix.join(", ")
        );
        if name != "DYNAMIC" {
            best_static = best_static.min(*secs);
        }
    }
    let dynamic_secs = results.last().unwrap().1;
    println!(
        "\nDYNAMIC is {:+.0}% of the best static level (paper bound: at most +22%).",
        (dynamic_secs / best_static - 1.0) * 100.0
    );
    if hold_secs > 0.0 && _server.is_some() {
        println!("holding the metrics endpoint for {hold_secs:.0} s...");
        std::thread::sleep(Duration::from_secs_f64(hold_secs));
    }
}
