//! The Table II grid (completion time per scheme × class × contention),
//! factored out of the `table2_completion` binary so the determinism
//! regression tests can recompute the identical grid under different
//! worker counts.

use crate::runner::run_cells_on;
use crate::{make_model, schemes, to_paper_scale};
use adcomp_corpus::Class;
use adcomp_metrics::OnlineStats;
use adcomp_trace::{JsonlWriter, MemorySink, RunManifest, TraceEvent, TraceHandle};
use adcomp_vcloud::{run_transfer_traced, ConstantClass, SpeedModel, TransferConfig};
use std::io::Write;
use std::sync::Arc;

/// Number of contention settings (0..=3 concurrent TCP connections).
pub const FLOW_SETTINGS: usize = 4;

/// One aggregated grid cell: `mean (sd)` over the cell's repetitions, in
/// paper-scale (50 GB) seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tab2Cell {
    /// Concurrent background TCP connections (0..=3).
    pub flows: usize,
    /// Scheme index into [`schemes`] (NO..DYNAMIC).
    pub scheme: usize,
    /// Class index into [`Class::ALL`] (HIGH, MODERATE, LOW).
    pub class: usize,
    pub mean: f64,
    pub sd: f64,
}

/// Flat cell index → (flows, scheme, class) coordinates.
fn coords(idx: usize, nschemes: usize, nclasses: usize) -> (usize, usize, usize) {
    let per_flow = nschemes * nclasses;
    (idx / per_flow, (idx % per_flow) / nclasses, idx % nclasses)
}

/// Everything one traced grid cell produced: a manifest (seed, coordinates,
/// config) plus every structured event its repetitions emitted, in
/// deterministic virtual-time order.
#[derive(Debug, Clone)]
pub struct CellTrace {
    pub manifest: RunManifest,
    pub events: Vec<TraceEvent>,
}

/// Computes the full Table II grid on `workers` runner workers.
///
/// Each cell's transfer seeds depend only on its own coordinates
/// `(flows, class, repetition)` — deliberately *not* on the scheme, so all
/// five schemes face identical contention draws (paired comparison, as in
/// the paper) — making the grid bit-identical for any worker count.
pub fn compute_grid(total: u64, reps: usize, speed: &SpeedModel, workers: usize) -> Vec<Tab2Cell> {
    compute_grid_impl(total, reps, speed, workers, false).0
}

/// [`compute_grid`] with per-cell structured traces: every cell collects
/// its events in a private [`MemorySink`] during the parallel phase, and
/// the traces come back **in cell order**, so the serialized JSONL is
/// byte-identical for any `workers` (all events carry virtual time only).
pub fn compute_grid_traced(
    total: u64,
    reps: usize,
    speed: &SpeedModel,
    workers: usize,
) -> (Vec<Tab2Cell>, Vec<CellTrace>) {
    let (cells, traces) = compute_grid_impl(total, reps, speed, workers, true);
    (cells, traces.into_iter().map(|t| t.expect("traced cell")).collect())
}

fn compute_grid_impl(
    total: u64,
    reps: usize,
    speed: &SpeedModel,
    workers: usize,
    traced: bool,
) -> (Vec<Tab2Cell>, Vec<Option<CellTrace>>) {
    let schemes = schemes();
    let nclasses = Class::ALL.len();
    let n = FLOW_SETTINGS * schemes.len() * nclasses;
    let results = run_cells_on(workers, n, |idx| {
        let (flows, si, ci) = coords(idx, schemes.len(), nclasses);
        let (name, level) = schemes[si];
        let class = Class::ALL[ci];
        let sink = if traced { Some(Arc::new(MemorySink::new())) } else { None };
        let trace = sink
            .as_ref()
            .map_or_else(TraceHandle::disabled, |s| TraceHandle::new(s.clone()));
        let mut stats = OnlineStats::new();
        let base_seed = 1000 + flows as u64 * 31 + ci as u64;
        for rep in 0..reps {
            let cfg = TransferConfig {
                total_bytes: total,
                background_flows: flows,
                seed: 1000 + rep as u64 * 7919 + flows as u64 * 31 + ci as u64,
                ..TransferConfig::paper_default()
            };
            let out = run_transfer_traced(
                &cfg,
                speed,
                &mut ConstantClass(class),
                make_model(level),
                trace.clone(),
            );
            stats.push(to_paper_scale(out.completion_secs));
        }
        let cell = Tab2Cell { flows, scheme: si, class: ci, mean: stats.mean(), sd: stats.std_dev() };
        let trace = sink.map(|s| CellTrace {
            manifest: RunManifest::new("table2_cell", base_seed)
                .coord("flows", flows)
                .coord("scheme", name)
                .coord("class", class.name())
                .cfg("reps", reps)
                .cfg("epoch_secs", 2.0)
                .cfg("block_len", 128 * 1024)
                .volume(total),
            events: s.take(),
        });
        (cell, trace)
    });
    results.into_iter().unzip()
}

/// Serializes per-cell traces as one JSONL stream: each cell contributes a
/// `manifest` line (with event counts filled in) followed by its events.
/// Cell order is the grid's canonical cell order, so the bytes are
/// independent of worker count.
pub fn write_cell_traces<W: Write>(
    w: &mut JsonlWriter<W>,
    traces: &[CellTrace],
) -> std::io::Result<()> {
    for t in traces {
        w.write_run(&t.manifest, &t.events)?;
    }
    Ok(())
}

/// Looks up one cell of a grid produced by [`compute_grid`].
pub fn cell(grid: &[Tab2Cell], flows: usize, scheme: usize, class: usize) -> &Tab2Cell {
    let nclasses = Class::ALL.len();
    let nschemes = schemes().len();
    &grid[(flows * nschemes + scheme) * nclasses + class]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let (ns, nc) = (5, 3);
        for idx in 0..FLOW_SETTINGS * ns * nc {
            let (f, s, c) = coords(idx, ns, nc);
            assert_eq!((f * ns + s) * nc + c, idx);
            assert!(f < FLOW_SETTINGS && s < ns && c < nc);
        }
    }
}
