//! Regression gate + schema lint over the bench ledgers.
//!
//! For every bench key in a ledger that has a row pinned with
//! `"baseline": true` *and* at least one row appended after it, the gate
//! compares the latest row's throughput against the baseline and fails
//! (exit 1) when it has dropped more than the tolerance (default 10%).
//! Keys without a pinned baseline, or whose baseline is the newest row,
//! are reported but not gated — new benches can enter the ledger without
//! ceremony.
//!
//! Usage:
//!
//! ```text
//! bench_gate --lint BENCH_codecs.json BENCH_pipeline.json   # schema only
//! bench_gate --ledger BENCH_codecs.json [--tolerance 0.10]  # lint + gate
//! ```
//!
//! CI runs `--lint` on every ledger (cheap, deterministic) and the full
//! gate on ledgers whose baselines were measured on a comparable host.

use adcomp_bench::ledger::{Ledger, DEFAULT_TOLERANCE};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut lint_paths: Vec<String> = Vec::new();
    let mut gate_paths: Vec<String> = Vec::new();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut i = 0;
    let mut mode: Option<&str> = None;
    while i < args.len() {
        match args[i].as_str() {
            "--lint" => mode = Some("lint"),
            "--ledger" => mode = Some("ledger"),
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|t| (0.0..1.0).contains(t))
                    .unwrap_or_else(|| {
                        eprintln!("--tolerance requires a fraction in [0, 1)");
                        std::process::exit(2);
                    });
            }
            path if !path.starts_with("--") => match mode {
                Some("lint") => lint_paths.push(path.to_string()),
                Some("ledger") => gate_paths.push(path.to_string()),
                None => {
                    eprintln!("pass --lint or --ledger before file paths");
                    std::process::exit(2);
                }
                _ => unreachable!(),
            },
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if lint_paths.is_empty() && gate_paths.is_empty() {
        eprintln!("usage: bench_gate --lint <files...> | --ledger <files...> [--tolerance 0.10]");
        std::process::exit(2);
    }

    let mut failed = false;

    for path in lint_paths.iter().chain(gate_paths.iter()) {
        match Ledger::load(Path::new(path)).and_then(|l| l.lint().map(|()| l)) {
            Ok(l) => println!("lint OK: {path} ({} rows)", l.rows.len()),
            Err(e) => {
                eprintln!("lint FAIL: {e}");
                failed = true;
            }
        }
    }

    for path in &gate_paths {
        let Ok(ledger) = Ledger::load(Path::new(path)) else {
            // Already reported by the lint pass above.
            continue;
        };
        let checks = ledger.gate(tolerance);
        // Name every key the gate skipped and why, so a measurement that
        // fell out of the gate (say, a new row without a re-pinned
        // baseline) is a visible diagnostic rather than a silent pass.
        for (key, why) in ledger.ungated_keys() {
            println!("gate skip {key:<32} {why}");
        }
        if checks.is_empty() {
            println!("gate: {path}: no gated keys (no baseline rows with newer measurements)");
            continue;
        }
        for c in &checks {
            let verdict = if c.pass { "ok " } else { "FAIL" };
            println!(
                "gate {verdict} {:<32} latest {:>9.1} MB/s ({}) vs baseline {:>9.1} MB/s ({}) ratio {:.3}",
                c.bench, c.latest_mbps, c.latest_label, c.baseline_mbps, c.baseline_label, c.ratio
            );
            if !c.pass {
                failed = true;
            }
        }
        let bad = checks.iter().filter(|c| !c.pass).count();
        println!(
            "gate: {path}: {}/{} keys within {:.0}% of baseline",
            checks.len() - bad,
            checks.len(),
            tolerance * 100.0
        );
    }

    if failed {
        std::process::exit(1);
    }
}
