//! The mixed-codec **portfolio** wire format is frozen.
//!
//! A pinned heterogeneous corpus written with `--portfolio` semantics
//! (per-block content-aware codec selection) must be byte-identical to the
//! committed golden fixture — for *any* pipeline worker count — and the
//! golden must genuinely mix codec families (QLZ, HUFF, COLUMNAR) across
//! its frames. Regenerate with `ADCOMP_REGEN_GOLDEN=1 cargo test
//! portfolio_wire_bytes_match_pinned_golden`.
//!
//! Compatibility contract: a *pre-portfolio* reader (one whose codec-id
//! table stops at the paper ladder, ids 0..=3) must reject the new HUFF
//! and COLUMNAR ids with a typed `CodecError` — never a panic, never a
//! silent skip. The same property is exercised forward: today's reader
//! refuses ids *it* does not know the same way.

use adcomp::codecs::frame::{decode_block_limited, FrameReader, RecoveryPolicy, HEADER_LEN};
use adcomp::codecs::{CodecError, CodecId};
use adcomp::prelude::*;
use std::io::{Read, Write};

const BLOCK_LEN: usize = 4096;

/// Rotating run-heavy / text-like / noise blocks — each 4 KiB block is a
/// different content class, so portfolio selection mixes codec families
/// within one stream.
fn heterogeneous_corpus(blocks: usize) -> Vec<u8> {
    let mut data = Vec::new();
    let mut x = 0x2545_F491u32;
    for b in 0..blocks {
        match b % 3 {
            0 => data.extend(std::iter::repeat_n((b % 5) as u8, BLOCK_LEN)),
            1 => data.extend(
                b"text-like content with words and repetition, repetition. "
                    .iter()
                    .copied()
                    .cycle()
                    .take(BLOCK_LEN),
            ),
            _ => data.extend((0..BLOCK_LEN).map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })),
        }
    }
    data
}

fn portfolio_wire(data: &[u8], workers: usize) -> Vec<u8> {
    let mut w = AdaptiveWriter::with_params(
        Vec::new(),
        LevelSet::paper_default(),
        Box::new(StaticModel::new(2, 4)),
        BLOCK_LEN,
        3600.0,
        Box::new(adcomp::core::ManualClock::new()),
    );
    w.set_portfolio(true);
    if workers > 1 {
        w.set_pipeline_workers(workers);
    }
    w.write_all(data).unwrap();
    w.finish().unwrap().0
}

/// (offset, codec id byte) of every frame, by walking the fixed headers.
fn frames(wire: &[u8]) -> Vec<(usize, u8)> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos + HEADER_LEN <= wire.len() {
        assert_eq!(&wire[pos..pos + 2], &[0xAD, 0xC2], "frame magic at {pos}");
        out.push((pos, wire[pos + 2]));
        let payload = u32::from_le_bytes(wire[pos + 8..pos + 12].try_into().unwrap());
        pos += HEADER_LEN + payload as usize;
    }
    assert_eq!(pos, wire.len(), "trailing partial frame");
    out
}

#[test]
fn portfolio_wire_bytes_match_pinned_golden() {
    let data = heterogeneous_corpus(24);
    let serial = portfolio_wire(&data, 1);

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/portfolio_stream.adc");
    if std::env::var_os("ADCOMP_REGEN_GOLDEN").is_some() {
        std::fs::write(golden_path, &serial).unwrap();
    }
    let golden = std::fs::read(golden_path)
        .expect("golden missing — run once with ADCOMP_REGEN_GOLDEN=1");
    assert_eq!(serial, golden, "portfolio wire bytes drifted from the pinned golden");

    // Codec selection is a pure function of block content: the pipelined
    // writer must emit the same bytes as the serial writer at any width.
    for workers in [2usize, 4, 7] {
        assert_eq!(
            portfolio_wire(&data, workers),
            serial,
            "portfolio wire bytes depend on worker count {workers}"
        );
    }

    // The golden genuinely mixes codec families, including portfolio ones.
    let ids: std::collections::BTreeSet<u8> = frames(&golden).into_iter().map(|(_, id)| id).collect();
    assert!(ids.len() >= 3, "golden is not a mixed-codec stream: ids {ids:?}");
    assert!(
        ids.iter().any(|&id| id >= 4),
        "golden carries no portfolio codec (HUFF/COLUMNAR): ids {ids:?}"
    );

    // And it still decodes back to the exact corpus.
    let mut out = Vec::new();
    AdaptiveReader::new(&golden[..]).read_to_end(&mut out).unwrap();
    assert_eq!(out, data);
}

/// What a reader built before the portfolio existed does with the new ids:
/// its codec-id table ends at the paper ladder, so HUFF (4) and COLUMNAR
/// (5) frames must surface as a **typed** unknown-codec error — the exact
/// rejection arm `CodecId::from_u8` still has for ids beyond today's
/// registry.
#[test]
fn pre_portfolio_reader_rejects_new_codec_ids_with_typed_error() {
    let golden = std::fs::read(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/portfolio_stream.adc"
    ))
    .expect("golden missing — run once with ADCOMP_REGEN_GOLDEN=1");

    // The legacy id table, verbatim from the pre-portfolio release.
    let legacy_from_u8 = |id: u8| -> Result<CodecId, CodecError> {
        match id {
            0 => Ok(CodecId::Raw),
            1 => Ok(CodecId::QlzLight),
            2 => Ok(CodecId::QlzMedium),
            3 => Ok(CodecId::Heavy),
            other => Err(CodecError::UnknownCodec(other)),
        }
    };
    let mut rejected = 0usize;
    for (_, id) in frames(&golden) {
        match legacy_from_u8(id) {
            Ok(codec) => assert!((codec as u8) < 4),
            Err(CodecError::UnknownCodec(got)) => {
                assert!(got == 4 || got == 5, "unexpected id {got}");
                rejected += 1;
            }
            Err(other) => panic!("wrong error variant: {other:?}"),
        }
    }
    assert!(rejected > 0, "golden carries no frame a legacy reader would reject");

    // Forward direction, through the *real* decode path: forge an id even
    // today's registry does not know onto the first frame and decode. The
    // CRC does not cover the header, so the forged byte reaches the id
    // table — which must answer with the typed error, not a panic and not
    // a skip.
    let mut forged = golden.clone();
    forged[2] = 0x2A;
    let mut out = Vec::new();
    match decode_block_limited(&forged, &mut out, u32::MAX) {
        Err(CodecError::UnknownCodec(0x2A)) => {}
        other => panic!("expected UnknownCodec(42), got {other:?}"),
    }
    assert!(out.is_empty(), "unknown-codec frame must not emit bytes");

    // A fail-fast FrameReader surfaces the same error (as an
    // `io::Error` whose source is the typed variant) instead of skipping.
    let mut reader = FrameReader::with_policy(&forged[..], RecoveryPolicy::fail_fast());
    let mut block = Vec::new();
    let err = reader.read_block(&mut block).expect_err("forged id must not decode");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    match err.get_ref().and_then(|e| e.downcast_ref::<CodecError>()) {
        Some(CodecError::UnknownCodec(0x2A)) => {}
        other => panic!("expected UnknownCodec(42) from FrameReader, got {other:?} ({err})"),
    }
}
