//! BASELINES — the paper's central motivation, quantified: decision models
//! from related work consume system metrics that virtual machines display
//! incorrectly; the rate-based model does not.
//!
//! * `METRIC` (Krintz & Sucu, TPDS'06): offline-trained speeds/ratios +
//!   displayed CPU idle + displayed bandwidth. Inside our simulated VMs the
//!   displayed CPU is distorted by the Fig. 1 gap and the displayed
//!   bandwidth is the NIC's nominal rate, not the contended share — so the
//!   model keeps predicting that compression cannot pay off.
//! * `QUEUE` (Jeannot et al., HPDC'02): reacts to send-queue growth. Works
//!   without metrics, but assumes higher levels compress better — wasteful
//!   on incompressible data (as the paper notes) and slow to settle.
//! * `SAMPLING` (Wiseman et al., ICDCS'04): periodic resampling of all
//!   levels with hard-coded holding periods — pays for the HEAVY sample
//!   every cycle.
//! * `DYNAMIC` (this paper): application data rate only.
//!
//! Cells run in parallel on the deterministic experiment runner
//! (`ADCOMP_THREADS` pins the worker count; output is bit-identical for any
//! setting — see `adcomp_bench::runner`).
//!
//! Run: `cargo run --release -p adcomp-bench --bin baseline_models [--quick]`

use adcomp_bench::{experiment_bytes, runner, speed_model, to_paper_scale};
use adcomp_core::model::{
    DecisionModel, MetricBasedModel, QueueBasedModel, RateBasedModel, SensorThresholdModel,
    StaticModel, ThresholdSamplingModel, TrainedLevel,
};
use adcomp_corpus::Class;
use adcomp_metrics::Table;
use adcomp_vcloud::{run_transfer, ConstantClass, SpeedModel, TransferConfig};

/// The metric-based model's "training phase": measured on an unloaded
/// system (exactly what its authors prescribe) — here the paper_fit profile
/// of the class it will transfer.
fn trained_levels(speed: &SpeedModel, class: Class) -> Vec<TrainedLevel> {
    (0..4)
        .map(|l| {
            let p = speed.profile(class, l);
            TrainedLevel { compress_bps: p.compress_bps, ratio: p.ratio }
        })
        .collect()
}

/// Model roster in table order. `BEST-STATIC` is the oracle (fastest static
/// level per cell) and is special-cased in the cell function.
const MODELS: [&str; 6] = [
    "BEST-STATIC",
    "DYNAMIC (paper)",
    "QUEUE (HPDC'02)",
    "METRIC (TPDS'06)",
    "SAMPLING (ICDCS'04)",
    "SENSOR (ITCC'01)",
];

/// Builds the decision model for roster index `mi` (1..=5).
fn model_for(mi: usize, class: Class, speed: &SpeedModel) -> Box<dyn DecisionModel> {
    match mi {
        1 => Box::new(RateBasedModel::paper_default()),
        2 => Box::new(QueueBasedModel::new(4)),
        3 => Box::new(MetricBasedModel::new(trained_levels(speed, class))),
        4 => Box::new(ThresholdSamplingModel::new(4, 30)),
        5 => Box::new(SensorThresholdModel::paper_scale()),
        _ => unreachable!("BEST-STATIC is handled inline"),
    }
}

const FLOWS: [usize; 2] = [0, 2];

fn main() {
    let total = experiment_bytes();
    let speed = speed_model();
    println!(
        "BASELINES: completion time [s, 50 GB scale] under distorted guest metrics\n\
         (displayed CPU utilization off by the Fig. 1 gap; displayed bandwidth = nominal NIC)\n"
    );
    // 2 contention settings × 6 models × 3 classes fan out at once (the
    // oracle cell runs its 4 static levels internally). Seeds are fixed per
    // cell, so the grid is independent of scheduling.
    let nclasses = Class::ALL.len();
    let cells = runner::run_cells(FLOWS.len() * MODELS.len() * nclasses, |idx| {
        let per_flow = MODELS.len() * nclasses;
        let (fi, mi, ci) = (idx / per_flow, (idx % per_flow) / nclasses, idx % nclasses);
        let class = Class::ALL[ci];
        let cfg = TransferConfig {
            total_bytes: total,
            background_flows: FLOWS[fi],
            seed: 51,
            ..TransferConfig::paper_default()
        };
        let secs = if mi == 0 {
            // Oracle: the fastest static level for this cell.
            (0..4)
                .map(|l| {
                    run_transfer(
                        &cfg,
                        &speed,
                        &mut ConstantClass(class),
                        Box::new(StaticModel::new(l, 4)),
                    )
                    .completion_secs
                })
                .fold(f64::INFINITY, f64::min)
        } else {
            run_transfer(&cfg, &speed, &mut ConstantClass(class), model_for(mi, class, &speed))
                .completion_secs
        };
        to_paper_scale(secs)
    });
    for (fi, flows) in FLOWS.iter().enumerate() {
        println!("-- {flows} concurrent TCP connection(s) --");
        let mut table = Table::new(vec!["model", "HIGH [s]", "MODERATE [s]", "LOW [s]"]);
        for (mi, name) in MODELS.iter().enumerate() {
            let mut row = vec![name.to_string()];
            for ci in 0..nclasses {
                row.push(format!("{:.0}", cells[(fi * MODELS.len() + mi) * nclasses + ci]));
            }
            table.row(row);
        }
        println!("{}", table.render());
    }
    println!(
        "Expected shape: DYNAMIC stays closest to BEST-STATIC across all cells.\n\
         METRIC mis-decides because the displayed metrics lie; QUEUE overshoots on\n\
         incompressible data; SAMPLING pays a recurring HEAVY-probe tax."
    );
}
