//! `adcomp top` — ASCII dashboard over a Prometheus scrape.
//!
//! The renderer takes exposition *text* (from the in-process registry or
//! an HTTP scrape of a remote `/metrics`) and derives every panel from
//! the parsed samples: there is one code path whether you watch a local
//! sim or a live server. Span quantiles are recomputed from the
//! cumulative `_bucket` series the same way the registry computes them
//! (first `le` whose cumulative count reaches the rank), so dashboard
//! p50/p99/p999 match a scrape byte for byte — and in sim mode the whole
//! render is deterministic for any `ADCOMP_THREADS`.

use crate::promlint::{parse_samples, Sample};
use std::fmt::Write as _;

/// Formats a duration given in seconds with a fixed 4-significant-digit
/// µs/ms/s ladder.
fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} kB", b / 1e3)
    } else {
        format!("{b:.0} B")
    }
}

fn fmt_rate(bps: f64) -> String {
    format!("{}/s", fmt_bytes(bps))
}

struct View<'a> {
    samples: &'a [Sample],
}

impl<'a> View<'a> {
    /// First sample of `name` with no (or any) labels.
    fn value(&self, name: &str) -> Option<f64> {
        self.samples.iter().find(|s| s.name == name).map(|s| s.value)
    }

    /// `(label_value, sample_value)` pairs of a labelled counter family.
    fn family(&self, name: &str, key: &str) -> Vec<(String, f64)> {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| s.label(key).map(|l| (l.to_string(), s.value)))
            .collect()
    }

    /// Histogram quantile for a family + optional selector label, walked
    /// from the cumulative `_bucket` series.
    fn hist_quantile(&self, family: &str, label: Option<(&str, &str)>, q: f64) -> Option<f64> {
        let matches = |s: &&Sample| {
            s.name == format!("{family}_bucket")
                && label.is_none_or(|(k, v)| s.label(k) == Some(v))
        };
        let mut buckets: Vec<(f64, f64)> = self
            .samples
            .iter()
            .filter(matches)
            .filter_map(|s| {
                let le = s.label("le")?;
                let le = if le == "+Inf" { f64::INFINITY } else { le.parse().ok()? };
                Some((le, s.value))
            })
            .collect();
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let count = buckets.last()?.1;
        if count == 0.0 {
            return None;
        }
        let rank = (q * count).ceil().clamp(1.0, count);
        buckets.iter().find(|&&(_, cum)| cum >= rank).map(|&(le, _)| le)
    }

    fn hist_count(&self, family: &str, label: Option<(&str, &str)>) -> f64 {
        self.samples
            .iter()
            .filter(|s| {
                s.name == format!("{family}_count")
                    && label.is_none_or(|(k, v)| s.label(k) == Some(v))
            })
            .map(|s| s.value)
            .sum()
    }
}

/// Renders the dashboard for one scrape body. Pure text → text.
#[must_use]
pub fn render_top(exposition: &str) -> String {
    let samples = parse_samples(exposition);
    let v = View { samples: &samples };
    let mut out = String::new();

    let mode = samples
        .iter()
        .find(|s| s.name == "adcomp_registry_info")
        .and_then(|s| s.label("mode").map(str::to_string))
        .unwrap_or_else(|| "unknown".to_string());
    let _ = writeln!(out, "adcomp top · registry mode: {mode}");
    let _ = writeln!(out);

    // Level + epoch panel.
    let level = v.value("adcomp_current_level");
    let level_str = match level {
        Some(l) if l >= 0.0 => format!("{l:.0}"),
        _ => "-".to_string(),
    };
    let epochs = v.value("adcomp_epochs_total").unwrap_or(0.0);
    let _ = writeln!(out, "level now : {level_str:<8} epochs : {epochs:.0}");

    let levels = v.family("adcomp_level_epochs_total", "level");
    if !levels.is_empty() {
        let max = levels.iter().map(|(_, n)| *n).fold(1.0f64, f64::max);
        let mut line = String::from("levels    : ");
        for (i, (l, n)) in levels.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let bar = "█".repeat(((n / max) * 8.0).ceil() as usize);
            let _ = write!(line, "L{l} {bar} {n:.0}");
        }
        let _ = writeln!(out, "{line}");
    }

    let cases = v.family("adcomp_decisions_total", "case");
    if !cases.is_empty() {
        let parts: Vec<String> =
            cases.iter().map(|(c, n)| format!("{c} {n:.0}")).collect();
        let _ = writeln!(out, "decisions : {}", parts.join(" · "));
    }

    // Throughput panel.
    let blocks = v.value("adcomp_blocks_compressed_total").unwrap_or(0.0)
        + v.value("adcomp_sim_blocks_total").unwrap_or(0.0);
    let decoded = v.value("adcomp_blocks_decompressed_total").unwrap_or(0.0);
    let raw = v.value("adcomp_raw_fallbacks_total").unwrap_or(0.0);
    let _ = writeln!(
        out,
        "blocks    : compressed {blocks:.0} · decompressed {decoded:.0} · raw-fallback {raw:.0}"
    );
    let cin = v.value("adcomp_codec_in_bytes_total").unwrap_or(0.0);
    let cout = v.value("adcomp_codec_out_bytes_total").unwrap_or(0.0);
    if cin > 0.0 {
        let _ = writeln!(
            out,
            "bytes     : in {} → wire {} (ratio {:.3})",
            fmt_bytes(cin),
            fmt_bytes(cout),
            cout / cin
        );
    }
    let rate_n = v.hist_count("adcomp_epoch_rate_bytes_per_second", None);
    if rate_n > 0.0 {
        let p50 = v.hist_quantile("adcomp_epoch_rate_bytes_per_second", None, 0.5).unwrap_or(0.0);
        let p99 = v.hist_quantile("adcomp_epoch_rate_bytes_per_second", None, 0.99).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "epoch rate: p50 {} · p99 {} (n={rate_n:.0})",
            fmt_rate(p50),
            fmt_rate(p99)
        );
    }

    // Queue panel.
    let cq = v.value("adcomp_compress_in_flight").unwrap_or(0.0);
    let cqm = v.value("adcomp_compress_in_flight_max").unwrap_or(0.0);
    let dq = v.value("adcomp_decode_in_flight").unwrap_or(0.0);
    let dqm = v.value("adcomp_decode_in_flight_max").unwrap_or(0.0);
    let rm = v.value("adcomp_reorder_depth_max").unwrap_or(0.0);
    let _ = writeln!(
        out,
        "queues    : compress {cq:.0} (max {cqm:.0}) · decode {dq:.0} (max {dqm:.0}) · reorder max {rm:.0}"
    );

    // Robustness panel: serve-daemon overload and recovery events.
    // Rendered only when the scrape carries serve metrics, so sim-mode
    // dashboards stay unchanged.
    let accepted = v.value("adcomp_serve_accepted_total");
    if let Some(accepted) = accepted {
        let completed = v.value("adcomp_serve_completed_total").unwrap_or(0.0);
        let active = v.value("adcomp_serve_active_conns").unwrap_or(0.0);
        let active_max = v.value("adcomp_serve_active_conns_max").unwrap_or(0.0);
        let resumes = v.value("adcomp_serve_resumes_total").unwrap_or(0.0);
        let timeouts = v.value("adcomp_serve_timeouts_total").unwrap_or(0.0);
        let aborts = v.value("adcomp_serve_aborts_total").unwrap_or(0.0);
        let retries = v.value("adcomp_client_retries_total").unwrap_or(0.0);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "serve     : active {active:.0} (max {active_max:.0}) · accepted {accepted:.0} · \
             completed {completed:.0} · resumed {resumes:.0}"
        );
        let _ = writeln!(
            out,
            "overload  : timeouts {timeouts:.0} · aborts {aborts:.0} · client retries {retries:.0}"
        );
        let shed = v.family("adcomp_serve_shed_total", "reason");
        if !shed.is_empty() {
            let parts: Vec<String> =
                shed.iter().map(|(r, n)| format!("{r} {n:.0}")).collect();
            let _ = writeln!(out, "shed      : {}", parts.join(" · "));
        }
        let breaker = v.value("adcomp_breaker_open").unwrap_or(0.0);
        let trips = v.value("adcomp_breaker_trips_total").unwrap_or(0.0);
        let drains = v.value("adcomp_serve_drains_total").unwrap_or(0.0);
        let drained = v.value("adcomp_serve_drained_transfers_total").unwrap_or(0.0);
        let _ = writeln!(
            out,
            "breaker   : {} (trips {trips:.0}) · drains {drains:.0} ({drained:.0} transfers finished draining)",
            if breaker > 0.0 { "OPEN" } else { "closed" }
        );
        let rec_corrupt = v.value("adcomp_recovery_corrupt_frames_total").unwrap_or(0.0);
        let rec_resync = v.value("adcomp_recovery_resyncs_total").unwrap_or(0.0);
        let rec_retry = v.value("adcomp_recovery_retries_total").unwrap_or(0.0);
        let rec_skip = v.value("adcomp_recovery_skipped_bytes_total").unwrap_or(0.0);
        let rec_trunc = v.value("adcomp_recovery_truncations_total").unwrap_or(0.0);
        let _ = writeln!(
            out,
            "recovery  : corrupt {rec_corrupt:.0} · resyncs {rec_resync:.0} · retries {rec_retry:.0} · \
             skipped {} · truncations {rec_trunc:.0}",
            fmt_bytes(rec_skip)
        );
    }

    // Seekable-read panel: ranged reads through the block index and the
    // decoded-block cache behind them. Rendered only when the scrape
    // carries cache metrics, so hand-rolled scrapes stay unchanged.
    let hits = v.value("adcomp_cache_hits_total");
    let misses = v.value("adcomp_cache_misses_total");
    if hits.is_some() || misses.is_some() {
        let hits = hits.unwrap_or(0.0);
        let misses = misses.unwrap_or(0.0);
        let lookups = hits + misses;
        let ratio = if lookups > 0.0 { hits / lookups * 100.0 } else { 0.0 };
        let resident = v.value("adcomp_cache_resident_bytes").unwrap_or(0.0);
        let evictions = v.value("adcomp_cache_evictions_total").unwrap_or(0.0);
        let ranged = v.value("adcomp_ranged_reads_total").unwrap_or(0.0);
        let fallbacks = v.value("adcomp_index_fallbacks_total").unwrap_or(0.0);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "cache     : hit {ratio:.1}% ({hits:.0}/{lookups:.0}) · resident {} · evictions {evictions:.0}",
            fmt_bytes(resident)
        );
        let _ = writeln!(
            out,
            "ranged    : reads {ranged:.0} · streaming fallbacks {fallbacks:.0}"
        );
    }

    // Span latency table: every span label present in the scrape.
    let mut spans: Vec<String> = samples
        .iter()
        .filter(|s| s.name == "adcomp_span_seconds_count")
        .filter_map(|s| s.label("span").map(str::to_string))
        .collect();
    spans.dedup();
    if !spans.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>10} {:>10} {:>10}",
            "span", "count", "p50", "p99", "p999"
        );
        for span in spans {
            let sel = Some(("span", span.as_str()));
            let count = v.hist_count("adcomp_span_seconds", sel);
            let q = |q: f64| {
                v.hist_quantile("adcomp_span_seconds", sel, q)
                    .map_or("-".to_string(), fmt_secs)
            };
            let _ = writeln!(
                out,
                "{span:<16} {count:>9.0} {:>10} {:>10} {:>10}",
                q(0.5),
                q(0.99),
                q(0.999)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCRAPE: &str = "\
adcomp_registry_info{mode=\"virtual\"} 1
adcomp_epochs_total 36
adcomp_level_epochs_total{level=\"0\"} 12
adcomp_level_epochs_total{level=\"2\"} 24
adcomp_decisions_total{case=\"improved\"} 9
adcomp_decisions_total{case=\"stable\"} 20
adcomp_blocks_compressed_total 0
adcomp_sim_blocks_total 420
adcomp_codec_in_bytes_total 55000000
adcomp_codec_out_bytes_total 21300000
adcomp_current_level -1
adcomp_span_seconds_bucket{span=\"compress\",le=\"0.000811\"} 210
adcomp_span_seconds_bucket{span=\"compress\",le=\"0.0023\"} 416
adcomp_span_seconds_bucket{span=\"compress\",le=\"0.0041\"} 420
adcomp_span_seconds_bucket{span=\"compress\",le=\"+Inf\"} 420
adcomp_span_seconds_sum{span=\"compress\"} 0.4
adcomp_span_seconds_count{span=\"compress\"} 420
";

    #[test]
    fn renders_every_panel_from_a_scrape() {
        let top = render_top(SCRAPE);
        assert!(top.contains("registry mode: virtual"), "{top}");
        assert!(top.contains("epochs : 36"), "{top}");
        assert!(top.contains("L0"), "{top}");
        assert!(top.contains("stable 20"), "{top}");
        assert!(top.contains("compressed 420"), "{top}");
        assert!(top.contains("ratio 0.387"), "{top}");
        // p50 rank 210 lands in the first bucket, p99/p999 above it.
        assert!(top.contains("compress"), "{top}");
        assert!(top.contains("811.0µs"), "{top}");
        assert!(top.contains("4.10ms"), "{top}");
        // Unset current level renders as '-'.
        assert!(top.contains("level now : -"), "{top}");
    }

    #[test]
    fn serve_scrape_gets_a_robustness_panel() {
        let scrape = "\
adcomp_registry_info{mode=\"wall\"} 1
adcomp_serve_accepted_total 40
adcomp_serve_completed_total 37
adcomp_serve_active_conns 3
adcomp_serve_active_conns_max 12
adcomp_serve_resumes_total 5
adcomp_serve_timeouts_total 2
adcomp_serve_aborts_total 1
adcomp_client_retries_total 9
adcomp_serve_shed_total{reason=\"capacity\"} 4
adcomp_serve_shed_total{reason=\"tenant_quota\"} 2
adcomp_breaker_open 1
adcomp_breaker_trips_total 3
adcomp_serve_drains_total 1
adcomp_serve_drained_transfers_total 6
adcomp_recovery_corrupt_frames_total 8
adcomp_recovery_skipped_bytes_total 4096
";
        let top = render_top(scrape);
        assert!(top.contains("active 3 (max 12)"), "{top}");
        assert!(top.contains("accepted 40"), "{top}");
        assert!(top.contains("resumed 5"), "{top}");
        assert!(top.contains("timeouts 2"), "{top}");
        assert!(top.contains("capacity 4 · tenant_quota 2"), "{top}");
        assert!(top.contains("breaker   : OPEN (trips 3)"), "{top}");
        assert!(top.contains("drains 1 (6 transfers finished draining)"), "{top}");
        assert!(top.contains("corrupt 8"), "{top}");
        assert!(top.contains("skipped 4.1 kB"), "{top}");
        // No serve metrics in the scrape → no serve panel.
        assert!(!render_top(SCRAPE).contains("serve     :"), "sim scrape grew a serve panel");
    }

    #[test]
    fn cache_scrape_gets_a_seekable_read_panel() {
        let scrape = "\
adcomp_registry_info{mode=\"wall\"} 1
adcomp_ranged_reads_total 40
adcomp_index_fallbacks_total 2
adcomp_cache_hits_total 90
adcomp_cache_misses_total 10
adcomp_cache_evictions_total 4
adcomp_cache_resident_bytes 524288
";
        let top = render_top(scrape);
        assert!(top.contains("cache     : hit 90.0% (90/100)"), "{top}");
        assert!(top.contains("resident 524.3 kB"), "{top}");
        assert!(top.contains("evictions 4"), "{top}");
        assert!(top.contains("ranged    : reads 40 · streaming fallbacks 2"), "{top}");
        // No cache metrics in the scrape → no cache panel.
        assert!(!render_top(SCRAPE).contains("cache     :"), "sim scrape grew a cache panel");
    }

    #[test]
    fn render_is_pure_text_to_text() {
        assert_eq!(render_top(SCRAPE), render_top(SCRAPE));
        // Empty scrape still renders headers without panicking.
        let empty = render_top("");
        assert!(empty.contains("adcomp top"), "{empty}");
    }
}
