//! Typed trace events — the event taxonomy of the observability layer.
//!
//! Every event is `Copy` (fixed-size, `&'static str` names, no heap) so
//! that emitting one through a sink never allocates and the seqlock ring
//! buffer can store events by value. All events carry:
//!
//! * `epoch` — the controller epoch the event belongs to (epoch-tagged
//!   sink contract; `u64::MAX` means "outside any epoch");
//! * `t` — seconds. Virtual time in the simulators, wall-clock seconds
//!   since stream start elsewhere. Never a raw system timestamp, so traces
//!   of deterministic runs are bit-identical.
//!
//! Serialization is hand-rolled JSON (see [`crate::json`]); the first key
//! of every line is `"ev"`, which is what the schema lint keys on.

use crate::json::ObjWriter;

/// Maximum number of compression levels an event can snapshot. The paper
/// uses 4 (NO/LIGHT/MEDIUM/HEAVY); 8 leaves headroom for extended level
/// sets without heap allocation.
pub const MAX_LEVELS: usize = 8;

/// Epoch tag for events that occur outside any controller epoch.
pub const NO_EPOCH: u64 = u64::MAX;

/// One Algorithm-1 decision: what the controller observed and which branch
/// it took. Emitted once per epoch by rate-based models.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "trace events do nothing unless emitted to a sink"]
pub struct DecisionEvent {
    /// Epoch index (0-based) that just closed.
    pub epoch: u64,
    /// Time at the epoch boundary (seconds).
    pub t: f64,
    /// Current data rate observed this epoch (bytes/s).
    pub cdr: f64,
    /// Previous data rate the controller compared against (NaN on the
    /// seeding epoch — serialized as `null`).
    pub pdr: f64,
    /// Current compression level *after* the decision (ccl).
    pub ccl: u32,
    /// Level before the decision.
    pub prev_level: u32,
    /// Algorithm-1 branch taken: `"seed"`, `"stable"`, `"probe"`,
    /// `"improved"`, `"degraded"` — or `"static"` for fixed-level models.
    pub case: &'static str,
    /// Per-level backoff exponent table snapshot (first `num_levels`
    /// entries are meaningful).
    pub backoffs: [u32; MAX_LEVELS],
    /// Number of levels the model drives.
    pub num_levels: u32,
}

/// One epoch boundary: the rate meter's aggregate for the epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "trace events do nothing unless emitted to a sink"]
pub struct EpochEvent {
    pub epoch: u64,
    /// Time at the epoch boundary (seconds).
    pub t: f64,
    /// Epoch duration (seconds).
    pub duration: f64,
    /// Application bytes accounted to the epoch.
    pub bytes: u64,
    /// Application data rate over the epoch (bytes/s).
    pub rate: f64,
    /// Level in force during the epoch.
    pub level: u32,
}

/// One block-frame encode on the wire path.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "trace events do nothing unless emitted to a sink"]
pub struct CodecEvent {
    pub epoch: u64,
    pub t: f64,
    /// Codec level name (`"NO"`, `"LIGHT"`, `"MEDIUM"`, `"HEAVY"`).
    pub level: &'static str,
    /// Input (application) bytes.
    pub in_bytes: u64,
    /// Output bytes on the wire, including frame header.
    pub out_bytes: u64,
    /// Time spent compressing, nanoseconds (0 in virtual-time contexts).
    pub compress_ns: u64,
    /// Whether the frame fell back to a raw block (incompressible input).
    pub raw_fallback: bool,
}

/// One simulator event: link arbitration, flow lifecycle, bandwidth
/// fluctuation. Emitted in virtual time only.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "trace events do nothing unless emitted to a sink"]
pub struct SimEvent {
    pub epoch: u64,
    /// Virtual time (seconds).
    pub t: f64,
    /// `"link_arbitration"`, `"flow_join"`, `"flow_leave"`,
    /// `"bandwidth"`, `"transfer_start"`, `"transfer_done"`, `"sample"`.
    pub kind: &'static str,
    /// Flow index, or `u32::MAX` when not flow-scoped.
    pub flow: u32,
    /// Kind-dependent primary payload (bytes/s for bandwidth events,
    /// seconds for lifecycle events, …).
    pub value: f64,
    /// Kind-dependent secondary payload (e.g. contended share).
    pub aux: f64,
}

impl SimEvent {
    /// Flow value for events that are not scoped to a flow.
    pub const NO_FLOW: u32 = u32::MAX;
}

/// One record-channel event from the nephele layer.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "trace events do nothing unless emitted to a sink"]
pub struct ChannelEvent {
    pub epoch: u64,
    pub t: f64,
    /// `"stall"` (reader waited on transport), `"block"` (block shipped),
    /// `"flush"` (explicit flush of a partial block).
    pub kind: &'static str,
    /// Bytes involved (block payload, or 0 for stalls).
    pub bytes: u64,
    /// Nanoseconds waited (stalls) or spent encoding (blocks).
    pub wait_ns: u64,
    /// Compression level in force.
    pub level: u32,
}

/// One fault-or-recovery incident on the transport path.
///
/// Emitted by the hardened readers/writers when corruption, truncation or
/// transient I/O errors are detected — and when the recovery machinery
/// responds (resync scans, bounded retries, graceful degradation). The
/// fault-injection layer (`adcomp-faults`) emits the injection side with
/// the same event kind, so a trace shows cause and response interleaved.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "trace events do nothing unless emitted to a sink"]
pub struct FaultEvent {
    pub epoch: u64,
    pub t: f64,
    /// What happened: `"corrupt_frame"`, `"truncated"`, `"frame_too_large"`,
    /// `"resync"`, `"retry"`, `"skip"`, `"degrade"`, `"inject_flip"`,
    /// `"inject_drop"`, `"inject_cut"`, `"inject_transient"`.
    pub kind: &'static str,
    /// Bytes involved (skipped, lost, scanned — kind-dependent; 0 if n/a).
    pub bytes: u64,
    /// Ordinal detail: retry attempt, block index, … (kind-dependent).
    pub attempt: u64,
}

/// One snapshot of the parallel compression pipeline's internal state.
///
/// Emitted by the worker-pool writer/reader when a block is submitted or
/// drained, so a trace shows how full the bounded queues ran and how much
/// reordering the in-order emitter had to absorb. The pool never emits
/// these on the worker threads themselves — only the caller thread does —
/// so event order in a trace is the submission/drain order.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "trace events do nothing unless emitted to a sink"]
pub struct PipelineEvent {
    pub epoch: u64,
    pub t: f64,
    /// What happened: `"submit"` (block handed to the pool), `"drain"`
    /// (frame re-emitted in order), `"stall"` (caller blocked on the
    /// bounded queue — the backpressure path).
    pub kind: &'static str,
    /// Block sequence number the event refers to.
    pub seq: u64,
    /// Blocks submitted but not yet re-emitted (in-flight).
    pub in_flight: u32,
    /// Completed frames parked in the reorder buffer, waiting for an
    /// earlier sequence number.
    pub reorder_depth: u32,
    /// Worker count of the pool.
    pub workers: u32,
}

/// One serve-daemon lifecycle incident: admission, shedding, timeouts,
/// drain progress, breaker transitions.
///
/// Tenant names are dynamic strings, but events must stay `Copy`, so the
/// tenant is carried as a stable 64-bit FNV-1a hash ([`ServerEvent::tenant_id`])
/// — enough to correlate one tenant's events within a trace.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "trace events do nothing unless emitted to a sink"]
pub struct ServerEvent {
    pub epoch: u64,
    pub t: f64,
    /// What happened: `"accept"`, `"reject"`, `"resume"`, `"done"`,
    /// `"timeout"`, `"abort"`, `"drain_begin"`, `"drain_done"`,
    /// `"breaker_open"`, `"breaker_close"`.
    pub kind: &'static str,
    /// FNV-1a hash of the tenant name (0 when not tenant-scoped).
    pub tenant: u64,
    /// Bytes involved (verified payload bytes; kind-dependent, 0 if n/a).
    pub bytes: u64,
    /// Ordinal detail: transfer id, reject reason code, active
    /// connections at drain — kind-dependent.
    pub detail: u64,
}

impl ServerEvent {
    /// Stable FNV-1a 64-bit hash of a tenant name, used as the `tenant`
    /// field so events stay `Copy`.
    #[must_use]
    pub fn tenant_id(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

/// The sum type every sink consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "trace events do nothing unless emitted to a sink"]
pub enum TraceEvent {
    Decision(DecisionEvent),
    Epoch(EpochEvent),
    Codec(CodecEvent),
    Sim(SimEvent),
    Channel(ChannelEvent),
    Fault(FaultEvent),
    Pipeline(PipelineEvent),
    Server(ServerEvent),
}

impl TraceEvent {
    /// The schema name written as the `"ev"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Decision(_) => "decision",
            TraceEvent::Epoch(_) => "epoch",
            TraceEvent::Codec(_) => "codec",
            TraceEvent::Sim(_) => "sim",
            TraceEvent::Channel(_) => "channel",
            TraceEvent::Fault(_) => "fault",
            TraceEvent::Pipeline(_) => "pipeline",
            TraceEvent::Server(_) => "server",
        }
    }

    /// The epoch tag.
    pub fn epoch(&self) -> u64 {
        match self {
            TraceEvent::Decision(e) => e.epoch,
            TraceEvent::Epoch(e) => e.epoch,
            TraceEvent::Codec(e) => e.epoch,
            TraceEvent::Sim(e) => e.epoch,
            TraceEvent::Channel(e) => e.epoch,
            TraceEvent::Fault(e) => e.epoch,
            TraceEvent::Pipeline(e) => e.epoch,
            TraceEvent::Server(e) => e.epoch,
        }
    }

    /// The event timestamp (seconds).
    pub fn t(&self) -> f64 {
        match self {
            TraceEvent::Decision(e) => e.t,
            TraceEvent::Epoch(e) => e.t,
            TraceEvent::Codec(e) => e.t,
            TraceEvent::Sim(e) => e.t,
            TraceEvent::Channel(e) => e.t,
            TraceEvent::Fault(e) => e.t,
            TraceEvent::Pipeline(e) => e.t,
            TraceEvent::Server(e) => e.t,
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = ObjWriter::new();
        o.str_field("ev", self.kind());
        match self {
            TraceEvent::Decision(e) => {
                o.u64_field("epoch", e.epoch);
                o.f64_field("t", e.t);
                o.f64_field("cdr", e.cdr);
                o.f64_field("pdr", e.pdr); // NaN -> null on the seed epoch
                o.u64_field("ccl", e.ccl as u64);
                o.u64_field("prev_level", e.prev_level as u64);
                o.str_field("case", e.case);
                let n = (e.num_levels as usize).min(MAX_LEVELS);
                o.u32_array_field("backoffs", &e.backoffs[..n]);
            }
            TraceEvent::Epoch(e) => {
                o.u64_field("epoch", e.epoch);
                o.f64_field("t", e.t);
                o.f64_field("duration", e.duration);
                o.u64_field("bytes", e.bytes);
                o.f64_field("rate", e.rate);
                o.u64_field("level", e.level as u64);
            }
            TraceEvent::Codec(e) => {
                o.u64_field("epoch", e.epoch);
                o.f64_field("t", e.t);
                o.str_field("level", e.level);
                o.u64_field("in_bytes", e.in_bytes);
                o.u64_field("out_bytes", e.out_bytes);
                o.u64_field("compress_ns", e.compress_ns);
                o.bool_field("raw_fallback", e.raw_fallback);
            }
            TraceEvent::Sim(e) => {
                o.u64_field("epoch", e.epoch);
                o.f64_field("t", e.t);
                o.str_field("kind", e.kind);
                if e.flow != SimEvent::NO_FLOW {
                    o.u64_field("flow", e.flow as u64);
                }
                o.f64_field("value", e.value);
                o.f64_field("aux", e.aux);
            }
            TraceEvent::Channel(e) => {
                o.u64_field("epoch", e.epoch);
                o.f64_field("t", e.t);
                o.str_field("kind", e.kind);
                o.u64_field("bytes", e.bytes);
                o.u64_field("wait_ns", e.wait_ns);
                o.u64_field("level", e.level as u64);
            }
            TraceEvent::Fault(e) => {
                o.u64_field("epoch", e.epoch);
                o.f64_field("t", e.t);
                o.str_field("kind", e.kind);
                o.u64_field("bytes", e.bytes);
                o.u64_field("attempt", e.attempt);
            }
            TraceEvent::Pipeline(e) => {
                o.u64_field("epoch", e.epoch);
                o.f64_field("t", e.t);
                o.str_field("kind", e.kind);
                o.u64_field("seq", e.seq);
                o.u64_field("in_flight", e.in_flight as u64);
                o.u64_field("reorder_depth", e.reorder_depth as u64);
                o.u64_field("workers", e.workers as u64);
            }
            TraceEvent::Server(e) => {
                o.u64_field("epoch", e.epoch);
                o.f64_field("t", e.t);
                o.str_field("kind", e.kind);
                o.u64_field("tenant", e.tenant);
                o.u64_field("bytes", e.bytes);
                o.u64_field("detail", e.detail);
            }
        }
        o.finish()
    }
}

impl From<DecisionEvent> for TraceEvent {
    fn from(e: DecisionEvent) -> Self {
        TraceEvent::Decision(e)
    }
}
impl From<EpochEvent> for TraceEvent {
    fn from(e: EpochEvent) -> Self {
        TraceEvent::Epoch(e)
    }
}
impl From<CodecEvent> for TraceEvent {
    fn from(e: CodecEvent) -> Self {
        TraceEvent::Codec(e)
    }
}
impl From<SimEvent> for TraceEvent {
    fn from(e: SimEvent) -> Self {
        TraceEvent::Sim(e)
    }
}
impl From<ChannelEvent> for TraceEvent {
    fn from(e: ChannelEvent) -> Self {
        TraceEvent::Channel(e)
    }
}
impl From<FaultEvent> for TraceEvent {
    fn from(e: FaultEvent) -> Self {
        TraceEvent::Fault(e)
    }
}
impl From<PipelineEvent> for TraceEvent {
    fn from(e: PipelineEvent) -> Self {
        TraceEvent::Pipeline(e)
    }
}
impl From<ServerEvent> for TraceEvent {
    fn from(e: ServerEvent) -> Self {
        TraceEvent::Server(e)
    }
}

/// Per-kind event counts — the manifest's summary of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    pub decision: u64,
    pub epoch: u64,
    pub codec: u64,
    pub sim: u64,
    pub channel: u64,
    pub fault: u64,
    pub pipeline: u64,
    pub server: u64,
}

impl EventCounts {
    pub fn add(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Decision(_) => self.decision += 1,
            TraceEvent::Epoch(_) => self.epoch += 1,
            TraceEvent::Codec(_) => self.codec += 1,
            TraceEvent::Sim(_) => self.sim += 1,
            TraceEvent::Channel(_) => self.channel += 1,
            TraceEvent::Fault(_) => self.fault += 1,
            TraceEvent::Pipeline(_) => self.pipeline += 1,
            TraceEvent::Server(_) => self.server += 1,
        }
    }

    pub fn from_events<'a>(evs: impl IntoIterator<Item = &'a TraceEvent>) -> Self {
        let mut c = EventCounts::default();
        for ev in evs {
            c.add(ev);
        }
        c
    }

    pub fn total(&self) -> u64 {
        self.decision + self.epoch + self.codec + self.sim + self.channel + self.fault
            + self.pipeline + self.server
    }

    /// Serializes as a JSON object fragment.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = ObjWriter::new();
        o.u64_field("decision", self.decision);
        o.u64_field("epoch", self.epoch);
        o.u64_field("codec", self.codec);
        o.u64_field("sim", self.sim);
        o.u64_field("channel", self.channel);
        o.u64_field("fault", self.fault);
        o.u64_field("pipeline", self.pipeline);
        o.u64_field("server", self.server);
        o.u64_field("total", self.total());
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_line;

    fn sample_decision() -> TraceEvent {
        TraceEvent::Decision(DecisionEvent {
            epoch: 3,
            t: 6.0,
            cdr: 1.5e7,
            pdr: f64::NAN,
            ccl: 2,
            prev_level: 1,
            case: "seed",
            backoffs: [0; MAX_LEVELS],
            num_levels: 4,
        })
    }

    #[test]
    fn decision_json_shape() {
        let j = sample_decision().to_json();
        assert!(j.starts_with("{\"ev\":\"decision\""), "{j}");
        assert!(j.contains("\"pdr\":null"), "seed pdr must be null: {j}");
        assert!(j.contains("\"backoffs\":[0,0,0,0]"), "{j}");
        validate_line(&j).unwrap();
    }

    #[test]
    fn all_kinds_validate() {
        let evs: [TraceEvent; 6] = [
            sample_decision(),
            EpochEvent { epoch: 0, t: 2.0, duration: 2.0, bytes: 1024, rate: 512.0, level: 1 }
                .into(),
            CodecEvent {
                epoch: 0,
                t: 0.5,
                level: "LIGHT",
                in_bytes: 131072,
                out_bytes: 60000,
                compress_ns: 1234,
                raw_fallback: false,
            }
            .into(),
            SimEvent {
                epoch: 1,
                t: 3.0,
                kind: "link_arbitration",
                flow: SimEvent::NO_FLOW,
                value: 1.17e8,
                aux: 0.65,
            }
            .into(),
            ChannelEvent { epoch: 2, t: 4.4, kind: "stall", bytes: 0, wait_ns: 900, level: 3 }
                .into(),
            PipelineEvent {
                epoch: 2,
                t: 4.5,
                kind: "drain",
                seq: 17,
                in_flight: 3,
                reorder_depth: 1,
                workers: 4,
            }
            .into(),
        ];
        let mut counts = EventCounts::default();
        for ev in &evs {
            counts.add(ev);
            let j = ev.to_json();
            let keys = validate_line(&j).unwrap();
            assert_eq!(keys[0], "ev");
        }
        assert_eq!(counts.total(), 6);
        assert_eq!(counts, EventCounts::from_events(&evs));
        validate_line(&counts.to_json()).unwrap();
    }

    #[test]
    fn sim_event_omits_flow_when_unscoped() {
        let ev: TraceEvent = SimEvent {
            epoch: 0,
            t: 0.0,
            kind: "bandwidth",
            flow: SimEvent::NO_FLOW,
            value: 1.0,
            aux: 0.0,
        }
        .into();
        assert!(!ev.to_json().contains("\"flow\""));
        let ev: TraceEvent =
            SimEvent { epoch: 0, t: 0.0, kind: "flow_join", flow: 2, value: 1.0, aux: 0.0 }
                .into();
        assert!(ev.to_json().contains("\"flow\":2"));
    }
}
