//! # adcomp — adaptive online compression for shared-I/O clouds
//!
//! A complete Rust reproduction of *"Evaluating Adaptive Compression to
//! Mitigate the Effects of Shared I/O in Clouds"* (Hovestadt, Kao, Kliem,
//! Warneke — IEEE IPDPS 2011).
//!
//! This facade crate re-exports the workspace:
//!
//! | Module | Crate | What it contains |
//! |---|---|---|
//! | [`core`] | `adcomp-core` | **The paper's contribution**: the rate-based decision model (Algorithm 1), baselines, adaptive `Write`/`Read` streams |
//! | [`codecs`] | `adcomp-codecs` | From-scratch LZ codecs (QuickLZ-like LIGHT/MEDIUM, range-coded HEAVY), block frames |
//! | [`corpus`] | `adcomp-corpus` | Deterministic stand-ins for the paper's test files (`ptt5`, `alice29.txt`, JPEG) |
//! | [`vcloud`] | `adcomp-vcloud` | Discrete-event simulator of XEN/KVM/EC2 I/O: shared links, metric distortion, page caches |
//! | [`nephele`] | `adcomp-nephele` | Miniature Nephele dataflow engine with transparently compressing channels |
//! | [`hostprobe`] | `adcomp-hostprobe` | The paper's §II methodology on the real host: `/proc/stat` sampling + I/O load generators |
//! | [`metrics`] | `adcomp-metrics` | Rate meters, summary statistics, table rendering |
//! | [`serve`] | (this crate) | The `adcomp serve` overload-resilient multi-tenant daemon, its retry/resume client, and the socket-level chaos soak |
//!
//! ## Sixty-second tour
//!
//! ```
//! use adcomp::prelude::*;
//! use std::io::{Read, Write};
//!
//! // Wrap any Write in the paper's adaptive compression scheme:
//! let model = Box::new(RateBasedModel::paper_default());
//! let mut w = AdaptiveWriter::new(Vec::new(), LevelSet::paper_default(), model);
//! w.write_all(b"data data data data data!").unwrap();
//! let (wire, stats) = w.finish().unwrap();
//! assert_eq!(stats.app_bytes, 25);
//!
//! // The receiver needs no coordination — frames are self-describing:
//! let mut out = Vec::new();
//! AdaptiveReader::new(&wire[..]).read_to_end(&mut out).unwrap();
//! assert_eq!(&out[..], b"data data data data data!" as &[u8]);
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the binaries that regenerate every figure and table
//! of the paper.

pub mod serve;

pub use adcomp_codecs as codecs;
pub use adcomp_core as core;
pub use adcomp_corpus as corpus;
pub use adcomp_faults as faults;
pub use adcomp_hostprobe as hostprobe;
pub use adcomp_metrics as metrics;
pub use adcomp_nephele as nephele;
pub use adcomp_trace as trace;
pub use adcomp_vcloud as vcloud;

/// One-stop imports for applications.
pub mod prelude {
    pub use adcomp_codecs::{CodecId, LevelSet};
    pub use adcomp_core::controller::{ControllerConfig, RateController};
    pub use adcomp_core::model::{DecisionModel, RateBasedModel, StaticModel};
    pub use adcomp_core::stream::{AdaptiveReader, AdaptiveWriter, StreamStats};
    pub use adcomp_corpus::{Class, CyclicSource, SourceReader};
    pub use adcomp_nephele::prelude::*;
    pub use adcomp_trace::{JsonlWriter, MemorySink, RunManifest, TraceHandle, TraceSink};
    pub use adcomp_vcloud::{Platform, SpeedModel, TransferConfig};
}
