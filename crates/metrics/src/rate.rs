//! Data-rate measurement.
//!
//! [`RateMeter`] is the instrument behind the paper's decision model: it
//! accumulates application bytes and, every epoch, yields the *application
//! data rate* over that epoch. It is clock-agnostic — callers feed it
//! explicit timestamps, so it works identically under wall clock and under
//! the simulator's virtual clock.

/// Accumulates bytes between epoch boundaries and reports per-epoch rates.
#[derive(Debug, Clone)]
pub struct RateMeter {
    epoch_len: f64,
    epoch_start: f64,
    bytes_in_epoch: u64,
    total_bytes: u64,
}

/// One completed epoch: its duration and the mean rate achieved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRate {
    /// Epoch start time (seconds).
    pub start: f64,
    /// Actual epoch duration (seconds) — may exceed the nominal length if
    /// byte arrivals straddle the boundary.
    pub duration: f64,
    /// Bytes accumulated during the epoch.
    pub bytes: u64,
    /// Mean data rate over the epoch, bytes/second.
    pub rate: f64,
}

impl RateMeter {
    /// `epoch_len` is the paper's parameter `t` in seconds (their
    /// experiments use 2 s).
    pub fn new(epoch_len: f64, now: f64) -> Self {
        assert!(epoch_len > 0.0);
        RateMeter { epoch_len, epoch_start: now, bytes_in_epoch: 0, total_bytes: 0 }
    }

    /// Records `bytes` of application data at time `now`. Returns the
    /// completed epoch if the nominal epoch length has elapsed.
    pub fn record(&mut self, bytes: u64, now: f64) -> Option<EpochRate> {
        self.bytes_in_epoch += bytes;
        self.total_bytes += bytes;
        self.poll(now)
    }

    /// Checks for an epoch boundary without recording bytes.
    pub fn poll(&mut self, now: f64) -> Option<EpochRate> {
        let elapsed = now - self.epoch_start;
        if elapsed < self.epoch_len {
            return None;
        }
        let epoch = EpochRate {
            start: self.epoch_start,
            duration: elapsed,
            bytes: self.bytes_in_epoch,
            rate: self.bytes_in_epoch as f64 / elapsed,
        };
        self.epoch_start = now;
        self.bytes_in_epoch = 0;
        Some(epoch)
    }

    /// Total bytes ever recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Nominal epoch length (the paper's `t`).
    pub fn epoch_len(&self) -> f64 {
        self.epoch_len
    }
}

/// A `(time, value)` series recorded during an experiment — the raw
/// material for the paper's time-series figures (Figs. 4–6).
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    pub fn push(&mut self, t: f64, value: f64) {
        debug_assert!(
            self.points.last().is_none_or(|&(pt, _)| t >= pt),
            "time series must be appended in order"
        );
        self.points.push((t, value));
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, v)| v)
    }

    /// Last value, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.points.last().copied()
    }

    /// Mean of values weighted by the interval to the next point
    /// (time-weighted average, final point weighted zero).
    pub fn time_weighted_mean(&self) -> f64 {
        if self.points.len() < 2 {
            return self.points.first().map_or(f64::NAN, |&(_, v)| v);
        }
        let mut area = 0.0;
        let mut span = 0.0;
        for w in self.points.windows(2) {
            let dt = w[1].0 - w[0].0;
            area += w[0].1 * dt;
            span += dt;
        }
        if span == 0.0 {
            self.points[0].1
        } else {
            area / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_epoch_before_boundary() {
        let mut m = RateMeter::new(2.0, 0.0);
        assert!(m.record(100, 0.5).is_none());
        assert!(m.record(100, 1.9).is_none());
        assert_eq!(m.total_bytes(), 200);
    }

    #[test]
    fn epoch_rate_computed_over_actual_duration() {
        let mut m = RateMeter::new(2.0, 0.0);
        m.record(1000, 1.0);
        let e = m.record(1000, 2.5).unwrap();
        assert_eq!(e.bytes, 2000);
        assert!((e.duration - 2.5).abs() < 1e-12);
        assert!((e.rate - 800.0).abs() < 1e-9);
        assert_eq!(e.start, 0.0);
    }

    #[test]
    fn epochs_reset_cleanly() {
        let mut m = RateMeter::new(1.0, 0.0);
        let e1 = m.record(500, 1.0).unwrap();
        assert_eq!(e1.bytes, 500);
        let e2 = m.record(300, 2.0).unwrap();
        assert_eq!(e2.bytes, 300);
        assert_eq!(e2.start, 1.0);
        assert_eq!(m.total_bytes(), 800);
    }

    #[test]
    fn poll_without_bytes_yields_zero_rate_epoch() {
        let mut m = RateMeter::new(1.0, 0.0);
        let e = m.poll(1.5).unwrap();
        assert_eq!(e.bytes, 0);
        assert_eq!(e.rate, 0.0);
    }

    #[test]
    fn time_series_time_weighted_mean() {
        let mut ts = TimeSeries::new();
        ts.push(0.0, 10.0); // holds for 1s
        ts.push(1.0, 20.0); // holds for 3s
        ts.push(4.0, 0.0);
        let expect = (10.0 * 1.0 + 20.0 * 3.0) / 4.0;
        assert!((ts.time_weighted_mean() - expect).abs() < 1e-12);
    }

    #[test]
    fn time_series_degenerate_cases() {
        let ts = TimeSeries::new();
        assert!(ts.time_weighted_mean().is_nan());
        let mut ts = TimeSeries::new();
        ts.push(1.0, 5.0);
        assert_eq!(ts.time_weighted_mean(), 5.0);
        assert_eq!(ts.last(), Some((1.0, 5.0)));
    }
}
