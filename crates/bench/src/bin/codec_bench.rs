//! Codec hot-loop throughput grid → bench ledger rows.
//!
//! Measures `compress` (fresh tables), `compress_scratch` (reused
//! [`Scratch`] — the adaptive writer's real per-block path), `decompress`
//! (fresh decode state) and `decompress_scratch` (reused
//! [`DecodeScratch`] — the frame reader's real per-block path) for every
//! codec in the registry (paper ladder + portfolio HUFF/COLUMNAR) × corpus
//! class, using the same 512 KiB seed-42 samples and median-of-samples
//! methodology as the criterion benches, so rows are comparable with the
//! historical `BENCH_codecs.json` entries.
//!
//! It also emits one **gated pair** under the bench key
//! `portfolio/compress/heterogeneous`: the fastest single ladder codec on
//! an interleaved runs/text/noise corpus is pinned as the baseline and the
//! per-block portfolio selection path is appended after it, so
//! `bench_gate` enforces *portfolio ≥ best-single-ladder* compressed
//! throughput on every append.
//!
//! Usage:
//!
//! ```text
//! codec_bench                          # print the grid
//! codec_bench --append BENCH_codecs.json --label pr7-after
//! codec_bench --append ... --label pr7-before --baseline   # pin the gate
//! codec_bench --smoke                  # tiny samples, CI wiring check
//! ```
//!
//! `--append` parses the ledger, appends one row per cell and rewrites the
//! file deterministically; `bench_gate` then compares the newest rows
//! against the pinned baselines.

use adcomp_bench::ledger::{host_fields, today, Ledger, Row};
use adcomp_codecs::{codec_for, CodecId, DecodeScratch, Scratch};
use adcomp_core::portfolio;
use adcomp_corpus::{generate, Class};
use std::path::Path;
use std::time::Instant;

const SAMPLE_LEN: usize = 512 * 1024;
const SMOKE_LEN: usize = 64 * 1024;
const SEED: u64 = 42;

/// Median ns/iter of `samples` timed batches, each batch sized to run at
/// least `min_batch_secs`.
fn measure(mut f: impl FnMut(), samples: usize, min_batch_secs: f64) -> f64 {
    // Warm-up + batch calibration.
    f();
    let start = Instant::now();
    f();
    let once = start.elapsed().as_secs_f64().max(1e-9);
    let iters = (min_batch_secs / once).ceil().max(1.0) as usize;
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
    per_iter[samples / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline = args.iter().any(|a| a == "--baseline");
    let flag = |name: &str| {
        args.iter().position(|a| a == name).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{name} requires an argument");
                std::process::exit(2);
            })
        })
    };
    let append = flag("--append");
    let label = flag("--label").unwrap_or_else(|| "local".to_string());
    let date = flag("--date").unwrap_or_else(today);

    let len = if smoke { SMOKE_LEN } else { SAMPLE_LEN };
    let (samples, min_batch) = if smoke { (3, 0.005) } else { (9, 0.25) };
    let note = format!("sample_len={len} seed={SEED}");

    let mut rows: Vec<Row> = Vec::new();
    let mut push = |bench: String, ns: f64| {
        let mbps = (len as f64 / (ns / 1e9)) / 1e6;
        println!("{bench:<32} {ns:>14.1} ns/iter {mbps:>10.1} MB/s");
        rows.push(Row {
            date: date.clone(),
            label: label.clone(),
            bench,
            mbps,
            ns_per_iter: Some(ns),
            secs: None,
            baseline,
            note: Some(note.clone()),
        });
    };

    for class in Class::ALL {
        let data = generate(class, len, SEED);
        for id in CodecId::REGISTRY {
            if id == CodecId::Raw {
                continue;
            }
            let codec = codec_for(id);
            let key = |group: &str| format!("{group}/{}/{}", id.level_name(), class.name());

            let mut out = Vec::with_capacity(len * 2);
            let ns = measure(
                || {
                    out.clear();
                    codec.compress(&data, &mut out);
                },
                samples,
                min_batch,
            );
            push(key("compress"), ns);

            let mut scratch = Scratch::new();
            let mut out = Vec::with_capacity(len * 2);
            let ns = measure(
                || {
                    out.clear();
                    codec.compress_with(&mut scratch, &data, &mut out);
                },
                samples,
                min_batch,
            );
            push(key("compress_scratch"), ns);

            let mut wire = Vec::new();
            codec.compress(&data, &mut wire);
            let mut out = Vec::with_capacity(len);
            let ns = measure(
                || {
                    out.clear();
                    codec.decompress(&wire, len, &mut out).unwrap();
                },
                samples,
                min_batch,
            );
            push(key("decompress"), ns);

            let mut dscratch = DecodeScratch::new();
            let mut out = Vec::with_capacity(len);
            let ns = measure(
                || {
                    out.clear();
                    codec.decompress_with(&mut dscratch, &wire, len, &mut out).unwrap();
                },
                samples,
                min_batch,
            );
            push(key("decompress_scratch"), ns);
        }
    }

    // Portfolio vs best-single-ladder on a heterogeneous corpus. Blocks
    // rotate runs / text / noise; the per-block portfolio path probes each
    // block and compresses with the nominated level-2 codec, while each
    // single ladder codec has to pay its own cost on every block. The
    // comparison is **iso-quality**: the baseline is the fastest single
    // ladder codec whose total wire bytes are no larger than the
    // portfolio's (a codec that trades ratio away for speed is not a
    // substitute). That codec is pinned `baseline: true` under the same
    // bench key, with the portfolio row appended *after* it, so
    // `bench_gate` fails the build if portfolio selection ever drops below
    // the best single codec of equal-or-better ratio.
    const PF_BLOCK: usize = 4096;
    let thirds: Vec<Vec<u8>> =
        Class::ALL.into_iter().map(|c| generate(c, len / 3 + 2 * PF_BLOCK, SEED)).collect();
    let mut hetero = Vec::with_capacity(len + 3 * PF_BLOCK);
    let mut off = 0;
    while hetero.len() < len {
        for t in &thirds {
            hetero.extend_from_slice(&t[off..off + PF_BLOCK]);
        }
        off += PF_BLOCK;
    }
    hetero.truncate(len);

    let mut scratch = Scratch::new();
    let mut out = Vec::with_capacity(2 * PF_BLOCK);
    let wire_bytes = |pick: &dyn Fn(&[u8]) -> CodecId, scratch: &mut Scratch| -> usize {
        let mut total = 0;
        let mut out = Vec::new();
        for block in hetero.chunks(PF_BLOCK) {
            out.clear();
            codec_for(pick(block)).compress_with(scratch, block, &mut out);
            total += out.len();
        }
        total
    };
    let pf_wire = wire_bytes(&|block| portfolio::select(block, 2), &mut scratch);
    let mut best: Option<(CodecId, f64)> = None;
    for id in [CodecId::QlzLight, CodecId::QlzMedium, CodecId::Heavy] {
        if wire_bytes(&|_| id, &mut scratch) > pf_wire {
            continue; // worse ratio than the portfolio: not a substitute
        }
        let codec = codec_for(id);
        let ns = measure(
            || {
                for block in hetero.chunks(PF_BLOCK) {
                    out.clear();
                    codec.compress_with(&mut scratch, block, &mut out);
                }
            },
            samples,
            min_batch,
        );
        if best.is_none_or(|(_, b)| ns < b) {
            best = Some((id, ns));
        }
    }
    let (best_id, best_ns) = best.expect("HEAVY always compresses at least as well as level 2");
    let ns_pf = measure(
        || {
            for block in hetero.chunks(PF_BLOCK) {
                out.clear();
                codec_for(portfolio::select(block, 2)).compress_with(&mut scratch, block, &mut out);
            }
        },
        samples,
        min_batch,
    );
    let pf_key = "portfolio/compress/heterogeneous";
    let pf_row = |label: String, ns: f64, baseline: bool| {
        let mbps = (len as f64 / (ns / 1e9)) / 1e6;
        println!("{pf_key:<32} {ns:>14.1} ns/iter {mbps:>10.1} MB/s ({label})");
        Row {
            date: date.clone(),
            label,
            bench: pf_key.to_string(),
            mbps,
            ns_per_iter: Some(ns),
            secs: None,
            baseline,
            note: Some(note.clone()),
        }
    };
    rows.push(pf_row(format!("{label}-best-single[{}]", best_id.level_name()), best_ns, true));
    rows.push(pf_row(label.clone(), ns_pf, false));

    if let Some(path) = append {
        let path = Path::new(&path);
        let mut ledger = if path.exists() {
            Ledger::load(path).unwrap_or_else(|e| {
                eprintln!("cannot load ledger: {e}");
                std::process::exit(1);
            })
        } else {
            Ledger::new(
                "Codec hot-loop throughput ledger: append-only rows from codec_bench \
                 (512 KiB seed-42 samples, median ns/iter). Rows with \"baseline\": true \
                 pin the regression gate; run bench_gate --ledger <this file> to check. \
                 Append: cargo run --release -p adcomp-bench --bin codec_bench -- \
                 --append BENCH_codecs.json --label <label>.",
                host_fields(),
            )
        };
        let appended = rows.len();
        ledger.rows.extend(rows);
        ledger.lint().unwrap_or_else(|e| {
            eprintln!("refusing to write a ledger that fails lint: {e}");
            std::process::exit(1);
        });
        ledger.save(path).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        eprintln!("appended {appended} rows to {}", path.display());
    }
}
