//! Epoch driving: glue between a clock, the application byte stream and a
//! [`crate::model::DecisionModel`].
//!
//! The paper reconsiders the compression level every `t` seconds (t = 2 s in
//! all experiments). [`EpochDriver`] owns that loop: it meters application
//! bytes, detects epoch boundaries from any clock, builds the observation
//! and records the model's decision together with a level trace for the
//! time-series figures.

use crate::controller::DecisionCase;
use crate::model::{DecisionModel, EpochObservation, GuestMetrics};
use adcomp_metrics::{RateMeter, TimeSeries};
use adcomp_trace::{
    DecisionEvent, EpochEvent, TraceHandle, TraceSink as _, MAX_LEVELS,
};
use std::time::Instant;

/// A monotonically nondecreasing time source in seconds.
pub trait Clock: Send {
    fn now(&self) -> f64;
}

/// Wall-clock time since creation.
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        WallClock { start: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// A manually advanced clock for tests and simulation.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl ManualClock {
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Sets the current time (seconds). Time must not go backwards.
    pub fn set(&self, secs: f64) {
        self.now
            .store(secs.to_bits(), std::sync::atomic::Ordering::Release);
    }

    pub fn advance(&self, secs: f64) {
        let cur = f64::from_bits(self.now.load(std::sync::atomic::Ordering::Acquire));
        self.set(cur + secs);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> f64 {
        f64::from_bits(self.now.load(std::sync::atomic::Ordering::Acquire))
    }
}

/// Auxiliary inputs for building the epoch observation; the caller (stream
/// or simulator) refreshes these as its state changes.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochContext {
    pub queue_depth: usize,
    pub queue_capacity: usize,
    pub guest: Option<GuestMetrics>,
    pub observed_ratio: Option<f64>,
    pub data_entropy: Option<f64>,
}

/// Everything one completed epoch surfaced: the observation, the decision
/// and — for rate-based models — the full Algorithm-1 detail that used to
/// be computed and dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "an EpochStep carries the DecisionCase callers asked to surface"]
pub struct EpochStep {
    /// 0-based index of the epoch that just closed.
    pub epoch: u64,
    /// Time at the boundary (seconds).
    pub t: f64,
    /// Application data rate over the epoch (bytes/s).
    pub rate: f64,
    /// Epoch duration (seconds).
    pub duration: f64,
    /// Level in force during the epoch.
    pub prev_level: usize,
    /// Level chosen for the next epoch.
    pub level: usize,
    /// Algorithm-1 branch, when the model is rate-based.
    pub case: Option<DecisionCase>,
    /// The rate the decision consumed.
    pub cdr: f64,
    /// The previous rate it compared against, if any.
    pub pdr: Option<f64>,
    /// Backoff exponent table snapshot, if the model keeps one.
    pub backoffs: Option<[u32; MAX_LEVELS]>,
    /// Application bytes accounted to the epoch.
    pub bytes: u64,
    /// Number of levels the model drives.
    pub num_levels: usize,
}

impl EpochStep {
    /// The step as a trace [`EpochEvent`].
    pub fn epoch_event(&self) -> EpochEvent {
        EpochEvent {
            epoch: self.epoch,
            t: self.t,
            duration: self.duration,
            bytes: self.bytes,
            rate: self.rate,
            level: self.prev_level as u32,
        }
    }

    /// The step as a trace [`DecisionEvent`] (`case` is `"static"` for
    /// models without Algorithm-1 state).
    pub fn decision_event(&self) -> DecisionEvent {
        DecisionEvent {
            epoch: self.epoch,
            t: self.t,
            cdr: self.cdr,
            pdr: self.pdr.unwrap_or(f64::NAN),
            ccl: self.level as u32,
            prev_level: self.prev_level as u32,
            case: self.case.map_or("static", DecisionCase::name),
            backoffs: self.backoffs.unwrap_or([0; MAX_LEVELS]),
            num_levels: self.num_levels.min(MAX_LEVELS) as u32,
        }
    }
}

/// Drives a [`DecisionModel`] from a stream of byte completions.
pub struct EpochDriver {
    meter: RateMeter,
    model: Box<dyn DecisionModel>,
    level: usize,
    level_trace: TimeSeries,
    rate_trace: TimeSeries,
    epochs: u64,
    trace: TraceHandle,
}

impl EpochDriver {
    /// `epoch_len` is the paper's `t` in seconds; the model starts at its
    /// initial level (0 for fresh models).
    pub fn new(model: Box<dyn DecisionModel>, epoch_len: f64, now: f64) -> Self {
        let level = model.initial_level();
        let mut level_trace = TimeSeries::new();
        level_trace.push(now, level as f64);
        EpochDriver {
            meter: RateMeter::new(epoch_len, now),
            model,
            level,
            level_trace,
            rate_trace: TimeSeries::new(),
            epochs: 0,
            trace: TraceHandle::disabled(),
        }
    }

    /// Attaches a trace sink; every completed epoch then emits an
    /// [`EpochEvent`] followed by a [`DecisionEvent`].
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The currently attached trace handle (disabled by default).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// Currently applied compression level.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Number of completed epochs.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// `(time, level)` history.
    pub fn level_trace(&self) -> &TimeSeries {
        &self.level_trace
    }

    /// `(time, application bytes/s)` history, one point per epoch.
    pub fn rate_trace(&self) -> &TimeSeries {
        &self.rate_trace
    }

    pub fn model_name(&self) -> String {
        self.model.name()
    }

    /// Records `app_bytes` of application data accepted at time `now`;
    /// on an epoch boundary, consults the model. Returns the level to use
    /// for subsequent data.
    pub fn record(&mut self, app_bytes: u64, now: f64, ctx: &EpochContext) -> usize {
        let _ = self.record_step(app_bytes, now, ctx);
        self.level
    }

    /// Like [`EpochDriver::record`], but surfaces the full [`EpochStep`]
    /// when an epoch boundary was crossed instead of dropping it.
    pub fn record_step(
        &mut self,
        app_bytes: u64,
        now: f64,
        ctx: &EpochContext,
    ) -> Option<EpochStep> {
        let epoch = self.meter.record(app_bytes, now)?;
        Some(self.on_epoch(&epoch, now, ctx))
    }

    /// Forces the applied level outside the epoch cadence — the degrade
    /// path: after a codec failure the writer drops to level 0 (NONE)
    /// immediately and lets the next epoch decision climb back. The change
    /// is recorded in the level trace like any other switch.
    pub fn force_level(&mut self, level: usize, now: f64) {
        assert!(level < self.model.num_levels(), "forced level out of range");
        if level != self.level {
            self.level = level;
            self.level_trace.push(now, level as f64);
        }
    }

    /// Forces an epoch check without new bytes (e.g. while stalled).
    pub fn poll(&mut self, now: f64, ctx: &EpochContext) -> usize {
        let _ = self.poll_step(now, ctx);
        self.level
    }

    /// Like [`EpochDriver::poll`], but surfaces the full [`EpochStep`].
    pub fn poll_step(&mut self, now: f64, ctx: &EpochContext) -> Option<EpochStep> {
        let epoch = self.meter.poll(now)?;
        Some(self.on_epoch(&epoch, now, ctx))
    }

    fn on_epoch(&mut self, epoch: &adcomp_metrics::EpochRate, now: f64, ctx: &EpochContext) -> EpochStep {
        let obs = EpochObservation {
            app_rate: epoch.rate,
            epoch_secs: epoch.duration,
            queue_depth: ctx.queue_depth,
            queue_capacity: ctx.queue_capacity,
            guest: ctx.guest,
            observed_ratio: ctx.observed_ratio,
            data_entropy: ctx.data_entropy,
        };
        let metrics = adcomp_metrics::registry::global();
        // Wall-timing the decision is skipped in virtual-mode registries
        // (sim cells feed this same code path; see registry docs).
        let decide_start = metrics
            .is_some_and(adcomp_metrics::MetricsRegistry::wall_spans)
            .then(std::time::Instant::now);
        let decision = self.model.decide_detailed(&obs);
        if let (Some(m), Some(s)) = (metrics, decide_start) {
            m.span_ns(adcomp_metrics::SpanKind::EpochDecision, s.elapsed().as_nanos() as u64);
        }
        debug_assert!(decision.level < self.model.num_levels());
        let step = EpochStep {
            epoch: self.epochs,
            t: now,
            rate: epoch.rate,
            duration: epoch.duration,
            prev_level: self.level,
            level: decision.level,
            case: decision.case,
            cdr: decision.cdr,
            pdr: decision.pdr,
            backoffs: decision.backoffs,
            bytes: epoch.bytes,
            num_levels: self.model.num_levels(),
        };
        self.epochs += 1;
        self.rate_trace.push(now, epoch.rate);
        if decision.level != self.level {
            self.level = decision.level;
            self.level_trace.push(now, decision.level as f64);
        }
        if self.trace.enabled() {
            self.trace.emit(&step.epoch_event().into());
            self.trace.emit(&step.decision_event().into());
        }
        if let Some(m) = metrics {
            use adcomp_metrics::registry::{CounterKind, GaugeKind, HistKind, LabelFamily};
            m.counter_add(CounterKind::Epochs, 1);
            m.level_epoch(step.level);
            if let Some(case) = step.case {
                m.label_count(LabelFamily::DecisionCase, case.name(), 1);
            }
            if step.rate.is_finite() && step.rate >= 0.0 {
                m.observe(HistKind::EpochRate, step.rate as u64);
            }
            // Last-write-wins: dropped by virtual-mode registries, where
            // parallel sim cells would race on it.
            m.gauge_set(GaugeKind::CurrentLevel, step.level as i64);
        }
        step
    }

    /// Total application bytes metered.
    pub fn total_bytes(&self) -> u64 {
        self.meter.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RateBasedModel, StaticModel};

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_set_and_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0.0);
        c.set(5.0);
        assert_eq!(c.now(), 5.0);
        c.advance(2.5);
        assert_eq!(c.now(), 7.5);
    }

    #[test]
    fn driver_consults_model_only_on_epoch_boundaries() {
        let mut d = EpochDriver::new(Box::new(RateBasedModel::paper_default()), 2.0, 0.0);
        assert_eq!(d.record(1000, 0.5, &EpochContext::default()), 0);
        assert_eq!(d.record(1000, 1.5, &EpochContext::default()), 0);
        // Crosses t = 2 s: first decision probes to level 1.
        assert_eq!(d.record(1000, 2.1, &EpochContext::default()), 1);
        assert_eq!(d.epochs(), 1);
    }

    #[test]
    fn driver_traces_levels_and_rates() {
        let mut d = EpochDriver::new(Box::new(RateBasedModel::paper_default()), 1.0, 0.0);
        d.record(1_000, 1.0, &EpochContext::default());
        d.record(5_000, 2.0, &EpochContext::default());
        d.record(5_000, 3.0, &EpochContext::default());
        assert_eq!(d.rate_trace().len(), 3);
        assert!(d.level_trace().len() >= 2, "initial point plus the first probe");
        assert_eq!(d.total_bytes(), 11_000);
    }

    #[test]
    fn static_model_driver_never_changes_level() {
        let mut d = EpochDriver::new(Box::new(StaticModel::new(0, 4)), 1.0, 0.0);
        for i in 1..10 {
            assert_eq!(d.record(100, i as f64, &EpochContext::default()), 0);
        }
        assert_eq!(d.level_trace().len(), 1);
    }

    #[test]
    fn record_step_surfaces_algorithm_state() {
        let mut d = EpochDriver::new(Box::new(RateBasedModel::paper_default()), 2.0, 0.0);
        assert!(d.record_step(1000, 0.5, &EpochContext::default()).is_none());
        let step = d
            .record_step(1000, 2.1, &EpochContext::default())
            .expect("epoch boundary crossed");
        assert_eq!(step.epoch, 0);
        assert_eq!(step.prev_level, 0);
        assert_eq!(step.level, 1, "first decision probes to level 1");
        assert_eq!(step.case, Some(DecisionCase::Seed));
        assert!(step.pdr.is_none(), "seeding epoch has no previous rate");
        assert!(step.backoffs.is_some());
        assert_eq!(step.bytes, 2000);
        assert_eq!(step.num_levels, 4);
        let ev = step.decision_event();
        assert_eq!(ev.case, "seed");
        assert!(ev.pdr.is_nan());
        assert_eq!(ev.ccl, 1);
    }

    #[test]
    fn static_model_step_reports_static_case() {
        let mut d = EpochDriver::new(Box::new(StaticModel::new(2, 4)), 1.0, 0.0);
        let step = d.poll_step(1.5, &EpochContext::default()).unwrap();
        assert_eq!(step.case, None);
        assert_eq!(step.decision_event().case, "static");
        assert_eq!(step.level, 2);
    }

    #[test]
    fn traced_driver_emits_epoch_then_decision_events() {
        use adcomp_trace::{MemorySink, TraceEvent};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let mut d = EpochDriver::new(Box::new(RateBasedModel::paper_default()), 1.0, 0.0);
        d.set_trace(TraceHandle::new(sink.clone()));
        d.record(1000, 1.5, &EpochContext::default());
        d.record(1000, 2.5, &EpochContext::default());
        let events = sink.snapshot();
        assert_eq!(events.len(), 4, "one epoch + one decision event per epoch");
        assert!(matches!(events[0], TraceEvent::Epoch(_)));
        assert!(matches!(events[1], TraceEvent::Decision(_)));
        if let TraceEvent::Decision(ev) = &events[1] {
            assert_eq!(ev.epoch, 0);
            assert_eq!(ev.case, "seed");
        }
        if let TraceEvent::Decision(ev) = &events[3] {
            assert_eq!(ev.epoch, 1);
            assert_ne!(ev.case, "seed");
        }
    }

    #[test]
    fn poll_advances_epochs_without_bytes() {
        let mut d = EpochDriver::new(Box::new(RateBasedModel::paper_default()), 1.0, 0.0);
        d.poll(1.5, &EpochContext::default());
        assert_eq!(d.epochs(), 1);
        assert_eq!(d.rate_trace().points()[0].1, 0.0);
    }
}
