//! Prometheus text-exposition parser and conformance lint.
//!
//! One parser serves three consumers: the conformance lint run by CI on
//! `/metrics` bodies and on [`crate::TraceStats`] renders, the
//! `adcomp top` dashboard (which reads a scrape back into samples), and
//! the prom tests. Hand-rolled like the rest of the workspace's text
//! layers — no client library.
//!
//! The lint checks the subset of the exposition format this workspace
//! promises to uphold:
//!
//! * every line parses: `# HELP`/`# TYPE` comments or
//!   `name{labels} value` samples with valid metric/label names, escaped
//!   label values (`\\`, `\"`, `\n`) and a finite/`±Inf`/`NaN` value;
//! * `# TYPE` appears at most once per family and before the family's
//!   first sample; samples of an announced family are not interleaved
//!   after another family started (Prometheus requires grouping);
//! * no two samples share a name *and* label set;
//! * counter samples are non-negative;
//! * every histogram family has, per label set: an `+Inf` bucket, a
//!   `_sum` and a `_count` series, cumulative non-decreasing bucket
//!   counts, and `+Inf == _count`.

use std::collections::BTreeMap;

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    /// Label pairs in source order, values unescaped.
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    /// The label set minus `exclude`, as a canonical key.
    pub fn label_key(&self, exclude: &str) -> String {
        let mut parts: Vec<String> = self
            .labels
            .iter()
            .filter(|(k, _)| k != exclude)
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        parts.sort();
        parts.join(",")
    }

    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse::<f64>().ok(),
    }
}

/// Parses one sample line; `Err` carries the reason.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_and_labels, value_str) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| "unterminated label block".to_string())?;
            (
                (&line[..open], Some(&line[open + 1..close])),
                line[close + 1..].trim(),
            )
        }
        None => {
            let mut it = line.splitn(2, ' ');
            let name = it.next().unwrap_or("");
            let rest = it.next().unwrap_or("").trim();
            ((name, None), rest)
        }
    };
    let (name, label_block) = name_and_labels;
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let mut labels = Vec::new();
    if let Some(block) = label_block {
        let mut rest = block;
        while !rest.is_empty() {
            let eq = rest.find('=').ok_or_else(|| "label without '='".to_string())?;
            let key = &rest[..eq];
            if !valid_label_name(key) {
                return Err(format!("invalid label name {key:?}"));
            }
            let after = &rest[eq + 1..];
            if !after.starts_with('"') {
                return Err("label value not quoted".to_string());
            }
            // Walk the quoted value honoring \\ \" \n escapes.
            let bytes = after.as_bytes();
            let mut value = String::new();
            let mut i = 1;
            loop {
                match bytes.get(i) {
                    None => return Err("unterminated label value".to_string()),
                    Some(b'"') => break,
                    Some(b'\\') => {
                        match bytes.get(i + 1) {
                            Some(b'\\') => value.push('\\'),
                            Some(b'"') => value.push('"'),
                            Some(b'n') => value.push('\n'),
                            other => {
                                return Err(format!("bad escape \\{:?}", other.map(|b| *b as char)))
                            }
                        }
                        i += 2;
                        continue;
                    }
                    Some(b'\n') => return Err("raw newline in label value".to_string()),
                    Some(&b) => value.push(b as char),
                }
                i += 1;
            }
            labels.push((key.to_string(), value));
            rest = &after[i + 1..];
            if let Some(r) = rest.strip_prefix(',') {
                rest = r;
            } else if !rest.is_empty() {
                return Err(format!("junk after label value: {rest:?}"));
            }
        }
    }
    let value_str = value_str.trim();
    // Ignore an optional trailing timestamp (we never emit one).
    let value_tok = value_str.split_whitespace().next().unwrap_or("");
    let value = parse_value(value_tok)
        .ok_or_else(|| format!("unparseable sample value {value_tok:?}"))?;
    Ok(Sample { name: name.to_string(), labels, value })
}

/// Parses every sample line in an exposition body (comments skipped).
/// Lines that fail to parse are skipped; use [`conformance_lint`] when
/// malformed lines must be errors.
pub fn parse_samples(text: &str) -> Vec<Sample> {
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| parse_sample(l).ok())
        .collect()
}

/// The base family name of a sample (histogram suffixes stripped when
/// the family is typed `histogram`).
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

/// Lints `text` against the conformance rules in the module docs.
/// Returns every violation found (empty `Ok` means conformant).
pub fn conformance_lint(text: &str) -> Result<(), Vec<String>> {
    let mut errors: Vec<String> = Vec::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    // Family of each sample, in emission order (for grouping checks).
    let mut sample_families: Vec<String> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut it = rest.splitn(3, ' ');
            match (it.next(), it.next(), it.next()) {
                (Some("HELP"), Some(name), help) => {
                    if !valid_metric_name(name) {
                        errors.push(format!("line {n}: HELP for invalid name {name:?}"));
                    } else if helps.insert(name.to_string(), help.unwrap_or("").to_string()).is_some()
                    {
                        errors.push(format!("line {n}: duplicate HELP for {name}"));
                    }
                }
                (Some("TYPE"), Some(name), Some(kind)) => {
                    if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        errors.push(format!("line {n}: unknown TYPE {kind:?} for {name}"));
                    }
                    if !valid_metric_name(name) {
                        errors.push(format!("line {n}: TYPE for invalid name {name:?}"));
                    } else if types.insert(name.to_string(), kind.to_string()).is_some() {
                        errors.push(format!("line {n}: duplicate TYPE for {name}"));
                    }
                }
                _ => errors.push(format!("line {n}: unrecognized comment {line:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            errors.push(format!("line {n}: malformed comment {line:?}"));
            continue;
        }
        match parse_sample(line) {
            Ok(s) => {
                let fam = family_of(&s.name, &types).to_string();
                if types.contains_key(&fam) {
                    // TYPE seen — fine. A totally untyped family is also
                    // legal, but a family typed *after* its samples is not.
                } else if text.contains(&format!("# TYPE {fam} ")) {
                    errors.push(format!("line {n}: sample of {fam} precedes its TYPE header"));
                }
                sample_families.push(fam);
                samples.push(s);
            }
            Err(e) => errors.push(format!("line {n}: {e}")),
        }
    }

    // Families must be contiguous blocks.
    let mut seen_closed: Vec<&str> = Vec::new();
    let mut prev: Option<&str> = None;
    for fam in &sample_families {
        if prev != Some(fam.as_str()) {
            if seen_closed.contains(&fam.as_str()) {
                errors.push(format!("family {fam} has non-contiguous samples"));
            }
            if let Some(p) = prev {
                seen_closed.push(p);
            }
            prev = Some(fam);
        }
    }

    // Duplicate series (same name + exact label set).
    let mut series: Vec<String> = samples
        .iter()
        .map(|s| format!("{}|{}", s.name, s.label_key("")))
        .collect();
    series.sort();
    for w in series.windows(2) {
        if w[0] == w[1] {
            errors.push(format!("duplicate series {}", w[0]));
        }
    }

    // Counters must be non-negative.
    for s in &samples {
        if types.get(&s.name).map(String::as_str) == Some("counter")
            && !(s.value >= 0.0 || s.value.is_nan())
        {
            errors.push(format!("counter {} has negative value {}", s.name, s.value));
        }
    }

    // Histogram families: per label set (excluding `le`), require
    // +Inf/_sum/_count, cumulative buckets and +Inf == _count.
    for (name, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        // Per label set (excluding `le`): (le, value) buckets, _sum, _count.
        type HistGroup = (Vec<(f64, f64)>, Option<f64>, Option<f64>);
        let mut groups: BTreeMap<String, HistGroup> = BTreeMap::new();
        for s in &samples {
            let (suffix, base) = if let Some(b) = s.name.strip_suffix("_bucket") {
                ("bucket", b)
            } else if let Some(b) = s.name.strip_suffix("_sum") {
                ("sum", b)
            } else if let Some(b) = s.name.strip_suffix("_count") {
                ("count", b)
            } else {
                continue;
            };
            if base != name {
                continue;
            }
            let entry = groups.entry(s.label_key("le")).or_default();
            match suffix {
                "bucket" => match s.label("le").and_then(parse_value) {
                    Some(le) => entry.0.push((le, s.value)),
                    None => errors.push(format!("{name}_bucket sample without valid le label")),
                },
                "sum" => entry.1 = Some(s.value),
                _ => entry.2 = Some(s.value),
            }
        }
        if groups.is_empty() {
            errors.push(format!("histogram {name} announced but has no samples"));
        }
        for (key, (buckets, sum, count)) in groups {
            let ctx = if key.is_empty() { name.clone() } else { format!("{name}{{{key}}}") };
            let inf = buckets.iter().find(|(le, _)| le.is_infinite());
            if inf.is_none() {
                errors.push(format!("histogram {ctx} missing +Inf bucket"));
            }
            if sum.is_none() {
                errors.push(format!("histogram {ctx} missing _sum"));
            }
            let Some(count) = count else {
                errors.push(format!("histogram {ctx} missing _count"));
                continue;
            };
            if let Some((_, inf_v)) = inf {
                if *inf_v != count {
                    errors.push(format!(
                        "histogram {ctx}: +Inf bucket {inf_v} != _count {count}"
                    ));
                }
            }
            let mut sorted = buckets.clone();
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in sorted.windows(2) {
                if w[1].1 < w[0].1 {
                    errors.push(format!(
                        "histogram {ctx}: bucket counts not cumulative (le={} count {} < le={} count {})",
                        w[1].0, w[1].1, w[0].0, w[0].1
                    ));
                    break;
                }
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_samples_with_escaped_labels() {
        let s = parse_sample(r#"adcomp_x_total{case="a\"b\\c\nd",level="2"} 42"#).unwrap();
        assert_eq!(s.name, "adcomp_x_total");
        assert_eq!(s.labels[0], ("case".to_string(), "a\"b\\c\nd".to_string()));
        assert_eq!(s.labels[1], ("level".to_string(), "2".to_string()));
        assert_eq!(s.value, 42.0);
        assert_eq!(parse_sample("adcomp_up 1").unwrap().labels.len(), 0);
        assert!(parse_value("+Inf").unwrap().is_infinite());
    }

    #[test]
    fn lint_accepts_a_conformant_histogram() {
        let text = "\
# HELP adcomp_h H.
# TYPE adcomp_h histogram
adcomp_h_bucket{le=\"0.5\"} 2
adcomp_h_bucket{le=\"+Inf\"} 4
adcomp_h_sum 3.5
adcomp_h_count 4
";
        assert_eq!(conformance_lint(text), Ok(()));
    }

    #[test]
    fn lint_flags_missing_sum_inf_and_count() {
        let text = "\
# HELP adcomp_h H.
# TYPE adcomp_h histogram
adcomp_h_bucket{le=\"0.5\"} 2
adcomp_h_count 2
";
        let errs = conformance_lint(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("missing +Inf")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("missing _sum")), "{errs:?}");
    }

    #[test]
    fn lint_flags_non_cumulative_buckets_and_inf_count_mismatch() {
        let text = "\
# TYPE adcomp_h histogram
adcomp_h_bucket{le=\"1\"} 5
adcomp_h_bucket{le=\"2\"} 3
adcomp_h_bucket{le=\"+Inf\"} 9
adcomp_h_sum 1
adcomp_h_count 8
";
        let errs = conformance_lint(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("not cumulative")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("+Inf bucket 9 != _count 8")), "{errs:?}");
    }

    #[test]
    fn lint_flags_duplicates_raw_newlines_and_bad_names() {
        let errs = conformance_lint("adcomp_g 1\nadcomp_g 1\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("duplicate series")), "{errs:?}");
        let errs = conformance_lint("1bad_name 1\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("invalid metric name")), "{errs:?}");
        let errs = conformance_lint("adcomp_g{x=\"unterminated} 1\n").unwrap_err();
        assert!(!errs.is_empty());
        // A negative counter is caught; a negative gauge is fine.
        let errs =
            conformance_lint("# TYPE adcomp_c counter\nadcomp_c -1\n").unwrap_err();
        assert!(errs.iter().any(|e| e.contains("negative")), "{errs:?}");
        assert_eq!(conformance_lint("# TYPE adcomp_g gauge\nadcomp_g -1\n"), Ok(()));
    }

    #[test]
    fn lint_flags_interleaved_families() {
        let text = "adcomp_a 1\nadcomp_b 1\nadcomp_a{k=\"v\"} 1\n";
        let errs = conformance_lint(text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("non-contiguous")), "{errs:?}");
    }
}
