//! FIG5 — Performance of the adaptive compression scheme with hardly
//! compressible data (LOW) and two concurrent TCP connections (paper
//! Figure 5).
//!
//! With small performance differences between levels on incompressible
//! data, the algorithm "may spuriously consider changes in the application
//! data rate as fluctuations and continue the probing process" — the trace
//! shows sustained probing rather than Fig. 4's quick lock-in.
//!
//! Run: `cargo run --release -p adcomp-bench --bin fig5_timeseries [--quick]`

use adcomp_bench::{
    experiment_bytes, probes_per_window, render_timeseries, trace_path, write_run_trace,
};
use adcomp_core::model::RateBasedModel;
use adcomp_corpus::Class;
use adcomp_trace::{MemorySink, RunManifest, TraceHandle};
use adcomp_vcloud::{run_transfer_traced, ConstantClass, SpeedModel, TransferConfig};
use std::sync::Arc;

fn main() {
    let total = experiment_bytes();
    let cfg = TransferConfig {
        total_bytes: total,
        background_flows: 2,
        seed: 5,
        ..TransferConfig::paper_default()
    };
    let speed = SpeedModel::paper_fit();
    let trace = trace_path();
    let sink = trace.as_ref().map(|_| Arc::new(MemorySink::new()));
    let handle = sink
        .as_ref()
        .map_or_else(TraceHandle::disabled, |s| TraceHandle::new(s.clone()));
    let out = run_transfer_traced(
        &cfg,
        &speed,
        &mut ConstantClass(Class::Low),
        Box::new(RateBasedModel::paper_default()),
        handle,
    );
    if let (Some(path), Some(sink)) = (trace, sink) {
        let manifest = RunManifest::new("fig5_timeseries", cfg.seed)
            .coord("class", Class::Low.name())
            .coord("flows", cfg.background_flows)
            .cfg("model", "rate_based")
            .volume(total);
        write_run_trace(&path, &manifest, &sink.take());
    }

    println!(
        "FIG5: adaptive scheme, LOW data, two concurrent TCP connections ({} GB)\n",
        total / 1_000_000_000
    );
    println!("{}", render_timeseries(&out, 40));
    println!(
        "completion: {:.0} s, mean app rate {:.0} MBit/s, wire ratio {:.3}, epochs {}",
        out.completion_secs,
        out.mean_app_rate() * 8.0 / 1e6,
        out.wire_ratio(),
        out.epochs
    );
    let fig4_like_windows = probes_per_window(&out, out.completion_secs / 5.0);
    println!("\nlevel switches per fifth of the run: {fig4_like_windows:?}");
    println!(
        "\nPaper findings to compare against:\n\
         - No stable lock-in: the level keeps being probed because the differences\n\
           between levels are close to the α = 0.2 dead band under fluctuation.\n\
         - Lowering α would reduce this at the risk of reacting to TCP noise."
    );
}
