//! Cross-crate check: our codecs on our synthetic corpus must land in the
//! compressibility bands the paper reports for its test files.

use adcomp_codecs::frame::{encode_block, DEFAULT_BLOCK_LEN};
use adcomp_codecs::{codec_for, CodecId};
use adcomp_corpus::{generate, Class};

fn ratio(class: Class, id: CodecId) -> f64 {
    let data = generate(class, 2 * 1024 * 1024, 42);
    let codec = codec_for(id);
    let mut wire = Vec::new();
    let mut app = 0u64;
    for b in data.chunks(DEFAULT_BLOCK_LEN) {
        let info = encode_block(codec, b, &mut wire);
        app += info.uncompressed_len as u64;
    }
    wire.len() as f64 / app as f64
}

#[test]
fn high_class_compresses_like_ptt5() {
    // Paper: ptt5 compresses to 10–15 % with common libraries.
    let light = ratio(Class::High, CodecId::QlzLight);
    let heavy = ratio(Class::High, CodecId::Heavy);
    assert!(light < 0.20, "LIGHT on HIGH: {light}");
    assert!(heavy < light, "HEAVY ({heavy}) should beat LIGHT ({light})");
    assert!(heavy > 0.005, "HEAVY on HIGH unrealistically small: {heavy}");
}

#[test]
fn moderate_class_compresses_like_alice29() {
    // Paper: alice29.txt ratio 30–50 % depending on algorithm.
    let light = ratio(Class::Moderate, CodecId::QlzLight);
    let medium = ratio(Class::Moderate, CodecId::QlzMedium);
    let heavy = ratio(Class::Moderate, CodecId::Heavy);
    assert!((0.25..0.60).contains(&light), "LIGHT on MODERATE: {light}");
    assert!(medium <= light + 0.01, "MEDIUM ({medium}) vs LIGHT ({light})");
    assert!(heavy < medium, "HEAVY ({heavy}) should beat MEDIUM ({medium})");
}

#[test]
fn low_class_compresses_like_jpeg() {
    // Paper: image.jpg ratio 90–95 %.
    let light = ratio(Class::Low, CodecId::QlzLight);
    let heavy = ratio(Class::Low, CodecId::Heavy);
    assert!(light > 0.85, "LIGHT on LOW: {light}");
    assert!(light <= 1.01, "LIGHT on LOW should not expand past fallback: {light}");
    assert!(heavy > 0.85, "HEAVY on LOW: {heavy}");
}

#[test]
fn every_codec_roundtrips_every_class() {
    for class in Class::ALL {
        let data = generate(class, 300_000, 7);
        for id in CodecId::ALL {
            let codec = codec_for(id);
            let mut wire = Vec::new();
            for b in data.chunks(DEFAULT_BLOCK_LEN) {
                encode_block(codec, b, &mut wire);
            }
            let mut out = Vec::new();
            let mut cursor = &wire[..];
            while !cursor.is_empty() {
                let (_, used) = adcomp_codecs::frame::decode_block(cursor, &mut out).unwrap();
                cursor = &cursor[used..];
            }
            assert_eq!(out, data, "class {class} codec {id}");
        }
    }
}

#[test]
fn speed_ordering_light_fastest_heavy_slowest() {
    use adcomp_codecs::calibrate::measure;
    let data = generate(Class::Moderate, 1024 * 1024, 3);
    let light = measure(CodecId::QlzLight, &data, 0.05);
    let medium = measure(CodecId::QlzMedium, &data, 0.05);
    let heavy = measure(CodecId::Heavy, &data, 0.05);
    assert!(
        light.compress_mbps > heavy.compress_mbps * 2.0,
        "LIGHT {} vs HEAVY {}",
        light.compress_mbps,
        heavy.compress_mbps
    );
    assert!(
        medium.compress_mbps > heavy.compress_mbps,
        "MEDIUM {} vs HEAVY {}",
        medium.compress_mbps,
        heavy.compress_mbps
    );
}
