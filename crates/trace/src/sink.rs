//! Sink trait and the standard sinks.
//!
//! The overhead contract:
//!
//! * [`TraceSink::enabled`] is the *gate*. Instrumented code must wrap any
//!   work done purely for tracing (timestamping, event construction) in
//!   `if sink.enabled() { … }`. For the monomorphized [`NullSink`] the
//!   method is a constant `false`, so the whole branch is dead code after
//!   inlining — disabled tracing compiles to nothing, which is what the
//!   zero-alloc and bench guards verify.
//! * [`TraceSink::emit`] takes `&self` and must not block the caller in
//!   the steady state ([`RingSink`](crate::ring::RingSink) drops on slot
//!   contention rather than waiting).
//!
//! For dynamic (runtime-chosen) tracing, [`TraceHandle`] wraps an
//! `Option<Arc<dyn TraceSink>>` and itself implements `TraceSink`, so the
//! same generic instrumentation points accept either the static `NullSink`
//! or a runtime handle.

use crate::events::TraceEvent;
use std::sync::{Arc, Mutex};

/// A consumer of trace events.
pub trait TraceSink: Send + Sync {
    /// Whether events are currently being consumed. Instrumentation must
    /// gate all trace-only work on this.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event. Must be cheap and non-blocking.
    fn emit(&self, ev: &TraceEvent);
}

/// The zero-cost disabled sink: `enabled()` is statically `false` and
/// `emit` is empty, so instrumented hot paths compile to the untraced
/// code exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn emit(&self, _ev: &TraceEvent) {}
}

/// Collects every event in memory, in emission order. The per-cell sink
/// of the experiment runner: each cell gets its own `MemorySink`, and the
/// grid serializes them in *cell order* after the parallel phase, which is
/// what makes JSONL traces bit-identical across `ADCOMP_THREADS`.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out the collected events.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Drains the collected events.
    #[must_use]
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }
}

impl TraceSink for MemorySink {
    fn emit(&self, ev: &TraceEvent) {
        self.events.lock().unwrap().push(*ev);
    }
}

/// Cheap, clonable handle to an optional dynamic sink.
///
/// `TraceHandle::disabled()` behaves exactly like [`NullSink`] (one
/// branch on an always-`None` option); `TraceHandle::new(sink)` forwards
/// to the shared sink. This is the plumbing type threaded through
/// `EpochDriver`, the simulators and the record channel, where the sink
/// is chosen at runtime by a `--trace` flag.
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Arc<dyn TraceSink>>);

impl TraceHandle {
    /// A handle that consumes nothing.
    pub fn disabled() -> Self {
        TraceHandle(None)
    }

    /// A handle forwarding to `sink`.
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        TraceHandle(Some(sink))
    }

    /// Wraps a concrete sink.
    pub fn to_sink<S: TraceSink + 'static>(sink: S) -> Self {
        TraceHandle(Some(Arc::new(sink)))
    }

    /// The inner sink, if any.
    pub fn sink(&self) -> Option<&Arc<dyn TraceSink>> {
        self.0.as_ref()
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("TraceHandle")
            .field(&self.0.as_ref().map(|s| s.enabled()))
            .finish()
    }
}

impl TraceSink for TraceHandle {
    #[inline]
    fn enabled(&self) -> bool {
        match &self.0 {
            Some(s) => s.enabled(),
            None => false,
        }
    }

    #[inline]
    fn emit(&self, ev: &TraceEvent) {
        if let Some(s) = &self.0 {
            s.emit(ev);
        }
    }
}

/// A sink that forwards to two sinks (e.g. ring buffer + JSONL file).
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn emit(&self, ev: &TraceEvent) {
        if self.0.enabled() {
            self.0.emit(ev);
        }
        if self.1.enabled() {
            self.1.emit(ev);
        }
    }
}

impl<S: TraceSink + ?Sized> TraceSink for Arc<S> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn emit(&self, ev: &TraceEvent) {
        (**self).emit(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EpochEvent, SimEvent};

    fn ev(epoch: u64) -> TraceEvent {
        EpochEvent { epoch, t: epoch as f64, duration: 1.0, bytes: 1, rate: 1.0, level: 0 }
            .into()
    }

    #[test]
    fn null_sink_is_disabled() {
        let s = NullSink;
        assert!(!s.enabled());
        s.emit(&ev(0)); // no-op, no panic
    }

    #[test]
    fn memory_sink_preserves_order() {
        let s = MemorySink::new();
        for i in 0..10 {
            s.emit(&ev(i));
        }
        let evs = s.snapshot();
        assert_eq!(evs.len(), 10);
        assert!(evs.iter().enumerate().all(|(i, e)| e.epoch() == i as u64));
        assert_eq!(s.take().len(), 10);
        assert!(s.is_empty());
    }

    #[test]
    fn handle_disabled_and_enabled() {
        let h = TraceHandle::disabled();
        assert!(!h.enabled());
        h.emit(&ev(0));

        let mem = Arc::new(MemorySink::new());
        let h = TraceHandle::new(mem.clone());
        assert!(h.enabled());
        h.emit(&ev(1));
        assert_eq!(mem.len(), 1);
    }

    #[test]
    fn tee_forwards_to_both() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let tee = TeeSink(a.clone(), b.clone());
        assert!(tee.enabled());
        tee.emit(
            &SimEvent {
                epoch: 0,
                t: 0.0,
                kind: "bandwidth",
                flow: SimEvent::NO_FLOW,
                value: 1.0,
                aux: 0.0,
            }
            .into(),
        );
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
