//! CRC-32 (IEEE 802.3 polynomial), table-driven, implemented here so block
//! frames can be integrity-checked without external dependencies.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Computes the CRC-32 of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(data);
    h.finish()
}

/// Incremental CRC-32 hasher.
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    pub fn new() -> Self {
        Hasher { state: 0xFFFF_FFFF }
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"hello crc world, split me at odd places";
        let mut h = Hasher::new();
        h.update(&data[..7]);
        h.update(&data[7..20]);
        h.update(&data[20..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 1000];
        data[123] = 0x55;
        let base = crc32(&data);
        data[500] ^= 0x01;
        assert_ne!(crc32(&data), base);
    }
}
