//! Job graphs: directed acyclic graphs of tasks connected by channels,
//! mirroring the paper's description of Nephele ("data flow programs which
//! are expressed as directed acyclic graphs [...] each vertex represents a
//! task [...] tasks can exchange data through communication channels which
//! are modeled as the edges").

use crate::channel::{ChannelType, CompressionMode};
use crate::error::{NepheleError, Result};
use crate::task::Task;

/// A vertex: a named task.
pub struct Vertex {
    pub name: String,
    pub task: Box<dyn Task>,
}

/// An edge: a typed channel between two vertices.
pub struct Edge {
    pub from: usize,
    pub to: usize,
    pub channel: ChannelType,
    pub compression: CompressionMode,
}

/// Handle to a vertex in a [`JobGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VertexId(pub(crate) usize);

/// A dataflow job under construction.
pub struct JobGraph {
    pub name: String,
    pub(crate) vertices: Vec<Vertex>,
    pub(crate) edges: Vec<Edge>,
}

impl JobGraph {
    pub fn new(name: impl Into<String>) -> Self {
        JobGraph { name: name.into(), vertices: Vec::new(), edges: Vec::new() }
    }

    /// Adds a task vertex.
    pub fn add_vertex(&mut self, name: impl Into<String>, task: Box<dyn Task>) -> VertexId {
        self.vertices.push(Vertex { name: name.into(), task });
        VertexId(self.vertices.len() - 1)
    }

    /// Connects `from` → `to` with the given channel type and compression
    /// mode. Input/output indices follow connection order.
    pub fn connect(
        &mut self,
        from: VertexId,
        to: VertexId,
        channel: ChannelType,
        compression: CompressionMode,
    ) -> Result<()> {
        if from.0 >= self.vertices.len() || to.0 >= self.vertices.len() {
            return Err(NepheleError::InvalidGraph("unknown vertex".into()));
        }
        if from == to {
            return Err(NepheleError::InvalidGraph("self-loop".into()));
        }
        self.edges.push(Edge { from: from.0, to: to.0, channel, compression });
        Ok(())
    }

    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Validates the graph: must be a non-empty DAG.
    pub fn validate(&self) -> Result<()> {
        if self.vertices.is_empty() {
            return Err(NepheleError::InvalidGraph("no vertices".into()));
        }
        // Kahn's algorithm for cycle detection.
        let n = self.vertices.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            indeg[e.to] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut seen = 0;
        while let Some(v) = queue.pop() {
            seen += 1;
            for e in self.edges.iter().filter(|e| e.from == v) {
                indeg[e.to] -= 1;
                if indeg[e.to] == 0 {
                    queue.push(e.to);
                }
            }
        }
        if seen != n {
            return Err(NepheleError::InvalidGraph("graph contains a cycle".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{Task, TaskContext};

    struct Noop;
    impl Task for Noop {
        fn run(&mut self, _ctx: &mut TaskContext) -> Result<()> {
            Ok(())
        }
    }

    fn noop() -> Box<dyn Task> {
        Box::new(Noop)
    }

    #[test]
    fn builds_and_validates_a_chain() {
        let mut g = JobGraph::new("chain");
        let a = g.add_vertex("a", noop());
        let b = g.add_vertex("b", noop());
        let c = g.add_vertex("c", noop());
        g.connect(a, b, ChannelType::InMemory, CompressionMode::Off).unwrap();
        g.connect(b, c, ChannelType::Network, CompressionMode::Static(1)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn rejects_self_loop_and_unknown_vertex() {
        let mut g = JobGraph::new("bad");
        let a = g.add_vertex("a", noop());
        assert!(g.connect(a, a, ChannelType::InMemory, CompressionMode::Off).is_err());
        assert!(g
            .connect(a, VertexId(5), ChannelType::InMemory, CompressionMode::Off)
            .is_err());
    }

    #[test]
    fn rejects_cycle() {
        let mut g = JobGraph::new("cycle");
        let a = g.add_vertex("a", noop());
        let b = g.add_vertex("b", noop());
        let c = g.add_vertex("c", noop());
        g.connect(a, b, ChannelType::InMemory, CompressionMode::Off).unwrap();
        g.connect(b, c, ChannelType::InMemory, CompressionMode::Off).unwrap();
        g.connect(c, a, ChannelType::InMemory, CompressionMode::Off).unwrap();
        assert!(g.validate().is_err());
    }

    #[test]
    fn rejects_empty_graph() {
        assert!(JobGraph::new("empty").validate().is_err());
    }

    #[test]
    fn diamond_is_valid() {
        let mut g = JobGraph::new("diamond");
        let a = g.add_vertex("a", noop());
        let b = g.add_vertex("b", noop());
        let c = g.add_vertex("c", noop());
        let d = g.add_vertex("d", noop());
        g.connect(a, b, ChannelType::InMemory, CompressionMode::Off).unwrap();
        g.connect(a, c, ChannelType::InMemory, CompressionMode::Off).unwrap();
        g.connect(b, d, ChannelType::InMemory, CompressionMode::Off).unwrap();
        g.connect(c, d, ChannelType::InMemory, CompressionMode::Off).unwrap();
        g.validate().unwrap();
    }
}
