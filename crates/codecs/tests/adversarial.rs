//! Adversarial inputs for the codecs: boundary lengths, pathological
//! repetition structures, maximum-distance matches, and hostile frame
//! streams.

use adcomp_codecs::frame::{decode_block, encode_block, FrameReader, HEADER_LEN};
use adcomp_codecs::{codec_for, CodecError, CodecId};

fn roundtrip_all(data: &[u8]) {
    for id in CodecId::ALL {
        let codec = codec_for(id);
        let mut wire = Vec::new();
        codec.compress(data, &mut wire);
        let mut out = Vec::new();
        codec
            .decompress(&wire, data.len(), &mut out)
            .unwrap_or_else(|e| panic!("codec {id} len {}: {e}", data.len()));
        assert_eq!(out, data, "codec {id} len {}", data.len());
    }
}

#[test]
fn boundary_lengths_around_match_minimums() {
    // Lengths around MIN_MATCH (4) and the hash-window edges.
    for len in 0..=70 {
        let data: Vec<u8> = (0..len).map(|i| (i % 3) as u8).collect();
        roundtrip_all(&data);
    }
}

#[test]
fn period_sweep_hits_every_overlap_case() {
    // Period-p repetition forces matches with distance p; p < MIN_MATCH
    // exercises the overlapping-copy path.
    for p in 1..=20usize {
        let pattern: Vec<u8> = (0..p).map(|i| (i * 37 + 11) as u8).collect();
        let data: Vec<u8> = pattern.iter().cycle().take(5000).cloned().collect();
        roundtrip_all(&data);
    }
}

#[test]
fn match_at_maximum_qlz_offset() {
    // A repeated motif separated by exactly 65535 filler bytes (the QLZ
    // window edge) and by 65536 (just past it).
    for gap in [65530usize, 65535, 65536, 65541] {
        let mut data = Vec::new();
        data.extend_from_slice(b"UNIQUE-MOTIF-0123456789");
        data.resize(data.len() + gap, b'.');
        data.extend_from_slice(b"UNIQUE-MOTIF-0123456789");
        roundtrip_all(&data);
    }
}

#[test]
fn long_match_cap_boundaries() {
    // Runs whose length sits exactly at the QLZ MAX_MATCH cap (259) and
    // the awkward remainders 260..=262 (cap + 1..3 leftover < MIN_MATCH).
    for run in [258usize, 259, 260, 261, 262, 263, 518, 519] {
        let mut data = b"prefix".to_vec();
        data.extend(std::iter::repeat_n(b'R', run));
        data.extend_from_slice(b"suffix");
        roundtrip_all(&data);
    }
}

#[test]
fn heavy_length_tree_boundaries() {
    // The HEAVY length coder switches trees at len 10 and 18 and caps at
    // 273; hit every switch point with a two-symbol alphabet.
    for run in [2usize, 9, 10, 17, 18, 272, 273, 274, 546] {
        let mut data = vec![b'x'];
        data.extend(std::iter::repeat_n(b'y', run));
        data.extend_from_slice(b"tail-entropy-1234");
        roundtrip_all(&data);
    }
}

#[test]
fn sawtooth_and_gradient_patterns() {
    let saw: Vec<u8> = (0..40_000).map(|i| (i % 251) as u8).collect();
    roundtrip_all(&saw);
    let grad: Vec<u8> = (0..40_000).map(|i| (i / 157) as u8).collect();
    roundtrip_all(&grad);
    let bits: Vec<u8> = (0..40_000).map(|i| ((i >> 3) & 1) as u8 * 255).collect();
    roundtrip_all(&bits);
}

#[test]
fn all_identical_then_all_distinct() {
    let mut data = vec![0x42u8; 10_000];
    data.extend((0..=255u8).cycle().take(10_000));
    roundtrip_all(&data);
}

#[test]
fn frame_stream_with_mixed_codecs_and_hostile_sizes() {
    // Blocks of size 0, 1, header-size, and block-max mixed across codecs.
    let sizes = [0usize, 1, 15, 16, 17, 4096, 131072];
    let mut wire = Vec::new();
    let mut expect = Vec::new();
    for (i, &sz) in sizes.iter().enumerate() {
        let data: Vec<u8> = (0..sz).map(|j| ((i * 31 + j * 7) % 256) as u8).collect();
        let codec = codec_for(CodecId::ALL[i % 4]);
        encode_block(codec, &data, &mut wire);
        expect.push(data);
    }
    let mut r = FrameReader::new(&wire[..]);
    for e in &expect {
        let mut out = Vec::new();
        let h = r.read_block(&mut out).unwrap().expect("block present");
        assert_eq!(&out, e);
        assert_eq!(h.uncompressed_len as usize, e.len());
    }
    let mut out = Vec::new();
    assert!(r.read_block(&mut out).unwrap().is_none(), "clean EOF");
}

#[test]
fn frame_header_field_corruptions_detected() {
    let data = b"frame corruption target ".repeat(100);
    let mut wire = Vec::new();
    encode_block(codec_for(CodecId::QlzMedium), &data, &mut wire);
    // Corrupt each header byte in turn; every one must surface an error
    // (magic, codec id, lengths, CRC are all load-bearing).
    let mut detected = 0;
    for i in 0..HEADER_LEN {
        let mut bad = wire.clone();
        bad[i] ^= 0xA5;
        let mut out = Vec::new();
        if decode_block(&bad, &mut out).is_err() {
            detected += 1;
        }
    }
    assert!(
        detected >= HEADER_LEN - 2,
        "only {detected}/{HEADER_LEN} header corruptions detected"
    );
}

#[test]
fn declared_payload_longer_than_buffer_is_truncation() {
    let data = b"short".to_vec();
    let mut wire = Vec::new();
    encode_block(codec_for(CodecId::Raw), &data, &mut wire);
    // Inflate the declared payload length beyond the available bytes.
    let mut bad = wire.clone();
    bad[8..12].copy_from_slice(&1_000u32.to_le_bytes());
    let mut out = Vec::new();
    assert!(matches!(decode_block(&bad, &mut out), Err(CodecError::Truncated)));
}

#[test]
fn uncompressed_len_mismatch_rejected() {
    // A valid QLZ payload whose header claims the wrong uncompressed size
    // must fail (CRC still matches the payload, so this exercises the
    // codec-level length checks).
    let data = b"abcdabcdabcdabcd".repeat(32);
    let mut wire = Vec::new();
    encode_block(codec_for(CodecId::QlzLight), &data, &mut wire);
    for delta in [-7i64, -1, 1, 7] {
        let mut bad = wire.clone();
        let v = (data.len() as i64 + delta) as u32;
        bad[4..8].copy_from_slice(&v.to_le_bytes());
        let mut out = Vec::new();
        assert!(
            decode_block(&bad, &mut out).is_err(),
            "length delta {delta} accepted"
        );
    }
}

#[test]
fn decompress_into_nonempty_output_appends() {
    let data = b"appended payload, repeated repeated".repeat(10);
    for id in CodecId::ALL {
        let codec = codec_for(id);
        let mut wire = Vec::new();
        codec.compress(&data, &mut wire);
        let mut out = b"PREFIX".to_vec();
        codec.decompress(&wire, data.len(), &mut out).unwrap();
        assert_eq!(&out[..6], b"PREFIX");
        assert_eq!(&out[6..], &data[..], "codec {id}");
    }
}
