//! FIG2 — Distribution of network I/O throughput as observed within the
//! sending virtual machine (paper Figure 2).
//!
//! Streams the experiment volume per platform, records application-layer
//! throughput every 20 MB (the paper's instrumentation) and prints the
//! box-plot statistics in MBit/s.
//!
//! Run: `cargo run --release -p adcomp-bench --bin fig2_net_throughput [--quick]`

use adcomp_bench::{distribution_events, experiment_bytes, trace_path};
use adcomp_metrics::{bps_to_mbit, Histogram, Table};
use adcomp_trace::{JsonlWriter, RunManifest};
use adcomp_vcloud::experiments::fig2_net_throughput;
use adcomp_vcloud::Platform;

fn main() {
    let total = experiment_bytes();
    println!(
        "FIG2: network send throughput distribution, {} GB per platform, one sample per 20 MB\n",
        total / 1_000_000_000
    );
    let mut tracer = trace_path().map(|p| {
        (JsonlWriter::create(&p).expect("create trace file"), p)
    });
    let mut table = Table::new(vec![
        "Platform", "n", "mean", "sd", "min", "q1", "median", "q3", "max",
    ]);
    let mut shapes = Vec::new();
    for platform in Platform::ALL {
        let dist = fig2_net_throughput(platform, total, 42);
        if let Some((w, _)) = tracer.as_mut() {
            let manifest = RunManifest::new("fig2_net_throughput", 42)
                .coord("platform", platform.name())
                .volume(total);
            w.write_run(&manifest, &distribution_events(&dist)).expect("write platform trace");
        }
        let s = dist.summary();
        table.row(vec![
            platform.name().to_string(),
            s.n.to_string(),
            format!("{:.0}", bps_to_mbit(s.mean)),
            format!("{:.0}", bps_to_mbit(s.sd)),
            format!("{:.0}", bps_to_mbit(s.min)),
            format!("{:.0}", bps_to_mbit(s.q1)),
            format!("{:.0}", bps_to_mbit(s.median)),
            format!("{:.0}", bps_to_mbit(s.q3)),
            format!("{:.0}", bps_to_mbit(s.max)),
        ]);
        let mut h = Histogram::new(0.0, 1000.0, 40);
        for &x in &dist.samples {
            h.push(bps_to_mbit(x));
        }
        shapes.push((platform, h.sparkline()));
    }
    if let Some((w, path)) = tracer.take() {
        let n = w.counts().total();
        w.finish().expect("flush trace file");
        eprintln!("FIG2: wrote {} events to {}", n, path.display());
    }
    println!("{}", table.render());
    println!("Distribution shapes (0..1000 MBit/s):");
    for (p, spark) in shapes {
        println!("  {:<28} {}", p.name(), spark);
    }
    println!(
        "\nPaper findings to compare against:\n\
         - Local platforms fluctuate only marginally more than native.\n\
         - EC2 swings by tens-to-hundreds of MBit/s (throughput between ~0 and 1 GBit/s)."
    );
}
