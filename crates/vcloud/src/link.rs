//! Shared network link with co-located competing flows.
//!
//! The paper's shared-I/O experiments co-locate up to three additional VMs
//! on the sender's host, each blasting a separate TCP connection. The
//! observed capacity degradation (Table II, `NO` rows: 569 → 908 → 1393 →
//! 1642 s) is *not* a perfect 1/(n+1) fair share — virtualized TCP under
//! contention loses extra efficiency. We model the foreground flow's
//! capacity as
//!
//! ```text
//! share(t) = base_bw × fluctuation(t) / (1 + β·n)
//! ```
//!
//! with β fit to the paper's NO rows (β ≈ 0.65), plus a per-flow CPU "steal"
//! factor on the guest (virtualization backends of co-located VMs compete
//! for host cycles serving I/O).

use crate::fluctuation::{Fluctuation, Outages};
use adcomp_corpus::Prng;

/// A seeded birth/death process over the number of co-located background
/// flows — cloud neighbours come and go.
///
/// The count random-walks one step at a time between `min_flows` and
/// `max_flows` with exponentially distributed sojourns, sampled at
/// monotone virtual times like a [`Fluctuation`]. Attach to a link with
/// [`SharedLink::with_flow_churn`]; two walks built from the same seed
/// produce identical contention histories.
#[derive(Debug, Clone)]
pub struct FlowChurn {
    min_flows: usize,
    max_flows: usize,
    mean_sojourn_s: f64,
    cur: usize,
    until_t: f64,
    rng: Prng,
}

impl FlowChurn {
    pub fn new(min_flows: usize, max_flows: usize, mean_sojourn_s: f64, seed: u64) -> Self {
        assert!(min_flows <= max_flows && mean_sojourn_s > 0.0);
        FlowChurn {
            min_flows,
            max_flows,
            mean_sojourn_s,
            cur: min_flows,
            until_t: 0.0,
            rng: Prng::new(seed ^ 0xF10C),
        }
    }

    /// Background-flow count at virtual time `t` (non-decreasing `t`).
    pub fn flows_at(&mut self, t: f64) -> usize {
        while t >= self.until_t {
            let up = self.rng.below(2) == 1;
            self.cur = if up {
                (self.cur + 1).min(self.max_flows)
            } else {
                self.cur.saturating_sub(1).max(self.min_flows)
            };
            self.until_t += self.rng.exp(self.mean_sojourn_s);
        }
        self.cur
    }
}

/// A point-to-point link shared with `n` co-located background flows.
pub struct SharedLink {
    base_bw_bps: f64,
    background_flows: usize,
    contention_beta: f64,
    fluct: Box<dyn Fluctuation>,
    churn: Option<FlowChurn>,
    /// Consecutive zero-bandwidth virtual time after which
    /// [`transmit_secs`](SharedLink::transmit_secs) gives up and reports
    /// an infinite transfer (dead link) instead of spinning.
    max_stall_secs: f64,
}

impl SharedLink {
    pub fn new(base_bw_bps: f64, background_flows: usize, fluct: Box<dyn Fluctuation>) -> Self {
        assert!(base_bw_bps > 0.0);
        SharedLink {
            base_bw_bps,
            background_flows,
            contention_beta: 0.65,
            fluct,
            churn: None,
            max_stall_secs: 86_400.0,
        }
    }

    /// Overrides the contention coefficient β.
    pub fn with_beta(mut self, beta: f64) -> Self {
        assert!(beta >= 0.0);
        self.contention_beta = beta;
        self
    }

    /// Layers deterministic full outages (factor exactly 0.0) over the
    /// link's existing fluctuation process. During an outage nothing
    /// moves; `transmit_secs` idles across the dead window and resumes
    /// when the link returns.
    pub fn with_outages(mut self, mean_up_s: f64, mean_outage_s: f64, seed: u64) -> Self {
        let inner = std::mem::replace(
            &mut self.fluct,
            Box::new(crate::fluctuation::Constant),
        );
        self.fluct = Box::new(Outages::new(inner, mean_up_s, mean_outage_s, seed));
        self
    }

    /// Makes the background-flow count time-varying. `background_flows`
    /// from the constructor becomes irrelevant; the churn process rules.
    pub fn with_flow_churn(mut self, churn: FlowChurn) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Caps how long `transmit_secs` waits through consecutive dead-link
    /// time before declaring the transfer infinite.
    pub fn with_max_stall_secs(mut self, secs: f64) -> Self {
        assert!(secs > 0.0);
        self.max_stall_secs = secs;
        self
    }

    pub fn background_flows(&self) -> usize {
        self.background_flows
    }

    /// Long-run mean share of the foreground flow, ignoring fluctuation.
    pub fn nominal_share_bps(&self) -> f64 {
        self.base_bw_bps / (1.0 + self.contention_beta * self.background_flows as f64)
    }

    /// Instantaneous foreground bandwidth at virtual time `t` (must be
    /// called with non-decreasing `t`).
    ///
    /// Zero-capable: under an [`Outages`] window (or any fluctuation that
    /// reaches 0.0) this returns exactly `0.0` — the link is dead, not
    /// merely slow. Callers that divide by the result must check for it;
    /// [`transmit_secs`](SharedLink::transmit_secs) idles across such
    /// windows instead.
    pub fn bandwidth_at(&mut self, t: f64) -> f64 {
        let n = match &mut self.churn {
            Some(c) => c.flows_at(t),
            None => self.background_flows,
        };
        let share = self.base_bw_bps / (1.0 + self.contention_beta * n as f64);
        (share * self.fluct.factor_at(t)).max(0.0)
    }

    /// Time to transmit `bytes` starting at time `t`, integrating the
    /// (piecewise-sampled) fluctuating bandwidth in small steps.
    ///
    /// Dead-link windows (`bandwidth_at == 0`) advance virtual time
    /// without moving bytes. Short stalls are walked at the sampling
    /// step; after ~1 s of continuous silence the probe interval doubles
    /// (capped at 60 s) so an hours-long outage costs thousands of
    /// samples, not millions. If the link stays dead for more than
    /// `max_stall_secs` of consecutive virtual time the transfer is
    /// declared lost and `f64::INFINITY` is returned — the simulation
    /// never hangs on a link that will not come back.
    pub fn transmit_secs(&mut self, bytes: u64, t: f64) -> f64 {
        // Sample the rate at most every 10 ms of virtual time so long
        // transmissions see fluctuation, while short blocks cost one sample.
        const STEP: f64 = 0.010;
        const MAX_PROBE: f64 = 60.0;
        let mut remaining = bytes as f64;
        let mut now = t;
        let mut stalled = 0.0f64;
        let mut probe = STEP;
        let mut guard = 0u64;
        while remaining > 0.0 {
            let bw = self.bandwidth_at(now);
            if bw <= 0.0 {
                if stalled >= self.max_stall_secs {
                    return f64::INFINITY;
                }
                // Exponential back-off probing once the outage outlives
                // plain stepping; overshoot past the outage end is at
                // most one probe interval.
                if stalled > 1.0 {
                    probe = (probe * 2.0).min(MAX_PROBE);
                }
                now += probe;
                stalled += probe;
            } else {
                stalled = 0.0;
                probe = STEP;
                let horizon = bw * STEP;
                if remaining <= horizon {
                    now += remaining / bw;
                    break;
                }
                remaining -= horizon;
                now += STEP;
            }
            guard += 1;
            debug_assert!(guard < 100_000_000, "transmit_secs runaway");
        }
        now - t
    }

    /// Guest CPU capacity factor under co-location: each background VM's
    /// I/O backend work shaves a slice off the cycles effectively available
    /// to the foreground guest's compression + TCP path.
    pub fn cpu_capacity_factor(&self) -> f64 {
        (1.0 - 0.10 * self.background_flows as f64).max(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluctuation::{Constant, OnOff};

    #[test]
    fn nominal_share_decreases_with_flows() {
        let bw = 100e6;
        let shares: Vec<f64> = (0..4)
            .map(|n| SharedLink::new(bw, n, Box::new(Constant)).nominal_share_bps())
            .collect();
        assert_eq!(shares[0], bw);
        assert!(shares.windows(2).all(|w| w[1] < w[0]));
        // β = 0.65 matches the Table II degradation pattern: ~0.61, ~0.43,
        // ~0.34 of solo capacity.
        assert!((shares[1] / bw - 0.606).abs() < 0.01);
        assert!((shares[3] / bw - 0.339).abs() < 0.01);
    }

    #[test]
    fn transmit_time_is_bytes_over_bandwidth_when_constant() {
        let mut l = SharedLink::new(100e6, 0, Box::new(Constant));
        let secs = l.transmit_secs(50_000_000, 0.0);
        assert!((secs - 0.5).abs() < 1e-9, "got {secs}");
    }

    #[test]
    fn transmit_time_scales_with_contention() {
        let mut solo = SharedLink::new(100e6, 0, Box::new(Constant));
        let mut busy = SharedLink::new(100e6, 2, Box::new(Constant));
        let a = solo.transmit_secs(10_000_000, 0.0);
        let b = busy.transmit_secs(10_000_000, 0.0);
        assert!((b / a - 2.3).abs() < 0.01, "ratio {}", b / a);
    }

    #[test]
    fn onoff_fluctuation_stretches_transfers() {
        // 50 % duty cycle on/off: long transfers take ~2× the constant time.
        let mut l = SharedLink::new(100e6, 0, Box::new(OnOff::new(1.0, 0.0, 0.05, 0.05, 3)));
        let secs = l.transmit_secs(200_000_000, 0.0);
        assert!((1.6..2.6).contains(&(secs / 2.0)), "got {secs}");
    }

    #[test]
    fn zero_bytes_transmit_instantly() {
        let mut l = SharedLink::new(100e6, 0, Box::new(Constant));
        assert_eq!(l.transmit_secs(0, 5.0), 0.0);
    }

    #[test]
    fn cpu_capacity_shrinks_with_background_flows() {
        let f: Vec<f64> = (0..4)
            .map(|n| SharedLink::new(1e6, n, Box::new(Constant)).cpu_capacity_factor())
            .collect();
        assert_eq!(f[0], 1.0);
        assert!(f.windows(2).all(|w| w[1] < w[0]));
        assert!(f[3] >= 0.5);
    }

    #[test]
    fn beta_override() {
        let l = SharedLink::new(100e6, 1, Box::new(Constant)).with_beta(1.0);
        assert!((l.nominal_share_bps() - 50e6).abs() < 1e-6);
    }

    #[test]
    fn outages_stall_transfers_deterministically() {
        // 50 % availability on a 50 ms timescale: a multi-second transfer
        // is guaranteed to cross many dead windows.
        let mk = || {
            SharedLink::new(100e6, 0, Box::new(Constant)).with_outages(0.05, 0.05, 42)
        };
        let clean =
            SharedLink::new(100e6, 0, Box::new(Constant)).transmit_secs(200_000_000, 0.0);
        let (a, b) =
            (mk().transmit_secs(200_000_000, 0.0), mk().transmit_secs(200_000_000, 0.0));
        assert_eq!(a, b, "same seed must stall identically");
        assert!(a.is_finite());
        assert!(a > clean * 1.5, "outages must cost time: {a} vs clean {clean}");
    }

    #[test]
    fn outage_windows_report_exact_zero_bandwidth() {
        let mut l = SharedLink::new(100e6, 0, Box::new(Constant)).with_outages(0.05, 0.05, 7);
        let mut zeros = 0u32;
        for i in 0..10_000 {
            let bw = l.bandwidth_at(i as f64 * 0.001);
            assert!(bw == 0.0 || (bw - 100e6).abs() < 1e-3, "bw {bw}");
            if bw == 0.0 {
                zeros += 1;
            }
        }
        assert!(zeros > 100, "expected dead windows, saw {zeros}");
    }

    #[test]
    fn permanently_dead_link_reports_infinite_transfer() {
        struct Dead;
        impl crate::fluctuation::Fluctuation for Dead {
            fn factor_at(&mut self, _t: f64) -> f64 {
                0.0
            }
        }
        let mut l =
            SharedLink::new(100e6, 0, Box::new(Dead)).with_max_stall_secs(30.0);
        let secs = l.transmit_secs(1_000, 0.0);
        assert!(secs.is_infinite(), "dead link must not pretend to finish: {secs}");
        // Zero bytes still transmit instantly even on a dead link.
        assert_eq!(l.transmit_secs(0, 1.0), 0.0);
    }

    #[test]
    fn long_outage_is_probed_cheaply_and_survived() {
        // One up window, then an outage lasting ~minutes: exponential
        // probing must cross it without hitting the runaway guard and the
        // transfer must complete once the link returns.
        struct LongBlackout {
            until: f64,
            resume: f64,
        }
        impl crate::fluctuation::Fluctuation for LongBlackout {
            fn factor_at(&mut self, t: f64) -> f64 {
                if t < self.until || t >= self.resume {
                    1.0
                } else {
                    0.0
                }
            }
        }
        let mut l = SharedLink::new(
            100e6,
            0,
            Box::new(LongBlackout { until: 0.1, resume: 600.0 }),
        );
        let secs = l.transmit_secs(50_000_000, 0.0);
        // 0.1 s of transfer, ~600 s dead, remainder after resume.
        assert!(secs.is_finite() && secs > 599.0 && secs < 700.0, "got {secs}");
    }

    #[test]
    fn flow_churn_varies_contention_deterministically() {
        let mk = || {
            SharedLink::new(100e6, 0, Box::new(Constant))
                .with_flow_churn(FlowChurn::new(0, 3, 0.05, 11))
        };
        let (mut a, mut b) = (mk(), mk());
        let mut distinct = std::collections::BTreeSet::new();
        for i in 0..5_000 {
            let t = i as f64 * 0.002;
            let (x, y) = (a.bandwidth_at(t), b.bandwidth_at(t));
            assert_eq!(x, y);
            distinct.insert((x / 1e3) as i64);
        }
        assert!(distinct.len() >= 3, "churn should visit several contention levels: {distinct:?}");
        // Churned transfers also stay deterministic end to end.
        assert_eq!(
            mk().transmit_secs(20_000_000, 0.0),
            mk().transmit_secs(20_000_000, 0.0)
        );
    }

    #[test]
    fn flow_churn_walk_respects_bounds() {
        let mut c = FlowChurn::new(1, 4, 0.01, 3);
        for i in 0..20_000 {
            let n = c.flows_at(i as f64 * 0.001);
            assert!((1..=4).contains(&n), "walk escaped bounds: {n}");
        }
    }
}
