//! JSONL (one JSON object per line) trace writer.
//!
//! [`JsonlWriter`] is the low-level serializer over any `io::Write`;
//! [`JsonlSink`] adapts it to [`TraceSink`] for live emission. Experiment
//! grids do **not** emit live — they collect per-cell
//! [`MemorySink`](crate::sink::MemorySink)s and serialize them in cell
//! order afterwards (see `write_run`), so the file bytes are independent
//! of `ADCOMP_THREADS`.

use crate::events::{EventCounts, TraceEvent};
use crate::manifest::RunManifest;
use crate::sink::TraceSink;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Serializes events (and manifests) as JSONL onto any writer.
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    inner: W,
    /// Reusable line buffer — one allocation for the whole run.
    line: String,
    counts: EventCounts,
}

impl JsonlWriter<BufWriter<std::fs::File>> {
    /// Creates (truncates) a trace file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(JsonlWriter::new(BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write> JsonlWriter<W> {
    pub fn new(inner: W) -> Self {
        JsonlWriter { inner, line: String::with_capacity(256), counts: EventCounts::default() }
    }

    /// Writes one event as one line.
    pub fn write_event(&mut self, ev: &TraceEvent) -> io::Result<()> {
        self.counts.add(ev);
        self.line.clear();
        self.line.push_str(&ev.to_json());
        self.line.push('\n');
        self.inner.write_all(self.line.as_bytes())
    }

    /// Writes a run manifest line (`"ev":"manifest"`).
    pub fn write_manifest(&mut self, m: &RunManifest) -> io::Result<()> {
        self.line.clear();
        self.line.push_str(&m.to_json());
        self.line.push('\n');
        self.inner.write_all(self.line.as_bytes())
    }

    /// Writes a whole run: the manifest (completed with the events'
    /// counts) followed by every event, in order.
    pub fn write_run(&mut self, manifest: &RunManifest, events: &[TraceEvent]) -> io::Result<()> {
        let mut m = manifest.clone();
        m.event_counts = EventCounts::from_events(events);
        self.write_manifest(&m)?;
        for ev in events {
            self.write_event(ev)?;
        }
        Ok(())
    }

    /// Event counts written so far (manifest lines not included).
    pub fn counts(&self) -> EventCounts {
        self.counts
    }

    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// A [`TraceSink`] that streams events straight to a JSONL writer.
///
/// Live sinks are for interactive use (`adcomp compress --trace`); they
/// serialize under a mutex, so prefer per-cell `MemorySink` collection in
/// parallel experiment grids.
pub struct JsonlSink<W: Write + Send> {
    w: Mutex<JsonlWriter<W>>,
}

impl JsonlSink<BufWriter<std::fs::File>> {
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(JsonlSink { w: Mutex::new(JsonlWriter::create(path)?) })
    }
}

impl<W: Write + Send> JsonlSink<W> {
    pub fn new(inner: W) -> Self {
        JsonlSink { w: Mutex::new(JsonlWriter::new(inner)) }
    }

    pub fn counts(&self) -> EventCounts {
        self.w.lock().unwrap().counts()
    }

    pub fn flush(&self) -> io::Result<()> {
        self.w.lock().unwrap().flush()
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn emit(&self, ev: &TraceEvent) {
        // I/O errors cannot propagate through the sink interface; a trace
        // is advisory, so a failed write must never abort the traced run.
        let _ = self.w.lock().unwrap().write_event(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{CodecEvent, EpochEvent};
    use crate::json::validate_line;

    fn evs() -> Vec<TraceEvent> {
        vec![
            EpochEvent { epoch: 0, t: 2.0, duration: 2.0, bytes: 100, rate: 50.0, level: 1 }
                .into(),
            CodecEvent {
                epoch: 0,
                t: 1.0,
                level: "LIGHT",
                in_bytes: 10,
                out_bytes: 5,
                compress_ns: 7,
                raw_fallback: false,
            }
            .into(),
        ]
    }

    #[test]
    fn writes_one_valid_line_per_event() {
        let mut w = JsonlWriter::new(Vec::new());
        for ev in evs() {
            w.write_event(&ev).unwrap();
        }
        assert_eq!(w.counts().total(), 2);
        let buf = w.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            validate_line(line).unwrap();
        }
    }

    #[test]
    fn write_run_prepends_manifest_with_counts() {
        let mut w = JsonlWriter::new(Vec::new());
        let m = RunManifest::new("unit", 7);
        w.write_run(&m, &evs()).unwrap();
        let text = String::from_utf8(w.finish().unwrap()).unwrap();
        let first = text.lines().next().unwrap();
        assert!(first.contains("\"ev\":\"manifest\""), "{first}");
        assert!(first.contains("\"total\":2"), "{first}");
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn sink_interface_collects() {
        let sink = JsonlSink::new(Vec::new());
        for ev in evs() {
            sink.emit(&ev);
        }
        assert_eq!(sink.counts().total(), 2);
    }
}
