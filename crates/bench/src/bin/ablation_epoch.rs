//! ABLATION — sensitivity to the epoch length t.
//!
//! The paper fixes t = 2 s and motivates a coarse (MB-scale) granularity:
//! "our decision model shall focus on a granularity level of MB in order to
//! allow for the possible throughput fluctuations". Short epochs observe
//! noisy rates (especially under EC2-style fluctuation); long epochs adapt
//! sluggishly to compressibility changes. This sweep shows both ends.
//!
//! Cells run in parallel on the deterministic experiment runner
//! (`ADCOMP_THREADS` pins the worker count; output is bit-identical for any
//! setting — see `adcomp_bench::runner`).
//!
//! Run: `cargo run --release -p adcomp-bench --bin ablation_epoch [--quick]`

use adcomp_bench::{experiment_bytes, runner, speed_model, to_paper_scale};
use adcomp_core::model::RateBasedModel;
use adcomp_corpus::Class;
use adcomp_metrics::Table;
use adcomp_vcloud::{run_transfer, AlternatingClass, ConstantClass, Platform, TransferConfig};

const TS: [f64; 5] = [0.5, 1.0, 2.0, 4.0, 8.0];
/// Steady HIGH on KVM, HIGH under EC2 fluctuation, HIGH<->LOW switching.
const SCENARIOS: usize = 3;

fn main() {
    let total = experiment_bytes();
    let speed = speed_model();
    println!("ABLATION t (epoch length): completion time [s, 50 GB scale]\n");
    // 5 epoch lengths × 3 scenarios fan out at once; per-cell seeds are
    // fixed below, so the grid is independent of scheduling.
    let cells = runner::run_cells(TS.len() * SCENARIOS, |idx| {
        let (ti, si) = (idx / SCENARIOS, idx % SCENARIOS);
        let t = TS[ti];
        let out = match si {
            0 => {
                // Steady scenario.
                let cfg = TransferConfig {
                    total_bytes: total,
                    epoch_secs: t,
                    seed: 31,
                    ..TransferConfig::paper_default()
                };
                run_transfer(
                    &cfg,
                    &speed,
                    &mut ConstantClass(Class::High),
                    Box::new(RateBasedModel::paper_default()),
                )
            }
            1 => {
                // Violent fluctuation (EC2 regime).
                let cfg = TransferConfig {
                    total_bytes: total,
                    epoch_secs: t,
                    platform: Platform::Ec2,
                    seed: 32,
                    ..TransferConfig::paper_default()
                };
                run_transfer(
                    &cfg,
                    &speed,
                    &mut ConstantClass(Class::High),
                    Box::new(RateBasedModel::paper_default()),
                )
            }
            _ => {
                // Changing compressibility.
                let cfg = TransferConfig {
                    total_bytes: total,
                    epoch_secs: t,
                    seed: 33,
                    ..TransferConfig::paper_default()
                };
                let mut sched = AlternatingClass {
                    classes: vec![Class::High, Class::Low],
                    period_bytes: total / 5,
                };
                run_transfer(&cfg, &speed, &mut sched, Box::new(RateBasedModel::paper_default()))
            }
        };
        to_paper_scale(out.completion_secs)
    });
    let mut table = Table::new(vec![
        "t [s]",
        "HIGH steady (KVM)",
        "HIGH on EC2 fluct.",
        "HIGH<->LOW switching",
    ]);
    for (ti, t) in TS.iter().enumerate() {
        let mut row = vec![format!("{t:.1}")];
        for si in 0..SCENARIOS {
            row.push(format!("{:.0}", cells[ti * SCENARIOS + si]));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: t around the paper's 2 s is near-optimal across scenarios;\n\
         sub-second epochs suffer under EC2-style fluctuation, long epochs lose time\n\
         on the switching workload."
    );
}
