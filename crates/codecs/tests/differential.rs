//! Differential oracle suite for the portfolio codecs.
//!
//! Each new family ships with an independent naive reference decoder
//! (`huff::huff_reference`, `columnar::columnar_reference`) and this suite
//! pins the optimized decoder to it under the same contract
//! `decompress_reference` enforces for qlz: **identical output bytes and
//! identical error** (partial output included) on every input — valid,
//! bit-flipped, truncated, arbitrary garbage, and wrong declared lengths.
//! That contract is what lets the hot loops change shape without changing
//! a single observable byte.

use adcomp_codecs::columnar::{self, columnar_reference};
use adcomp_codecs::huff::{self, huff_reference};
use adcomp_codecs::{codec_for, CodecError, CodecId, Scratch};
use adcomp_corpus::{generate, Class};
use proptest::prelude::*;

type RefDecoder = fn(&[u8], usize, &mut Vec<u8>) -> Result<(), CodecError>;

/// Runs an optimized decoder and its reference on the same input and
/// asserts identical results and identical (partial) output.
fn assert_agree(fast_fn: RefDecoder, slow_fn: RefDecoder, input: &[u8], expected_len: usize) {
    let mut fast = Vec::new();
    let mut slow = Vec::new();
    let fast_res = fast_fn(input, expected_len, &mut fast);
    let slow_res = slow_fn(input, expected_len, &mut slow);
    assert_eq!(fast_res, slow_res, "result mismatch (expected_len={expected_len})");
    assert_eq!(fast, slow, "output mismatch (expected_len={expected_len})");
}

fn huff_agree(input: &[u8], expected_len: usize) {
    assert_agree(huff::decompress, huff_reference, input, expected_len);
}

fn columnar_agree(input: &[u8], expected_len: usize) {
    assert_agree(columnar::decompress, columnar_reference, input, expected_len);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Valid HUFF streams: small alphabets make the matcher fire; both
    /// decoders must produce the input back.
    #[test]
    fn huff_agrees_on_valid_streams(
        data in proptest::collection::vec(0u8..6, 0..4096),
    ) {
        let mut wire = Vec::new();
        huff::compress(&data, &mut wire);
        huff_agree(&wire, data.len());
        let mut out = Vec::new();
        huff::decompress(&wire, data.len(), &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    /// Bit-flipped HUFF streams: both decoders fail identically or both
    /// still succeed, with identical partial output either way.
    #[test]
    fn huff_agrees_on_corrupt_streams(
        data in proptest::collection::vec(0u8..8, 1..2048),
        flip in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut wire = Vec::new();
        huff::compress(&data, &mut wire);
        let pos = flip.index(wire.len());
        wire[pos] ^= xor;
        huff_agree(&wire, data.len());
    }

    /// Truncated HUFF streams at every cut point the strategy lands on.
    #[test]
    fn huff_agrees_on_truncated_streams(
        data in proptest::collection::vec(0u8..4, 1..2048),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut wire = Vec::new();
        huff::compress(&data, &mut wire);
        let keep = cut.index(wire.len());
        huff_agree(&wire[..keep], data.len());
    }

    /// Wrong declared length: overrun/underrun bookkeeping must agree.
    #[test]
    fn huff_agrees_on_wrong_expected_len(
        data in proptest::collection::vec(0u8..4, 1..1024),
        declared in 0usize..2048,
    ) {
        let mut wire = Vec::new();
        huff::compress(&data, &mut wire);
        huff_agree(&wire, declared);
    }

    /// Arbitrary garbage bytes fed straight to both HUFF decoders.
    #[test]
    fn huff_agrees_on_garbage(
        junk in proptest::collection::vec(any::<u8>(), 0..512),
        declared in 0usize..1024,
    ) {
        huff_agree(&junk, declared);
    }

    /// Valid COLUMNAR streams over run/dict-shaped data (all four schemes
    /// get exercised across the strategy space).
    #[test]
    fn columnar_agrees_on_valid_streams(
        data in proptest::collection::vec(0u8..12, 0..4096),
    ) {
        let mut wire = Vec::new();
        columnar::compress(&data, &mut wire);
        columnar_agree(&wire, data.len());
        let mut out = Vec::new();
        columnar::decompress(&wire, data.len(), &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    /// Bit-flipped COLUMNAR streams.
    #[test]
    fn columnar_agrees_on_corrupt_streams(
        data in proptest::collection::vec(0u8..8, 1..2048),
        flip in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut wire = Vec::new();
        columnar::compress(&data, &mut wire);
        let pos = flip.index(wire.len());
        wire[pos] ^= xor;
        columnar_agree(&wire, data.len());
    }

    /// Truncated COLUMNAR streams.
    #[test]
    fn columnar_agrees_on_truncated_streams(
        data in proptest::collection::vec(0u8..6, 1..2048),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut wire = Vec::new();
        columnar::compress(&data, &mut wire);
        let keep = cut.index(wire.len());
        columnar_agree(&wire[..keep], data.len());
    }

    /// Wrong declared length for COLUMNAR.
    #[test]
    fn columnar_agrees_on_wrong_expected_len(
        data in proptest::collection::vec(0u8..6, 1..1024),
        declared in 0usize..2048,
    ) {
        let mut wire = Vec::new();
        columnar::compress(&data, &mut wire);
        columnar_agree(&wire, declared);
    }

    /// Arbitrary garbage bytes fed straight to both COLUMNAR decoders.
    #[test]
    fn columnar_agrees_on_garbage(
        junk in proptest::collection::vec(any::<u8>(), 0..512),
        declared in 0usize..1024,
    ) {
        columnar_agree(&junk, declared);
    }

    /// Scratch-path compression is bit-identical to the fresh-allocation
    /// path for the portfolio codecs, across reuse (the same `Scratch`
    /// compresses block after block).
    #[test]
    fn portfolio_scratch_compression_is_bit_identical(
        blocks in proptest::collection::vec(
            proptest::collection::vec(0u8..16, 0..2048), 1..6),
    ) {
        let mut scratch = Scratch::new();
        for id in [CodecId::Huffman, CodecId::Columnar] {
            let codec = codec_for(id);
            for block in &blocks {
                let mut fresh = Vec::new();
                codec.compress(block, &mut fresh);
                let mut reused = Vec::new();
                codec.compress_with(&mut scratch, block, &mut reused);
                prop_assert_eq!(&fresh, &reused, "codec {}", id);
            }
        }
    }
}

/// Real corpus blocks through both decoder pairs, all three classes.
#[test]
fn portfolio_decoders_agree_on_corpus_blocks() {
    for class in [Class::High, Class::Moderate, Class::Low] {
        let data = generate(class, 128 * 1024, 11);
        let mut wire = Vec::new();
        huff::compress(&data, &mut wire);
        huff_agree(&wire, data.len());
        let mut out = Vec::new();
        huff::decompress(&wire, data.len(), &mut out).unwrap();
        assert_eq!(out, data, "huff {class:?}");

        let mut wire = Vec::new();
        columnar::compress(&data, &mut wire);
        columnar_agree(&wire, data.len());
        let mut out = Vec::new();
        columnar::decompress(&wire, data.len(), &mut out).unwrap();
        assert_eq!(out, data, "columnar {class:?}");
    }
}

/// Pinned error-shape checks for hand-built corrupt streams: the optimized
/// decoders must report these exact variants, and the references must
/// agree.
#[test]
fn portfolio_error_variants_pinned() {
    // HUFF: empty input -> Truncated.
    let mut out = Vec::new();
    assert_eq!(huff::decompress(&[], 5, &mut out), Err(CodecError::Truncated));
    // HUFF: a lone EOB (symbol 256 = seven zero bits) before any output.
    let mut out = Vec::new();
    assert_eq!(
        huff::decompress(&[0x00], 4, &mut out),
        Err(CodecError::Corrupt("block ended before expected length"))
    );
    huff_agree(&[], 5);
    huff_agree(&[0x00], 4);
    huff_agree(&[0x00], 0);

    // COLUMNAR: empty input -> Truncated; unknown scheme byte -> Corrupt.
    let mut out = Vec::new();
    assert_eq!(columnar::decompress(&[], 5, &mut out), Err(CodecError::Truncated));
    let mut out = Vec::new();
    assert_eq!(
        columnar::decompress(&[7, 1, 2, 3], 5, &mut out),
        Err(CodecError::Corrupt("unknown columnar scheme"))
    );
    // COLUMNAR: zero-length run is structurally invalid.
    let mut out = Vec::new();
    assert_eq!(
        columnar::decompress(&[1, 42, 0], 5, &mut out),
        Err(CodecError::Corrupt("zero-length run"))
    );
    columnar_agree(&[], 5);
    columnar_agree(&[7, 1, 2, 3], 5);
    columnar_agree(&[1, 42, 0], 5);
}
