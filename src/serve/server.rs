//! The `adcomp serve` daemon: a thread-per-connection TCP server where
//! every accepted stream is decoded through its own [`AdaptiveReader`],
//! with robustness as the design center.
//!
//! The overload model, end to end:
//!
//! * **Admission control** — a global stream budget and a per-tenant
//!   quota, checked before any payload byte is read; refusals are typed
//!   [`RejectReason`] frames, not silent drops, so clients can tell
//!   "back off" from "give up".
//! * **Load shedding** — when the handler population itself is flooded
//!   (accepted-but-unadmitted connections), the accept loop drops new
//!   sockets outright rather than spawning unbounded threads.
//! * **Deadlines** — every socket read/write carries `io_timeout` (which
//!   doubles as the idle timeout: a silent client trips it), and each
//!   stream has an overall `max_stream_secs` wall budget against
//!   slow-drip senders.
//! * **Circuit breaker** — under shared CPU pressure (a pluggable probe,
//!   or a manual trip) admissions carry `level_cap = 0`, degrading
//!   tenants to RAW so the codec workers stop competing for the starved
//!   CPU. Hysteresis keeps it from flapping.
//! * **Graceful drain** — a drain request stops admissions (new PUTs get
//!   [`RejectReason::Draining`]) while in-flight streams run to
//!   completion; nothing accepted is ever truncated by shutdown.
//! * **Resume** — the server persists the CRC-verified prefix of every
//!   transfer keyed `(tenant, transfer_id)`; a reconnecting client is
//!   told where to continue, which is what makes completed transfers
//!   byte-identical by construction even on a hostile wire.

use super::cache::{BlockCache, CacheStats};
use super::proto::{
    read_request, write_done, write_get_payload, write_response, Done, RejectReason, Request,
    Response, NO_LEVEL_CAP,
};
use adcomp_codecs::crc32::{crc32, Hasher};
use adcomp_codecs::frame::{
    decode_block_with, RecoveryMode, RecoveryPolicy, DEFAULT_MAX_FRAME,
};
use adcomp_codecs::seek::StreamIndex;
use adcomp_codecs::DecodeScratch;
use adcomp_core::stream::AdaptiveReader;
use adcomp_core::{SharedThrottle, ThrottledReader};
use adcomp_metrics::registry::{
    self, CounterKind, GaugeKind, LabelFamily, MetricsRegistry, SpanKind,
};
use adcomp_trace::events::{ServerEvent, NO_EPOCH};
use adcomp_trace::{TraceEvent, TraceHandle, TraceSink};
use std::collections::HashMap;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning for one daemon instance.
#[derive(Clone)]
pub struct ServeConfig {
    /// Listen address (`"127.0.0.1:0"` picks a free port).
    pub addr: String,
    /// Global cap on concurrently admitted streams.
    pub max_streams: usize,
    /// Per-tenant cap on concurrently admitted streams.
    pub per_tenant_streams: usize,
    /// Largest accepted transfer, application bytes.
    pub max_transfer_bytes: u64,
    /// Per-read/write socket deadline; also the idle timeout.
    pub io_timeout: Duration,
    /// Overall wall budget per stream (slow-drip guard).
    pub max_stream_secs: f64,
    /// Per-tenant ingest bandwidth cap, bytes/s (`None` = uncapped).
    pub tenant_rate_bps: Option<f64>,
    /// Retain received payloads in memory (tests / verification).
    pub keep_payloads: bool,
    /// Retain the *compressed* wire bytes of each transfer, frame-aligned
    /// and CRC-verified, so completed transfers can serve ranged GETs
    /// through the block index without holding decoded payloads. Only
    /// effective under a fail-fast [`RecoveryPolicy`] (a skipping reader
    /// would leave holes the wire copy cannot represent).
    pub store_wire: bool,
    /// Byte budget for the hot-object block cache serving ranged GETs
    /// (0 disables caching; GETs then decode every covering block).
    pub cache_bytes: u64,
    /// Frame-stream recovery policy for the per-connection reader.
    /// Fail-fast is the correct default here: the verified prefix must
    /// stay gap-free for resume to be byte-accurate.
    pub recovery: RecoveryPolicy,
    /// CPU pressure (0..1) at which the breaker opens.
    pub breaker_threshold: f64,
    /// Pressure sampler; `None` disables the automatic breaker (the
    /// manual [`Server::set_breaker`] still works).
    pub pressure_probe: Option<Arc<dyn Fn() -> f64 + Send + Sync>>,
    /// How often the breaker samples the probe.
    pub probe_interval: Duration,
    /// Trace sink for `server` events (disabled by default).
    pub trace: TraceHandle,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_streams: 64,
            per_tenant_streams: 8,
            max_transfer_bytes: 1 << 30,
            io_timeout: Duration::from_secs(5),
            max_stream_secs: 600.0,
            tenant_rate_bps: None,
            keep_payloads: false,
            store_wire: true,
            cache_bytes: 64 << 20,
            recovery: RecoveryPolicy::fail_fast(),
            breaker_threshold: 0.9,
            pressure_probe: None,
            probe_interval: Duration::from_millis(250),
            trace: TraceHandle::disabled(),
        }
    }
}

/// Server-local robustness counters (mirrored into the global metrics
/// registry when one is installed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    pub accepted: u64,
    pub completed: u64,
    pub resumed: u64,
    pub shed: u64,
    pub timeouts: u64,
    pub aborts: u64,
    pub drained_transfers: u64,
    pub breaker_trips: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    completed: AtomicU64,
    resumed: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
    aborts: AtomicU64,
    drained_transfers: AtomicU64,
    breaker_trips: AtomicU64,
}

/// State of one transfer `(tenant, transfer_id)`: the verified prefix.
struct Transfer {
    verified: u64,
    total: u64,
    crc: Hasher,
    data: Option<Vec<u8>>,
    completed: bool,
    /// A connection is currently streaming this transfer; a duplicate
    /// gets rejected instead of corrupting the prefix.
    busy: bool,
    /// Frame-aligned compressed wire bytes covering exactly `verified`
    /// application bytes, accumulated across resumed connections. `None`
    /// when wire storage is off or was invalidated by a protocol
    /// violation.
    wire: Option<Vec<u8>>,
    /// Set at completion: the wire plus its scanned block index, shared
    /// with GET handlers outside the transfer lock.
    sealed: Option<Arc<SealedObject>>,
}

/// A completed transfer's compressed bytes plus the block index that
/// makes them randomly accessible.
struct SealedObject {
    wire: Vec<u8>,
    index: StreamIndex,
}

struct Shared {
    cfg: ServeConfig,
    stop: AtomicBool,
    draining: AtomicBool,
    active_streams: AtomicU64,
    live_conns: AtomicU64,
    tenant_active: Mutex<HashMap<String, u64>>,
    tenant_throttles: Mutex<HashMap<String, SharedThrottle>>,
    transfers: Mutex<HashMap<(String, u64), Transfer>>,
    breaker_open: AtomicBool,
    counters: Counters,
    cache: BlockCache,
    start: Instant,
}

impl Shared {
    fn metric(&self, f: impl FnOnce(&MetricsRegistry)) {
        if let Some(m) = registry::global() {
            f(m);
        }
    }

    fn event(&self, kind: &'static str, tenant: u64, bytes: u64, detail: u64) {
        if self.cfg.trace.enabled() {
            self.cfg.trace.emit(&TraceEvent::Server(ServerEvent {
                epoch: NO_EPOCH,
                t: self.start.elapsed().as_secs_f64(),
                kind,
                tenant,
                bytes,
                detail,
            }));
        }
    }

    fn shed(&self, reason: RejectReason, tenant: u64) {
        self.counters.shed.fetch_add(1, Ordering::Relaxed);
        self.metric(|m| m.label_count(LabelFamily::ShedReason, reason.as_str(), 1));
        self.event("reject", tenant, 0, reason as u64);
    }

    fn open_breaker(&self, open: bool) {
        let was = self.breaker_open.swap(open, Ordering::AcqRel);
        if open && !was {
            self.counters.breaker_trips.fetch_add(1, Ordering::Relaxed);
            self.metric(|m| {
                m.counter_add(CounterKind::BreakerTrips, 1);
                m.gauge_set(GaugeKind::BreakerOpen, 1);
            });
            self.event("breaker_open", 0, 0, 0);
        } else if !open && was {
            self.metric(|m| m.gauge_set(GaugeKind::BreakerOpen, 0));
            self.event("breaker_close", 0, 0, 0);
        }
    }
}

/// A running daemon. [`Server::shutdown`] (or drop) stops the accept loop
/// and joins every thread; [`Server::begin_drain`] +
/// [`Server::drain_and_wait`] is the graceful path.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    breaker: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let cache = BlockCache::new(cfg.cache_bytes);
        let shared = Arc::new(Shared {
            cfg,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            active_streams: AtomicU64::new(0),
            live_conns: AtomicU64::new(0),
            tenant_active: Mutex::default(),
            tenant_throttles: Mutex::default(),
            transfers: Mutex::default(),
            breaker_open: AtomicBool::new(false),
            counters: Counters::default(),
            cache,
            start: Instant::now(),
        });
        let handlers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::default();

        let breaker = match shared.cfg.pressure_probe.clone() {
            None => None,
            Some(probe) => {
                let s = Arc::clone(&shared);
                Some(std::thread::Builder::new().name("adcomp-serve-breaker".into()).spawn(
                    move || {
                        while !s.stop.load(Ordering::Acquire) {
                            let pressure = probe();
                            if pressure >= s.cfg.breaker_threshold {
                                s.open_breaker(true);
                            } else if pressure < s.cfg.breaker_threshold * 0.8 {
                                // Hysteresis: close only well below the trip
                                // point so a noisy probe cannot flap it.
                                s.open_breaker(false);
                            }
                            std::thread::sleep(s.cfg.probe_interval);
                        }
                    },
                )?)
            }
        };

        let (s, hs) = (Arc::clone(&shared), Arc::clone(&handlers));
        let accept = std::thread::Builder::new().name("adcomp-serve-accept".into()).spawn(
            move || {
                for conn in listener.incoming() {
                    if s.stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(sock) = conn else { continue };
                    // Bounded accept queue: if the handler population is
                    // already double the stream budget, every pre-admission
                    // slot is taken by connections we have not even been
                    // able to read a request from — shed at the door.
                    let flood_cap = (s.cfg.max_streams as u64) * 2 + 16;
                    if s.live_conns.load(Ordering::Acquire) >= flood_cap {
                        s.shed(RejectReason::Capacity, 0);
                        drop(sock);
                        continue;
                    }
                    s.live_conns.fetch_add(1, Ordering::AcqRel);
                    let sh = Arc::clone(&s);
                    match std::thread::Builder::new()
                        .name("adcomp-serve-conn".into())
                        .spawn(move || {
                            handle_conn(&sh, sock);
                            sh.live_conns.fetch_sub(1, Ordering::AcqRel);
                        }) {
                        Ok(h) => {
                            let mut v = hs.lock().expect("handlers poisoned");
                            // Reap finished handlers so the vector stays
                            // bounded over a long-lived daemon.
                            v.retain(|h| !h.is_finished());
                            v.push(h);
                        }
                        Err(_) => {
                            s.live_conns.fetch_sub(1, Ordering::AcqRel);
                        }
                    }
                }
            },
        )?;
        Ok(Server { shared, local_addr, accept: Some(accept), breaker, handlers })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Admitted streams currently in flight.
    pub fn active(&self) -> u64 {
        self.shared.active_streams.load(Ordering::Acquire)
    }

    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    pub fn breaker_open(&self) -> bool {
        self.shared.breaker_open.load(Ordering::Acquire)
    }

    /// Manually trips (or closes) the circuit breaker.
    pub fn set_breaker(&self, open: bool) {
        self.shared.open_breaker(open);
    }

    /// Server-local robustness counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.counters;
        ServeStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            resumed: c.resumed.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            aborts: c.aborts.load(Ordering::Relaxed),
            drained_transfers: c.drained_transfers.load(Ordering::Relaxed),
            breaker_trips: c.breaker_trips.load(Ordering::Relaxed),
        }
    }

    /// Verified prefix length of a transfer, if known.
    pub fn verified_len(&self, tenant: &str, transfer_id: u64) -> Option<u64> {
        let transfers = self.shared.transfers.lock().expect("transfers poisoned");
        transfers.get(&(tenant.to_string(), transfer_id)).map(|t| t.verified)
    }

    /// The received payload of a transfer (only with
    /// [`ServeConfig::keep_payloads`]).
    pub fn payload(&self, tenant: &str, transfer_id: u64) -> Option<Vec<u8>> {
        let transfers = self.shared.transfers.lock().expect("transfers poisoned");
        transfers.get(&(tenant.to_string(), transfer_id)).and_then(|t| t.data.clone())
    }

    /// Hot-object block-cache counters (hits, misses, evictions,
    /// resident bytes).
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Whether a completed transfer holds its compressed wire and block
    /// index (i.e. ranged GETs will be index-served rather than sliced
    /// from a retained decoded payload).
    pub fn is_sealed(&self, tenant: &str, transfer_id: u64) -> bool {
        let transfers = self.shared.transfers.lock().expect("transfers poisoned");
        transfers.get(&(tenant.to_string(), transfer_id)).is_some_and(|t| t.sealed.is_some())
    }

    /// Whether a transfer has been received completely and CRC-verified.
    pub fn is_completed(&self, tenant: &str, transfer_id: u64) -> bool {
        let transfers = self.shared.transfers.lock().expect("transfers poisoned");
        transfers.get(&(tenant.to_string(), transfer_id)).is_some_and(|t| t.completed)
    }

    /// Starts a graceful drain: new PUTs are rejected with
    /// [`RejectReason::Draining`]; in-flight streams keep running.
    pub fn begin_drain(&self) {
        if !self.shared.draining.swap(true, Ordering::AcqRel) {
            self.shared.metric(|m| m.counter_add(CounterKind::ServeDrains, 1));
            self.shared.event("drain_begin", 0, 0, self.active());
        }
    }

    /// Waits until every in-flight stream finished, or `deadline` passes.
    /// Returns true when fully drained.
    pub fn drain_and_wait(&self, deadline: Duration) -> bool {
        self.begin_drain();
        let until = Instant::now() + deadline;
        while self.active() > 0 {
            if Instant::now() >= until {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.shared.event("drain_done", 0, 0, 0);
        true
    }

    /// Stops the accept loop, tears everything down and joins all threads.
    /// Call [`Server::drain_and_wait`] first for a graceful exit; without
    /// it, in-flight streams are aborted (their verified prefixes are
    /// kept, so resume still works).
    pub fn shutdown(mut self) -> ServeStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.shared.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
        if let Some(t) = self.breaker.take() {
            let _ = t.join();
        }
        let handles = std::mem::take(&mut *self.handlers.lock().expect("handlers poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Undoes one stream admission on every exit path (including panics in
/// the handler body).
struct StreamGuard<'a> {
    shared: &'a Shared,
    tenant: String,
    transfer_id: u64,
}

impl Drop for StreamGuard<'_> {
    fn drop(&mut self) {
        self.shared.active_streams.fetch_sub(1, Ordering::AcqRel);
        self.shared.metric(|m| m.gauge_add(GaugeKind::ServeActiveConns, -1));
        let mut tenants = self.shared.tenant_active.lock().expect("tenants poisoned");
        if let Some(n) = tenants.get_mut(&self.tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                tenants.remove(&self.tenant);
            }
        }
        drop(tenants);
        let mut transfers = self.shared.transfers.lock().expect("transfers poisoned");
        if let Some(t) = transfers.get_mut(&(self.tenant.clone(), self.transfer_id)) {
            t.busy = false;
        }
    }
}

fn handle_conn(shared: &Arc<Shared>, mut sock: TcpStream) {
    let _ = sock.set_nodelay(true);
    let _ = sock.set_read_timeout(Some(shared.cfg.io_timeout));
    let _ = sock.set_write_timeout(Some(shared.cfg.io_timeout));
    let req = match read_request(&mut sock) {
        Ok(r) => r,
        Err(_) => {
            // Malformed, stalled, or not our protocol: one typed reject,
            // then the door.
            shared.shed(RejectReason::BadRequest, 0);
            let _ =
                write_response(&mut sock, &Response::Reject { reason: RejectReason::BadRequest });
            // Drain whatever else the client sent before closing: closing
            // with unread bytes in the receive buffer turns the close into
            // a RST, which can discard the reject frame in flight. Bounded
            // by the socket read timeout.
            let _ = sock.shutdown(Shutdown::Write);
            let mut scratch = [0u8; 1024];
            while matches!(sock.read(&mut scratch), Ok(n) if n > 0) {}
            return;
        }
    };
    match req {
        Request::Drain => {
            let active = shared.active_streams.load(Ordering::Acquire);
            if !shared.draining.swap(true, Ordering::AcqRel) {
                shared.metric(|m| m.counter_add(CounterKind::ServeDrains, 1));
                shared.event("drain_begin", 0, 0, active);
            }
            let _ = write_response(
                &mut sock,
                &Response::Accept { start_offset: active, level_cap: 0 },
            );
        }
        Request::Put { tenant, transfer_id, total_len } => {
            handle_put(shared, sock, tenant, transfer_id, total_len);
        }
        Request::Get { tenant, transfer_id, offset, len } => {
            handle_get(shared, sock, &tenant, transfer_id, offset, len);
        }
    }
}

fn handle_put(
    shared: &Arc<Shared>,
    mut sock: TcpStream,
    tenant: String,
    transfer_id: u64,
    total_len: u64,
) {
    let tenant_id = ServerEvent::tenant_id(&tenant);
    let reject = |reason: RejectReason, mut sock: TcpStream| {
        shared.shed(reason, tenant_id);
        let _ = write_response(&mut sock, &Response::Reject { reason });
    };
    if shared.draining.load(Ordering::Acquire) {
        return reject(RejectReason::Draining, sock);
    }
    if total_len > shared.cfg.max_transfer_bytes {
        return reject(RejectReason::TooLarge, sock);
    }
    // Global budget: reserve optimistically, roll back on refusal so the
    // check-and-increment is race-free.
    let prev = shared.active_streams.fetch_add(1, Ordering::AcqRel);
    if prev >= shared.cfg.max_streams as u64 {
        shared.active_streams.fetch_sub(1, Ordering::AcqRel);
        return reject(RejectReason::Capacity, sock);
    }
    {
        let mut tenants = shared.tenant_active.lock().expect("tenants poisoned");
        let n = tenants.entry(tenant.clone()).or_insert(0);
        if *n >= shared.cfg.per_tenant_streams as u64 {
            drop(tenants);
            shared.active_streams.fetch_sub(1, Ordering::AcqRel);
            return reject(RejectReason::TenantQuota, sock);
        }
        *n += 1;
    }
    // Transfer table: find the verified prefix; refuse concurrent writers
    // on the same transfer (the prefix must stay single-writer).
    // Wire storage needs a fail-fast reader: a skipping policy would
    // deliver app bytes the stored wire cannot reproduce.
    let store_wire =
        shared.cfg.store_wire && shared.cfg.recovery.mode == RecoveryMode::FailFast;
    let (start, capture) = {
        let mut transfers = shared.transfers.lock().expect("transfers poisoned");
        let t = transfers.entry((tenant.clone(), transfer_id)).or_insert_with(|| Transfer {
            verified: 0,
            total: total_len,
            crc: Hasher::new(),
            data: shared.cfg.keep_payloads.then(Vec::new),
            completed: false,
            busy: false,
            wire: store_wire.then(Vec::new),
            sealed: None,
        });
        if t.busy || t.total != total_len {
            drop(transfers);
            // Roll the tenant slot back too before refusing.
            let mut tenants = shared.tenant_active.lock().expect("tenants poisoned");
            if let Some(n) = tenants.get_mut(&tenant) {
                *n = n.saturating_sub(1);
            }
            drop(tenants);
            shared.active_streams.fetch_sub(1, Ordering::AcqRel);
            return reject(RejectReason::TenantQuota, sock);
        }
        t.busy = true;
        (t.verified, t.wire.is_some())
    };
    // From here on the guard owns the rollback of all three reservations.
    let guard = StreamGuard { shared, tenant: tenant.clone(), transfer_id };
    shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
    shared.metric(|m| {
        m.counter_add(CounterKind::ServeAccepted, 1);
        m.gauge_add(GaugeKind::ServeActiveConns, 1);
        m.gauge_max(GaugeKind::ServeActiveConnsMax, shared.active_streams.load(Ordering::Acquire) as i64);
    });
    if start > 0 && start < total_len {
        shared.counters.resumed.fetch_add(1, Ordering::Relaxed);
        shared.metric(|m| m.counter_add(CounterKind::ServeResumes, 1));
        shared.event("resume", tenant_id, start, transfer_id);
    }
    shared.event("accept", tenant_id, total_len, transfer_id);
    let level_cap =
        if shared.breaker_open.load(Ordering::Acquire) { 0 } else { NO_LEVEL_CAP };
    if write_response(&mut sock, &Response::Accept { start_offset: start, level_cap }).is_err() {
        shared.counters.aborts.fetch_add(1, Ordering::Relaxed);
        return; // guard rolls back
    }

    // Ingest loop: decode the adaptive stream, folding each verified chunk
    // into the transfer record immediately so an abort anywhere still
    // leaves a resumable, CRC-clean prefix.
    let read_sock = match sock.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared.counters.aborts.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    let throttled: Box<dyn Read + Send> = match shared.cfg.tenant_rate_bps {
        Some(bps) => {
            let throttle = {
                let mut throttles =
                    shared.tenant_throttles.lock().expect("throttles poisoned");
                throttles.entry(tenant.clone()).or_insert_with(|| SharedThrottle::new(bps)).clone()
            };
            Box::new(ThrottledReader::new(read_sock, throttle))
        }
        None => Box::new(read_sock),
    };
    let mut reader = AdaptiveReader::with_policy(
        CaptureReader { inner: throttled, captured: Vec::new(), enabled: capture },
        shared.cfg.recovery,
    );
    let deadline = Instant::now() + Duration::from_secs_f64(shared.cfg.max_stream_secs);
    let mut buf = [0u8; 16 * 1024];
    let key = (tenant.clone(), transfer_id);
    let mut overflowed = false;
    let mut delivered = 0u64;
    enum StreamEnd {
        Eof,
        Stop,
        Timeout,
        Damage,
    }
    let end = loop {
        if shared.stop.load(Ordering::Acquire) {
            break StreamEnd::Stop;
        }
        if Instant::now() >= deadline {
            // Wall budget exhausted: slow-drip guard.
            break StreamEnd::Timeout;
        }
        match reader.read(&mut buf) {
            Ok(0) => break StreamEnd::Eof,
            Ok(n) => {
                delivered += n as u64;
                let mut transfers = shared.transfers.lock().expect("transfers poisoned");
                let t = transfers.get_mut(&key).expect("busy transfer vanished");
                if t.verified + n as u64 > total_len {
                    // More bytes than declared: protocol violation. The
                    // captured wire no longer matches `verified`, so the
                    // wire store for this transfer must be dropped too.
                    overflowed = true;
                    break StreamEnd::Damage;
                }
                t.crc.update(&buf[..n]);
                t.verified += n as u64;
                if let Some(data) = t.data.as_mut() {
                    data.extend_from_slice(&buf[..n]);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle timeout: the socket went silent for io_timeout.
                break StreamEnd::Timeout;
            }
            // Stream damage (corrupt frame under fail-fast, reset, …).
            Err(_) => break StreamEnd::Damage,
        }
    };
    // Surface the frame layer's recovery counters however the stream
    // ended — with a skip-and-count policy they record survived faults.
    let rec = reader.recovery();
    shared.metric(|m| {
        m.counter_add(CounterKind::RecoveryCorruptFrames, rec.corrupt_frames);
        m.counter_add(CounterKind::RecoveryResyncs, rec.resyncs);
        m.counter_add(CounterKind::RecoveryRetries, rec.retries);
        m.counter_add(CounterKind::RecoverySkippedBytes, rec.skipped_bytes);
        m.counter_add(CounterKind::RecoveryTruncations, rec.truncations);
    });
    // Fold the captured wire into the transfer before branching on how the
    // stream ended: on every exit path `wire` must cover exactly
    // `verified` app bytes for resume + GET to stay coherent. When the
    // stream ended mid-block (wall-budget timeout between partial reads),
    // decoded frames outran delivery and no frame-aligned prefix matches
    // `verified` — the wire store for this transfer is dropped rather
    // than left lying.
    if capture {
        let decoded = reader.app_bytes();
        let wire_used = reader.wire_bytes() as usize;
        let captured = reader.into_inner().captured;
        let mut transfers = shared.transfers.lock().expect("transfers poisoned");
        if let Some(t) = transfers.get_mut(&key) {
            if overflowed || decoded != delivered {
                t.wire = None;
            } else if let Some(w) = t.wire.as_mut() {
                w.extend_from_slice(&captured[..wire_used.min(captured.len())]);
            }
        }
    }
    match end {
        StreamEnd::Eof => {}
        StreamEnd::Stop => {
            shared.counters.aborts.fetch_add(1, Ordering::Relaxed);
            shared.event("abort", tenant_id, 0, transfer_id);
            return;
        }
        StreamEnd::Timeout => {
            shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            shared.metric(|m| m.counter_add(CounterKind::ServeTimeouts, 1));
            shared.event("timeout", tenant_id, 0, transfer_id);
            return;
        }
        StreamEnd::Damage => {
            shared.counters.aborts.fetch_add(1, Ordering::Relaxed);
            shared.metric(|m| m.counter_add(CounterKind::ServeAborts, 1));
            shared.event("abort", tenant_id, 0, transfer_id);
            return;
        }
    }

    // Clean EOF. Complete only when the whole declared length is verified;
    // a short-but-clean close keeps the prefix for a later resume.
    let (verified, crc, complete) = {
        let mut transfers = shared.transfers.lock().expect("transfers poisoned");
        let t = transfers.get_mut(&key).expect("busy transfer vanished");
        let complete = t.verified == total_len;
        if complete {
            t.completed = true;
            // Seal: scan the stored wire into a block index (headers
            // only, no decompression) so ranged GETs can seek. A scan
            // disagreeing with the verified length means the wire copy
            // cannot be trusted — drop it instead of serving from it.
            if t.sealed.is_none() {
                if let Some(w) = t.wire.take() {
                    match StreamIndex::scan(&w) {
                        Ok(index) if index.total_uncompressed() == total_len => {
                            t.sealed = Some(Arc::new(SealedObject { wire: w, index }));
                        }
                        _ => {}
                    }
                }
            }
        }
        (t.verified, t.crc.finish(), complete)
    };
    let _ = write_done(&mut sock, &Done { ok: complete, verified, crc });
    let _ = sock.shutdown(Shutdown::Write);
    if complete {
        shared.counters.completed.fetch_add(1, Ordering::Relaxed);
        shared.metric(|m| m.counter_add(CounterKind::ServeCompleted, 1));
        shared.event("done", tenant_id, verified, transfer_id);
        if shared.draining.load(Ordering::Acquire) {
            shared.counters.drained_transfers.fetch_add(1, Ordering::Relaxed);
            shared.metric(|m| m.counter_add(CounterKind::ServeDrainedTransfers, 1));
        }
    }
    drop(guard);
}

/// Tees every byte read from the socket into `captured`, so a completed
/// PUT can retain its frame-aligned compressed wire for ranged GETs.
/// `AdaptiveReader`'s frame layer consumes the socket in exact frame
/// units (header `read_exact`, then payload `read_exact`), so truncating
/// the capture to the reader's `wire_bytes()` yields only whole, valid
/// frames.
struct CaptureReader {
    inner: Box<dyn Read + Send>,
    captured: Vec<u8>,
    enabled: bool,
}

impl Read for CaptureReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        if self.enabled {
            self.captured.extend_from_slice(&buf[..n]);
        }
        Ok(n)
    }
}

/// Serves a ranged GET of a completed transfer. Sealed transfers decode
/// only the covering blocks out of the stored wire — through the block
/// cache, so a hot block is decoded once and then served from memory;
/// unsealed-but-retained ones fall back to slicing the decoded payload.
fn handle_get(
    shared: &Arc<Shared>,
    mut sock: TcpStream,
    tenant: &str,
    transfer_id: u64,
    offset: u64,
    len: u64,
) {
    let tenant_id = ServerEvent::tenant_id(tenant);
    let reject = |mut sock: TcpStream| {
        shared.shed(RejectReason::BadRequest, tenant_id);
        let _ = write_response(&mut sock, &Response::Reject { reason: RejectReason::BadRequest });
    };
    enum Source {
        Sealed(Arc<SealedObject>),
        Plain(Vec<u8>),
    }
    let source = {
        let transfers = shared.transfers.lock().expect("transfers poisoned");
        match transfers.get(&(tenant.to_string(), transfer_id)) {
            Some(t) if t.completed => match &t.sealed {
                Some(s) => Some(Source::Sealed(Arc::clone(s))),
                None => t.data.clone().map(Source::Plain),
            },
            _ => None,
        }
    };
    let Some(source) = source else {
        return reject(sock);
    };
    let span = registry::span(SpanKind::RangedRead);
    shared.metric(|m| m.counter_add(CounterKind::RangedReads, 1));
    let out = match &source {
        Source::Plain(data) => {
            // No stored wire (storage off, or invalidated mid-transfer):
            // slice the retained decoded payload. Counted as a fallback —
            // the index never served this read.
            shared.metric(|m| m.counter_add(CounterKind::IndexFallbacks, 1));
            let lo = (offset as usize).min(data.len());
            let hi = offset.saturating_add(len).min(data.len() as u64) as usize;
            data[lo..hi].to_vec()
        }
        Source::Sealed(sealed) => match read_range_sealed(shared, sealed, offset, len) {
            Ok(bytes) => bytes,
            // The server's own wire failed to decode — nothing sane to
            // serve; shed rather than ship wrong bytes.
            Err(_) => return reject(sock),
        },
    };
    drop(span);
    shared.event("get", tenant_id, out.len() as u64, transfer_id);
    let accept = Response::Accept { start_offset: out.len() as u64, level_cap: NO_LEVEL_CAP };
    if write_response(&mut sock, &accept).is_err() {
        return;
    }
    let _ = write_get_payload(&mut sock, &out);
    let _ = sock.shutdown(Shutdown::Write);
}

/// Decodes `[offset, offset + len)` (clamped) out of a sealed object,
/// serving every covering block from the cache when it can. A cache hit
/// never touches the decoder.
fn read_range_sealed(
    shared: &Shared,
    sealed: &SealedObject,
    offset: u64,
    len: u64,
) -> std::io::Result<Vec<u8>> {
    let index = &sealed.index;
    let total = index.total_uncompressed();
    if offset >= total || len == 0 {
        return Ok(Vec::new());
    }
    let take = len.min(total - offset) as usize;
    let blocks = index.blocks_covering(offset, len);
    let first_off = index.entries[blocks.start].uncompressed_offset;
    let mut out = Vec::with_capacity(take + (offset - first_off) as usize);
    let mut scratch = DecodeScratch::new();
    for i in blocks {
        let e = index.entries[i];
        if e.uncompressed_len == 0 {
            continue; // flush artifact: a frame with no application bytes
        }
        let key = (e.crc, e.uncompressed_len);
        if let Some(bytes) = shared.cache.get(key) {
            out.extend_from_slice(&bytes);
            continue;
        }
        let frame = &sealed.wire[e.frame_offset as usize..(e.frame_offset + u64::from(e.frame_len)) as usize];
        let mut block = Vec::with_capacity(e.uncompressed_len as usize);
        decode_block_with(&mut scratch, frame, &mut block, DEFAULT_MAX_FRAME)
            .map_err(|err| std::io::Error::new(std::io::ErrorKind::InvalidData, err))?;
        let bytes = Arc::new(block);
        shared.cache.insert(key, Arc::clone(&bytes));
        out.extend_from_slice(&bytes);
    }
    let skip = (offset - first_off) as usize;
    if skip + take > out.len() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "covering blocks shorter than the index promised",
        ));
    }
    out.drain(..skip);
    out.truncate(take);
    Ok(out)
}

/// Convenience for tests: CRC-32 of a payload, re-exported so callers
/// don't need the codecs crate in scope.
pub fn payload_crc(payload: &[u8]) -> u32 {
    crc32(payload)
}
