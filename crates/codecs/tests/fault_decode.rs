//! Mutation suite for the frame decode path — satellite of the fault
//! model (DESIGN.md "Fault model & recovery").
//!
//! Every property drives generated frames through deterministic
//! mutations (single-bit flips, truncations, forged length fields, raw
//! payload damage) and holds the decoders to the hardened contract:
//!
//! * **never panic** — damage is an `Err`, not a crash;
//! * **never lie** — a payload-region bit flip is *always* caught by the
//!   CRC (CRC-32 detects all single-bit errors);
//! * **never bloat** — forged giant length fields are rejected by the
//!   pre-allocation cap, not by the allocator;
//! * **resync** — a skip-mode [`FrameReader`] walks over inter-frame
//!   garbage to the next magic and keeps decoding.

use adcomp_codecs::frame::{
    decode_block_limited, encode_block, FrameReader, RecoveryPolicy, HEADER_LEN,
};
use adcomp_codecs::{codec_for, CodecId};
use proptest::prelude::*;

/// The full codec registry — paper ladder plus portfolio members (Raw
/// included: the fallback path must be just as robust as the real
/// compressors).
const CODECS: [CodecId; 6] = CodecId::REGISTRY;

fn encode(codec: CodecId, data: &[u8]) -> Vec<u8> {
    let mut frame = Vec::new();
    encode_block(codec_for(codec), data, &mut frame);
    frame
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CRC-32 detects every single-bit error: a flip anywhere in the
    /// payload region must surface as a decode error, at every level, on
    /// compressible and incompressible data alike.
    #[test]
    fn payload_bit_flip_is_always_detected(
        data in proptest::collection::vec(0u8..8, 1..4000),
        ci in any::<prop::sample::Index>(),
        pos in any::<prop::sample::Index>(),
        bit in any::<prop::sample::Index>(),
    ) {
        let codec = CODECS[ci.index(CODECS.len())];
        let mut frame = encode(codec, &data);
        let payload_len = frame.len() - HEADER_LEN;
        prop_assert!(payload_len > 0);
        let idx = HEADER_LEN + pos.index(payload_len);
        frame[idx] ^= 1 << bit.index(8);
        let mut out = Vec::new();
        prop_assert!(
            decode_block_limited(&frame, &mut out, u32::MAX).is_err(),
            "payload flip at byte {idx} slipped past the CRC"
        );
    }

    /// A flip anywhere in the frame (header included) must never panic,
    /// and a decode that still reports success must hand back exactly the
    /// number of bytes the header promises — the length fields and the
    /// decoded output can never disagree silently.
    #[test]
    fn any_bit_flip_never_panics_and_lengths_stay_honest(
        data in proptest::collection::vec(any::<u8>(), 1..2000),
        ci in any::<prop::sample::Index>(),
        pos in any::<prop::sample::Index>(),
        bit in any::<prop::sample::Index>(),
    ) {
        let codec = CODECS[ci.index(CODECS.len())];
        let mut frame = encode(codec, &data);
        let idx = pos.index(frame.len());
        frame[idx] ^= 1 << bit.index(8);
        let mut out = Vec::new();
        if let Ok((header, consumed)) = decode_block_limited(&frame, &mut out, u32::MAX) {
            prop_assert_eq!(out.len(), header.uncompressed_len as usize);
            prop_assert!(consumed <= frame.len());
        }
    }

    /// Every possible truncation point — mid-magic, mid-header,
    /// mid-payload — yields a typed error, never a panic or a short
    /// silent success.
    #[test]
    fn every_truncation_point_errors(
        data in proptest::collection::vec(0u8..16, 1..3000),
        ci in any::<prop::sample::Index>(),
        cut in any::<prop::sample::Index>(),
    ) {
        let codec = CODECS[ci.index(CODECS.len())];
        let frame = encode(codec, &data);
        let keep = cut.index(frame.len()); // 0..frame.len(), strictly short
        let mut out = Vec::new();
        prop_assert!(
            decode_block_limited(&frame[..keep], &mut out, u32::MAX).is_err(),
            "truncation to {keep}/{} bytes decoded successfully",
            frame.len()
        );
    }

    /// Forged giant length fields are refused by the pre-allocation cap:
    /// with a 1 MiB limit, a header claiming multi-GiB lengths must error
    /// out before touching the allocator (this test OOMs if it does not).
    #[test]
    fn forged_lengths_hit_the_cap_not_the_allocator(
        data in proptest::collection::vec(0u8..8, 1..500),
        ci in any::<prop::sample::Index>(),
        field in any::<bool>(),
        huge in any::<u32>(),
    ) {
        let codec = CODECS[ci.index(CODECS.len())];
        let mut frame = encode(codec, &data);
        let cap = 1u32 << 20;
        let forged = cap.saturating_add(1).saturating_add(huge % (u32::MAX - cap - 1));
        let off = if field { 4 } else { 8 }; // uncompressed_len / payload_len
        frame[off..off + 4].copy_from_slice(&forged.to_le_bytes());
        let mut out = Vec::new();
        prop_assert!(decode_block_limited(&frame, &mut out, cap).is_err());
        prop_assert!(out.capacity() < forged as usize);
    }

    /// The raw codec decoders (QuickLZ-style, range-coded HEAVY, and the
    /// portfolio's HUFF/COLUMNAR) are exposed to arbitrarily damaged
    /// compressed payloads below the frame layer — no CRC shields them
    /// here. Bounds-hardening means: return `Err` or a correct-length
    /// `Ok`, never panic, never overrun.
    #[test]
    fn codec_decoders_survive_arbitrary_payload_damage(
        data in proptest::collection::vec(0u8..4, 0..2500),
        ci in any::<prop::sample::Index>(),
        pos in any::<prop::sample::Index>(),
        val in any::<u8>(),
        cut in any::<prop::sample::Index>(),
    ) {
        let codec_id = [
            CodecId::QlzLight,
            CodecId::QlzMedium,
            CodecId::Heavy,
            CodecId::Huffman,
            CodecId::Columnar,
        ][ci.index(5)];
        let codec = codec_for(codec_id);
        let mut wire = Vec::new();
        codec.compress(&data, &mut wire);
        // Overwrite one byte, then truncate — two independent damages.
        if !wire.is_empty() {
            let idx = pos.index(wire.len());
            wire[idx] = val;
            wire.truncate(cut.index(wire.len()) + 1);
        }
        let mut out = Vec::new();
        if codec.decompress(&wire, data.len(), &mut out).is_ok() {
            prop_assert_eq!(out.len(), data.len());
        }
    }
}

/// A skip-mode reader walks over inter-frame garbage to the next magic:
/// frames after the junk decode intact and the resync is counted.
#[test]
fn skip_reader_resyncs_over_interframe_garbage() {
    let blocks: Vec<Vec<u8>> =
        (0u8..3).map(|i| vec![i.wrapping_mul(37); 700 + i as usize * 100]).collect();
    let mut wire = encode(CodecId::QlzLight, &blocks[0]);
    wire.extend(std::iter::repeat_n(0x55u8, 337)); // junk, no magic pair
    wire.extend(encode(CodecId::Heavy, &blocks[1]));
    wire.extend(encode(CodecId::Raw, &blocks[2]));

    let mut reader = FrameReader::with_policy(&wire[..], RecoveryPolicy::skip_and_count());
    let mut got = Vec::new();
    loop {
        let mut out = Vec::new();
        if reader.read_block(&mut out).expect("skip mode never errors here").is_none() {
            break;
        }
        got.push(out);
    }
    assert_eq!(got, blocks, "frames around the junk must decode byte-identically");
    assert!(reader.recovery.resyncs >= 1, "{:?}", reader.recovery);
    // ~337 junk bytes are accounted between the corrupt-frame attempt and
    // the resync scan (the exact split depends on where the bad header
    // read stopped).
    assert!(reader.recovery.skipped_bytes >= 330, "{:?}", reader.recovery);

    // Fail-fast on the same wire refuses at the junk instead.
    let mut strict = FrameReader::with_policy(&wire[..], RecoveryPolicy::fail_fast());
    let mut first = Vec::new();
    strict.read_block(&mut first).unwrap();
    assert_eq!(first, blocks[0]);
    let mut scratch = Vec::new();
    assert!(strict.read_block(&mut scratch).is_err());
}
