//! Static SVG figure rendering — regenerates the paper's figures as files.
//!
//! Scope: offline artifacts (`results/*.svg`), not interactive dashboards.
//! The visual rules follow the repository's data-viz conventions:
//!
//! * one y-axis per panel — the paper's dual-axis Fig. 4 becomes stacked
//!   panels sharing the time axis;
//! * a fixed entity→color mapping across all figures (application rate =
//!   blue, network rate = aqua, CPU = yellow, level = green), never cycled;
//! * thin 2 px lines, recessive 1 px grid, direct labels on every series
//!   (the validated palette's aqua/yellow sit below 3:1 contrast on the
//!   light surface, so visible labels are mandatory relief);
//! * text in ink tokens, never in series colors.
//!
//! The palette is the skill-validated reference set (worst adjacent CVD
//! ΔE 47.2 for the slots used here).

use crate::rate::TimeSeries;
use crate::stats::Summary;
use std::fmt::Write as _;

/// Chart surface and ink tokens (light mode).
pub const SURFACE: &str = "#fcfcfb";
pub const INK_PRIMARY: &str = "#0b0b0b";
pub const INK_SECONDARY: &str = "#52514e";
pub const GRID: &str = "#e5e4e0";

/// Fixed entity colors (categorical slots 1, 2, 3, 4 of the validated
/// palette — assign by entity, never by position in a particular chart).
pub const COLOR_APP: &str = "#2a78d6"; // blue: application data rate
pub const COLOR_NET: &str = "#1baf7a"; // aqua: network (wire) rate
pub const COLOR_CPU: &str = "#eda100"; // yellow: CPU utilization
pub const COLOR_LEVEL: &str = "#008300"; // green: compression level

/// One series in a panel.
pub struct Series<'a> {
    pub name: &'a str,
    pub color: &'a str,
    pub points: &'a TimeSeries,
    /// Draw as a step function (for discrete levels).
    pub step: bool,
}

/// One stacked panel: its own y-scale, shared x-range.
pub struct Panel<'a> {
    pub y_label: &'a str,
    pub series: Vec<Series<'a>>,
    /// Optional fixed y-range; otherwise scaled to the data.
    pub y_range: Option<(f64, f64)>,
}

const W: f64 = 860.0;
const PANEL_H: f64 = 170.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 110.0; // room for direct labels at line ends
const MARGIN_TOP: f64 = 44.0;
const PANEL_GAP: f64 = 26.0;
const MARGIN_BOT: f64 = 40.0;

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 10.0 {
        format!("{:.0}", v)
    } else {
        format!("{:.1}", v)
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Renders stacked time-series panels sharing one x-axis.
pub fn render_time_panels(title: &str, x_label: &str, panels: &[Panel<'_>]) -> String {
    assert!(!panels.is_empty());
    let x_max = panels
        .iter()
        .flat_map(|p| p.series.iter())
        .filter_map(|s| s.points.last().map(|(t, _)| t))
        .fold(1.0f64, f64::max);
    let height = MARGIN_TOP
        + panels.len() as f64 * PANEL_H
        + (panels.len() - 1) as f64 * PANEL_GAP
        + MARGIN_BOT;
    let plot_w = W - MARGIN_L - MARGIN_R;
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {W} {height}" font-family="system-ui, sans-serif" font-size="12">"#
    );
    let _ = write!(svg, r#"<rect width="{W}" height="{height}" fill="{SURFACE}"/>"#);
    let _ = write!(
        svg,
        r#"<text x="{MARGIN_L}" y="24" fill="{INK_PRIMARY}" font-size="15" font-weight="600">{}</text>"#,
        esc(title)
    );

    for (pi, panel) in panels.iter().enumerate() {
        let top = MARGIN_TOP + pi as f64 * (PANEL_H + PANEL_GAP);
        let bottom = top + PANEL_H;
        // y-scale.
        let (y_min, mut y_max) = panel.y_range.unwrap_or_else(|| {
            let values: Vec<f64> =
                panel.series.iter().flat_map(|s| s.points.values()).collect();
            let max = values.iter().cloned().fold(0.0f64, f64::max);
            (0.0, if max > 0.0 { max * 1.08 } else { 1.0 })
        });
        if y_max <= y_min {
            y_max = y_min + 1.0;
        }
        let sx = |t: f64| MARGIN_L + (t / x_max).clamp(0.0, 1.0) * plot_w;
        let sy =
            |v: f64| bottom - ((v - y_min) / (y_max - y_min)).clamp(0.0, 1.0) * (PANEL_H - 18.0);

        // Recessive grid: 3 horizontal lines + labels.
        for g in 0..=3 {
            let v = y_min + (y_max - y_min) * g as f64 / 3.0;
            let y = sy(v);
            let _ = write!(
                svg,
                r#"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{GRID}" stroke-width="1"/>"#,
                MARGIN_L + plot_w
            );
            let _ = write!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" fill="{INK_SECONDARY}" text-anchor="end">{}</text>"#,
                MARGIN_L - 8.0,
                y + 4.0,
                fmt_tick(v)
            );
        }
        // Panel y-label.
        let _ = write!(
            svg,
            r#"<text x="{MARGIN_L}" y="{:.1}" fill="{INK_SECONDARY}" font-size="11">{}</text>"#,
            top - 6.0,
            esc(panel.y_label)
        );

        // Series: 2 px lines, direct label at the line end.
        let mut label_anchors: Vec<f64> = Vec::new();
        for s in &panel.series {
            if s.points.is_empty() {
                continue;
            }
            let mut d = String::new();
            let mut prev_y: Option<f64> = None;
            for &(t, v) in s.points.points() {
                let (x, y) = (sx(t), sy(v));
                if d.is_empty() {
                    let _ = write!(d, "M{x:.1},{y:.1}");
                } else if s.step {
                    let _ = write!(d, "H{x:.1}V{y:.1}");
                } else {
                    let _ = write!(d, "L{x:.1},{y:.1}");
                }
                prev_y = Some(y);
            }
            // Extend step series to the right edge.
            if s.step {
                let _ = write!(d, "H{:.1}", MARGIN_L + plot_w);
            }
            let _ = write!(
                svg,
                r#"<path d="{d}" fill="none" stroke="{}" stroke-width="2" stroke-linejoin="round"/>"#,
                s.color
            );
            // Direct label (mandatory relief for low-contrast hues): a
            // colored chip + ink text at the line end; nudge downward if a
            // previous label in this panel sits within 14 px.
            if let Some(end_y) = prev_y {
                let mut y = end_y.clamp(top + 8.0, bottom - 4.0);
                while label_anchors.iter().any(|&a| (a - y).abs() < 14.0) {
                    y += 14.0;
                }
                label_anchors.push(y);
                let lx = MARGIN_L + plot_w + 6.0;
                let _ = write!(
                    svg,
                    r#"<rect x="{lx:.1}" y="{:.1}" width="8" height="8" rx="2" fill="{}"/>"#,
                    y - 4.0,
                    s.color
                );
                let _ = write!(
                    svg,
                    r#"<text x="{:.1}" y="{:.1}" fill="{INK_PRIMARY}">{}</text>"#,
                    lx + 12.0,
                    y + 4.0,
                    esc(s.name)
                );
            }
        }
        // Panel baseline.
        let _ = write!(
            svg,
            r#"<line x1="{MARGIN_L}" y1="{bottom:.1}" x2="{:.1}" y2="{bottom:.1}" stroke="{INK_SECONDARY}" stroke-width="1"/>"#,
            MARGIN_L + plot_w
        );
    }

    // Shared x-axis ticks under the last panel.
    let axis_y = height - MARGIN_BOT + 16.0;
    for g in 0..=5 {
        let t = x_max * g as f64 / 5.0;
        let x = MARGIN_L + plot_w * g as f64 / 5.0;
        let _ = write!(
            svg,
            r#"<text x="{x:.1}" y="{axis_y:.1}" fill="{INK_SECONDARY}" text-anchor="middle">{}</text>"#,
            fmt_tick(t)
        );
    }
    let _ = write!(
        svg,
        r#"<text x="{:.1}" y="{:.1}" fill="{INK_SECONDARY}" text-anchor="middle">{}</text>"#,
        MARGIN_L + plot_w / 2.0,
        axis_y + 18.0,
        esc(x_label)
    );
    svg.push_str("</svg>");
    svg
}

/// Renders a box plot: one [`Summary`] per named category. All boxes share
/// one hue — the entity type is the same; the category is named on the
/// axis, so color carries no identity here.
pub fn render_boxplot(title: &str, y_label: &str, items: &[(String, Summary)]) -> String {
    assert!(!items.is_empty());
    let height = 320.0;
    let plot_w = W - MARGIN_L - 24.0;
    let top = MARGIN_TOP + 8.0;
    let bottom = height - 56.0;
    let y_max = items.iter().map(|(_, s)| s.max).fold(0.0f64, f64::max) * 1.06;
    let sy = |v: f64| bottom - (v / y_max).clamp(0.0, 1.0) * (bottom - top);
    let slot_w = plot_w / items.len() as f64;
    let box_w = (slot_w * 0.4).min(64.0);

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 {W} {height}" font-family="system-ui, sans-serif" font-size="12">"#
    );
    let _ = write!(svg, r#"<rect width="{W}" height="{height}" fill="{SURFACE}"/>"#);
    let _ = write!(
        svg,
        r#"<text x="{MARGIN_L}" y="24" fill="{INK_PRIMARY}" font-size="15" font-weight="600">{}</text>"#,
        esc(title)
    );
    for g in 0..=4 {
        let v = y_max * g as f64 / 4.0;
        let y = sy(v);
        let _ = write!(
            svg,
            r#"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{GRID}" stroke-width="1"/>"#,
            MARGIN_L + plot_w
        );
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" fill="{INK_SECONDARY}" text-anchor="end">{}</text>"#,
            MARGIN_L - 8.0,
            y + 4.0,
            fmt_tick(v)
        );
    }
    let _ = write!(
        svg,
        r#"<text x="{MARGIN_L}" y="{:.1}" fill="{INK_SECONDARY}" font-size="11">{}</text>"#,
        top - 8.0,
        esc(y_label)
    );

    for (i, (name, s)) in items.iter().enumerate() {
        let cx = MARGIN_L + slot_w * (i as f64 + 0.5);
        let (wl, wh) = s.whiskers();
        // Whisker line.
        let _ = write!(
            svg,
            r#"<line x1="{cx:.1}" y1="{:.1}" x2="{cx:.1}" y2="{:.1}" stroke="{COLOR_APP}" stroke-width="2"/>"#,
            sy(wh),
            sy(wl)
        );
        // IQR box (4 px radius, 2 px surface gap comes from the stroke).
        let _ = write!(
            svg,
            r#"<rect x="{:.1}" y="{:.1}" width="{box_w:.1}" height="{:.1}" rx="4" fill="{COLOR_APP}" fill-opacity="0.25" stroke="{COLOR_APP}" stroke-width="2"/>"#,
            cx - box_w / 2.0,
            sy(s.q3),
            (sy(s.q1) - sy(s.q3)).max(2.0)
        );
        // Median.
        let _ = write!(
            svg,
            r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{COLOR_APP}" stroke-width="3"/>"#,
            cx - box_w / 2.0,
            sy(s.median),
            cx + box_w / 2.0,
            sy(s.median)
        );
        // Direct median label in ink + category name on the axis.
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" fill="{INK_PRIMARY}">{}</text>"#,
            cx + box_w / 2.0 + 6.0,
            sy(s.median) + 4.0,
            fmt_tick(s.median)
        );
        let _ = write!(
            svg,
            r#"<text x="{cx:.1}" y="{:.1}" fill="{INK_PRIMARY}" text-anchor="middle">{}</text>"#,
            bottom + 18.0,
            esc(name)
        );
    }
    let _ = write!(
        svg,
        r#"<line x1="{MARGIN_L}" y1="{bottom:.1}" x2="{:.1}" y2="{bottom:.1}" stroke="{INK_SECONDARY}" stroke-width="1"/>"#,
        MARGIN_L + plot_w
    );
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(points: &[(f64, f64)]) -> TimeSeries {
        let mut t = TimeSeries::new();
        for &(x, y) in points {
            t.push(x, y);
        }
        t
    }

    fn tag_balanced(svg: &str) -> bool {
        svg.starts_with("<svg") && svg.ends_with("</svg>")
    }

    #[test]
    fn panels_render_all_series_with_labels() {
        let app = ts(&[(0.0, 10.0), (1.0, 20.0), (2.0, 15.0)]);
        let net = ts(&[(0.0, 5.0), (1.0, 6.0), (2.0, 5.5)]);
        let lvl = ts(&[(0.0, 0.0), (1.0, 1.0)]);
        let svg = render_time_panels(
            "Fig test",
            "Time [s]",
            &[
                Panel {
                    y_label: "Throughput [MBit/s]",
                    y_range: None,
                    series: vec![
                        Series { name: "app", color: COLOR_APP, points: &app, step: false },
                        Series { name: "net", color: COLOR_NET, points: &net, step: false },
                    ],
                },
                Panel {
                    y_label: "Level",
                    y_range: Some((0.0, 3.0)),
                    series: vec![Series {
                        name: "level",
                        color: COLOR_LEVEL,
                        points: &lvl,
                        step: true,
                    }],
                },
            ],
        );
        assert!(tag_balanced(&svg));
        assert_eq!(svg.matches("<path").count(), 3, "one path per series");
        // Direct labels present for every series (relief rule).
        for name in ["app", "net", "level"] {
            assert!(svg.contains(&format!(">{name}</text>")), "label {name} missing");
        }
        assert!(svg.contains("Fig test"));
        assert!(svg.contains(COLOR_APP) && svg.contains(COLOR_NET) && svg.contains(COLOR_LEVEL));
        // Step series uses H/V commands.
        assert!(svg.contains('H'));
    }

    #[test]
    fn boxplot_renders_one_box_per_category() {
        let items: Vec<(String, Summary)> = (0..3)
            .map(|i| {
                let base = 10.0 * (i + 1) as f64;
                let samples: Vec<f64> = (0..50).map(|j| base + (j % 7) as f64).collect();
                (format!("plat{i}"), Summary::from_samples(&samples).unwrap())
            })
            .collect();
        let svg = render_boxplot("Boxes", "MB/s", &items);
        assert!(tag_balanced(&svg));
        assert_eq!(svg.matches("<rect").count(), 1 + 3, "surface + one box per item");
        for (name, _) in &items {
            assert!(svg.contains(name.as_str()));
        }
    }

    #[test]
    fn coordinates_stay_inside_viewbox() {
        let big = ts(&[(0.0, 1e9), (100.0, 5e9)]);
        let svg = render_time_panels(
            "big",
            "t",
            &[Panel {
                y_label: "y",
                y_range: None,
                series: vec![Series { name: "s", color: COLOR_APP, points: &big, step: false }],
            }],
        );
        // No negative coordinates in any path.
        assert!(!svg.contains("M-") && !svg.contains(",-"), "negative coords in {svg}");
    }

    #[test]
    fn end_labels_do_not_collide() {
        // Two series ending at nearly identical values must get separated
        // label anchors.
        let a = ts(&[(0.0, 10.0), (1.0, 100.0)]);
        let b = ts(&[(0.0, 20.0), (1.0, 101.0)]);
        let svg = render_time_panels(
            "c",
            "t",
            &[Panel {
                y_label: "y",
                y_range: None,
                series: vec![
                    Series { name: "aa", color: COLOR_APP, points: &a, step: false },
                    Series { name: "bb", color: COLOR_NET, points: &b, step: false },
                ],
            }],
        );
        // Extract the label chip y positions.
        let ys: Vec<f64> = svg
            .split("<rect x=\"756.0\" y=\"")
            .skip(1)
            .filter_map(|rest| rest.split('"').next()?.parse().ok())
            .collect();
        assert_eq!(ys.len(), 2, "two label chips: {svg}");
        assert!((ys[0] - ys[1]).abs() >= 13.0, "labels too close: {ys:?}");
    }

    #[test]
    fn deterministic_output() {
        let s = ts(&[(0.0, 1.0), (1.0, 2.0)]);
        let mk = || {
            render_time_panels(
                "d",
                "t",
                &[Panel {
                    y_label: "y",
                    y_range: None,
                    series: vec![Series { name: "s", color: COLOR_APP, points: &s, step: false }],
                }],
            )
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn escapes_markup_in_labels() {
        let s = ts(&[(0.0, 1.0)]);
        let svg = render_time_panels(
            "a < b & c",
            "t",
            &[Panel {
                y_label: "x<y",
                y_range: None,
                series: vec![Series { name: "s&s", color: COLOR_APP, points: &s, step: false }],
            }],
        );
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b"));
    }
}
