//! # adcomp-corpus — synthetic evaluation corpus
//!
//! The IPDPS'11 paper evaluates adaptive compression on three inputs: the
//! Canterbury corpus files `ptt5` (highly compressible fax raster) and
//! `alice29.txt` (moderately compressible English), plus an essentially
//! incompressible JPEG image. Those exact files cannot be redistributed
//! here, so this crate synthesizes deterministic stand-ins whose
//! *compressibility* (the only property the paper's decision model reacts
//! to) matches the published ratios:
//!
//! | Class | Stand-in for | Target LZ ratio (compressed/original) |
//! |---|---|---|
//! | [`Class::High`] | `ptt5` | ≈ 0.10 – 0.15 |
//! | [`Class::Moderate`] | `alice29.txt` | ≈ 0.30 – 0.50 |
//! | [`Class::Low`] | `image.jpg` | ≈ 0.90 – 0.95 |
//!
//! Everything is seeded and platform-independent, so experiments reproduce
//! bit-for-bit.

pub mod entropy;
pub mod gen;
pub mod prng;
pub mod source;
pub mod stats;
mod words;

pub use prng::Prng;
pub use source::{ByteSource, CyclicSource, SourceReader, SwitchingSource};

/// Compressibility class of a workload, named as in the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Class {
    /// `ptt5`-like: compresses to ~10–15 %.
    High,
    /// `alice29.txt`-like: compresses to ~30–50 %.
    Moderate,
    /// `image.jpg`-like: compresses to ~90–95 %.
    Low,
}

impl Class {
    /// All classes in the paper's column order.
    pub const ALL: [Class; 3] = [Class::High, Class::Moderate, Class::Low];

    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            Class::High => "HIGH",
            Class::Moderate => "MODERATE",
            Class::Low => "LOW",
        }
    }

    /// The Canterbury-corpus file this class stands in for.
    pub fn stands_in_for(self) -> &'static str {
        match self {
            Class::High => "ptt5",
            Class::Moderate => "alice29.txt",
            Class::Low => "image.jpg",
        }
    }
}

impl std::fmt::Display for Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Class {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "HIGH" => Ok(Class::High),
            "MODERATE" | "MOD" => Ok(Class::Moderate),
            "LOW" => Ok(Class::Low),
            other => Err(format!("unknown compressibility class: {other}")),
        }
    }
}

/// Generates `len` deterministic bytes of the given class.
pub fn generate(class: Class, len: usize, seed: u64) -> Vec<u8> {
    match class {
        Class::High => gen::fax_image(len, seed),
        Class::Moderate => gen::english_text(len, seed),
        Class::Low => gen::jpeg_like(len, seed),
    }
}

/// The test-file size the paper's experiments replay (~250 KB).
pub const DEFAULT_FILE_LEN: usize = 256 * 1024;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_roundtrips_through_str() {
        for c in Class::ALL {
            assert_eq!(c.name().parse::<Class>().unwrap(), c);
        }
        assert!("garbage".parse::<Class>().is_err());
    }

    #[test]
    fn generate_dispatches_per_class() {
        let h = generate(Class::High, 4096, 5);
        let m = generate(Class::Moderate, 4096, 5);
        let l = generate(Class::Low, 4096, 5);
        assert_ne!(h, m);
        assert_ne!(m, l);
        assert_eq!(h.len(), 4096);
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(Class::High.to_string(), "HIGH");
        assert_eq!(Class::Moderate.to_string(), "MODERATE");
        assert_eq!(Class::Low.to_string(), "LOW");
    }
}
