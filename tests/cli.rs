//! End-to-end tests of the `adcomp` command-line tool, driving the real
//! binary through files and pipes.

use std::io::Write;
use std::process::{Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_adcomp")
}


/// Writes `data` to the child's stdin from a thread (avoids the classic
/// pipe deadlock when the child's stdout fills while stdin is still being
/// written) and returns the child's collected output.
fn feed_and_collect(mut child: std::process::Child, data: Vec<u8>) -> std::process::Output {
    let mut stdin = child.stdin.take().unwrap();
    let writer = std::thread::spawn(move || {
        let _ = stdin.write_all(&data);
    });
    let out = child.wait_with_output().unwrap();
    writer.join().unwrap();
    out
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("adcomp-cli-{}-{name}", std::process::id()))
}

#[test]
fn compress_decompress_file_roundtrip() {
    let input = tmp("in.bin");
    let packed = tmp("packed.adc");
    let output = tmp("out.bin");
    let data = adcomp::corpus::generate(adcomp::corpus::Class::Moderate, 3_000_000, 5);
    std::fs::write(&input, &data).unwrap();

    let status = Command::new(bin())
        .args(["compress", "-l", "MEDIUM"])
        .arg(&input)
        .arg(&packed)
        .status()
        .unwrap();
    assert!(status.success());
    let packed_len = std::fs::metadata(&packed).unwrap().len();
    assert!(packed_len < data.len() as u64 / 2, "packed {packed_len}");

    let status = Command::new(bin()).arg("decompress").arg(&packed).arg(&output).status().unwrap();
    assert!(status.success());
    assert_eq!(std::fs::read(&output).unwrap(), data);

    for p in [&input, &packed, &output] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn stdin_stdout_pipeline_roundtrip() {
    let data = adcomp::corpus::generate(adcomp::corpus::Class::High, 1_000_000, 9);
    let compress = Command::new(bin())
        .args(["compress", "-l", "LIGHT", "-b", "64"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let packed = feed_and_collect(compress, data.clone());
    assert!(packed.status.success());
    assert!(packed.stdout.len() < data.len() / 4);

    let decompress = Command::new(bin())
        .arg("decompress")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let out = feed_and_collect(decompress, packed.stdout);
    assert!(out.status.success());
    assert_eq!(out.stdout, data);
}

#[test]
fn adaptive_mode_roundtrips() {
    let data = adcomp::corpus::generate(adcomp::corpus::Class::Low, 2_000_000, 3);
    let compress = Command::new(bin())
        .args(["compress", "-t", "0.05"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let packed = feed_and_collect(compress, data.clone());
    assert!(packed.status.success());
    // Incompressible input: raw fallback caps expansion near 1.0.
    assert!(packed.stdout.len() < data.len() + data.len() / 100 + 64);

    let decompress = Command::new(bin())
        .arg("d")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let out = feed_and_collect(decompress, packed.stdout);
    assert_eq!(out.stdout, data);
}

#[test]
fn probe_reports_entropy_and_ratios() {
    let input = tmp("probe.bin");
    std::fs::write(&input, adcomp::corpus::generate(adcomp::corpus::Class::High, 500_000, 1))
        .unwrap();
    let out = Command::new(bin()).arg("probe").arg(&input).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("shannon"), "{text}");
    assert!(text.contains("LIGHT"), "{text}");
    assert!(text.contains("HEAVY"), "{text}");
    let _ = std::fs::remove_file(&input);
}

/// `--portfolio` end to end: a heterogeneous file compresses into a
/// mixed-codec stream (the report names a HUFF or COLUMNAR frame), an
/// unmodified `decompress` restores it byte-for-byte, and `probe` prints
/// the nominated ladder.
#[test]
fn portfolio_compress_roundtrip_and_probe() {
    let input = tmp("pf-in.bin");
    let packed = tmp("pf-packed.adc");
    let output = tmp("pf-out.bin");
    // Runs, then text, then noise — three content classes in one file.
    let mut data = vec![7u8; 256 * 1024];
    data.extend(
        b"text-like content with words and repetition, repetition. "
            .iter()
            .copied()
            .cycle()
            .take(256 * 1024),
    );
    data.extend(adcomp::corpus::generate(adcomp::corpus::Class::Low, 256 * 1024, 3));
    std::fs::write(&input, &data).unwrap();

    let out = Command::new(bin())
        .args(["compress", "-l", "MEDIUM", "-b", "16", "--portfolio"])
        .arg(&input)
        .arg(&packed)
        .output()
        .unwrap();
    assert!(out.status.success());
    let report = String::from_utf8_lossy(&out.stderr);
    assert!(report.contains("codecs"), "{report}");
    assert!(
        report.contains("HUFF") || report.contains("COLUMNAR"),
        "portfolio report names no portfolio codec: {report}"
    );

    let status = Command::new(bin()).arg("decompress").arg(&packed).arg(&output).status().unwrap();
    assert!(status.success());
    assert_eq!(std::fs::read(&output).unwrap(), data);

    let out = Command::new(bin()).arg("probe").arg(&input).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("portfolio"), "{text}");
    assert!(text.contains("->"), "{text}");

    for p in [&input, &packed, &output] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = Command::new(bin()).arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let out = Command::new(bin()).output().unwrap();
    assert!(!out.status.success());
}

/// Sim-mode `adcomp top` output — both the raw Prometheus exposition and
/// the rendered dashboard — must be byte-identical across worker counts:
/// every registry write the simulator makes is commutative and
/// virtual-clocked, so the thread schedule cannot leak into the scrape.
#[test]
fn top_sim_mode_is_deterministic_across_thread_counts() {
    let run = |threads: &str, raw: bool| {
        let mut cmd = Command::new(bin());
        // 0.3 simulated GB per cell: enough virtual time for several
        // 2-second decision epochs, so the epoch-rate panel is populated.
        cmd.args(["top", "--once", "--gb", "0.3"]).env("ADCOMP_THREADS", threads);
        if raw {
            cmd.arg("--raw");
        }
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };
    let raw1 = run("1", true);
    let raw4 = run("4", true);
    assert_eq!(raw1, raw4, "raw exposition differs between 1 and 4 threads");
    let dash1 = run("1", false);
    let dash4 = run("4", false);
    assert_eq!(dash1, dash4, "dashboard differs between 1 and 4 threads");

    // The scrape must pass the shared conformance lint, and the dashboard
    // must carry the headline panels.
    let text = String::from_utf8(raw1).unwrap();
    adcomp::trace::conformance_lint(&text).unwrap();
    assert!(text.contains("adcomp_sim_blocks_total"), "{text}");
    let dash = String::from_utf8(dash1).unwrap();
    assert!(dash.contains("registry mode: virtual"), "{dash}");
    assert!(dash.contains("epoch rate"), "{dash}");
    assert!(dash.contains("compress"), "{dash}");
}

/// `adcomp top --url` scrapes a live `/metrics` endpoint: serve a
/// wall-mode registry in-process and point the binary at it.
#[test]
fn top_scrapes_served_metrics_endpoint() {
    use adcomp::metrics::registry::{self, CounterKind, RegistryMode};

    let reg = registry::install(RegistryMode::Wall);
    reg.counter_add(CounterKind::Epochs, 3);
    let server = adcomp::trace::MetricsServer::start("127.0.0.1:0", move || {
        adcomp::trace::render_registry(&reg.snapshot())
    })
    .unwrap();
    let url = format!("{}", server.local_addr());

    let out = Command::new(bin()).args(["top", "--url", &url, "--once", "--raw"]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    adcomp::trace::conformance_lint(&text).unwrap();
    assert!(text.contains("adcomp_epochs_total 3"), "{text}");
    assert!(text.contains("mode=\"wall\""), "{text}");

    let out = Command::new(bin()).args(["top", "--url", &url, "--once"]).output().unwrap();
    assert!(out.status.success());
    let dash = String::from_utf8(out.stdout).unwrap();
    assert!(dash.contains("registry mode: wall"), "{dash}");
    server.shutdown();
}

#[test]
fn corrupted_stream_fails_cleanly() {
    let data = adcomp::corpus::generate(adcomp::corpus::Class::Moderate, 500_000, 2);
    let compress = Command::new(bin())
        .args(["compress", "-l", "LIGHT"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut packed = feed_and_collect(compress, data).stdout;
    let mid = packed.len() / 2;
    packed[mid] ^= 0xFF;

    let decompress = Command::new(bin())
        .arg("decompress")
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let out = feed_and_collect(decompress, packed);
    assert!(!out.status.success(), "corrupted stream must not decode successfully");
}
