//! FIG4 — Performance of the adaptive compression scheme with highly
//! compressible data (HIGH) and no background traffic (paper Figure 4).
//!
//! Prints the per-epoch time series (sender CPU utilization, application
//! throughput, network throughput, chosen compression level) and the
//! probe-frequency decay that demonstrates the exponential backoff.
//!
//! Run: `cargo run --release -p adcomp-bench --bin fig4_timeseries [--quick]`

use adcomp_bench::{
    experiment_bytes, probes_per_window, render_timeseries, trace_path, write_run_trace,
};
use adcomp_core::model::RateBasedModel;
use adcomp_corpus::Class;
use adcomp_trace::{MemorySink, RunManifest, TraceHandle};
use adcomp_vcloud::{run_transfer_traced, ConstantClass, SpeedModel, TransferConfig};
use std::sync::Arc;

fn main() {
    let total = experiment_bytes();
    let cfg = TransferConfig {
        total_bytes: total,
        background_flows: 0,
        seed: 4,
        ..TransferConfig::paper_default()
    };
    let speed = SpeedModel::paper_fit();
    let trace = trace_path();
    let sink = trace.as_ref().map(|_| Arc::new(MemorySink::new()));
    let handle = sink
        .as_ref()
        .map_or_else(TraceHandle::disabled, |s| TraceHandle::new(s.clone()));
    let out = run_transfer_traced(
        &cfg,
        &speed,
        &mut ConstantClass(Class::High),
        Box::new(RateBasedModel::paper_default()),
        handle,
    );
    if let (Some(path), Some(sink)) = (trace, sink) {
        let manifest = RunManifest::new("fig4_timeseries", cfg.seed)
            .coord("class", Class::High.name())
            .coord("flows", cfg.background_flows)
            .cfg("model", "rate_based")
            .volume(total);
        write_run_trace(&path, &manifest, &sink.take());
    }

    println!(
        "FIG4: adaptive scheme, HIGH data, no background traffic ({} GB, t = 2 s, α = 0.2)\n",
        total / 1_000_000_000
    );
    println!("{}", render_timeseries(&out, 40));
    println!(
        "completion: {:.0} s, mean app rate {:.0} MBit/s, wire ratio {:.3}, epochs {}",
        out.completion_secs,
        out.mean_app_rate() * 8.0 / 1e6,
        out.wire_ratio(),
        out.epochs
    );
    let names = ["NO", "LIGHT", "MEDIUM", "HEAVY"];
    let mix: Vec<String> = out
        .blocks_per_level
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(l, c)| format!("{}×{}", names[l], c))
        .collect();
    println!("block mix: {}", mix.join(", "));

    let windows = probes_per_window(&out, out.completion_secs / 5.0);
    println!("\nlevel switches per fifth of the run (backoff should damp them): {windows:?}");
    println!(
        "\nPaper findings to compare against:\n\
         - The scheme quickly settles on LIGHT (QuickLZ, best speed) for ptt5-like data.\n\
         - Optimistic switches to other levels decay exponentially over time."
    );
}
