//! Self-describing block frames.
//!
//! The paper: "Nephele internally buffers data [...] in memory blocks of at
//! most 128 KB size [...]. Each of these blocks is passed independently to
//! the [...] compression library. This means each block contains all the
//! information to be decompressed by the receiver, including meta
//! information about compression algorithm".
//!
//! Layout (little-endian):
//!
//! ```text
//! 0   u8  magic0 = 0xAD
//! 1   u8  magic1 = 0xC2
//! 2   u8  codec id           (CodecId on the wire; Raw if fallback hit)
//! 3   u8  flags              (bit 0: raw fallback — compression expanded;
//!                             bit 1: record-aligned; bit 2: index trailer)
//! 4   u32 uncompressed length
//! 8   u32 payload length
//! 12  u32 CRC-32 of payload
//! 16  payload bytes
//! ```

use crate::crc32::crc32;
use crate::{codec_for, Codec, CodecError, CodecId, DecodeScratch, Result, Scratch};
use adcomp_metrics::registry::{self, CounterKind, LabelFamily, MetricsRegistry, SpanKind};
use adcomp_trace::{CodecEvent, FaultEvent, NullSink, TraceEvent, TraceSink, NO_EPOCH};
use std::io::{self, Read, Write};

/// Frame magic bytes.
pub const MAGIC: [u8; 2] = [0xAD, 0xC2];
/// Size of the fixed frame header.
pub const HEADER_LEN: usize = 16;
/// The paper's block size: at most 128 KiB of application data per block.
pub const DEFAULT_BLOCK_LEN: usize = 128 * 1024;
/// Flag: payload stored raw because compression expanded the block.
pub const FLAG_RAW_FALLBACK: u8 = 0b0000_0001;
/// Flag: the first application byte of this block is a record boundary.
/// Set by record-aligned writers so a reader that dropped a corrupt block
/// can resynchronize its record framing at the next aligned block.
pub const FLAG_RECORD_ALIGNED: u8 = 0b0000_0010;
/// Flag: metadata frame carrying the seekable-stream block index (see
/// [`crate::seek`]). Index frames declare `uncompressed_len = 0` and
/// contribute no application bytes; streaming readers CRC-validate and
/// skip them.
pub const FLAG_INDEX: u8 = 0b0000_0100;
/// Default decompression-bomb guard: a frame header may not declare an
/// `uncompressed_len` or `payload_len` above this, checked *before* any
/// allocation. Generous (blocks in this workspace are ≤ 128 KiB) so that
/// only forged length fields trip it.
pub const DEFAULT_MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Live-registry counters shared by both encode entry points.
fn record_encode_counters(m: &MetricsRegistry, info: &BlockInfo) {
    m.counter_add(CounterKind::BlocksCompressed, 1);
    m.counter_add(CounterKind::CodecInBytes, info.uncompressed_len as u64);
    m.counter_add(CounterKind::CodecOutBytes, info.frame_len as u64);
    if info.raw_fallback {
        m.counter_add(CounterKind::RawFallbacks, 1);
    }
}

/// Parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Codec that actually produced the payload (Raw when fallback hit).
    pub codec: CodecId,
    /// The fallback flag: the *requested* codec expanded the data.
    pub raw_fallback: bool,
    /// The block's first application byte is a record boundary
    /// ([`FLAG_RECORD_ALIGNED`]). Always `false` unless a record-aligned
    /// writer produced the stream.
    pub record_aligned: bool,
    /// Metadata frame carrying the stream's block index ([`FLAG_INDEX`]);
    /// carries no application bytes.
    pub index: bool,
    pub uncompressed_len: u32,
    pub payload_len: u32,
    pub crc: u32,
}

impl FrameHeader {
    /// Serializes into the 16-byte wire form.
    pub fn to_bytes(&self) -> [u8; HEADER_LEN] {
        let mut b = [0u8; HEADER_LEN];
        b[0] = MAGIC[0];
        b[1] = MAGIC[1];
        b[2] = self.codec as u8;
        b[3] = if self.raw_fallback { FLAG_RAW_FALLBACK } else { 0 }
            | if self.record_aligned { FLAG_RECORD_ALIGNED } else { 0 }
            | if self.index { FLAG_INDEX } else { 0 };
        b[4..8].copy_from_slice(&self.uncompressed_len.to_le_bytes());
        b[8..12].copy_from_slice(&self.payload_len.to_le_bytes());
        b[12..16].copy_from_slice(&self.crc.to_le_bytes());
        b
    }

    /// Parses the 16-byte wire form.
    pub fn from_bytes(b: &[u8; HEADER_LEN]) -> Result<FrameHeader> {
        if b[0] != MAGIC[0] || b[1] != MAGIC[1] {
            return Err(CodecError::BadMagic);
        }
        Ok(FrameHeader {
            codec: CodecId::from_u8(b[2])?,
            raw_fallback: b[3] & FLAG_RAW_FALLBACK != 0,
            record_aligned: b[3] & FLAG_RECORD_ALIGNED != 0,
            index: b[3] & FLAG_INDEX != 0,
            uncompressed_len: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            payload_len: u32::from_le_bytes(b[8..12].try_into().unwrap()),
            crc: u32::from_le_bytes(b[12..16].try_into().unwrap()),
        })
    }
}

/// Outcome of encoding one block — what the adaptive layer feeds its
/// statistics with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockInfo {
    /// Application bytes in the block.
    pub uncompressed_len: usize,
    /// Frame bytes emitted (header + payload).
    pub frame_len: usize,
    /// Codec that ended up in the frame (Raw when fallback hit).
    pub codec: CodecId,
    /// Whether the raw fallback replaced an expanding compression.
    pub raw_fallback: bool,
}

impl BlockInfo {
    /// Wire bytes divided by application bytes (≥ a little over 0 for very
    /// compressible data; slightly above 1.0 for incompressible data).
    pub fn wire_ratio(&self) -> f64 {
        if self.uncompressed_len == 0 {
            return 1.0;
        }
        self.frame_len as f64 / self.uncompressed_len as f64
    }
}

/// Compresses `input` with `codec` and appends a complete frame to `out`,
/// allocating fresh codec working memory. Thin wrapper over
/// [`encode_block_with`]; hot paths should hold a [`Scratch`].
///
/// If the compressed payload would be at least as large as the input, the
/// block is stored raw instead and flagged, so the wire overhead on
/// incompressible data is bounded by the 16-byte header.
pub fn encode_block(codec: &dyn Codec, input: &[u8], out: &mut Vec<u8>) -> BlockInfo {
    encode_block_with(&mut Scratch::new(), codec, input, out)
}

/// [`encode_block`] with reusable codec working memory: zero per-block heap
/// allocation in steady state. Output frames are bit-identical to
/// [`encode_block`]'s.
pub fn encode_block_with(
    scratch: &mut Scratch,
    codec: &dyn Codec,
    input: &[u8],
    out: &mut Vec<u8>,
) -> BlockInfo {
    encode_block_flags(scratch, codec, input, out, 0)
}

/// [`encode_block_with`] with extra header flags (e.g.
/// [`FLAG_RECORD_ALIGNED`]); with `extra_flags == 0` the output is
/// bit-identical to [`encode_block_with`].
pub fn encode_block_flags(
    scratch: &mut Scratch,
    codec: &dyn Codec,
    input: &[u8],
    out: &mut Vec<u8>,
    extra_flags: u8,
) -> BlockInfo {
    // Hard limit: the frame header stores lengths as u32. Blocks in this
    // workspace are <= 128 KiB; this protects external callers in release.
    assert!(input.len() <= u32::MAX as usize, "block exceeds frame length field");
    let header_pos = out.len();
    out.resize(header_pos + HEADER_LEN, 0);
    let payload_pos = out.len();
    let mut effective = codec.id();
    let mut raw_fallback = false;
    if codec.id() != CodecId::Raw {
        codec.compress_with(scratch, input, out);
        if out.len() - payload_pos >= input.len() {
            out.truncate(payload_pos);
            out.extend_from_slice(input);
            effective = CodecId::Raw;
            raw_fallback = true;
        }
    } else {
        out.extend_from_slice(input);
    }
    let payload_len = out.len() - payload_pos;
    let header = FrameHeader {
        codec: effective,
        raw_fallback,
        record_aligned: extra_flags & FLAG_RECORD_ALIGNED != 0,
        index: false,
        uncompressed_len: input.len() as u32,
        payload_len: payload_len as u32,
        crc: crc32(&out[payload_pos..]),
    };
    out[header_pos..header_pos + HEADER_LEN].copy_from_slice(&header.to_bytes());
    BlockInfo {
        uncompressed_len: input.len(),
        frame_len: HEADER_LEN + payload_len,
        codec: effective,
        raw_fallback,
    }
}

/// Decodes one frame from the start of `input`, appending the recovered
/// application bytes to `out`. Returns the header and the number of input
/// bytes consumed. Length fields are validated against
/// [`DEFAULT_MAX_FRAME`] before any allocation. Thin wrapper over
/// [`decode_block_with`]; hot paths should hold a [`DecodeScratch`].
pub fn decode_block(input: &[u8], out: &mut Vec<u8>) -> Result<(FrameHeader, usize)> {
    decode_block_limited(input, out, DEFAULT_MAX_FRAME)
}

/// [`decode_block`] with an explicit decompression-bomb cap: both header
/// length fields must be ≤ `max_frame` or the frame is rejected with
/// [`CodecError::FrameTooLarge`] *before* any payload or output allocation.
pub fn decode_block_limited(
    input: &[u8],
    out: &mut Vec<u8>,
    max_frame: u32,
) -> Result<(FrameHeader, usize)> {
    decode_block_with(&mut DecodeScratch::new(), input, out, max_frame)
}

/// [`decode_block_limited`] with reusable decode working memory: zero
/// per-block heap allocation in steady state, output byte-identical to the
/// fresh-scratch path.
pub fn decode_block_with(
    scratch: &mut DecodeScratch,
    input: &[u8],
    out: &mut Vec<u8>,
    max_frame: u32,
) -> Result<(FrameHeader, usize)> {
    if input.len() < HEADER_LEN {
        return Err(CodecError::Truncated);
    }
    let header = FrameHeader::from_bytes(input[..HEADER_LEN].try_into().unwrap())?;
    check_header_caps(&header, max_frame)?;
    let total = HEADER_LEN + header.payload_len as usize;
    if input.len() < total {
        return Err(CodecError::Truncated);
    }
    let payload = &input[HEADER_LEN..total];
    let actual_crc = crc32(payload);
    if actual_crc != header.crc {
        return Err(CodecError::ChecksumMismatch { expected: header.crc, actual: actual_crc });
    }
    let out_start = out.len();
    if let Err(e) = codec_for(header.codec).decompress_with(
        scratch,
        payload,
        header.uncompressed_len as usize,
        out,
    ) {
        // Decoders may have appended partial output before detecting the
        // corruption; never leak it to the caller.
        out.truncate(out_start);
        return Err(e);
    }
    Ok((header, total))
}

/// Bomb guard: rejects headers whose length fields exceed `max_frame`.
fn check_header_caps(header: &FrameHeader, max_frame: u32) -> Result<()> {
    if header.uncompressed_len > max_frame {
        return Err(CodecError::FrameTooLarge {
            field: "uncompressed_len",
            len: header.uncompressed_len,
            max: max_frame,
        });
    }
    if header.payload_len > max_frame {
        return Err(CodecError::FrameTooLarge {
            field: "payload_len",
            len: header.payload_len,
            max: max_frame,
        });
    }
    Ok(())
}

/// Scans `buf` for the next frame [`MAGIC`] pair, returning its offset.
/// The resync primitive: after corruption, discard bytes up to the returned
/// offset and try to parse a header there.
pub fn find_magic(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == MAGIC)
}

/// Streaming frame writer over any [`Write`].
///
/// Holds both a reusable wire buffer and reusable codec working memory
/// ([`Scratch`]), so steady-state block writing performs no heap
/// allocation.
///
/// The second type parameter is the trace sink (defaulting to the
/// statically-disabled [`NullSink`]); with the default, every trace branch
/// is dead code after monomorphization and the write path is bit- and
/// allocation-identical to the untraced writer. An enabled sink receives
/// one [`CodecEvent`] per block, tagged with the epoch/time mark last set
/// via [`FrameWriter::set_trace_mark`].
pub struct FrameWriter<W: Write, S: TraceSink = NullSink> {
    inner: W,
    wire_buf: Vec<u8>,
    codec_scratch: Scratch,
    sink: S,
    trace_epoch: u64,
    trace_t: f64,
    /// When collecting (seekable mode), one entry per block written.
    index: Option<Vec<crate::seek::IndexEntry>>,
    /// Totals for reporting.
    pub app_bytes: u64,
    pub wire_bytes: u64,
    pub blocks: u64,
}

impl<W: Write> FrameWriter<W> {
    pub fn new(inner: W) -> Self {
        FrameWriter::with_sink(inner, NullSink)
    }
}

impl<W: Write, S: TraceSink> FrameWriter<W, S> {
    /// A frame writer emitting one [`CodecEvent`] per block into `sink`.
    pub fn with_sink(inner: W, sink: S) -> Self {
        FrameWriter {
            inner,
            wire_buf: Vec::new(),
            codec_scratch: Scratch::new(),
            sink,
            trace_epoch: NO_EPOCH,
            trace_t: 0.0,
            index: None,
            app_bytes: 0,
            wire_bytes: 0,
            blocks: 0,
        }
    }

    /// Replaces the trace sink (same sink type), keeping stream state.
    pub fn set_sink(&mut self, sink: S) {
        self.sink = sink;
    }

    /// Starts collecting one [`crate::seek::IndexEntry`] per block written,
    /// for a seekable stream's index trailer. Block frames themselves are
    /// byte-identical to the non-indexed writer's — the index only records
    /// where they landed.
    pub fn enable_index(&mut self) {
        if self.index.is_none() {
            self.index = Some(Vec::new());
        }
    }

    /// Whether index collection is active.
    pub fn index_enabled(&self) -> bool {
        self.index.is_some()
    }

    /// Takes the collected index (disabling collection), for callers that
    /// emit the trailer themselves via [`crate::seek::encode_index_trailer`].
    pub fn take_index(&mut self) -> Option<crate::seek::StreamIndex> {
        self.index.take().map(|entries| crate::seek::StreamIndex { entries })
    }

    /// Writes the index trailer frame for every block recorded since
    /// [`FrameWriter::enable_index`] and stops collecting. Returns the
    /// trailer's wire length (0 when collection was never enabled). The
    /// trailer counts toward `wire_bytes` but not `app_bytes`/`blocks`.
    pub fn finish_index(&mut self) -> io::Result<usize> {
        let Some(index) = self.take_index() else { return Ok(0) };
        self.wire_buf.clear();
        crate::seek::encode_index_trailer(&index, &mut self.wire_buf);
        self.inner.write_all(&self.wire_buf)?;
        self.wire_bytes += self.wire_buf.len() as u64;
        Ok(self.wire_buf.len())
    }

    /// Records one written frame into the active index, if any. `frame` is
    /// the complete wire frame (header + payload).
    fn record_index_entry(&mut self, frame: &[u8], info: &BlockInfo) {
        let Some(entries) = self.index.as_mut() else { return };
        entries.push(crate::seek::IndexEntry {
            frame_offset: self.wire_bytes,
            uncompressed_offset: self.app_bytes,
            frame_len: info.frame_len as u32,
            uncompressed_len: info.uncompressed_len as u32,
            crc: u32::from_le_bytes(frame[12..16].try_into().unwrap()),
            codec: info.codec,
        });
    }

    /// Sets the epoch tag and timestamp stamped onto subsequent
    /// [`CodecEvent`]s. The adaptive layer calls this as epochs roll over;
    /// raw frame users may ignore it (events carry [`NO_EPOCH`]).
    pub fn set_trace_mark(&mut self, epoch: u64, t: f64) {
        self.trace_epoch = epoch;
        self.trace_t = t;
    }

    /// Encodes one block with the given codec and writes the frame.
    pub fn write_block(&mut self, codec: &dyn Codec, data: &[u8]) -> io::Result<BlockInfo> {
        self.wire_buf.clear();
        let metrics = registry::global();
        let timed = self.sink.enabled() || metrics.is_some_and(MetricsRegistry::wall_spans);
        let info;
        let mut compress_ns = 0;
        if timed {
            // Trace/metrics-only work (timestamping + event construction)
            // lives entirely inside this branch; with `NullSink` and no
            // registry installed it reduces to one relaxed load.
            let start = std::time::Instant::now();
            info = encode_block_with(&mut self.codec_scratch, codec, data, &mut self.wire_buf);
            compress_ns = start.elapsed().as_nanos() as u64;
        } else {
            info = encode_block_with(&mut self.codec_scratch, codec, data, &mut self.wire_buf);
        }
        if self.sink.enabled() {
            self.sink.emit(&TraceEvent::Codec(CodecEvent {
                epoch: self.trace_epoch,
                t: self.trace_t,
                level: codec.id().level_name(),
                in_bytes: info.uncompressed_len as u64,
                out_bytes: info.frame_len as u64,
                compress_ns,
                raw_fallback: info.raw_fallback,
            }));
        }
        if let Some(m) = metrics {
            m.span_ns(SpanKind::Compress, compress_ns);
            record_encode_counters(m, &info);
        }
        self.inner.write_all(&self.wire_buf)?;
        if self.index.is_some() {
            let frame = std::mem::take(&mut self.wire_buf);
            self.record_index_entry(&frame, &info);
            self.wire_buf = frame;
        }
        self.app_bytes += info.uncompressed_len as u64;
        self.wire_bytes += info.frame_len as u64;
        self.blocks += 1;
        Ok(info)
    }

    /// Writes a frame that was encoded elsewhere (e.g. on a worker pool),
    /// updating the same totals and emitting the same [`CodecEvent`] as
    /// [`FrameWriter::write_block`]. `requested` is the codec the caller
    /// asked for (the event's level name — `info.codec` may be `Raw` after
    /// fallback), `compress_ns` the caller-measured encode time.
    pub fn write_frame(
        &mut self,
        requested: CodecId,
        frame: &[u8],
        info: BlockInfo,
        compress_ns: u64,
    ) -> io::Result<()> {
        if self.sink.enabled() {
            self.sink.emit(&TraceEvent::Codec(CodecEvent {
                epoch: self.trace_epoch,
                t: self.trace_t,
                level: requested.level_name(),
                in_bytes: info.uncompressed_len as u64,
                out_bytes: info.frame_len as u64,
                compress_ns,
                raw_fallback: info.raw_fallback,
            }));
        }
        if let Some(m) = registry::global() {
            m.span_ns(SpanKind::Compress, compress_ns);
            record_encode_counters(m, &info);
        }
        self.inner.write_all(frame)?;
        self.record_index_entry(frame, &info);
        self.app_bytes += info.uncompressed_len as u64;
        self.wire_bytes += info.frame_len as u64;
        self.blocks += 1;
        Ok(())
    }

    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }

    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// How a frame reader reacts to corruption in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// First bad byte aborts the transfer with a typed error (default —
    /// the pre-fault-model behavior, and the zero-overhead fast path).
    FailFast,
    /// Corrupt frames are dropped: the reader scans forward to the next
    /// frame magic, counts the incident, and keeps going. Surviving frames
    /// decode byte-identically.
    SkipAndCount,
}

/// Recovery policy for [`FrameReader`] and the layers built on it.
///
/// Three presets cover the taxonomy from the fault model: fail-fast
/// ([`RecoveryPolicy::fail_fast`]), skip-and-count
/// ([`RecoveryPolicy::skip_and_count`]) and bounded retry with exponential
/// backoff for transient I/O errors ([`RecoveryPolicy::bounded_retry`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Corruption handling.
    pub mode: RecoveryMode,
    /// Bounded retries for *transient* I/O errors (`WouldBlock`,
    /// `TimedOut`). `Interrupted` is always retried, as `std` does.
    pub max_retries: u32,
    /// Backoff before retry `k` is `backoff_base_us << (k-1)` microseconds
    /// (capped at 2^10×). 0 disables sleeping (pure spin — what the
    /// deterministic tests use).
    pub backoff_base_us: u64,
    /// Decompression-bomb cap applied to both header length fields before
    /// any allocation.
    pub max_frame: u32,
    /// Upper bound on bytes scanned forward during a single resync before
    /// the reader gives up with a typed error (guards against pathological
    /// streams turning recovery into an unbounded scan).
    pub max_resync_scan: u64,
}

impl RecoveryPolicy {
    /// Abort on the first fault. The default; the fault-free fast path.
    pub fn fail_fast() -> Self {
        RecoveryPolicy {
            mode: RecoveryMode::FailFast,
            max_retries: 0,
            backoff_base_us: 0,
            max_frame: DEFAULT_MAX_FRAME,
            max_resync_scan: 64 * 1024 * 1024,
        }
    }

    /// Drop corrupt frames, resync, and keep counters.
    pub fn skip_and_count() -> Self {
        RecoveryPolicy { mode: RecoveryMode::SkipAndCount, ..RecoveryPolicy::fail_fast() }
    }

    /// Skip-and-count plus up to `max_retries` retries with exponential
    /// backoff for transient I/O errors.
    pub fn bounded_retry(max_retries: u32, backoff_base_us: u64) -> Self {
        RecoveryPolicy { max_retries, backoff_base_us, ..RecoveryPolicy::skip_and_count() }
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::fail_fast()
    }
}

/// Counters kept by the recovery machinery — surfaced through
/// `StreamStats`, trace events and the Prometheus snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Frames dropped because of bad magic/codec id, length-cap violations,
    /// CRC mismatch or decode failure.
    pub corrupt_frames: u64,
    /// Successful forward scans to a new frame magic.
    pub resyncs: u64,
    /// Transient-I/O retries performed.
    pub retries: u64,
    /// Wire bytes discarded while resyncing.
    pub skipped_bytes: u64,
    /// Mid-frame end-of-stream incidents (header or payload cut short).
    pub truncations: u64,
}

impl RecoveryStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.corrupt_frames += other.corrupt_frames;
        self.resyncs += other.resyncs;
        self.retries += other.retries;
        self.skipped_bytes += other.skipped_bytes;
        self.truncations += other.truncations;
    }

    /// True when no fault of any kind was recorded.
    pub fn is_clean(&self) -> bool {
        *self == RecoveryStats::default()
    }
}

/// Streaming frame reader over any [`Read`], hardened against corruption.
///
/// By default ([`RecoveryPolicy::fail_fast`]) behaves exactly like the
/// historical reader: the first bad byte is a typed error, and the hot path
/// adds only a carry-buffer emptiness check. Under
/// [`RecoveryMode::SkipAndCount`] the reader drops corrupt frames, scans
/// forward to the next frame [`MAGIC`] (including *inside* suspect bytes,
/// so a forged length field cannot swallow later good frames), and keeps
/// [`RecoveryStats`]. The optional trace sink receives one
/// [`FaultEvent`] per incident.
pub struct FrameReader<R: Read, S: TraceSink = NullSink> {
    inner: R,
    payload_buf: Vec<u8>,
    /// Reusable decode working memory — steady-state decode is zero-alloc.
    decode_scratch: DecodeScratch,
    /// Bytes returned to the stream for re-scanning (recovery only; empty
    /// on the fault-free path).
    carry: Vec<u8>,
    carry_pos: usize,
    policy: RecoveryPolicy,
    sink: S,
    trace_epoch: u64,
    trace_t: f64,
    /// Offset of the next unconsumed byte in the wire stream.
    stream_offset: u64,
    /// Recovery counters (all zero while the stream is clean).
    pub recovery: RecoveryStats,
    /// Totals for reporting.
    pub app_bytes: u64,
    pub wire_bytes: u64,
    pub blocks: u64,
}

/// Outcome of an exact-read attempt against the carry + inner stream.
#[derive(Clone, Copy)]
enum FillOutcome {
    Full,
    /// End of stream after `0 < n < requested` bytes.
    Partial(usize),
    /// End of stream before any byte.
    Eof,
}

impl<R: Read> FrameReader<R> {
    pub fn new(inner: R) -> Self {
        FrameReader::with_policy(inner, RecoveryPolicy::default())
    }

    /// A reader with an explicit [`RecoveryPolicy`] (untraced).
    pub fn with_policy(inner: R, policy: RecoveryPolicy) -> Self {
        FrameReader::with_sink(inner, policy, NullSink)
    }
}

impl<R: Read, S: TraceSink> FrameReader<R, S> {
    /// A reader emitting one [`FaultEvent`] per fault/recovery incident
    /// into `sink`.
    pub fn with_sink(inner: R, policy: RecoveryPolicy, sink: S) -> Self {
        FrameReader {
            inner,
            payload_buf: Vec::new(),
            decode_scratch: DecodeScratch::new(),
            carry: Vec::new(),
            carry_pos: 0,
            policy,
            sink,
            trace_epoch: NO_EPOCH,
            trace_t: 0.0,
            stream_offset: 0,
            recovery: RecoveryStats::default(),
            app_bytes: 0,
            wire_bytes: 0,
            blocks: 0,
        }
    }

    /// The active recovery policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Replaces the recovery policy mid-stream.
    pub fn set_policy(&mut self, policy: RecoveryPolicy) {
        self.policy = policy;
    }

    /// Sets the epoch tag and timestamp stamped onto subsequent
    /// [`FaultEvent`]s (mirrors [`FrameWriter::set_trace_mark`]).
    pub fn set_trace_mark(&mut self, epoch: u64, t: f64) {
        self.trace_epoch = epoch;
        self.trace_t = t;
    }

    fn emit_fault(&self, kind: &'static str, bytes: u64, attempt: u64) {
        if self.sink.enabled() {
            self.sink.emit(&TraceEvent::Fault(FaultEvent {
                epoch: self.trace_epoch,
                t: self.trace_t,
                kind,
                bytes,
                attempt,
            }));
        }
        if let Some(m) = registry::global() {
            m.label_count(LabelFamily::FaultKind, kind, 1);
        }
    }

    /// One `read` against the inner stream with the policy's transient
    /// retry/backoff loop. `Interrupted` is always retried.
    fn read_inner_retry(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut attempt = 0u32;
        loop {
            match self.inner.read(buf) {
                Ok(n) => return Ok(n),
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) && attempt < self.policy.max_retries =>
                {
                    attempt += 1;
                    self.recovery.retries += 1;
                    self.emit_fault("retry", 0, attempt as u64);
                    if self.policy.backoff_base_us > 0 {
                        let shift = (attempt - 1).min(10);
                        std::thread::sleep(std::time::Duration::from_micros(
                            self.policy.backoff_base_us << shift,
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Fills `buf` exactly, consuming the carry first, then the inner
    /// stream. Advances `stream_offset` by every byte consumed.
    fn fill(&mut self, buf: &mut [u8]) -> io::Result<FillOutcome> {
        let mut filled = 0;
        if self.carry_pos < self.carry.len() {
            let n = (self.carry.len() - self.carry_pos).min(buf.len());
            buf[..n].copy_from_slice(&self.carry[self.carry_pos..self.carry_pos + n]);
            self.carry_pos += n;
            filled = n;
            if self.carry_pos == self.carry.len() {
                self.carry.clear();
                self.carry_pos = 0;
            }
        }
        while filled < buf.len() {
            let n = self.read_inner_retry(&mut buf[filled..])?;
            if n == 0 {
                self.stream_offset += filled as u64;
                return Ok(if filled == 0 { FillOutcome::Eof } else { FillOutcome::Partial(filled) });
            }
            filled += n;
        }
        self.stream_offset += filled as u64;
        Ok(FillOutcome::Full)
    }

    /// Returns `head ++ tail` to the front of the stream for re-scanning.
    fn unread2(&mut self, head: &[u8], tail: &[u8]) {
        let returned = head.len() + tail.len();
        if returned == 0 {
            return;
        }
        let mut nc = Vec::with_capacity(returned + self.carry.len() - self.carry_pos);
        nc.extend_from_slice(head);
        nc.extend_from_slice(tail);
        nc.extend_from_slice(&self.carry[self.carry_pos..]);
        self.carry = nc;
        self.carry_pos = 0;
        self.stream_offset -= returned as u64;
    }

    /// Scans forward (carry first, then the inner stream) for the next
    /// frame magic. Returns `Ok(true)` when positioned at a magic,
    /// `Ok(false)` on end of stream. Discarded bytes are counted.
    fn resync(&mut self) -> io::Result<bool> {
        const CHUNK: usize = 4096;
        let mut skipped: u64 = 0;
        let found = loop {
            if let Some(i) = find_magic(&self.carry[self.carry_pos..]) {
                self.carry_pos += i;
                skipped += i as u64;
                self.stream_offset += i as u64;
                break true;
            }
            // No magic: everything but a possible trailing MAGIC[0] byte is
            // dead. Keep that byte — the pair may span the chunk boundary.
            let keep = usize::from(self.carry[self.carry_pos..].last() == Some(&MAGIC[0]));
            let dead = self.carry.len() - self.carry_pos - keep;
            skipped += dead as u64;
            self.stream_offset += dead as u64;
            if skipped > self.policy.max_resync_scan {
                self.recovery.skipped_bytes += skipped;
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "resync scan exceeded {} bytes at stream offset {}",
                        self.policy.max_resync_scan, self.stream_offset
                    ),
                ));
            }
            if keep == 1 {
                let b = *self.carry.last().unwrap();
                self.carry.clear();
                self.carry.push(b);
            } else {
                self.carry.clear();
            }
            self.carry_pos = 0;
            let old_len = self.carry.len();
            self.carry.resize(old_len + CHUNK, 0);
            let mut tmp = std::mem::take(&mut self.carry);
            let r = self.read_inner_retry(&mut tmp[old_len..]);
            self.carry = tmp;
            match r {
                Ok(0) => {
                    // Stream over; the kept half-magic byte is dead too.
                    skipped += old_len as u64;
                    self.stream_offset += old_len as u64;
                    self.carry.clear();
                    self.carry_pos = 0;
                    break false;
                }
                Ok(n) => self.carry.truncate(old_len + n),
                Err(e) => {
                    self.carry.truncate(old_len);
                    return Err(e);
                }
            }
        };
        self.recovery.skipped_bytes += skipped;
        if found {
            self.recovery.resyncs += 1;
        }
        self.emit_fault("resync", skipped, u64::from(found));
        Ok(found)
    }

    /// Handles a corrupt frame according to the policy: in skip mode,
    /// returns the suspect bytes (minus the first, so progress is
    /// guaranteed) to the stream and resyncs. `Ok(true)` means "retry the
    /// read loop", `Ok(false)` means clean end of stream.
    fn recover_corrupt(
        &mut self,
        err: CodecError,
        header_bytes: &[u8; HEADER_LEN],
        payload_len: usize,
    ) -> io::Result<bool> {
        self.recovery.corrupt_frames += 1;
        let kind = match err {
            CodecError::FrameTooLarge { .. } => "frame_too_large",
            _ => "corrupt_frame",
        };
        self.emit_fault(kind, (HEADER_LEN + payload_len) as u64, self.blocks);
        if self.policy.mode == RecoveryMode::FailFast {
            return Err(to_io(err));
        }
        let payload = std::mem::take(&mut self.payload_buf);
        self.unread2(&header_bytes[1..], &payload[..payload_len.min(payload.len())]);
        self.payload_buf = payload;
        self.resync()
    }

    /// Handles a mid-frame end of stream: in skip mode the partial bytes
    /// are re-scanned (a forged length may have swallowed good frames) and
    /// the incident is counted; in fail-fast mode it is a typed error
    /// naming the truncation site, stream offset and block index.
    fn recover_truncated(
        &mut self,
        site: &str,
        got: usize,
        want: usize,
        at: u64,
        partial: &[u8],
    ) -> io::Result<bool> {
        self.recovery.truncations += 1;
        self.emit_fault("truncated", got as u64, self.blocks);
        if self.policy.mode == RecoveryMode::FailFast {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "truncated frame {site}: got {got} of {want} bytes at stream offset {at}, \
                     block {}",
                    self.blocks
                ),
            ));
        }
        // Drop the first partial byte (progress), re-scan the rest: a
        // forged length field may have swallowed whole good frames.
        let head: &[u8] = if partial.is_empty() { &[] } else { &partial[1..] };
        self.unread2(head, &[]);
        self.resync()
    }
}

impl<R: Read, S: TraceSink> FrameReader<R, S> {
    /// Reads and decodes the next frame, appending application bytes to
    /// `out`. Returns `Ok(None)` on a clean end of stream — and, under
    /// [`RecoveryMode::SkipAndCount`], after dropping any trailing
    /// corrupt/truncated bytes (check [`FrameReader::recovery`] to tell the
    /// two apart).
    pub fn read_block(&mut self, out: &mut Vec<u8>) -> io::Result<Option<FrameHeader>> {
        let metrics = registry::global();
        let timed = metrics.is_some_and(MetricsRegistry::wall_spans);
        loop {
            let start = timed.then(std::time::Instant::now);
            let frame = self.read_valid_frame()?;
            if let (Some(m), Some(s)) = (metrics, start) {
                m.span_ns(SpanKind::FrameRead, s.elapsed().as_nanos() as u64);
            }
            let Some((header, header_bytes)) = frame else {
                return Ok(None);
            };
            if header.index {
                // Seekable-stream index trailer: CRC-validated above,
                // carries no application bytes. Consume and move on.
                let flen = (HEADER_LEN + header.payload_len as usize) as u64;
                if let Some(m) = metrics {
                    m.counter_add(CounterKind::WireInBytes, flen);
                }
                self.wire_bytes += flen;
                continue;
            }
            let out_start = out.len();
            let start = timed.then(std::time::Instant::now);
            if let Err(e) = codec_for(header.codec).decompress_with(
                &mut self.decode_scratch,
                &self.payload_buf,
                header.uncompressed_len as usize,
                out,
            ) {
                out.truncate(out_start);
                let plen = header.payload_len as usize;
                if self.recover_corrupt(e, &header_bytes, plen)? {
                    continue;
                }
                return Ok(None);
            }
            if let Some(m) = metrics {
                if let Some(s) = start {
                    m.span_ns(SpanKind::Decompress, s.elapsed().as_nanos() as u64);
                }
                m.counter_add(CounterKind::BlocksDecompressed, 1);
                m.counter_add(
                    CounterKind::WireInBytes,
                    (HEADER_LEN + header.payload_len as usize) as u64,
                );
            }
            self.app_bytes += header.uncompressed_len as u64;
            self.wire_bytes += (HEADER_LEN + header.payload_len as usize) as u64;
            self.blocks += 1;
            return Ok(Some(header));
        }
    }

    /// Reads the next CRC-valid frame *without* decompressing it: the
    /// payload is copied into `payload` and the parsed header returned.
    /// All header/length/CRC validation and the full recovery machinery
    /// (retry, resync, truncation handling) run exactly as in
    /// [`FrameReader::read_block`]; only the decompression step is left to
    /// the caller. This is the parallel-decode seam: a reader thread pulls
    /// validated frames in wire order and hands the pure
    /// payload-decompression to a worker pool. Updates `wire_bytes` and
    /// `blocks` (`app_bytes` is the decoding caller's to account).
    pub fn read_frame(&mut self, payload: &mut Vec<u8>) -> io::Result<Option<FrameHeader>> {
        let metrics = registry::global();
        loop {
            let start = metrics
                .is_some_and(MetricsRegistry::wall_spans)
                .then(std::time::Instant::now);
            let frame = self.read_valid_frame()?;
            if let (Some(m), Some(s)) = (metrics, start) {
                m.span_ns(SpanKind::FrameRead, s.elapsed().as_nanos() as u64);
            }
            match frame {
                Some((header, _)) => {
                    let flen = (HEADER_LEN + header.payload_len as usize) as u64;
                    if let Some(m) = metrics {
                        m.counter_add(CounterKind::WireInBytes, flen);
                    }
                    self.wire_bytes += flen;
                    if header.index {
                        // Index trailer: consumed, not handed to the caller.
                        continue;
                    }
                    payload.clear();
                    payload.extend_from_slice(&self.payload_buf);
                    self.blocks += 1;
                    return Ok(Some(header));
                }
                None => return Ok(None),
            }
        }
    }

    /// The shared read loop: next frame whose header parses, passes the
    /// length caps and whose payload matches its CRC. On return the payload
    /// sits in `self.payload_buf`. Recovery per the policy; `Ok(None)` on
    /// (possibly recovered-to) end of stream.
    fn read_valid_frame(&mut self) -> io::Result<Option<(FrameHeader, [u8; HEADER_LEN])>> {
        loop {
            let header_off = self.stream_offset;
            let mut header_bytes = [0u8; HEADER_LEN];
            match self.fill(&mut header_bytes)? {
                FillOutcome::Eof => return Ok(None),
                FillOutcome::Partial(n) => {
                    let h = header_bytes;
                    if self.recover_truncated("header", n, HEADER_LEN, header_off, &h[..n])? {
                        continue;
                    }
                    return Ok(None);
                }
                FillOutcome::Full => {}
            }
            let header = match FrameHeader::from_bytes(&header_bytes)
                .and_then(|h| check_header_caps(&h, self.policy.max_frame).map(|()| h))
            {
                Ok(h) => h,
                Err(e) => {
                    if self.recover_corrupt(e, &header_bytes, 0)? {
                        continue;
                    }
                    return Ok(None);
                }
            };
            let payload_off = self.stream_offset;
            self.payload_buf.clear();
            self.payload_buf.resize(header.payload_len as usize, 0);
            let mut payload = std::mem::take(&mut self.payload_buf);
            let outcome = self.fill(&mut payload);
            self.payload_buf = payload;
            let outcome = outcome?;
            match outcome {
                FillOutcome::Eof | FillOutcome::Partial(_) => {
                    let got = match outcome {
                        FillOutcome::Partial(n) => n,
                        _ => 0,
                    };
                    let want = header.payload_len as usize;
                    self.recovery.truncations += 1;
                    self.emit_fault("truncated", got as u64, self.blocks);
                    if self.policy.mode == RecoveryMode::FailFast {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!(
                                "truncated frame payload: got {got} of {want} bytes at stream \
                                 offset {payload_off} (header at {header_off}), block {}",
                                self.blocks
                            ),
                        ));
                    }
                    // The partial payload may contain whole good frames a
                    // forged length field tried to swallow: re-scan it.
                    let payload = std::mem::take(&mut self.payload_buf);
                    let head: &[u8] = if got == 0 { &[] } else { &payload[1..got] };
                    self.unread2(head, &[]);
                    self.payload_buf = payload;
                    if self.resync()? {
                        continue;
                    }
                    return Ok(None);
                }
                FillOutcome::Full => {}
            }
            let actual_crc = crc32(&self.payload_buf);
            if actual_crc != header.crc {
                let e = CodecError::ChecksumMismatch { expected: header.crc, actual: actual_crc };
                let plen = header.payload_len as usize;
                if self.recover_corrupt(e, &header_bytes, plen)? {
                    continue;
                }
                return Ok(None);
            }
            return Ok(Some((header, header_bytes)));
        }
    }

    pub fn into_inner(self) -> R {
        self.inner
    }
}

fn to_io(e: CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HeavyCodec, QlzLightCodec, QlzMediumCodec, RawCodec};

    #[test]
    fn header_roundtrip() {
        let h = FrameHeader {
            codec: CodecId::QlzMedium,
            raw_fallback: false,
            record_aligned: true,
            index: false,
            uncompressed_len: 131072,
            payload_len: 4242,
            crc: 0xDEADBEEF,
        };
        assert_eq!(FrameHeader::from_bytes(&h.to_bytes()).unwrap(), h);
    }

    #[test]
    fn header_rejects_bad_magic() {
        let mut b = FrameHeader {
            codec: CodecId::Raw,
            raw_fallback: false,
            record_aligned: false,
            index: false,
            uncompressed_len: 0,
            payload_len: 0,
            crc: 0,
        }
        .to_bytes();
        b[0] = 0x00;
        assert!(matches!(FrameHeader::from_bytes(&b), Err(CodecError::BadMagic)));
    }

    #[test]
    fn block_roundtrip_all_codecs() {
        let data = b"block roundtrip data, repeated enough to compress. ".repeat(100);
        for codec in [&RawCodec as &dyn Codec, &QlzLightCodec, &QlzMediumCodec, &HeavyCodec] {
            let mut wire = Vec::new();
            let info = encode_block(codec, &data, &mut wire);
            assert_eq!(info.frame_len, wire.len());
            let mut out = Vec::new();
            let (header, consumed) = decode_block(&wire, &mut out).unwrap();
            assert_eq!(consumed, wire.len());
            assert_eq!(out, data);
            assert_eq!(header.codec, info.codec);
        }
    }

    #[test]
    fn incompressible_block_falls_back_to_raw() {
        // A xorshift byte soup defeats the LZ codecs.
        let mut x = 0x1234_5678_9ABC_DEFFu64;
        let data: Vec<u8> = (0..8192)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let mut wire = Vec::new();
        let info = encode_block(&QlzLightCodec, &data, &mut wire);
        assert!(info.raw_fallback);
        assert_eq!(info.codec, CodecId::Raw);
        assert_eq!(info.frame_len, HEADER_LEN + data.len());
        let mut out = Vec::new();
        decode_block(&wire, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn corrupted_payload_detected_by_crc() {
        let data = b"corruption test ".repeat(64);
        let mut wire = Vec::new();
        encode_block(&QlzLightCodec, &data, &mut wire);
        let idx = HEADER_LEN + 5;
        wire[idx] ^= 0x80;
        let mut out = Vec::new();
        assert!(matches!(
            decode_block(&wire, &mut out),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_frame_detected() {
        let data = b"truncate me ".repeat(64);
        let mut wire = Vec::new();
        encode_block(&QlzMediumCodec, &data, &mut wire);
        let mut out = Vec::new();
        assert!(matches!(
            decode_block(&wire[..wire.len() - 1], &mut out),
            Err(CodecError::Truncated)
        ));
        assert!(matches!(decode_block(&wire[..8], &mut out), Err(CodecError::Truncated)));
    }

    #[test]
    fn empty_block_roundtrip() {
        let mut wire = Vec::new();
        let info = encode_block(&QlzLightCodec, &[], &mut wire);
        assert_eq!(info.uncompressed_len, 0);
        let mut out = Vec::new();
        let (h, consumed) = decode_block(&wire, &mut out).unwrap();
        assert_eq!(consumed, wire.len());
        assert_eq!(h.uncompressed_len, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn stream_writer_reader_roundtrip() {
        let blocks: Vec<Vec<u8>> = vec![
            b"first block ".repeat(100),
            b"second, different content block ".repeat(50),
            Vec::new(),
            b"third".to_vec(),
        ];
        let mut wire = Vec::new();
        {
            let mut w = FrameWriter::new(&mut wire);
            for (i, b) in blocks.iter().enumerate() {
                let codec: &dyn Codec =
                    if i % 2 == 0 { &QlzLightCodec } else { &HeavyCodec };
                w.write_block(codec, b).unwrap();
            }
            assert_eq!(w.blocks, 4);
        }
        let mut r = FrameReader::new(&wire[..]);
        let mut i = 0;
        loop {
            let mut out = Vec::new();
            match r.read_block(&mut out).unwrap() {
                Some(_) => {
                    assert_eq!(out, blocks[i]);
                    i += 1;
                }
                None => break,
            }
        }
        assert_eq!(i, blocks.len());
        assert_eq!(r.wire_bytes, wire.len() as u64);
    }

    #[test]
    fn reader_reports_partial_header_as_error() {
        let data = b"some data".to_vec();
        let mut wire = Vec::new();
        encode_block(&RawCodec, &data, &mut wire);
        let mut r = FrameReader::new(&wire[..HEADER_LEN - 3]);
        let mut out = Vec::new();
        assert!(r.read_block(&mut out).is_err());
    }

    #[test]
    fn traced_writer_emits_one_codec_event_per_block() {
        use adcomp_trace::{MemorySink, TraceEvent};
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::new());
        let mut w = FrameWriter::with_sink(Vec::new(), Arc::clone(&sink));
        w.set_trace_mark(7, 14.5);
        let data = b"traced block data, repeated for compression. ".repeat(50);
        w.write_block(&QlzLightCodec, &data).unwrap();
        w.write_block(&RawCodec, &data).unwrap();
        let events = sink.snapshot();
        assert_eq!(events.len(), 2);
        let TraceEvent::Codec(first) = events[0] else { panic!("expected codec event") };
        assert_eq!(first.epoch, 7);
        assert_eq!(first.t, 14.5);
        assert_eq!(first.level, "LIGHT");
        assert_eq!(first.in_bytes, data.len() as u64);
        assert!(first.out_bytes < first.in_bytes);
        let TraceEvent::Codec(second) = events[1] else { panic!("expected codec event") };
        assert_eq!(second.level, "NO");
        assert_eq!(second.out_bytes, data.len() as u64 + HEADER_LEN as u64);
    }

    #[test]
    fn wire_ratio_sane() {
        let data = vec![0u8; 65536];
        let mut wire = Vec::new();
        let info = encode_block(&QlzLightCodec, &data, &mut wire);
        assert!(info.wire_ratio() < 0.05);
        let empty = BlockInfo { uncompressed_len: 0, frame_len: 16, codec: CodecId::Raw, raw_fallback: false };
        assert_eq!(empty.wire_ratio(), 1.0);
    }
}
