//! Quickstart: wrap any `Write` in the paper's adaptive compression scheme.
//!
//! Run with: `cargo run --release --example quickstart`

use adcomp::prelude::*;
use std::io::{Read, Write};

fn main() -> std::io::Result<()> {
    // Three synthetic workloads matching the paper's test files.
    let workloads = [
        (Class::High, "ptt5-like bitmap"),
        (Class::Moderate, "alice29-like text"),
        (Class::Low, "JPEG-like bytes"),
    ];

    println!("adcomp quickstart — adaptive compression over an in-memory pipe\n");
    for (class, desc) in workloads {
        let data = adcomp::corpus::generate(class, 64 * 1024 * 1024, 42);

        // The sender side: a rate-based adaptive writer with the paper's
        // four levels (NO / LIGHT / MEDIUM / HEAVY). The short epoch makes
        // the demo adapt within a fraction of a second.
        let model = Box::new(RateBasedModel::paper_default());
        let mut writer = AdaptiveWriter::with_params(
            Vec::new(),
            LevelSet::paper_default(),
            model,
            128 * 1024,
            0.01, // epoch t = 10 ms for the demo (the paper uses 2 s)
            Box::new(adcomp::core::WallClock::new()),
        );
        writer.write_all(&data)?;
        let (wire, stats) = writer.finish()?;

        // The receiver side: self-describing frames need no coordination.
        let mut out = Vec::new();
        AdaptiveReader::new(&wire[..]).read_to_end(&mut out)?;
        assert_eq!(out, data, "lossless roundtrip");

        println!("{:<9} ({desc})", class.name());
        println!("  app bytes : {:>10}", stats.app_bytes);
        println!("  wire bytes: {:>10}  (ratio {:.3})", stats.wire_bytes, stats.wire_ratio());
        println!("  epochs    : {:>10}", stats.epochs);
        let names = ["NO", "LIGHT", "MEDIUM", "HEAVY"];
        let mix: Vec<String> = stats
            .blocks_per_level
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(l, c)| format!("{}×{}", names[l], c))
            .collect();
        println!("  level mix : {}\n", mix.join(", "));
    }
    println!("All roundtrips verified losslessly.");
    Ok(())
}
