//! Property tests for the zero-alloc codec hot path:
//!
//! * the word-oriented `match_len` is a drop-in replacement for the
//!   byte-wise reference (differential testing across generated inputs,
//!   including matches that run into the end of the buffer), and
//! * a `Scratch` reused across blocks of different sizes and corpus
//!   classes produces bit-identical frames to fresh-allocation compression.

use adcomp_codecs::frame::{encode_block, encode_block_with};
use adcomp_codecs::qlz::{match_len, match_len_naive};
use adcomp_codecs::{codec_for, CodecId, Scratch};
use adcomp_corpus::{generate, Class};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Differential: fast vs naive on small-alphabet data (small alphabets
    /// make long matches — the interesting regime for the u64 fast path).
    #[test]
    fn match_len_equals_naive(
        data in proptest::collection::vec(0u8..4, 2..600),
        bi in any::<prop::sample::Index>(),
        ai in any::<prop::sample::Index>(),
        li in any::<prop::sample::Index>(),
    ) {
        let n = data.len();
        let b = 1 + bi.index(n - 1); // 1..n
        let a = ai.index(b); // 0..b  (a < b)
        let limit = li.index(n - b + 1); // 0..=n-b, includes the exact tail
        prop_assert_eq!(
            match_len(&data, a, b, limit),
            match_len_naive(&data, a, b, limit)
        );
    }

    /// Same, on full-alphabet (near-incompressible) data: first-word
    /// mismatches dominate here.
    #[test]
    fn match_len_equals_naive_full_alphabet(
        data in proptest::collection::vec(any::<u8>(), 2..300),
        bi in any::<prop::sample::Index>(),
        li in any::<prop::sample::Index>(),
    ) {
        let n = data.len();
        let b = 1 + bi.index(n - 1);
        let limit = li.index(n - b + 1);
        prop_assert_eq!(
            match_len(&data, 0, b, limit),
            match_len_naive(&data, 0, b, limit)
        );
    }
}

/// One `Scratch` carried across every codec level and every corpus class,
/// with block sizes that shrink and grow — frames must match the
/// fresh-allocation path bit for bit, and still decode.
#[test]
fn scratch_reuse_across_classes_and_sizes() {
    let sizes = [128 * 1024, 700, 128 * 1024, 32 * 1024, 1, 96 * 1024];
    let mut scratch = Scratch::new();
    for id in [CodecId::QlzLight, CodecId::QlzMedium, CodecId::Heavy] {
        let codec = codec_for(id);
        for (i, (&len, class)) in sizes
            .iter()
            .zip([Class::High, Class::Moderate, Class::Low].into_iter().cycle())
            .enumerate()
        {
            let block = generate(class, len, 7 + i as u64);
            let mut fresh = Vec::new();
            let info_fresh = encode_block(codec, &block, &mut fresh);
            let mut reused = Vec::new();
            let info_reused = encode_block_with(&mut scratch, codec, &block, &mut reused);
            assert_eq!(fresh, reused, "{id:?} block {i} ({class:?}, {len} B) frame diverged");
            assert_eq!(info_fresh, info_reused);
            let mut out = Vec::new();
            let (_, consumed) = adcomp_codecs::frame::decode_block(&reused, &mut out)
                .expect("reused-scratch frame must decode");
            assert_eq!(consumed, reused.len());
            assert_eq!(out, block, "{id:?} block {i} roundtrip");
        }
    }
}

/// Scratch tables grow to the high-water mark and stay there — reuse must
/// not shrink or reallocate when a smaller block follows a larger one.
#[test]
fn scratch_tables_reach_steady_state() {
    let mut scratch = Scratch::new();
    let codec = codec_for(CodecId::QlzMedium);
    let big = generate(Class::Moderate, 128 * 1024, 3);
    let small = generate(Class::Moderate, 4 * 1024, 4);
    let mut out = Vec::new();
    encode_block_with(&mut scratch, codec, &big, &mut out);
    let high_water = scratch.table_bytes();
    assert!(high_water > 0);
    for _ in 0..4 {
        out.clear();
        encode_block_with(&mut scratch, codec, &small, &mut out);
        assert_eq!(scratch.table_bytes(), high_water, "tables must not shrink or grow");
        out.clear();
        encode_block_with(&mut scratch, codec, &big, &mut out);
        assert_eq!(scratch.table_bytes(), high_water);
    }
}
