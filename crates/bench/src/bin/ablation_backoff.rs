//! ABLATION — the exponential backoff (the paper calls it "a fundamental
//! aspect of our algorithm").
//!
//! With the backoff disabled (`max_backoff_exp = 0`), the controller
//! probes a neighbouring level on *every* stable epoch, paying the price of
//! bad levels (e.g. HEAVY at ~27 MB/s instead of LIGHT at ~200 MB/s) far
//! more often. This run quantifies the probing overhead the backoff
//! removes.
//!
//! Cells run in parallel on the deterministic experiment runner
//! (`ADCOMP_THREADS` pins the worker count; output is bit-identical for any
//! setting — see `adcomp_bench::runner`).
//!
//! Run: `cargo run --release -p adcomp-bench --bin ablation_backoff [--quick]`

use adcomp_bench::{experiment_bytes, runner, speed_model, to_paper_scale};
use adcomp_core::controller::ControllerConfig;
use adcomp_core::model::RateBasedModel;
use adcomp_corpus::Class;
use adcomp_metrics::Table;
use adcomp_vcloud::{run_transfer, ConstantClass, TransferConfig};

const VARIANTS: [(&str, u32); 2] = [("with backoff (paper)", 16), ("no backoff", 0)];
const CLASSES: [Class; 2] = [Class::High, Class::Moderate];

fn main() {
    let total = experiment_bytes();
    let speed = speed_model();
    println!("ABLATION backoff: completion time [s, 50 GB scale] and probing volume\n");
    // 2 variants × 2 classes fan out at once; the seed is fixed per cell.
    let cells = runner::run_cells(VARIANTS.len() * CLASSES.len(), |idx| {
        let (vi, ci) = (idx / CLASSES.len(), idx % CLASSES.len());
        let (_, max_exp) = VARIANTS[vi];
        let cfg = TransferConfig { total_bytes: total, seed: 41, ..TransferConfig::paper_default() };
        let model = RateBasedModel::new(ControllerConfig {
            max_backoff_exp: max_exp,
            ..Default::default()
        });
        let out = run_transfer(&cfg, &speed, &mut ConstantClass(CLASSES[ci]), Box::new(model));
        (
            to_paper_scale(out.completion_secs),
            out.level_trace.len().saturating_sub(1),
            out.blocks_per_level[3],
        )
    });
    let mut table = Table::new(vec![
        "variant",
        "class",
        "time [s]",
        "level switches",
        "blocks at HEAVY",
    ]);
    for (vi, (label, _)) in VARIANTS.iter().enumerate() {
        for (ci, class) in CLASSES.iter().enumerate() {
            let (secs, switches, heavy_blocks) = cells[vi * CLASSES.len() + ci];
            table.row(vec![
                label.to_string(),
                class.name().to_string(),
                format!("{secs:.0}"),
                format!("{switches}"),
                format!("{heavy_blocks}"),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "Expected shape: without backoff the controller keeps re-probing expensive\n\
         levels, multiplying level switches and losing completion time — the paper's\n\
         justification for rewarding good levels with exponentially rarer probes."
    );
}
