//! FIG1 — Accuracy of displayed CPU utilization inside virtual machines
//! during I/O intensive operations (paper Figure 1a–1d).
//!
//! For each I/O operation and platform, prints the mean CPU utilization
//! breakdown (USR/SYS/HIRQ/SIRQ/STEAL) as displayed inside the VM versus as
//! accounted by the host, from ≥120 one-second samples — the paper's
//! methodology.
//!
//! Run: `cargo run --release -p adcomp-bench --bin fig1_cpu_accuracy`

use adcomp_bench::trace_path;
use adcomp_metrics::Table;
use adcomp_trace::{JsonlWriter, RunManifest, SimEvent, TraceEvent};
use adcomp_vcloud::experiments::fig1_cpu_accuracy;
use adcomp_vcloud::platform::{IoOp, Platform};
use adcomp_vcloud::CpuBreakdown;

fn cell(b: &CpuBreakdown) -> String {
    format!("{:5.1}", b.total())
}

fn parts(b: &CpuBreakdown) -> String {
    format!(
        "usr {:.1} / sys {:.1} / hirq {:.1} / sirq {:.1} / steal {:.1}",
        b.usr, b.sys, b.hirq, b.sirq, b.steal
    )
}

fn main() {
    const SAMPLES: usize = 120; // "at least 120 individual samples"
    println!("FIG1: displayed vs host-accounted CPU utilization [%] ({SAMPLES} samples per cell)\n");
    let mut tracer = trace_path().map(|p| {
        (JsonlWriter::create(&p).expect("create trace file"), p)
    });
    for op in IoOp::ALL {
        println!("== {} ==", op.name());
        let mut table = Table::new(vec!["Platform", "VM [%]", "Host [%]", "Gap", "VM breakdown"]);
        for platform in [
            Platform::KvmPara,
            Platform::KvmFull,
            Platform::XenPara,
            Platform::Ec2,
        ] {
            let r = fig1_cpu_accuracy(platform, op, SAMPLES, 42);
            if let Some((w, _)) = tracer.as_mut() {
                // One manifest per (op, platform) cell; the averaged
                // guest/host utilizations become two "sample" events
                // (value = displayed total %, aux = sample count).
                let manifest = RunManifest::new("fig1_cpu_accuracy", 42)
                    .coord("op", op.name())
                    .coord("platform", platform.name())
                    .cfg("samples", SAMPLES);
                let mut events: Vec<TraceEvent> = vec![SimEvent {
                    epoch: 0,
                    t: 0.0,
                    kind: "sample",
                    flow: 0, // guest view
                    value: r.guest_mean.total(),
                    aux: r.samples as f64,
                }
                .into()];
                if let Some(host) = r.host_mean {
                    events.push(
                        SimEvent {
                            epoch: 0,
                            t: 0.0,
                            kind: "sample",
                            flow: 1, // host view
                            value: host.total(),
                            aux: r.samples as f64,
                        }
                        .into(),
                    );
                }
                w.write_run(&manifest, &events).expect("write cell trace");
            }
            table.row(vec![
                platform.name().to_string(),
                cell(&r.guest_mean),
                r.host_mean.map_or("n/a".to_string(), |h| cell(&h)),
                r.gap().map_or("n/a".to_string(), |g| format!("{g:.1}x")),
                parts(&r.guest_mean),
            ]);
        }
        println!("{}", table.render());
    }
    if let Some((w, path)) = tracer.take() {
        let n = w.counts().total();
        w.finish().expect("flush trace file");
        eprintln!("FIG1: wrote {} events to {}", n, path.display());
    }
    println!(
        "Paper findings to compare against:\n\
         - The displayed CPU utilization under-reports on every virtualized platform.\n\
         - Worst gaps (~15x): KVM (paravirt.) network send, XEN file read.\n\
         - Small gaps: network send on KVM (full virt.) and XEN.\n\
         - EC2 host-side utilization is unobservable."
    );
}
