//! Virtualization platforms and their calibrated behaviour models.
//!
//! The appendix of the paper fixes the hardware: dual Xeon E5430 hosts with
//! 1 GbE, one single-core 2 GB VM per host, Eucalyptus-provisioned XEN and
//! KVM guests (full- and para-virtualized), plus `m1.small` instances on
//! Amazon EC2. Every constant below is calibrated against the paper's
//! Section II measurements (Figures 1–3) and appendix; they parameterize
//! the [`crate::experiments`] generators and the transfer pipeline.

use crate::cpu::{CpuAccuracyModel, CpuBreakdown};
use crate::fluctuation::{Ar1, Constant, Fluctuation, OnOff};

/// The platforms evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Unvirtualized host (baseline in Figs. 2–3).
    Native,
    /// KVM with unmodified (emulated e1000/scsi) device drivers.
    KvmFull,
    /// KVM with virtio network/block drivers — the platform the paper's
    /// Section IV evaluation runs on.
    KvmPara,
    /// XEN with paravirtual xennet/xenblk drivers.
    XenPara,
    /// Amazon EC2 `m1.small` (host side unobservable).
    Ec2,
}

/// The four I/O operations of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoOp {
    NetSend,
    NetRecv,
    FileWrite,
    FileRead,
}

impl IoOp {
    pub const ALL: [IoOp; 4] = [IoOp::NetSend, IoOp::NetRecv, IoOp::FileWrite, IoOp::FileRead];

    pub fn name(self) -> &'static str {
        match self {
            IoOp::NetSend => "network send",
            IoOp::NetRecv => "network receive",
            IoOp::FileWrite => "file write",
            IoOp::FileRead => "file read",
        }
    }
}

impl Platform {
    pub const ALL: [Platform; 5] =
        [Platform::Native, Platform::KvmFull, Platform::KvmPara, Platform::XenPara, Platform::Ec2];

    /// Platforms that appear in Figure 1 (the native host has no
    /// guest/host display gap by definition).
    pub const VIRTUALIZED: [Platform; 4] =
        [Platform::KvmPara, Platform::KvmFull, Platform::XenPara, Platform::Ec2];

    pub fn name(self) -> &'static str {
        match self {
            Platform::Native => "Native",
            Platform::KvmFull => "KVM (Full Virtualization)",
            Platform::KvmPara => "KVM (Paravirtualization)",
            Platform::XenPara => "XEN (Paravirtualization)",
            Platform::Ec2 => "Amazon EC2",
        }
    }

    pub fn short_name(self) -> &'static str {
        match self {
            Platform::Native => "native",
            Platform::KvmFull => "kvm-full",
            Platform::KvmPara => "kvm-para",
            Platform::XenPara => "xen-para",
            Platform::Ec2 => "ec2",
        }
    }

    /// Guest-displayed vs host-accounted CPU utilization for one I/O
    /// operation, calibrated from Figure 1. `Native` returns an identical
    /// pair (no virtualization layer to hide work in).
    pub fn cpu_accuracy(self, op: IoOp) -> CpuAccuracyModel {
        use IoOp::*;
        let (guest, host) = match (self, op) {
            // ---- Network send (Fig. 1a) -------------------------------
            // KVM-para: the guest believes the CPU is nearly idle while
            // the host's qemu/vhost threads burn more than a core: the
            // paper's headline "factor 15" case.
            (Platform::KvmPara, NetSend) => (
                CpuBreakdown::new(2.0, 4.0, 0.0, 2.0, 0.0),
                Some(CpuBreakdown::new(12.0, 88.0, 6.0, 14.0, 0.0)),
            ),
            (Platform::KvmFull, NetSend) => (
                CpuBreakdown::new(6.0, 62.0, 3.0, 14.0, 0.0),
                Some(CpuBreakdown::new(10.0, 78.0, 5.0, 17.0, 0.0)),
            ),
            (Platform::XenPara, NetSend) => (
                CpuBreakdown::new(3.0, 24.0, 0.0, 6.0, 4.0),
                Some(CpuBreakdown::new(4.0, 32.0, 2.0, 8.0, 0.0)),
            ),
            (Platform::Ec2, NetSend) => (CpuBreakdown::new(4.0, 16.0, 0.0, 5.0, 8.0), None),

            // ---- Network receive (Fig. 1b) ----------------------------
            (Platform::KvmPara, NetRecv) => (
                CpuBreakdown::new(3.0, 9.0, 0.0, 6.0, 0.0),
                Some(CpuBreakdown::new(14.0, 96.0, 7.0, 21.0, 0.0)),
            ),
            (Platform::KvmFull, NetRecv) => (
                CpuBreakdown::new(8.0, 74.0, 4.0, 30.0, 0.0),
                Some(CpuBreakdown::new(12.0, 92.0, 8.0, 28.0, 0.0)),
            ),
            (Platform::XenPara, NetRecv) => (
                CpuBreakdown::new(3.0, 30.0, 0.0, 12.0, 6.0),
                Some(CpuBreakdown::new(5.0, 42.0, 3.0, 14.0, 0.0)),
            ),
            (Platform::Ec2, NetRecv) => (CpuBreakdown::new(4.0, 20.0, 0.0, 9.0, 10.0), None),

            // ---- File write (Fig. 1c) ---------------------------------
            (Platform::KvmPara, FileWrite) => (
                CpuBreakdown::new(1.0, 6.0, 0.0, 1.0, 0.0),
                Some(CpuBreakdown::new(4.0, 27.0, 2.0, 3.0, 0.0)),
            ),
            (Platform::KvmFull, FileWrite) => (
                CpuBreakdown::new(2.0, 16.0, 1.0, 2.0, 0.0),
                Some(CpuBreakdown::new(5.0, 38.0, 3.0, 4.0, 0.0)),
            ),
            (Platform::XenPara, FileWrite) => (
                CpuBreakdown::new(1.0, 11.0, 0.0, 1.0, 2.0),
                Some(CpuBreakdown::new(3.0, 24.0, 1.0, 2.0, 0.0)),
            ),
            (Platform::Ec2, FileWrite) => (CpuBreakdown::new(2.0, 17.0, 0.0, 2.0, 4.0), None),

            // ---- File read (Fig. 1d) ----------------------------------
            // XEN: the paper's other factor-15 case — the guest shows a
            // near-idle CPU while dom0 does the real work.
            (Platform::XenPara, FileRead) => (
                CpuBreakdown::new(0.5, 1.8, 0.0, 0.4, 0.3),
                Some(CpuBreakdown::new(6.0, 32.0, 3.0, 4.0, 0.0)),
            ),
            (Platform::KvmPara, FileRead) => (
                CpuBreakdown::new(2.0, 7.0, 0.0, 1.0, 0.0),
                Some(CpuBreakdown::new(5.0, 30.0, 3.0, 4.0, 0.0)),
            ),
            (Platform::KvmFull, FileRead) => (
                CpuBreakdown::new(3.0, 11.0, 1.0, 1.0, 0.0),
                Some(CpuBreakdown::new(6.0, 34.0, 3.0, 4.0, 0.0)),
            ),
            (Platform::Ec2, FileRead) => (CpuBreakdown::new(2.0, 12.0, 0.0, 2.0, 5.0), None),

            // ---- Native baseline --------------------------------------
            (Platform::Native, op) => {
                let b = match op {
                    NetSend => CpuBreakdown::new(8.0, 55.0, 4.0, 12.0, 0.0),
                    NetRecv => CpuBreakdown::new(9.0, 62.0, 5.0, 18.0, 0.0),
                    FileWrite => CpuBreakdown::new(3.0, 22.0, 2.0, 2.0, 0.0),
                    FileRead => CpuBreakdown::new(4.0, 26.0, 2.0, 3.0, 0.0),
                };
                (b, Some(b))
            }
        };
        CpuAccuracyModel { guest, host }
    }

    /// Nominal network throughput seen by a single sender on this platform
    /// with no co-located traffic, in bytes/second (application layer,
    /// Fig. 2 medians). The wire is 1 GbE everywhere; the virtualization
    /// stack eats different shares of it.
    pub fn net_bandwidth_bps(self) -> f64 {
        match self {
            Platform::Native => 117.0e6,
            Platform::KvmFull => 65.0e6,
            Platform::KvmPara => 100.0e6,
            Platform::XenPara => 111.0e6,
            Platform::Ec2 => 95.0e6,
        }
    }

    /// Fluctuation process for network throughput (Fig. 2 spreads): local
    /// platforms fluctuate only marginally more than native; EC2 swings
    /// violently.
    pub fn net_fluctuation(self, seed: u64) -> Box<dyn Fluctuation> {
        match self {
            Platform::Native => Box::new(Ar1::new(0.80, 0.004, 0.05, seed)),
            Platform::KvmFull => Box::new(Ar1::new(0.90, 0.022, 0.05, seed)),
            Platform::KvmPara => Box::new(Ar1::new(0.90, 0.015, 0.05, seed)),
            Platform::XenPara => Box::new(Ar1::new(0.88, 0.012, 0.05, seed)),
            Platform::Ec2 => Box::new(OnOff::ec2(seed)),
        }
    }

    /// Constant-factor process (for tests needing determinism).
    pub fn no_fluctuation() -> Box<dyn Fluctuation> {
        Box::new(Constant)
    }

    /// Raw disk streaming write bandwidth in bytes/second (Barracuda ES.2
    /// era disk behind the respective storage virtualization).
    pub fn disk_write_bps(self) -> f64 {
        match self {
            Platform::Native => 85.0e6,
            Platform::KvmFull => 68.0e6,
            Platform::KvmPara => 76.0e6,
            Platform::XenPara => 72.0e6,
            Platform::Ec2 => 62.0e6,
        }
    }

    /// Whether writes to the virtual disk are absorbed by the *host's* page
    /// cache in write-back mode — the XEN configuration whose "tremendous
    /// caching effects" (Fig. 3) made the paper exclude file I/O from the
    /// adaptive evaluation.
    pub fn host_writeback_cache(self) -> bool {
        matches!(self, Platform::XenPara)
    }

    /// Relative jitter of disk throughput samples (Fig. 3 spreads,
    /// cache effects excluded).
    pub fn disk_jitter(self) -> f64 {
        match self {
            Platform::Native => 0.04,
            Platform::KvmFull => 0.10,
            Platform::KvmPara => 0.08,
            Platform::XenPara => 0.08,
            Platform::Ec2 => 0.16,
        }
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_platform_op_pair_has_a_model() {
        for p in Platform::ALL {
            for op in IoOp::ALL {
                let m = p.cpu_accuracy(op);
                assert!(m.guest.total() > 0.0, "{p} {op:?}");
            }
        }
    }

    #[test]
    fn native_has_no_display_gap() {
        for op in IoOp::ALL {
            let m = Platform::Native.cpu_accuracy(op);
            let gap = m.gap().unwrap();
            assert!((gap - 1.0).abs() < 1e-9, "{op:?} gap {gap}");
        }
    }

    #[test]
    fn headline_gaps_are_over_ten_x() {
        // The paper: "the gap can grow up to a factor of 15" for KVM-para
        // network send and XEN file read.
        let send = Platform::KvmPara.cpu_accuracy(IoOp::NetSend).gap().unwrap();
        assert!(send > 10.0, "KVM-para net send gap {send}");
        let read = Platform::XenPara.cpu_accuracy(IoOp::FileRead).gap().unwrap();
        assert!(read > 10.0, "XEN file read gap {read}");
    }

    #[test]
    fn small_gap_cases_stay_small() {
        // "for some I/O operations the discrepancy is rather small (e.g.
        // network send using KVM (full virt.) or XEN)".
        let kf = Platform::KvmFull.cpu_accuracy(IoOp::NetSend).gap().unwrap();
        let xen = Platform::XenPara.cpu_accuracy(IoOp::NetSend).gap().unwrap();
        assert!(kf < 2.0, "KVM-full gap {kf}");
        assert!(xen < 2.0, "XEN gap {xen}");
    }

    #[test]
    fn ec2_host_side_unobservable() {
        for op in IoOp::ALL {
            assert!(Platform::Ec2.cpu_accuracy(op).host.is_none());
        }
    }

    #[test]
    fn virtualized_guests_underreport() {
        for p in [Platform::KvmFull, Platform::KvmPara, Platform::XenPara] {
            for op in IoOp::ALL {
                let g = p.cpu_accuracy(op).gap().unwrap();
                assert!(g > 1.0, "{p} {op:?} should under-report, gap {g}");
            }
        }
    }

    #[test]
    fn native_is_fastest_network() {
        for p in [Platform::KvmFull, Platform::KvmPara, Platform::XenPara, Platform::Ec2] {
            assert!(p.net_bandwidth_bps() < Platform::Native.net_bandwidth_bps());
        }
    }

    #[test]
    fn only_xen_has_writeback_cache() {
        assert!(Platform::XenPara.host_writeback_cache());
        for p in [Platform::Native, Platform::KvmFull, Platform::KvmPara, Platform::Ec2] {
            assert!(!p.host_writeback_cache());
        }
    }
}
