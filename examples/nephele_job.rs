//! The paper's sample job on the mini-Nephele engine: a sender task and a
//! receiver task connected by a real TCP network channel, with transparent
//! adaptive compression — "there is no modification required to their
//! program code".
//!
//! Run with: `cargo run --release --example nephele_job`

use adcomp::corpus::Class;
use adcomp::nephele::prelude::*;
use adcomp::nephele::{ChannelStats, SinkTask};

fn run(mode: CompressionMode, label: &str, class: Class, mb: u64) -> (f64, ChannelStats) {
    let mut g = JobGraph::new(format!("sample-job-{label}"));
    let sender = g.add_vertex(
        "sender",
        Box::new(SourceTask {
            class,
            total_bytes: mb * 1_000_000,
            record_len: 8 * 1024,
            seed: 7,
        }),
    );
    let receiver = g.add_vertex("receiver", Box::new(SinkTask::new()));
    g.connect(sender, receiver, ChannelType::Network, mode).unwrap();

    let exec = Executor {
        epoch_secs: 0.1, // fast adaptation for the demo
        ..Executor::default()
    };
    let report = exec.run(g).unwrap();
    let sink: &SinkTask = report.task("receiver").unwrap();
    assert_eq!(sink.bytes, mb * 1_000_000, "all bytes must arrive");
    (report.completion_secs, report.edges[0].stats.clone())
}

fn main() {
    let mb = 64;
    println!("mini-Nephele sample job: sender --TCP--> receiver, {mb} MB per run\n");
    for (class, title) in [
        (Class::High, "HIGH compressibility (ptt5-like)"),
        (Class::Low, "LOW compressibility (JPEG-like)"),
    ] {
        println!("== {title} ==");
        println!("{:<10} {:>9} {:>9} {:>8}", "channel", "time [s]", "ratio", "epochs");
        for (mode, label) in [
            (CompressionMode::Off, "NO"),
            (CompressionMode::Static(1), "LIGHT"),
            (CompressionMode::Adaptive(Default::default()), "DYNAMIC"),
        ] {
            let (secs, stats) = run(mode, label, class, mb);
            println!(
                "{:<10} {:>9.2} {:>9.3} {:>8}",
                label,
                secs,
                stats.wire_ratio(),
                stats.epochs
            );
        }
        println!();
    }
    println!("Task code never mentioned compression — the channel layer did it all.");
}
