//! ASCII table rendering for experiment output, so the harness can print
//! rows shaped exactly like the paper's tables, plus a minimal CSV writer
//! for downstream plotting.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    Left,
    Right,
}

/// A simple monospace table builder.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table; every column defaults to right alignment except the
    /// first.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let mut aligns = vec![Align::Right; headers.len()];
        if !aligns.is_empty() {
            aligns[0] = Align::Left;
        }
        Table { headers, aligns, rows: Vec::new() }
    }

    pub fn align(mut self, col: usize, align: Align) -> Self {
        self.aligns[col] = align;
        self
    }

    /// Appends a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with box-drawing rules.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let rule = |out: &mut String| {
            for w in &widths {
                out.push('+');
                out.push_str(&"-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        let emit_row = |out: &mut String, cells: &[String], aligns: &[Align]| {
            for i in 0..ncols {
                let pad = widths[i] - cells[i].chars().count();
                out.push_str("| ");
                match aligns[i] {
                    Align::Left => {
                        out.push_str(&cells[i]);
                        out.push_str(&" ".repeat(pad));
                    }
                    Align::Right => {
                        out.push_str(&" ".repeat(pad));
                        out.push_str(&cells[i]);
                    }
                }
                out.push(' ');
            }
            out.push_str("|\n");
        };
        rule(&mut out);
        emit_row(&mut out, &self.headers, &vec![Align::Left; ncols]);
        rule(&mut out);
        for row in &self.rows {
            emit_row(&mut out, row, &self.aligns);
        }
        rule(&mut out);
        out
    }

    /// Renders as CSV (RFC-4180-style quoting where needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| csv_escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&mut out, &self.headers);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// RFC 4180 field escaping: quote any field containing a comma, quote,
/// or line break (CR as well as LF — bare carriage returns would otherwise
/// corrupt the row structure for strict readers), doubling embedded quotes.
fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Formats a value as the paper prints table cells: `mean (sd)`.
pub fn mean_sd_cell(mean: f64, sd: f64) -> String {
    format!("{:.0} ({:.0})", mean, sd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "12345"]);
        let s = t.render();
        assert!(s.contains("| alpha |     1 |"), "got:\n{s}");
        assert!(s.contains("| b     | 12345 |"), "got:\n{s}");
        let widths: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "ragged table:\n{s}");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn csv_escaping() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("line\nbreak"), "\"line\nbreak\"");
        assert_eq!(csv_escape("carriage\rreturn"), "\"carriage\rreturn\"");
        assert_eq!(csv_escape("crlf\r\nrow"), "\"crlf\r\nrow\"");
    }

    #[test]
    fn csv_output_shape() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1", "2,5"]);
        let csv = t.to_csv();
        assert_eq!(csv, "x,y\n1,\"2,5\"\n");
    }

    #[test]
    fn mean_sd_cell_matches_paper_format() {
        assert_eq!(mean_sd_cell(569.4, 3.2), "569 (3)");
    }

    #[test]
    fn left_align_override() {
        let mut t = Table::new(vec!["k", "v"]).align(1, Align::Left);
        t.row(vec!["key", "val"]);
        assert!(t.render().contains("| val |"));
    }
}
