//! EXTENSION — what the paper leaves open: every co-located VM deploys the
//! adaptive scheme at once. Do the controllers interfere, and does the
//! aggregate benefit survive?
//!
//! Three co-located senders share the paravirtualized 1 GbE link. We sweep
//! the deployment mix (none / one / all adaptive) for homogeneous and
//! heterogeneous compressibilities and report per-flow goodput, aggregate
//! goodput, makespan, and Jain's fairness index.
//!
//! Cells run in parallel on the deterministic experiment runner
//! (`ADCOMP_THREADS` pins the worker count; output is bit-identical for any
//! setting — see `adcomp_bench::runner`).
//!
//! Run: `cargo run --release -p adcomp-bench --bin ext_all_adaptive [--quick]`

use adcomp_bench::{experiment_bytes, runner, speed_model, trace_path};
use adcomp_core::model::{RateBasedModel, StaticModel};
use adcomp_corpus::Class;
use adcomp_metrics::Table;
use adcomp_trace::{JsonlWriter, MemorySink, RunManifest, TraceHandle};
use adcomp_vcloud::{run_multiflow_traced, FlowSpec, MultiFlowConfig};
use std::sync::Arc;

fn flows(classes: &[Class], adaptive: &[bool], bytes: u64) -> Vec<FlowSpec> {
    classes
        .iter()
        .zip(adaptive)
        .enumerate()
        .map(|(i, (&class, &a))| FlowSpec {
            name: format!("vm{i}-{}{}", class.name().to_lowercase(), if a { "-dyn" } else { "" }),
            class,
            model: if a {
                Box::new(RateBasedModel::paper_default())
            } else {
                Box::new(StaticModel::new(0, 4))
            },
            total_bytes: bytes,
        })
        .collect()
}

const CORPORA: [(&str, [Class; 3]); 2] = [
    ("homogeneous HIGH", [Class::High; 3]),
    ("heterogeneous HIGH/MODERATE/LOW", [Class::High, Class::Moderate, Class::Low]),
];

const DEPLOYMENTS: [(&str, [bool; 3]); 3] = [
    ("none adaptive", [false, false, false]),
    ("one adaptive", [true, false, false]),
    ("all adaptive", [true, true, true]),
];

fn main() {
    let bytes = experiment_bytes() / 10; // per flow; 3 flows share the link
    let speed = speed_model();
    println!(
        "EXT: three co-located senders, {:.1} GB each, shared KVM-para link\n",
        bytes as f64 / 1e9
    );
    // 2 corpora × 3 deployment mixes fan out at once; every cell carries
    // its own fixed seed, so the tables are independent of scheduling.
    let traced = trace_path();
    let want_trace = traced.is_some();
    let cells = runner::run_cells(CORPORA.len() * DEPLOYMENTS.len(), |idx| {
        let (ti, di) = (idx / DEPLOYMENTS.len(), idx % DEPLOYMENTS.len());
        let (title, classes) = CORPORA[ti];
        let (label, mask) = DEPLOYMENTS[di];
        let cfg = MultiFlowConfig { seed: 61, ..Default::default() };
        let sink = if want_trace { Some(Arc::new(MemorySink::new())) } else { None };
        let handle = sink
            .as_ref()
            .map_or_else(TraceHandle::disabled, |s| TraceHandle::new(s.clone()));
        let out = run_multiflow_traced(&cfg, &speed, flows(&classes, &mask, bytes), handle);
        let rates: Vec<String> =
            out.flows.iter().map(|f| format!("{:.0}", f.mean_app_rate / 1e6)).collect();
        let row = vec![
            label.to_string(),
            format!("{:.0}", out.aggregate_goodput() / 1e6),
            format!("{:.0}", out.makespan_secs),
            format!("{:.3}", out.jain_fairness()),
            rates.join(" / "),
        ];
        let cell_trace = sink.map(|s| {
            let manifest = RunManifest::new("ext_all_adaptive_cell", cfg.seed)
                .coord("corpus", title)
                .coord("deployment", label)
                .cfg("flows", classes.len())
                .volume(bytes * classes.len() as u64);
            (manifest, s.take())
        });
        (row, cell_trace)
    });
    // Per-cell traces serialize in canonical cell order, so the JSONL bytes
    // are independent of ADCOMP_THREADS.
    if let Some(path) = traced {
        let mut w = JsonlWriter::create(&path).expect("create trace file");
        for (_, cell_trace) in &cells {
            let (manifest, events) = cell_trace.as_ref().expect("traced cell");
            w.write_run(manifest, events).expect("write cell trace");
        }
        let n = w.counts().total();
        w.finish().expect("flush trace file");
        eprintln!("EXT: wrote {} cell traces ({} events) to {}", cells.len(), n, path.display());
    }
    let cells: Vec<Vec<String>> = cells.into_iter().map(|(row, _)| row).collect();
    for (ti, (title, _)) in CORPORA.iter().enumerate() {
        println!("== {title} ==");
        let mut table = Table::new(vec![
            "deployment",
            "aggregate goodput [MB/s]",
            "makespan [s]",
            "Jain fairness",
            "per-flow rates [MB/s]",
        ]);
        for di in 0..DEPLOYMENTS.len() {
            table.row(cells[ti * DEPLOYMENTS.len() + di].clone());
        }
        println!("{}", table.render());
    }
    println!(
        "Expected shape: adopting the adaptive scheme never hurts the other tenants —\n\
         a compressing flow *releases* wire capacity. With everyone adaptive, aggregate\n\
         goodput rises further and fairness stays high: the controllers do not fight,\n\
         because each one only chases its own application data rate."
    );
}
