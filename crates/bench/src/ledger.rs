//! Append-only bench trajectory ledger.
//!
//! `BENCH_codecs.json` and `BENCH_pipeline.json` are not snapshots that
//! get overwritten per PR — they are *ledgers*: every measurement run
//! appends rows, so the files record the performance trajectory of the
//! codebase over time. A row marked `"baseline": true` pins the reference
//! the regression gate compares against; `bench_gate` fails CI when the
//! latest row for any bench key drops more than the tolerance below its
//! pinned baseline.
//!
//! The file format stays ordinary JSON (one row object per line inside
//! `"rows"`) so the ledgers remain human-diffable and greppable:
//!
//! ```json
//! {
//!   "_doc": "...",
//!   "schema": "adcomp-bench-ledger-v1",
//!   "host": {"cpu": "...", "cores": 1},
//!   "rows": [
//!     {"date": "2026-08-06", "label": "seed@f1e4728", "bench": "compress/LIGHT/HIGH", "mbps": 1517.7, "ns_per_iter": 345458.7},
//!     {"date": "2026-08-07", "label": "pr6-before", "bench": "compress/LIGHT/HIGH", "mbps": 1517.7, "baseline": true},
//!     {"date": "2026-08-07", "label": "pr6-after", "bench": "compress/LIGHT/HIGH", "mbps": 1890.3}
//!   ]
//! }
//! ```
//!
//! Everything is hand-rolled (no serde — the build is offline) and
//! deterministic: field order is fixed, floats use Rust's shortest
//! round-trip formatting, rows re-serialize byte-identically.

use adcomp_trace::json::ObjWriter;
use std::fmt::Write as _;
use std::path::Path;

/// Ledger schema identifier; bump on incompatible layout changes.
pub const SCHEMA: &str = "adcomp-bench-ledger-v1";

/// Default regression tolerance: latest may be up to 10% below baseline.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// One measurement row. `mbps` is the gated quantity (higher is better);
/// `ns_per_iter` / `secs` are optional raw-time companions.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Measurement date, `YYYY-MM-DD`.
    pub date: String,
    /// Provenance label, e.g. `seed@f1e4728` or `pr6-after`.
    pub label: String,
    /// Bench key, e.g. `compress/LIGHT/HIGH` or `overlap/4_workers`.
    pub bench: String,
    /// Throughput in MB/s — what the gate compares.
    pub mbps: f64,
    /// Median nanoseconds per iteration (micro-benches).
    pub ns_per_iter: Option<f64>,
    /// Median seconds per run (macro-benches).
    pub secs: Option<f64>,
    /// True pins this row as the gate's reference for its bench key.
    pub baseline: bool,
    /// Free-form context (corpus seed, worker count, ...).
    pub note: Option<String>,
}

/// A parsed ledger: doc string, host block (preserved verbatim as parsed
/// fields), and the append-only rows.
#[derive(Debug, Clone)]
pub struct Ledger {
    pub doc: String,
    /// Host description fields in file order (`cpu`, `cores`, ...).
    pub host: Vec<(String, JVal)>,
    pub rows: Vec<Row>,
}

/// Minimal JSON value — just enough to round-trip the ledger files.
#[derive(Debug, Clone, PartialEq)]
pub enum JVal {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JVal>),
    Obj(Vec<(String, JVal)>),
}

impl JVal {
    fn as_str(&self) -> Option<&str> {
        match self {
            JVal::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            JVal::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn write_json(&self, out: &mut String) {
        match self {
            JVal::Null => out.push_str("null"),
            JVal::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JVal::Num(n) => adcomp_trace::json::write_f64(out, *n),
            JVal::Str(s) => adcomp_trace::json::write_str(out, s),
            JVal::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            JVal::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    adcomp_trace::json::write_str(out, k);
                    out.push(':');
                    out.push(' ');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// One gate comparison: the latest row for a bench key against its pinned
/// baseline.
#[derive(Debug, Clone)]
pub struct GateCheck {
    pub bench: String,
    pub baseline_label: String,
    pub baseline_mbps: f64,
    pub latest_label: String,
    pub latest_mbps: f64,
    /// `latest / baseline` — below `1 - tolerance` fails.
    pub ratio: f64,
    pub pass: bool,
}

impl Ledger {
    pub fn new(doc: &str, host: Vec<(String, JVal)>) -> Self {
        Ledger { doc: doc.to_string(), host, rows: Vec::new() }
    }

    pub fn load(path: &Path) -> Result<Ledger, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Ledger::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    pub fn parse(text: &str) -> Result<Ledger, String> {
        let val = parse_json(text)?;
        let JVal::Obj(fields) = val else {
            return Err("top level is not an object".into());
        };
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let schema = get("schema")
            .and_then(JVal::as_str)
            .ok_or("missing \"schema\" field")?;
        if schema != SCHEMA {
            return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
        }
        let doc = get("_doc").and_then(JVal::as_str).unwrap_or_default().to_string();
        let host = match get("host") {
            Some(JVal::Obj(h)) => h.clone(),
            _ => Vec::new(),
        };
        let rows_val = get("rows").ok_or("missing \"rows\" array")?;
        let JVal::Arr(items) = rows_val else {
            return Err("\"rows\" is not an array".into());
        };
        let mut rows = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            rows.push(Row::from_jval(item).map_err(|e| format!("rows[{i}]: {e}"))?);
        }
        Ok(Ledger { doc, host, rows })
    }

    /// Deterministic serialization: fixed field order, one row per line.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"_doc\": ");
        adcomp_trace::json::write_str(&mut out, &self.doc);
        out.push_str(",\n  \"schema\": ");
        adcomp_trace::json::write_str(&mut out, SCHEMA);
        out.push_str(",\n  \"host\": ");
        JVal::Obj(self.host.clone()).write_json(&mut out);
        out.push_str(",\n  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&row.to_json());
        }
        if !self.rows.is_empty() {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("]\n}\n");
        out
    }

    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Schema lint: every row must carry a plausible date, non-empty label
    /// and bench key, and a finite positive throughput.
    pub fn lint(&self) -> Result<(), String> {
        for (i, row) in self.rows.iter().enumerate() {
            let err = |msg: String| Err(format!("rows[{i}] ({}): {msg}", row.bench));
            if !valid_date(&row.date) {
                return err(format!("bad date {:?} (want YYYY-MM-DD)", row.date));
            }
            if row.label.is_empty() {
                return err("empty label".into());
            }
            if row.bench.is_empty() {
                return err("empty bench key".into());
            }
            if !(row.mbps.is_finite() && row.mbps > 0.0) {
                return err(format!("mbps {} not a positive finite number", row.mbps));
            }
        }
        Ok(())
    }

    /// Runs the regression gate: for every bench key that has both a
    /// pinned baseline and at least one later row, compares the latest row
    /// against the baseline. Returns one [`GateCheck`] per gated key;
    /// bench keys without a baseline (or with nothing newer than it) are
    /// not gated.
    pub fn gate(&self, tolerance: f64) -> Vec<GateCheck> {
        let mut keys: Vec<&str> = Vec::new();
        for row in &self.rows {
            if !keys.contains(&row.bench.as_str()) {
                keys.push(&row.bench);
            }
        }
        let mut checks = Vec::new();
        for key in keys {
            let base = self
                .rows
                .iter()
                .enumerate()
                .rev()
                .find(|(_, r)| r.bench == key && r.baseline);
            let Some((bi, base)) = base else { continue };
            let latest = self
                .rows
                .iter()
                .enumerate()
                .rev()
                .find(|(i, r)| *i > bi && r.bench == key);
            let Some((_, latest)) = latest else { continue };
            let ratio = latest.mbps / base.mbps;
            checks.push(GateCheck {
                bench: key.to_string(),
                baseline_label: base.label.clone(),
                baseline_mbps: base.mbps,
                latest_label: latest.label.clone(),
                latest_mbps: latest.mbps,
                ratio,
                pass: ratio >= 1.0 - tolerance,
            });
        }
        checks
    }

    /// Bench keys present in the ledger that [`Ledger::gate`] does *not*
    /// gate, each with the reason: either no row for the key is pinned
    /// `"baseline": true`, or the pinned baseline is the newest row so
    /// there is nothing to compare against it. `bench_gate` prints these
    /// by name — a key with fresh measurements but no pinned baseline is
    /// exactly the state a forgotten re-pin leaves behind, and it must
    /// never be a silent skip.
    pub fn ungated_keys(&self) -> Vec<(String, &'static str)> {
        let mut keys: Vec<&str> = Vec::new();
        for row in &self.rows {
            if !keys.contains(&row.bench.as_str()) {
                keys.push(&row.bench);
            }
        }
        let mut out = Vec::new();
        for key in keys {
            let base = self
                .rows
                .iter()
                .enumerate()
                .rev()
                .find(|(_, r)| r.bench == key && r.baseline);
            match base {
                None => out.push((key.to_string(), "no row pinned \"baseline\": true")),
                Some((bi, _)) => {
                    let newer = self.rows.iter().enumerate().any(|(i, r)| i > bi && r.bench == key);
                    if !newer {
                        out.push((key.to_string(), "pinned baseline is the newest row"));
                    }
                }
            }
        }
        out
    }
}

impl Row {
    fn from_jval(val: &JVal) -> Result<Row, String> {
        let JVal::Obj(fields) = val else {
            return Err("row is not an object".into());
        };
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let req_str = |k: &str| {
            get(k)
                .and_then(JVal::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {k:?}"))
        };
        Ok(Row {
            date: req_str("date")?,
            label: req_str("label")?,
            bench: req_str("bench")?,
            mbps: get("mbps")
                .and_then(JVal::as_num)
                .ok_or("missing number field \"mbps\"")?,
            ns_per_iter: get("ns_per_iter").and_then(JVal::as_num),
            secs: get("secs").and_then(JVal::as_num),
            baseline: matches!(get("baseline"), Some(JVal::Bool(true))),
            note: get("note").and_then(JVal::as_str).map(str::to_string),
        })
    }

    /// One-line JSON object, fixed field order, optional fields omitted.
    pub fn to_json(&self) -> String {
        let mut o = ObjWriter::new();
        o.str_field("date", &self.date);
        o.str_field("label", &self.label);
        o.str_field("bench", &self.bench);
        o.f64_field("mbps", round2(self.mbps));
        if let Some(ns) = self.ns_per_iter {
            o.f64_field("ns_per_iter", round2(ns));
        }
        if let Some(secs) = self.secs {
            o.f64_field("secs", round4(secs));
        }
        if self.baseline {
            o.bool_field("baseline", true);
        }
        if let Some(note) = &self.note {
            o.str_field("note", note);
        }
        o.finish()
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn round4(x: f64) -> f64 {
    (x * 10_000.0).round() / 10_000.0
}

fn valid_date(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 10
        && b[4] == b'-'
        && b[7] == b'-'
        && b.iter().enumerate().all(|(i, c)| matches!(i, 4 | 7) || c.is_ascii_digit())
}

/// `YYYY-MM-DD` for a Unix timestamp (days-from-epoch civil conversion).
pub fn civil_date(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    // Howard Hinnant's civil_from_days, shifted so the era starts 0000-03-01.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Today's date from the system clock.
pub fn today() -> String {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    civil_date(now)
}

/// Host description for new ledgers: CPU model and core count.
pub fn host_fields() -> Vec<(String, JVal)> {
    let cpu = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string());
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    vec![
        ("cpu".to_string(), JVal::Str(cpu)),
        ("cores".to_string(), JVal::Num(cores as f64)),
    ]
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser (offline build: no serde).

fn parse_json(text: &str) -> Result<JVal, String> {
    let mut p = Parser { b: text.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<JVal, String> {
        match self.peek() {
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b't') => self.literal("true").map(|_| JVal::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| JVal::Bool(false)),
            Some(b'n') => self.literal("null").map(|_| JVal::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected value at offset {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<JVal, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(JVal::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(JVal::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<JVal, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(JVal::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(JVal::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("short \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from a &str, so
                    // boundaries are valid).
                    let rest = &self.b[self.i..];
                    let ch = std::str::from_utf8(&rest[..rest.len().min(4)])
                        .unwrap_or("\u{FFFD}")
                        .chars()
                        .next()
                        .unwrap_or('\u{FFFD}');
                    s.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JVal, String> {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JVal::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(date: &str, label: &str, bench: &str, mbps: f64, baseline: bool) -> Row {
        Row {
            date: date.into(),
            label: label.into(),
            bench: bench.into(),
            mbps,
            ns_per_iter: None,
            secs: None,
            baseline,
            note: None,
        }
    }

    fn sample() -> Ledger {
        let mut l = Ledger::new("test ledger", vec![("cpu".into(), JVal::Str("test".into()))]);
        l.rows.push(row("2026-08-06", "seed", "compress/LIGHT/HIGH", 1500.0, false));
        l.rows.push(row("2026-08-07", "pr6-before", "compress/LIGHT/HIGH", 1520.0, true));
        l.rows.push(row("2026-08-07", "pr6-after", "compress/LIGHT/HIGH", 1900.0, false));
        l.rows.push(row("2026-08-07", "pr6-before", "decompress/HEAVY/LOW", 14.6, true));
        l.rows.push(row("2026-08-07", "pr6-after", "decompress/HEAVY/LOW", 15.0, false));
        l
    }

    #[test]
    fn roundtrips_through_json() {
        let l = sample();
        let text = l.to_json();
        let back = Ledger::parse(&text).unwrap();
        assert_eq!(back.doc, l.doc);
        assert_eq!(back.host, l.host);
        assert_eq!(back.rows, l.rows);
        // Deterministic: serialize-parse-serialize is a fixed point.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn lint_accepts_good_and_rejects_bad_rows() {
        let mut l = sample();
        assert!(l.lint().is_ok());
        l.rows[0].date = "yesterday".into();
        assert!(l.lint().unwrap_err().contains("bad date"));
        let mut l = sample();
        l.rows[1].mbps = 0.0;
        assert!(l.lint().unwrap_err().contains("mbps"));
        let mut l = sample();
        l.rows[2].bench = String::new();
        assert!(l.lint().unwrap_err().contains("empty bench"));
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let checks = sample().gate(DEFAULT_TOLERANCE);
        assert_eq!(checks.len(), 2);
        assert!(checks.iter().all(|c| c.pass), "{checks:?}");
    }

    /// The acceptance demonstration: perturb a pinned baseline >10% above
    /// the latest measurement and the gate must fail that key.
    #[test]
    fn gate_fails_when_baseline_perturbed_past_tolerance() {
        let mut l = sample();
        // Latest decompress/HEAVY/LOW is 15.0; push its baseline to 17.0
        // so latest/baseline = 0.88 < 0.90.
        l.rows[3].mbps = 17.0;
        let checks = l.gate(DEFAULT_TOLERANCE);
        let heavy = checks.iter().find(|c| c.bench == "decompress/HEAVY/LOW").unwrap();
        assert!(!heavy.pass, "gate must fail at ratio {:.3}", heavy.ratio);
        // The other key is untouched and still passes.
        assert!(checks.iter().find(|c| c.bench == "compress/LIGHT/HIGH").unwrap().pass);
    }

    #[test]
    fn gate_ignores_keys_without_baseline_or_newer_rows() {
        let mut l = sample();
        // A key with rows but no baseline: not gated.
        l.rows.push(row("2026-08-07", "x", "compress/NEW/KEY", 10.0, false));
        // A key whose baseline is the newest row: not gated.
        l.rows.push(row("2026-08-07", "x", "compress/PINNED/ONLY", 10.0, true));
        let checks = l.gate(DEFAULT_TOLERANCE);
        assert!(checks.iter().all(|c| c.bench != "compress/NEW/KEY"));
        assert!(checks.iter().all(|c| c.bench != "compress/PINNED/ONLY"));
    }

    /// Every key the gate skips must come back from [`Ledger::ungated_keys`]
    /// with a reason naming the key — the `bench_gate` diagnostic contract.
    #[test]
    fn ungated_keys_are_named_with_reasons() {
        let mut l = sample();
        // Fully gated ledger: nothing to report.
        assert!(l.ungated_keys().is_empty());
        l.rows.push(row("2026-08-07", "x", "compress/NEW/KEY", 10.0, false));
        l.rows.push(row("2026-08-07", "x", "compress/PINNED/ONLY", 10.0, true));
        let ungated = l.ungated_keys();
        assert_eq!(ungated.len(), 2, "{ungated:?}");
        let reason = |key: &str| {
            ungated.iter().find(|(k, _)| k == key).map(|(_, why)| *why).unwrap()
        };
        assert!(reason("compress/NEW/KEY").contains("no row pinned"));
        assert!(reason("compress/PINNED/ONLY").contains("newest row"));
        // Gated keys never appear.
        assert!(ungated.iter().all(|(k, _)| k != "compress/LIGHT/HIGH"));
    }

    #[test]
    fn civil_date_known_values() {
        assert_eq!(civil_date(0), "1970-01-01");
        assert_eq!(civil_date(86_400), "1970-01-02");
        // 2026-08-07 00:00:00 UTC.
        assert_eq!(civil_date(1_786_060_800), "2026-08-07");
    }

    #[test]
    fn rejects_wrong_schema_and_garbage() {
        assert!(Ledger::parse("{}").is_err());
        assert!(Ledger::parse("{\"schema\": \"v0\", \"rows\": []}").is_err());
        assert!(Ledger::parse("not json").is_err());
        let ok = format!("{{\"schema\": \"{SCHEMA}\", \"rows\": []}}");
        assert!(Ledger::parse(&ok).unwrap().rows.is_empty());
    }
}
