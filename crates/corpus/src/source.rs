//! Infinite byte sources feeding senders.
//!
//! The paper's sender task "repeatedly wrote the respective test file to the
//! network channel until a total data volume of 50 GB was generated". These
//! sources model exactly that: a fixed test file replayed cyclically, plus a
//! switching source for the changing-compressibility experiment (Fig. 6).

use crate::{generate, Class};
use std::io::Read;

/// An endless, deterministic producer of bytes.
pub trait ByteSource: Send {
    /// Fills the whole buffer with the next bytes of the stream.
    fn fill(&mut self, buf: &mut [u8]);

    /// The nominal compressibility class of the *next* bytes, if known.
    /// Used by the simulator to select speed/ratio profiles; real-I/O users
    /// never need it.
    fn current_class(&self) -> Option<Class> {
        None
    }
}

/// Replays a fixed byte buffer (the "test file") forever.
#[derive(Debug, Clone)]
pub struct CyclicSource {
    data: Vec<u8>,
    pos: usize,
    class: Option<Class>,
}

impl CyclicSource {
    /// Wraps an arbitrary buffer. Panics on an empty buffer — an empty file
    /// cannot produce an infinite stream.
    pub fn new(data: Vec<u8>) -> Self {
        assert!(!data.is_empty(), "CyclicSource needs a non-empty file");
        CyclicSource { data, pos: 0, class: None }
    }

    /// Generates a test file of the given class and size (the paper used
    /// ~250 KB files) and replays it.
    pub fn of_class(class: Class, file_len: usize, seed: u64) -> Self {
        let mut s = CyclicSource::new(generate(class, file_len, seed));
        s.class = Some(class);
        s
    }

    /// The underlying file content.
    pub fn file(&self) -> &[u8] {
        &self.data
    }
}

impl ByteSource for CyclicSource {
    fn fill(&mut self, buf: &mut [u8]) {
        let n = self.data.len();
        let mut written = 0;
        while written < buf.len() {
            let take = (n - self.pos).min(buf.len() - written);
            buf[written..written + take].copy_from_slice(&self.data[self.pos..self.pos + take]);
            written += take;
            self.pos += take;
            if self.pos == n {
                self.pos = 0;
            }
        }
    }

    fn current_class(&self) -> Option<Class> {
        self.class
    }
}

/// Alternates between inner sources every `period_bytes` bytes
/// (Fig. 6: HIGH ↔ LOW every 10 GB).
pub struct SwitchingSource {
    sources: Vec<Box<dyn ByteSource>>,
    period_bytes: u64,
    produced: u64,
}

impl SwitchingSource {
    /// `sources` are visited round-robin; each serves `period_bytes` before
    /// the next takes over.
    pub fn new(sources: Vec<Box<dyn ByteSource>>, period_bytes: u64) -> Self {
        assert!(!sources.is_empty());
        assert!(period_bytes > 0);
        SwitchingSource { sources, period_bytes, produced: 0 }
    }

    fn active_index(&self) -> usize {
        ((self.produced / self.period_bytes) % self.sources.len() as u64) as usize
    }

    /// Total bytes produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }
}

impl ByteSource for SwitchingSource {
    fn fill(&mut self, buf: &mut [u8]) {
        let mut written = 0usize;
        while written < buf.len() {
            let idx = self.active_index();
            let until_switch =
                self.period_bytes - (self.produced % self.period_bytes);
            let take = (buf.len() - written).min(until_switch as usize);
            self.sources[idx].fill(&mut buf[written..written + take]);
            written += take;
            self.produced += take as u64;
        }
    }

    fn current_class(&self) -> Option<Class> {
        self.sources[self.active_index()].current_class()
    }
}

/// Adapts any [`ByteSource`] into a bounded [`std::io::Read`] producing
/// exactly `limit` bytes — how examples feed real sockets.
pub struct SourceReader<S: ByteSource> {
    source: S,
    remaining: u64,
}

impl<S: ByteSource> SourceReader<S> {
    pub fn new(source: S, limit: u64) -> Self {
        SourceReader { source, remaining: limit }
    }

    /// Bytes still to be produced.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl<S: ByteSource> Read for SourceReader<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.remaining == 0 || buf.is_empty() {
            return Ok(0);
        }
        let take = (buf.len() as u64).min(self.remaining) as usize;
        self.source.fill(&mut buf[..take]);
        self.remaining -= take as u64;
        Ok(take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_source_wraps_exactly() {
        let mut s = CyclicSource::new(vec![1, 2, 3]);
        let mut buf = [0u8; 8];
        s.fill(&mut buf);
        assert_eq!(buf, [1, 2, 3, 1, 2, 3, 1, 2]);
        let mut buf2 = [0u8; 4];
        s.fill(&mut buf2);
        assert_eq!(buf2, [3, 1, 2, 3]);
    }

    #[test]
    fn class_source_reports_class() {
        let s = CyclicSource::of_class(Class::High, 1024, 1);
        assert_eq!(s.current_class(), Some(Class::High));
        assert_eq!(s.file().len(), 1024);
    }

    #[test]
    fn switching_source_alternates() {
        let a = CyclicSource::new(vec![0xAA]);
        let b = CyclicSource::new(vec![0xBB]);
        let mut s = SwitchingSource::new(vec![Box::new(a), Box::new(b)], 4);
        let mut buf = [0u8; 12];
        s.fill(&mut buf);
        assert_eq!(
            buf,
            [0xAA, 0xAA, 0xAA, 0xAA, 0xBB, 0xBB, 0xBB, 0xBB, 0xAA, 0xAA, 0xAA, 0xAA]
        );
        assert_eq!(s.produced(), 12);
    }

    #[test]
    fn switching_source_straddles_fill_calls() {
        let a = CyclicSource::new(vec![0x01]);
        let b = CyclicSource::new(vec![0x02]);
        let mut s = SwitchingSource::new(vec![Box::new(a), Box::new(b)], 3);
        let mut got = Vec::new();
        for _ in 0..5 {
            let mut buf = [0u8; 2];
            s.fill(&mut buf);
            got.extend_from_slice(&buf);
        }
        assert_eq!(got, vec![1, 1, 1, 2, 2, 2, 1, 1, 1, 2]);
    }

    #[test]
    fn switching_class_follows_active_source() {
        let a = CyclicSource::of_class(Class::High, 64, 1);
        let b = CyclicSource::of_class(Class::Low, 64, 1);
        let mut s = SwitchingSource::new(vec![Box::new(a), Box::new(b)], 8);
        assert_eq!(s.current_class(), Some(Class::High));
        let mut buf = [0u8; 8];
        s.fill(&mut buf);
        assert_eq!(s.current_class(), Some(Class::Low));
    }

    #[test]
    fn source_reader_respects_limit() {
        let s = CyclicSource::new(vec![9; 10]);
        let mut r = SourceReader::new(s, 25);
        let mut sink = Vec::new();
        let n = r.read_to_end(&mut sink).unwrap();
        assert_eq!(n, 25);
        assert_eq!(sink, vec![9; 25]);
        assert_eq!(r.remaining(), 0);
    }
}
