//! FUTURE WORK — adaptive compression for file I/O under host page-cache
//! distortion, which the paper excluded from its evaluation and named as
//! future work ("the aggressive caching mechanisms of some virtualization
//! technologies \[are\] a major obstacle which we intend to address").
//!
//! The experiment writes compressed data to the XEN-style virtual disk
//! whose host write-back cache absorbs writes at memory speed. Reported
//! per scheme: time to *durability* (final fsync included) and the level
//! mix — contrasting the naive rate-based controller (misled by the cache
//! mirage) with the sync-aware variant (fsync per epoch, so the controller
//! observes the durable rate).
//!
//! Run: `cargo run --release -p adcomp-bench --bin futurework_file_io [--quick]`

use adcomp_bench::{experiment_bytes, make_model, schemes};
use adcomp_core::model::RateBasedModel;
use adcomp_corpus::Class;
use adcomp_metrics::Table;
use adcomp_vcloud::{run_file_transfer, FileTransferConfig, Platform, SpeedModel};

fn main() {
    let total = experiment_bytes().max(10_000_000_000);
    let speed = SpeedModel::paper_fit();
    println!(
        "FUTURE WORK: {} GB compressed file write on XEN (host write-back cache)\n",
        total / 1_000_000_000
    );
    for class in [Class::High, Class::Moderate, Class::Low] {
        println!("== {} data ==", class.name());
        let mut table = Table::new(vec![
            "scheme",
            "durable [s]",
            "apparent [s]",
            "durable rate [MB/s]",
            "level mix [% of blocks]",
        ]);
        let mut add = |name: &str, cfg: &FileTransferConfig, model| {
            let out = run_file_transfer(cfg, &speed, class, model);
            let total_blocks: u64 = out.blocks_per_level.iter().sum::<u64>().max(1);
            let mix: Vec<String> = out
                .blocks_per_level
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(l, &c)| {
                    format!(
                        "{} {:.0}%",
                        ["NO", "LIGHT", "MEDIUM", "HEAVY"][l],
                        100.0 * c as f64 / total_blocks as f64
                    )
                })
                .collect();
            table.row(vec![
                name.to_string(),
                format!("{:.0}", out.durable_secs),
                format!("{:.0}", out.apparent_secs),
                format!("{:.1}", out.durable_rate() / 1e6),
                mix.join(", "),
            ]);
        };
        let naive_cfg = FileTransferConfig {
            platform: Platform::XenPara,
            total_bytes: total,
            sync_aware: false,
            ..Default::default()
        };
        for (name, level) in schemes() {
            if name == "DYNAMIC" {
                continue;
            }
            add(name, &naive_cfg, make_model(level));
        }
        add("DYNAMIC (naive)", &naive_cfg, Box::new(RateBasedModel::paper_default()));
        let aware_cfg = FileTransferConfig { sync_aware: true, ..naive_cfg };
        add("DYNAMIC (sync-aware)", &aware_cfg, Box::new(RateBasedModel::paper_default()));
        println!("{}", table.render());
    }
    println!(
        "Expected shape: on compressible data the cache mirage keeps the naive\n\
         controller at NO (its *apparent* rate is memory speed), while the sync-aware\n\
         controller converges to LIGHT and approaches the best static durable time.\n\
         On LOW data both variants correctly avoid compression."
    );
}
