//! HEAVY compression level: LZ77 with an adaptive binary range coder —
//! a compact reimplementation of the LZMA design the paper uses at its
//! highest level. Much slower than the [`crate::qlz`] settings but with a
//! markedly better compression ratio, which is exactly the trade-off the
//! adaptive scheme must navigate.
//!
//! ## Stream model
//!
//! A sequence of symbols, entropy-coded by [`crate::rangecoder`]:
//!
//! * `is_match` bit (context: whether the previous symbol was a match);
//! * literal: 8-bit tree, context = top 3 bits of the previous byte;
//! * match: length 2..=273 (LZMA-style low/mid/high trees), then the
//!   distance as a 5-bit bit-length slot plus direct bits.
//!
//! The decoder stops after `expected_len` output bytes (recorded in the
//! frame header); frame CRC covers residual corruption.

use crate::rangecoder::{RangeDecoder, RangeEncoder, PROB_INIT};
use crate::scratch::{ensure_len_uninit, reset_table};
use crate::{CodecError, Result, Scratch};

const MIN_MATCH: usize = 2;
const MAX_MATCH: usize = MIN_MATCH + 7 + 8 + 256; // 273
const LIT_CTX: usize = 8;
const MAX_DIST_BITS: u32 = 27;

pub(crate) struct Model {
    is_match: [u16; 2],
    literal: Vec<[u16; 256]>,
    len_choice: u16,
    len_choice2: u16,
    len_low: [u16; 8],
    len_mid: [u16; 8],
    len_high: [u16; 256],
    dist_slot: [[u16; 32]; 2],
}

impl Model {
    pub(crate) fn new() -> Self {
        Model {
            is_match: [PROB_INIT; 2],
            literal: vec![[PROB_INIT; 256]; LIT_CTX],
            len_choice: PROB_INIT,
            len_choice2: PROB_INIT,
            len_low: [PROB_INIT; 8],
            len_mid: [PROB_INIT; 8],
            len_high: [PROB_INIT; 256],
            dist_slot: [[PROB_INIT; 32]; 2],
        }
    }

    /// Resets every probability to 0.5 without touching the heap, so the
    /// model can be reused across independently-decodable blocks.
    pub(crate) fn reset(&mut self) {
        self.is_match.fill(PROB_INIT);
        for ctx in self.literal.iter_mut() {
            ctx.fill(PROB_INIT);
        }
        self.len_choice = PROB_INIT;
        self.len_choice2 = PROB_INIT;
        self.len_low.fill(PROB_INIT);
        self.len_mid.fill(PROB_INIT);
        self.len_high.fill(PROB_INIT);
        for slot in self.dist_slot.iter_mut() {
            slot.fill(PROB_INIT);
        }
    }
}

#[inline]
fn lit_context(prev: u8) -> usize {
    (prev >> 5) as usize
}

#[inline]
fn dist_context(len: usize) -> usize {
    usize::from(len >= 6)
}

fn encode_len(rc: &mut RangeEncoder, m: &mut Model, len: usize) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&len));
    let l = len - MIN_MATCH;
    if l < 8 {
        rc.encode_bit(&mut m.len_choice, 0);
        rc.encode_tree(&mut m.len_low, 3, l as u32);
    } else if l < 16 {
        rc.encode_bit(&mut m.len_choice, 1);
        rc.encode_bit(&mut m.len_choice2, 0);
        rc.encode_tree(&mut m.len_mid, 3, (l - 8) as u32);
    } else {
        rc.encode_bit(&mut m.len_choice, 1);
        rc.encode_bit(&mut m.len_choice2, 1);
        rc.encode_tree(&mut m.len_high, 8, (l - 16) as u32);
    }
}

fn decode_len(rc: &mut RangeDecoder, m: &mut Model) -> usize {
    let l = if rc.decode_bit(&mut m.len_choice) == 0 {
        rc.decode_tree(&mut m.len_low, 3) as usize
    } else if rc.decode_bit(&mut m.len_choice2) == 0 {
        8 + rc.decode_tree(&mut m.len_mid, 3) as usize
    } else {
        16 + rc.decode_tree(&mut m.len_high, 8) as usize
    };
    l + MIN_MATCH
}

fn encode_dist(rc: &mut RangeEncoder, m: &mut Model, len: usize, dist: usize) {
    debug_assert!(dist >= 1);
    let nbits = 32 - (dist as u32).leading_zeros(); // bit length, >= 1
    debug_assert!(nbits <= MAX_DIST_BITS);
    rc.encode_tree(&mut m.dist_slot[dist_context(len)], 5, nbits - 1);
    if nbits > 1 {
        // The leading 1 bit is implied by the slot.
        rc.encode_direct(dist as u32 & ((1 << (nbits - 1)) - 1), nbits - 1);
    }
}

fn decode_dist(rc: &mut RangeDecoder, m: &mut Model, len: usize) -> Result<usize> {
    let nbits = rc.decode_tree(&mut m.dist_slot[dist_context(len)], 5) + 1;
    if nbits > MAX_DIST_BITS {
        return Err(CodecError::Corrupt("distance bit-length out of range"));
    }
    let dist = if nbits > 1 {
        (1u32 << (nbits - 1)) | rc.decode_direct(nbits - 1)
    } else {
        1
    };
    Ok(dist as usize)
}

/// Cost heuristic: is a match of `len` at `dist` worth taking over
/// literals? Short matches only pay off when the distance is cheap.
#[inline]
fn worth_taking(len: usize, dist: usize) -> bool {
    match len {
        0 | 1 => false,
        2 => dist < 512,
        3 => dist < 16 * 1024,
        _ => true,
    }
}

const HASH_BITS: u32 = 16;
const MAX_DEPTH: u32 = 128;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let x = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (x.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Reusable HEAVY working memory: probability model plus match-finder
/// tables. Owned by [`crate::Scratch`]; reset (not reallocated) per block.
pub(crate) struct HeavyScratch {
    model: Model,
    head: Vec<u32>,
    /// Hash-chain links; grown to the largest block seen, never cleared
    /// (stale entries are unreachable: chains start at `head` entries reset
    /// for every block, and `prev[pos]` is written before `head` points at
    /// `pos`).
    prev: Vec<u32>,
    pair: Vec<u32>,
}

impl HeavyScratch {
    pub(crate) fn new() -> Self {
        HeavyScratch { model: Model::new(), head: Vec::new(), prev: Vec::new(), pair: Vec::new() }
    }

    /// Prepares tables and model for a block of `n` input bytes.
    fn prepare(&mut self, n: usize) {
        self.model.reset();
        reset_table(&mut self.head, 1 << HASH_BITS);
        reset_table(&mut self.pair, 1 << 16);
        ensure_len_uninit(&mut self.prev, n);
    }

    pub(crate) fn table_bytes(&self) -> usize {
        (self.head.capacity() + self.prev.capacity() + self.pair.capacity()) * 4
            + LIT_CTX * 256 * 2
    }
}

struct MatchFinder<'s> {
    head: &'s mut [u32],
    prev: &'s mut [u32],
    /// Last position of each 2-byte pair, for short matches.
    pair: &'s mut [u32],
}

impl MatchFinder<'_> {
    #[inline]
    fn insert(&mut self, data: &[u8], pos: usize) {
        let n = data.len();
        if pos + 4 <= n {
            let h = hash4(data, pos);
            self.prev[pos] = self.head[h];
            self.head[h] = pos as u32;
        }
        if pos + 2 <= n {
            let p = ((data[pos] as usize) << 8) | data[pos + 1] as usize;
            self.pair[p] = pos as u32;
        }
    }

    /// Finds the best (length, distance) at `pos`, or (0, 0).
    fn find(&self, data: &[u8], pos: usize) -> (usize, usize) {
        let n = data.len();
        let limit = (n - pos).min(MAX_MATCH);
        let mut best = (0usize, 0usize);
        if limit >= 4 {
            let mut cand = self.head[hash4(data, pos)];
            let mut depth = 0;
            while cand != u32::MAX && depth < MAX_DEPTH {
                let c = cand as usize;
                if pos - c >= 1 << MAX_DIST_BITS {
                    break;
                }
                if best.0 == 0
                    || (pos + best.0 < n && data[c + best.0] == data[pos + best.0])
                {
                    let l = crate::qlz::match_len(data, c, pos, limit);
                    if l > best.0 {
                        best = (l, pos - c);
                        if l == limit {
                            break;
                        }
                    }
                }
                cand = self.prev[c];
                depth += 1;
            }
        }
        if best.0 < 4 && limit >= MIN_MATCH {
            // Short-match fallback via the pair table.
            let p = ((data[pos] as usize) << 8) | data[pos + 1] as usize;
            let c = self.pair[p];
            if c != u32::MAX {
                let c = c as usize;
                if c < pos && pos - c < 1 << MAX_DIST_BITS {
                    let dist = pos - c;
                    let l = crate::qlz::match_len(data, c, pos, limit);
                    if l >= MIN_MATCH && l > best.0 && worth_taking(l, dist) {
                        best = (l, dist);
                    }
                }
            }
        }
        if worth_taking(best.0, best.1) {
            best
        } else {
            (0, 0)
        }
    }
}

/// Compresses `input` into `out` (appending), allocating fresh working
/// memory. Thin wrapper over [`compress_with`]; hot paths should hold a
/// [`Scratch`] and call that instead.
pub fn compress(input: &[u8], out: &mut Vec<u8>) {
    compress_with(&mut Scratch::new(), input, out);
}

/// Compresses `input` into `out` (appending) using reusable working memory.
/// In steady state (same-size blocks) this performs no heap allocation: the
/// probability model is reset in place and the range coder writes directly
/// into `out`.
pub fn compress_with(scratch: &mut Scratch, input: &[u8], out: &mut Vec<u8>) {
    let n = input.len();
    out.reserve(scratch.out_hint(crate::CodecId::Heavy, n));
    let out_start = out.len();
    let hs = scratch.heavy.get_or_insert_with(|| Box::new(HeavyScratch::new()));
    hs.prepare(n);
    let HeavyScratch { model: m, head, prev, pair } = &mut **hs;
    let mut rc = RangeEncoder::new(out);
    if n > 0 {
        let mut mf = MatchFinder { head, prev, pair };
        let mut i = 0usize;
        let mut prev_byte = 0u8;
        let mut state = 0usize; // 0 = after literal, 1 = after match
        while i < n {
            let (len, dist) = mf.find(input, i);
            let take_match = len >= MIN_MATCH && {
                // One-step lazy matching.
                if len < MAX_MATCH && i + 1 < n {
                    // Peek without inserting i first (finder state at i).
                    let (len2, dist2) = {
                        let mut tmp_best = (0usize, 0usize);
                        // Cheap peek: reuse finder on i+1; positions <= i are
                        // inserted, which is what a real lazy matcher sees
                        // minus position i itself — close enough for a
                        // heuristic.
                        let f = mf.find(input, i + 1);
                        if f.0 > tmp_best.0 {
                            tmp_best = f;
                        }
                        tmp_best
                    };
                    !(len2 > len + 1 && worth_taking(len2, dist2))
                } else {
                    true
                }
            };
            if take_match {
                rc.encode_bit(&mut m.is_match[state], 1);
                encode_len(&mut rc, m, len);
                encode_dist(&mut rc, m, len, dist);
                let end = i + len;
                let step = if len > 96 { 11 } else { 1 };
                while i < end {
                    mf.insert(input, i);
                    i += step;
                }
                i = end;
                prev_byte = input[end - 1];
                state = 1;
            } else {
                rc.encode_bit(&mut m.is_match[state], 0);
                let b = input[i];
                rc.encode_tree(&mut m.literal[lit_context(prev_byte)], 8, b as u32);
                mf.insert(input, i);
                prev_byte = b;
                i += 1;
                state = 0;
            }
        }
    }
    rc.finish();
    let produced = out.len() - out_start;
    scratch.note_out(crate::CodecId::Heavy, produced);
}

/// Decompresses exactly `expected_len` bytes from `input` into `out`
/// (appending), allocating a fresh probability model. Thin wrapper over
/// [`decompress_with`]; hot paths should hold a
/// [`crate::scratch::DecodeScratch`] and call that instead.
pub fn decompress(input: &[u8], expected_len: usize, out: &mut Vec<u8>) -> Result<()> {
    decompress_with(&mut crate::scratch::DecodeScratch::new(), input, expected_len, out)
}

/// [`decompress`] with a reusable probability model: in steady state the
/// HEAVY decode path performs no heap allocation per block (the model is
/// reset in place — a freshly-reset model is state-identical to a new one,
/// so output bytes cannot differ). Match copies go through
/// `qlz::copy_match` (memcpy/memset/doubling chunks) instead of
/// per-byte pushes.
pub fn decompress_with(
    scratch: &mut crate::scratch::DecodeScratch,
    input: &[u8],
    expected_len: usize,
    out: &mut Vec<u8>,
) -> Result<()> {
    let start = out.len();
    // Untrusted length: clamp the eager reservation (see qlz::decompress).
    out.reserve(expected_len.min(crate::frame::DEFAULT_BLOCK_LEN * 2));
    let target = start + expected_len;
    if expected_len == 0 {
        return Ok(());
    }
    if input.len() < 5 {
        return Err(CodecError::Truncated);
    }
    let mut rc = RangeDecoder::new(input);
    let m = scratch.heavy_model.get_or_insert_with(|| Box::new(Model::new()));
    m.reset();
    let mut prev_byte = 0u8;
    let mut state = 0usize;
    while out.len() < target {
        if rc.decode_bit(&mut m.is_match[state]) == 0 {
            let b = rc.decode_tree(&mut m.literal[lit_context(prev_byte)], 8) as u8;
            out.push(b);
            prev_byte = b;
            state = 0;
        } else {
            let len = decode_len(&mut rc, m);
            let dist = decode_dist(&mut rc, m, len)?;
            let produced = out.len() - start;
            if dist == 0 || dist > produced {
                return Err(CodecError::Corrupt("match distance exceeds output"));
            }
            if out.len() + len > target {
                return Err(CodecError::Corrupt("match overruns expected length"));
            }
            crate::qlz::copy_match(out, dist, len);
            prev_byte = out[out.len() - 1];
            state = 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let mut c = Vec::new();
        compress(data, &mut c);
        let mut d = Vec::new();
        decompress(&c, data.len(), &mut d).unwrap();
        assert_eq!(d, data, "roundtrip mismatch for len {}", data.len());
        c.len()
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        for data in [&b""[..], b"x", b"xy", b"xyz", b"aaaa", b"abcdefgh"] {
            roundtrip(data);
        }
    }

    #[test]
    fn roundtrip_repetitive_beats_nothing() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(200);
        let c = roundtrip(&data);
        assert!(c < data.len() / 5, "heavy should crush repeated text: {c}");
    }

    #[test]
    fn roundtrip_long_zero_runs() {
        let mut data = vec![0u8; 200_000];
        for i in (0..data.len()).step_by(4999) {
            data[i] = (i % 251) as u8;
        }
        let c = roundtrip(&data);
        assert!(c < 6000, "got {c}");
    }

    #[test]
    fn roundtrip_incompressible_overhead_bounded() {
        let mut x = 0xDEADBEEFu64;
        let data: Vec<u8> = (0..100_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let c = roundtrip(&data);
        // Adaptive literal coding on random data costs a tiny bit over 8
        // bits/byte.
        assert!(c < data.len() + data.len() / 16 + 64, "got {c}");
    }

    #[test]
    fn roundtrip_all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_overlap_matches() {
        let data = vec![b'z'; 5_000];
        let c = roundtrip(&data);
        assert!(c < 200, "RLE-style data should collapse, got {c}");
    }

    #[test]
    fn decompress_detects_bad_distance() {
        // Craft a stream decoding to a match with distance > produced:
        // fuzz a few corrupted real streams instead of hand-crafting.
        let data = b"abcdabcdabcdabcdabcdabcd".repeat(40);
        let mut c = Vec::new();
        compress(&data, &mut c);
        let mut bad = 0;
        for i in 5..c.len().min(60) {
            let mut cc = c.clone();
            cc[i] ^= 0xFF;
            let mut out = Vec::new();
            if decompress(&cc, data.len(), &mut out).is_err() || out != data {
                bad += 1;
            }
        }
        // Most single-byte corruptions must be detected or alter output
        // (frame CRC catches the rest).
        assert!(bad > 0);
    }

    #[test]
    fn expected_len_zero_reads_nothing() {
        let mut out = vec![1, 2, 3];
        decompress(&[], 0, &mut out).unwrap();
        assert_eq!(out, vec![1, 2, 3]);
    }
}
