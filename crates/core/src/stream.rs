//! Transparent adaptive-compression stream wrappers.
//!
//! [`AdaptiveWriter`] sits "between the application and the respective I/O
//! layer" (paper §III-A): application writes are buffered into blocks of at
//! most 128 KiB, each block is compressed at the level currently chosen by
//! the decision model and emitted as a self-describing frame. The receiving
//! side ([`AdaptiveReader`]) needs no coordination — every frame names its
//! codec.
//!
//! These wrappers run on real I/O (sockets, files, pipes) under a wall
//! clock; the simulator reuses the same controller under virtual time.

use crate::epoch::{Clock, EpochContext, EpochDriver, WallClock};
use crate::model::DecisionModel;
use crate::pipeline::{Completion, CompressPool, DecodePool, Decoded};
use adcomp_codecs::frame::{
    FrameReader, FrameWriter, RecoveryMode, RecoveryPolicy, RecoveryStats, DEFAULT_BLOCK_LEN,
};
use adcomp_codecs::{CodecId, LevelSet};
use adcomp_trace::{FaultEvent, TraceEvent, TraceHandle, TraceSink as _};
use std::io::{self, Read, Write};

/// Aggregate statistics of an adaptive stream, for reporting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamStats {
    /// Application bytes accepted.
    pub app_bytes: u64,
    /// Frame bytes emitted to the I/O layer.
    pub wire_bytes: u64,
    /// Blocks emitted per compression level.
    pub blocks_per_level: Vec<u64>,
    /// Blocks emitted per wire codec id (writer side; indexed by
    /// `CodecId as usize` over the full registry, so portfolio streams
    /// report their codec mix). Counts the codec actually on the wire —
    /// raw fallbacks and degrades land on id 0. Empty on the reader.
    pub blocks_per_codec: Vec<u64>,
    /// Blocks whose compression expanded and fell back to raw.
    pub raw_fallbacks: u64,
    /// Completed decision epochs.
    pub epochs: u64,
    /// Fault-recovery counters (`corrupt_frames`, `resyncs`, `retries`, …).
    /// All zero on a clean stream; populated by the reader side under a
    /// non-default [`RecoveryPolicy`].
    pub recovery: RecoveryStats,
    /// Writer-side codec failures that forced a degrade to level NONE
    /// until the next epoch decision.
    pub degraded_blocks: u64,
}

impl StreamStats {
    /// Overall wire/app ratio (1.0 when nothing was written).
    pub fn wire_ratio(&self) -> f64 {
        if self.app_bytes == 0 {
            1.0
        } else {
            self.wire_bytes as f64 / self.app_bytes as f64
        }
    }
}

/// Adaptive compressing writer.
pub struct AdaptiveWriter<W: Write> {
    frames: FrameWriter<W, TraceHandle>,
    levels: LevelSet,
    driver: EpochDriver,
    clock: Box<dyn Clock>,
    buf: Vec<u8>,
    block_len: usize,
    blocks_per_level: Vec<u64>,
    blocks_per_codec: Vec<u64>,
    raw_fallbacks: u64,
    last_block_ratio: Option<f64>,
    degraded_blocks: u64,
    /// Worker pool for pipelined block compression (`None` = serial).
    pool: Option<CompressPool>,
    /// Content-aware portfolio mode: each block's codec family is chosen
    /// by [`crate::portfolio::select`] over the controller's level.
    portfolio: bool,
    /// Test seam: makes the next block's encode panic, exercising the
    /// degrade-to-raw path without needing a genuinely buggy codec.
    #[cfg(test)]
    bomb_next_block: std::cell::Cell<bool>,
}

impl<W: Write> AdaptiveWriter<W> {
    /// Wraps `inner` with the paper's defaults: 128 KiB blocks, epoch
    /// `t = 2 s`, wall clock.
    pub fn new(inner: W, levels: LevelSet, model: Box<dyn DecisionModel>) -> Self {
        Self::with_params(inner, levels, model, DEFAULT_BLOCK_LEN, 2.0, Box::new(WallClock::new()))
    }

    /// Full-control constructor.
    pub fn with_params(
        inner: W,
        levels: LevelSet,
        model: Box<dyn DecisionModel>,
        block_len: usize,
        epoch_secs: f64,
        clock: Box<dyn Clock>,
    ) -> Self {
        assert!(block_len > 0);
        assert_eq!(
            model.num_levels(),
            levels.len(),
            "decision model and level set must agree on the number of levels"
        );
        let now = clock.now();
        let nlevels = levels.len();
        AdaptiveWriter {
            frames: FrameWriter::with_sink(inner, TraceHandle::disabled()),
            levels,
            driver: EpochDriver::new(model, epoch_secs, now),
            clock,
            buf: Vec::with_capacity(block_len),
            block_len,
            blocks_per_level: vec![0; nlevels],
            blocks_per_codec: vec![0; CodecId::REGISTRY.len()],
            raw_fallbacks: 0,
            last_block_ratio: None,
            degraded_blocks: 0,
            pool: None,
            portfolio: false,
            #[cfg(test)]
            bomb_next_block: std::cell::Cell::new(false),
        }
    }

    /// Enables pipelined compression on `workers` pool threads
    /// (`workers <= 1` stays serial). The wire stream remains
    /// byte-identical to the serial path for any worker count: levels are
    /// chosen at submission time and frames are re-emitted in submission
    /// order through the same [`FrameWriter`], while the pool's bounded
    /// queues push back on the caller so the rate the `EpochDriver`
    /// observes stays the true application rate.
    pub fn set_pipeline_workers(&mut self, workers: usize) {
        if workers <= 1 {
            self.pool = None;
            return;
        }
        let mut pool = CompressPool::new(workers);
        if self.driver.trace().enabled() {
            pool.set_trace(self.driver.trace().clone());
        }
        self.pool = Some(pool);
    }

    /// Active pipeline worker count (1 = serial).
    pub fn pipeline_workers(&self) -> usize {
        self.pool.as_ref().map_or(1, CompressPool::workers)
    }

    /// Enables per-block content-aware codec selection: each block is
    /// probed ([`crate::portfolio::probe`]) and the codec family backing
    /// the controller's current level comes from the nominated ladder
    /// instead of the fixed [`LevelSet`]. The rate controller still makes
    /// the online level decision; the wire format is unchanged (every
    /// frame names its codec). Selection is a pure function of the block
    /// bytes and runs at submission time, so pipelined portfolio streams
    /// stay byte-identical to serial ones for any worker count.
    pub fn set_portfolio(&mut self, portfolio: bool) {
        self.portfolio = portfolio;
    }

    /// Whether portfolio selection is active.
    pub fn portfolio(&self) -> bool {
        self.portfolio
    }

    /// Makes the stream seekable: every emitted frame is recorded in an
    /// in-memory block index and [`AdaptiveWriter::finish`] appends it as a
    /// self-describing trailer frame, which
    /// [`crate::seek::IndexedReader`] uses for O(block) random access. The
    /// block frames themselves are byte-identical to a non-seekable
    /// stream's — old readers skip the trailer and decode unchanged.
    /// Call before writing any data.
    pub fn set_seekable(&mut self, seekable: bool) {
        assert!(
            self.frames.app_bytes == 0,
            "set_seekable must be called before the first write"
        );
        if seekable {
            self.frames.enable_index();
        }
    }

    /// Whether [`AdaptiveWriter::finish`] will append an index trailer.
    pub fn is_seekable(&self) -> bool {
        self.frames.index_enabled()
    }

    #[cfg(test)]
    fn take_bomb(&self) -> bool {
        self.bomb_next_block.replace(false)
    }

    #[cfg(not(test))]
    #[inline(always)]
    fn take_bomb(&self) -> bool {
        false
    }

    /// Attaches a trace sink: the epoch driver emits epoch/decision events
    /// and the frame writer emits per-block codec events tagged with the
    /// epoch in force when the block was compressed.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.driver.set_trace(trace.clone());
        if let Some(pool) = self.pool.as_mut() {
            pool.set_trace(trace.clone());
        }
        self.frames.set_sink(trace);
    }

    /// Currently applied compression level.
    pub fn level(&self) -> usize {
        self.driver.level()
    }

    /// The level trace `(seconds, level)` for time-series reporting.
    pub fn level_trace(&self) -> &adcomp_metrics::TimeSeries {
        self.driver.level_trace()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            app_bytes: self.frames.app_bytes,
            wire_bytes: self.frames.wire_bytes,
            blocks_per_level: self.blocks_per_level.clone(),
            blocks_per_codec: self.blocks_per_codec.clone(),
            raw_fallbacks: self.raw_fallbacks,
            epochs: self.driver.epochs(),
            recovery: RecoveryStats::default(),
            degraded_blocks: self.degraded_blocks,
        }
    }

    fn emit_block(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        if self.pool.is_some() {
            return self.emit_block_pipelined();
        }
        let mut level = self.driver.level();
        let now = self.clock.now();
        if self.driver.trace().enabled() {
            self.frames.set_trace_mark(self.driver.epochs(), now);
        }
        // Self-healing write: a panicking codec (a compression bug on this
        // particular block) must not take the stream down. Catch it, force
        // the level to NONE until the next epoch decision, and re-emit the
        // block raw — level 0 is a plain copy and cannot fail. Transport
        // I/O errors are NOT degraded around: we cannot know how much of a
        // frame already reached the wire, so they stay fail-fast.
        let mut codec_id = if self.portfolio {
            crate::portfolio::select(&self.buf, level)
        } else {
            self.levels.id(level)
        };
        let codec = adcomp_codecs::codec_for(codec_id);
        let bomb = self.take_bomb();
        let frames = &mut self.frames;
        let buf = &self.buf;
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if bomb {
                panic!("injected codec bomb");
            }
            frames.write_block(codec, buf)
        }));
        let info = match attempt {
            Ok(res) => res?,
            Err(_panic) => {
                self.degraded_blocks += 1;
                if self.driver.trace().enabled() {
                    self.driver.trace().emit(&TraceEvent::Fault(FaultEvent {
                        epoch: self.driver.epochs(),
                        t: now,
                        kind: "degrade",
                        bytes: self.buf.len() as u64,
                        attempt: level as u64,
                    }));
                }
                self.driver.force_level(0, now);
                level = 0;
                codec_id = CodecId::Raw;
                self.frames.write_block(self.levels.codec(0), &self.buf)?
            }
        };
        self.blocks_per_level[level] += 1;
        let wire_codec = if info.raw_fallback { CodecId::Raw } else { codec_id };
        self.blocks_per_codec[wire_codec as usize] += 1;
        if info.raw_fallback {
            self.raw_fallbacks += 1;
        }
        self.last_block_ratio = Some(info.wire_ratio());
        let bytes = self.buf.len() as u64;
        self.buf.clear();
        let ctx = EpochContext {
            observed_ratio: self.last_block_ratio,
            ..EpochContext::default()
        };
        self.driver.record(bytes, now, &ctx);
        Ok(())
    }

    /// Pipelined twin of [`AdaptiveWriter::emit_block`]: the level is
    /// captured *now* (submission order == decision order), the block
    /// travels to the pool, and whatever frames the reorder gate releases
    /// are written in sequence. `driver.record` runs at submission with
    /// the same `(bytes, now)` a serial writer would use, so level
    /// trajectories — and therefore the wire bytes — are identical.
    fn emit_block_pipelined(&mut self) -> io::Result<()> {
        let level = self.driver.level();
        let now = self.clock.now();
        // Portfolio selection happens here, at submission time, on the
        // block bytes themselves — the same purity argument that makes
        // level capture sufficient for byte-identity covers the codec id.
        let codec_id = if self.portfolio {
            crate::portfolio::select(&self.buf, level)
        } else {
            self.levels.id(level)
        };
        let data = std::mem::take(&mut self.buf);
        let bytes = data.len() as u64;
        let traced = self.driver.trace().enabled();
        let epochs = self.driver.epochs();
        let pool = self.pool.as_mut().expect("pipelined emit without a pool");
        if traced {
            pool.set_trace_mark(epochs, now);
        }
        #[cfg(test)]
        if self.bomb_next_block.replace(false) {
            pool.bomb_next_block();
        }
        let ready = pool.submit(level, codec_id, 0, data);
        self.write_completions(ready, now)?;
        let ctx = EpochContext {
            observed_ratio: self.last_block_ratio,
            ..EpochContext::default()
        };
        self.driver.record(bytes, now, &ctx);
        Ok(())
    }

    /// Writes pool completions (already in submission order) to the wire,
    /// updating the same statistics as the serial path. A degraded
    /// completion (worker-side codec panic, block re-encoded raw) forces
    /// the controller to level 0, like the serial self-healing path — just
    /// discovered at drain time rather than mid-encode.
    fn write_completions(&mut self, ready: Vec<Completion>, now: f64) -> io::Result<()> {
        for c in ready {
            let traced = self.driver.trace().enabled();
            if c.degraded {
                self.degraded_blocks += 1;
                if traced {
                    self.driver.trace().emit(&TraceEvent::Fault(FaultEvent {
                        epoch: self.driver.epochs(),
                        t: now,
                        kind: "degrade",
                        bytes: c.info.uncompressed_len as u64,
                        attempt: c.level as u64,
                    }));
                }
                self.driver.force_level(0, now);
            }
            if traced {
                self.frames.set_trace_mark(self.driver.epochs(), now);
            }
            let requested = if c.degraded { CodecId::Raw } else { c.requested };
            self.frames.write_frame(requested, &c.frame, c.info, c.compress_ns)?;
            let level = if c.degraded { 0 } else { c.level };
            self.blocks_per_level[level] += 1;
            let wire_codec = if c.info.raw_fallback { CodecId::Raw } else { requested };
            self.blocks_per_codec[wire_codec as usize] += 1;
            if c.info.raw_fallback {
                self.raw_fallbacks += 1;
            }
            self.last_block_ratio = Some(c.info.wire_ratio());
            // Reuse the block's buffer for the next fill — keeps the
            // pipelined steady state allocation-bounded like the serial one.
            if self.buf.capacity() == 0 {
                let mut d = c.data;
                d.clear();
                self.buf = d;
            }
        }
        Ok(())
    }

    /// Drains every in-flight pipelined block to the wire.
    fn drain_pipeline(&mut self) -> io::Result<()> {
        if self.pool.is_none() {
            return Ok(());
        }
        let now = self.clock.now();
        let rest = self.pool.as_mut().expect("drain without a pool").drain();
        self.write_completions(rest, now)
    }

    /// Flushes buffered data as a (possibly short) block and flushes the
    /// underlying writer. Call before dropping to avoid losing the tail.
    pub fn finish(mut self) -> io::Result<(W, StreamStats)> {
        self.emit_block()?;
        self.drain_pipeline()?;
        self.frames.finish_index()?;
        self.frames.flush()?;
        let stats = self.stats();
        Ok((self.frames.into_inner(), stats))
    }
}

impl<W: Write> Write for AdaptiveWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut consumed = 0;
        while consumed < data.len() {
            let room = self.block_len - self.buf.len();
            let take = room.min(data.len() - consumed);
            self.buf.extend_from_slice(&data[consumed..consumed + take]);
            consumed += take;
            if self.buf.len() == self.block_len {
                self.emit_block()?;
            }
        }
        Ok(consumed)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.emit_block()?;
        self.drain_pipeline()?;
        self.frames.flush()
    }
}

/// Decompressing reader for streams produced by [`AdaptiveWriter`].
pub struct AdaptiveReader<R: Read> {
    frames: FrameReader<R>,
    pending: Vec<u8>,
    pos: usize,
    eof: bool,
    /// Worker pool for pipelined decompression (`None` = serial). Frame
    /// parsing, CRC checks and recovery always run on the caller thread
    /// (`FrameReader::read_frame`); only the pure payload decompression is
    /// farmed out, and blocks are released in wire order.
    pool: Option<DecodePool>,
    /// Recycled wire-payload buffers (pipelined mode): each [`Decoded`]
    /// hands its payload back and `refill_pipelined` reuses it for a later
    /// frame, so steady-state pipelined decode performs no per-frame
    /// allocation on the reader thread.
    spare_payloads: Vec<Vec<u8>>,
}

impl<R: Read> AdaptiveReader<R> {
    pub fn new(inner: R) -> Self {
        AdaptiveReader::with_policy(inner, RecoveryPolicy::default())
    }

    /// A reader with an explicit [`RecoveryPolicy`] — e.g.
    /// [`RecoveryPolicy::skip_and_count`] to drop corrupt frames and keep
    /// decoding, or [`RecoveryPolicy::bounded_retry`] to ride out
    /// transient I/O errors.
    pub fn with_policy(inner: R, policy: RecoveryPolicy) -> Self {
        AdaptiveReader {
            frames: FrameReader::with_policy(inner, policy),
            pending: Vec::new(),
            pos: 0,
            eof: false,
            pool: None,
            spare_payloads: Vec::new(),
        }
    }

    /// Enables pipelined decompression on `workers` pool threads
    /// (`workers <= 1` stays serial). Decoded bytes are identical to the
    /// serial reader's for any worker count; recovery statistics match
    /// whenever corruption is caught by the CRC (the caller-thread path).
    /// The one divergence: a corrupt payload whose CRC *collides* is
    /// detected after the reorder buffer, so it is counted and dropped
    /// (skip mode) without re-scanning its bytes for embedded frames.
    pub fn set_pipeline_workers(&mut self, workers: usize) {
        self.pool = if workers <= 1 { None } else { Some(DecodePool::new(workers)) };
    }

    /// Active pipeline worker count (1 = serial).
    pub fn pipeline_workers(&self) -> usize {
        self.pool.as_ref().map_or(1, DecodePool::workers)
    }

    /// The active recovery policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.frames.policy()
    }

    /// Fault-recovery counters (all zero on a clean stream).
    pub fn recovery(&self) -> RecoveryStats {
        self.frames.recovery
    }

    /// Statistics snapshot mirroring the writer side's [`StreamStats`]
    /// (per-level block counts are unknown on the reader, so that vector
    /// is empty).
    pub fn stats(&self) -> StreamStats {
        StreamStats {
            app_bytes: self.frames.app_bytes,
            wire_bytes: self.frames.wire_bytes,
            blocks_per_level: Vec::new(),
            blocks_per_codec: Vec::new(),
            raw_fallbacks: 0,
            epochs: 0,
            recovery: self.frames.recovery,
            degraded_blocks: 0,
        }
    }

    /// Application bytes decoded so far.
    pub fn app_bytes(&self) -> u64 {
        self.frames.app_bytes
    }

    /// Wire bytes consumed so far.
    pub fn wire_bytes(&self) -> u64 {
        self.frames.wire_bytes
    }

    /// Frames decoded so far.
    pub fn blocks(&self) -> u64 {
        self.frames.blocks
    }

    /// Returns the underlying reader (discarding any buffered plaintext).
    pub fn into_inner(self) -> R {
        self.frames.into_inner()
    }

    /// Folds a batch of in-order decoded blocks into `pending`, applying
    /// the recovery policy to worker-reported decode failures (which, with
    /// CRC validation upstream, only occur on checksum collisions).
    fn absorb_decoded(&mut self, batch: Vec<Decoded>) -> io::Result<()> {
        for d in batch {
            match d.err {
                None => {
                    self.frames.app_bytes += d.bytes.len() as u64;
                    self.pending.extend_from_slice(&d.bytes);
                }
                Some(e) => {
                    self.frames.recovery.corrupt_frames += 1;
                    if self.frames.policy().mode == RecoveryMode::FailFast {
                        return Err(io::Error::new(io::ErrorKind::InvalidData, e));
                    }
                    // Skip mode: the frame is dropped. Its wire bytes were
                    // already consumed during validation, so unlike the
                    // serial reader there is nothing left to re-scan.
                }
            }
            // Hand both buffers back for reuse: the output to the pool,
            // the wire payload to the reader-thread free list.
            if let Some(pool) = self.pool.as_mut() {
                pool.recycle(d.bytes);
                if self.spare_payloads.len() < pool.workers() * 2 {
                    let mut p = d.payload;
                    p.clear();
                    self.spare_payloads.push(p);
                }
            }
        }
        Ok(())
    }

    /// Pipelined refill: validate frames on this thread, decode on the
    /// pool, release in wire order. Returns with `pending` non-empty or
    /// `eof` set with the pipeline fully drained.
    fn refill_pipelined(&mut self) -> io::Result<()> {
        loop {
            while !self.eof
                && self.pool.as_ref().expect("pipelined refill without a pool").has_capacity()
            {
                let mut payload = self.spare_payloads.pop().unwrap_or_default();
                match self.frames.read_frame(&mut payload)? {
                    Some(h) => {
                        let pool = self.pool.as_mut().expect("pipelined refill without a pool");
                        let batch =
                            pool.submit(h.codec, h.uncompressed_len as usize, payload);
                        self.absorb_decoded(batch)?;
                    }
                    None => {
                        self.spare_payloads.push(payload);
                        self.eof = true;
                    }
                }
            }
            if self.eof {
                let rest = self.pool.as_mut().expect("pipelined refill without a pool").drain();
                self.absorb_decoded(rest)?;
                return Ok(());
            }
            if !self.pending.is_empty() {
                return Ok(());
            }
            // Pipeline full but nothing releasable yet: wait for the head
            // of the reorder gate.
            let batch =
                self.pool.as_mut().expect("pipelined refill without a pool").wait_ready();
            self.absorb_decoded(batch)?;
            if !self.pending.is_empty() {
                return Ok(());
            }
        }
    }
}

impl<R: Read> Read for AdaptiveReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.pos < self.pending.len() {
                let take = (self.pending.len() - self.pos).min(buf.len());
                buf[..take].copy_from_slice(&self.pending[self.pos..self.pos + take]);
                self.pos += take;
                return Ok(take);
            }
            if self.eof {
                return Ok(0);
            }
            self.pending.clear();
            self.pos = 0;
            if self.pool.is_some() {
                self.refill_pipelined()?;
                if self.pending.is_empty() {
                    return Ok(0);
                }
                continue;
            }
            match self.frames.read_block(&mut self.pending)? {
                Some(_) => continue,
                None => {
                    self.eof = true;
                    return Ok(0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::ManualClock;
    use crate::model::{RateBasedModel, StaticModel};
    use adcomp_codecs::LevelSet;

    fn levels() -> LevelSet {
        LevelSet::paper_default()
    }

    #[test]
    fn writer_reader_roundtrip_static_level() {
        let data = b"stream roundtrip data! ".repeat(10_000);
        let mut w = AdaptiveWriter::new(
            Vec::new(),
            levels(),
            Box::new(StaticModel::new(1, 4)),
        );
        w.write_all(&data).unwrap();
        let (wire, stats) = w.finish().unwrap();
        assert_eq!(stats.app_bytes, data.len() as u64);
        assert!(stats.wire_ratio() < 0.5, "ratio {}", stats.wire_ratio());
        assert!(stats.blocks_per_level[1] > 0);

        let mut r = AdaptiveReader::new(&wire[..]);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(r.app_bytes(), data.len() as u64);
        assert_eq!(r.wire_bytes(), wire.len() as u64);
    }

    #[test]
    fn writer_reader_roundtrip_adaptive_model() {
        let data = b"adaptive roundtrip, with some repetition repetition. ".repeat(20_000);
        let clock = ManualClock::new();
        let mut w = AdaptiveWriter::with_params(
            Vec::new(),
            levels(),
            Box::new(RateBasedModel::paper_default()),
            4096,
            0.01,
            Box::new(clock.clone()),
        );
        // Advance time as we write so epochs fire and levels change.
        for (i, chunk) in data.chunks(4096).enumerate() {
            clock.set(i as f64 * 0.004);
            w.write_all(chunk).unwrap();
        }
        let (wire, stats) = w.finish().unwrap();
        assert!(stats.epochs > 10, "expected many epochs, got {}", stats.epochs);
        assert!(
            stats.blocks_per_level.iter().filter(|&&c| c > 0).count() > 1,
            "adaptive run should have used multiple levels: {:?}",
            stats.blocks_per_level
        );
        let mut out = Vec::new();
        AdaptiveReader::new(&wire[..]).read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn partial_final_block_flushed_by_finish() {
        let data = b"short tail";
        let mut w = AdaptiveWriter::new(Vec::new(), levels(), Box::new(StaticModel::new(0, 4)));
        w.write_all(data).unwrap();
        let (wire, stats) = w.finish().unwrap();
        assert_eq!(stats.app_bytes, data.len() as u64);
        let mut out = Vec::new();
        AdaptiveReader::new(&wire[..]).read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn flush_mid_stream_keeps_stream_decodable() {
        let mut w = AdaptiveWriter::new(Vec::new(), levels(), Box::new(StaticModel::new(1, 4)));
        w.write_all(b"first part ").unwrap();
        w.flush().unwrap();
        w.write_all(b"second part").unwrap();
        let (wire, _) = w.finish().unwrap();
        let mut out = Vec::new();
        AdaptiveReader::new(&wire[..]).read_to_end(&mut out).unwrap();
        assert_eq!(out, b"first part second part");
    }

    #[test]
    fn empty_stream_roundtrip() {
        let w = AdaptiveWriter::new(Vec::new(), levels(), Box::new(StaticModel::new(2, 4)));
        let (wire, stats) = w.finish().unwrap();
        assert!(wire.is_empty());
        assert_eq!(stats.app_bytes, 0);
        assert_eq!(stats.wire_ratio(), 1.0);
        let mut out = Vec::new();
        AdaptiveReader::new(&wire[..]).read_to_end(&mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn incompressible_data_counts_fallbacks() {
        let mut x = 99u64;
        let data: Vec<u8> = (0..300_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let mut w = AdaptiveWriter::new(Vec::new(), levels(), Box::new(StaticModel::new(1, 4)));
        w.write_all(&data).unwrap();
        let (wire, stats) = w.finish().unwrap();
        assert!(stats.raw_fallbacks > 0);
        assert!(stats.wire_ratio() < 1.01);
        let mut out = Vec::new();
        AdaptiveReader::new(&wire[..]).read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn traced_stream_emits_codec_and_decision_events() {
        use adcomp_trace::{MemorySink, TraceEvent, TraceHandle};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let clock = ManualClock::new();
        let mut w = AdaptiveWriter::with_params(
            Vec::new(),
            levels(),
            Box::new(RateBasedModel::paper_default()),
            1024,
            0.05,
            Box::new(clock.clone()),
        );
        w.set_trace(TraceHandle::new(sink.clone()));
        let data = b"traced stream payload with repetition repetition ".repeat(400);
        for (i, chunk) in data.chunks(1024).enumerate() {
            clock.set(i as f64 * 0.02);
            w.write_all(chunk).unwrap();
        }
        let (wire, stats) = w.finish().unwrap();
        assert!(stats.epochs > 2);
        let events = sink.snapshot();
        let codecs = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Codec(_)))
            .count();
        let decisions = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Decision(_)))
            .count();
        let epochs = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Epoch(_)))
            .count();
        assert_eq!(codecs as u64, stats.blocks_per_level.iter().sum::<u64>());
        assert_eq!(decisions as u64, stats.epochs);
        assert_eq!(epochs as u64, stats.epochs);
        // Codec events are tagged with an epoch that has actually started.
        for e in &events {
            if let TraceEvent::Codec(c) = e {
                assert!(c.epoch <= stats.epochs, "codec epoch {} out of range", c.epoch);
            }
        }
        // The stream stays decodable with tracing attached.
        let mut out = Vec::new();
        AdaptiveReader::new(&wire[..]).read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn skip_policy_reader_survives_mid_stream_corruption() {
        use adcomp_codecs::frame::{RecoveryPolicy, HEADER_LEN};
        let data = b"corruptible stream payload, repeated. ".repeat(2000);
        let mut w = AdaptiveWriter::with_params(
            Vec::new(),
            levels(),
            Box::new(StaticModel::new(1, 4)),
            4096,
            2.0,
            Box::new(ManualClock::new()),
        );
        w.write_all(&data).unwrap();
        let (mut wire, stats) = w.finish().unwrap();
        assert!(stats.blocks_per_level[1] > 4);
        // Flip a byte in the payload of the second frame (first frame's
        // header declares its payload length).
        let first_payload =
            u32::from_le_bytes(wire[8..12].try_into().unwrap()) as usize;
        let second = HEADER_LEN + first_payload;
        wire[second + HEADER_LEN + 10] ^= 0x01;

        // Fail-fast: typed error.
        let mut out = Vec::new();
        assert!(AdaptiveReader::new(&wire[..]).read_to_end(&mut out).is_err());

        // Skip-and-count: stream decodes to a strict subsequence of the
        // original with exactly one counted corrupt frame.
        let mut r = AdaptiveReader::with_policy(&wire[..], RecoveryPolicy::skip_and_count());
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        let rec = r.recovery();
        assert_eq!(rec.corrupt_frames, 1);
        assert_eq!(rec.resyncs, 1);
        assert!(out.len() < data.len());
        // Recovered bytes = original minus exactly the damaged 4096-byte
        // block; the tail after the hole matches the original tail.
        assert_eq!(&out[..4096], &data[..4096]);
        assert_eq!(&out[4096..], &data[2 * 4096..]);
        assert!(r.stats().recovery.corrupt_frames == 1);
    }

    #[test]
    fn panicking_codec_degrades_to_raw_and_stream_survives() {
        let clock = ManualClock::new();
        let mut w = AdaptiveWriter::with_params(
            Vec::new(),
            levels(),
            Box::new(StaticModel::new(2, 4)),
            1024,
            1.0,
            Box::new(clock.clone()),
        );
        let data = b"degrade path payload, quite repetitive indeed. ".repeat(100);
        // First block encodes fine at level 2.
        w.write_all(&data[..1024]).unwrap();
        assert_eq!(w.level(), 2);
        // Second block: codec "bug" — encode panics. The writer must catch
        // it, emit the block raw, and force level NONE.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        w.bomb_next_block.set(true);
        w.write_all(&data[1024..2048]).unwrap();
        std::panic::set_hook(prev);
        assert_eq!(w.level(), 0, "degrade must force level NONE");
        // Remaining data flows at level 0 until the next epoch decision
        // (ManualClock never advances here, so no epoch fires).
        w.write_all(&data[2048..]).unwrap();
        let (wire, stats) = w.finish().unwrap();
        assert_eq!(stats.degraded_blocks, 1);
        assert!(stats.blocks_per_level[0] > 0, "{:?}", stats.blocks_per_level);
        // The whole stream — including the degraded block — decodes.
        let mut out = Vec::new();
        AdaptiveReader::new(&wire[..]).read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn forced_level_applies_until_next_epoch() {
        let clock = ManualClock::new();
        let mut w = AdaptiveWriter::with_params(
            Vec::new(),
            levels(),
            Box::new(StaticModel::new(2, 4)),
            1024,
            1.0,
            Box::new(clock.clone()),
        );
        assert_eq!(w.level(), 2);
        w.driver.force_level(0, 0.0);
        assert_eq!(w.level(), 0);
        // Next epoch: the static model pulls it back to 2.
        clock.set(1.5);
        w.write_all(&[0u8; 2048]).unwrap();
        assert_eq!(w.level(), 2);
    }

    #[test]
    #[should_panic(expected = "must agree on the number of levels")]
    fn mismatched_model_and_levels_rejected() {
        AdaptiveWriter::new(Vec::new(), levels(), Box::new(StaticModel::new(0, 2)));
    }

    #[test]
    fn reader_handles_small_read_buffers() {
        let data = b"tiny reads ".repeat(1000);
        let mut w = AdaptiveWriter::new(Vec::new(), levels(), Box::new(StaticModel::new(1, 4)));
        w.write_all(&data).unwrap();
        let (wire, _) = w.finish().unwrap();
        let mut r = AdaptiveReader::new(&wire[..]);
        let mut out = Vec::new();
        let mut small = [0u8; 7];
        loop {
            let n = r.read(&mut small).unwrap();
            if n == 0 {
                break;
            }
            out.extend_from_slice(&small[..n]);
        }
        assert_eq!(out, data);
    }

    /// Serial wire bytes for a fixed corpus, used as the reference in the
    /// pipelined-equivalence tests below.
    fn serial_wire(data: &[u8], level: usize, block: usize) -> Vec<u8> {
        let mut w = AdaptiveWriter::with_params(
            Vec::new(),
            levels(),
            Box::new(StaticModel::new(level, 4)),
            block,
            1.0,
            Box::new(ManualClock::new()),
        );
        w.write_all(data).unwrap();
        w.finish().unwrap().0
    }

    #[test]
    fn pipelined_writer_matches_serial_bytes_static_levels() {
        let data = b"pipelined equivalence corpus, mildly repetitive. ".repeat(3000);
        for level in 0..4 {
            let reference = serial_wire(&data, level, 4096);
            for workers in [1usize, 2, 4, 7] {
                let mut w = AdaptiveWriter::with_params(
                    Vec::new(),
                    levels(),
                    Box::new(StaticModel::new(level, 4)),
                    4096,
                    1.0,
                    Box::new(ManualClock::new()),
                );
                w.set_pipeline_workers(workers);
                assert_eq!(w.pipeline_workers(), workers.max(1));
                w.write_all(&data).unwrap();
                let (wire, stats) = w.finish().unwrap();
                assert_eq!(
                    wire, reference,
                    "level {level} workers {workers}: pipelined wire differs from serial"
                );
                assert_eq!(stats.app_bytes, data.len() as u64);
                assert_eq!(stats.wire_bytes, reference.len() as u64);
            }
        }
    }

    #[test]
    fn pipelined_writer_matches_serial_bytes_adaptive_model() {
        let data = b"adaptive pipelined corpus with repetition repetition. ".repeat(8000);
        let run = |workers: usize| -> (Vec<u8>, StreamStats) {
            let clock = ManualClock::new();
            let mut w = AdaptiveWriter::with_params(
                Vec::new(),
                levels(),
                Box::new(RateBasedModel::paper_default()),
                4096,
                0.01,
                Box::new(clock.clone()),
            );
            if workers > 1 {
                w.set_pipeline_workers(workers);
            }
            for (i, chunk) in data.chunks(4096).enumerate() {
                clock.set(i as f64 * 0.004);
                w.write_all(chunk).unwrap();
            }
            w.finish().unwrap()
        };
        let (reference, ref_stats) = run(1);
        assert!(ref_stats.epochs > 10);
        for workers in [2usize, 4, 8] {
            let (wire, stats) = run(workers);
            assert_eq!(wire, reference, "workers {workers}: adaptive wire differs");
            assert_eq!(stats.epochs, ref_stats.epochs);
            assert_eq!(stats.blocks_per_level, ref_stats.blocks_per_level);
        }
        let mut out = Vec::new();
        AdaptiveReader::new(&reference[..]).read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    /// Heterogeneous corpus: each 4096-byte block is a different shape, so
    /// portfolio selection yields a genuinely mixed-codec stream.
    fn heterogeneous_corpus(blocks: usize) -> Vec<u8> {
        let mut data = Vec::new();
        let mut x = 0x2545_F491u32;
        for b in 0..blocks {
            match b % 3 {
                0 => data.extend(std::iter::repeat_n((b % 5) as u8, 4096)),
                1 => data.extend(
                    b"text-like content with words and repetition, repetition. "
                        .iter()
                        .copied()
                        .cycle()
                        .take(4096),
                ),
                _ => data.extend((0..4096).map(|_| {
                    x ^= x << 13;
                    x ^= x >> 17;
                    x ^= x << 5;
                    (x >> 24) as u8
                })),
            }
        }
        data
    }

    /// Codec ids of every frame in a wire stream, by walking the headers.
    fn codec_ids(wire: &[u8]) -> Vec<u8> {
        let mut ids = Vec::new();
        let mut pos = 0;
        while pos + 16 <= wire.len() {
            assert_eq!(&wire[pos..pos + 2], &[0xAD, 0xC2], "frame magic at {pos}");
            ids.push(wire[pos + 2]);
            let payload = u32::from_le_bytes(wire[pos + 8..pos + 12].try_into().unwrap());
            pos += 16 + payload as usize;
        }
        assert_eq!(pos, wire.len());
        ids
    }

    #[test]
    fn portfolio_streams_are_mixed_codec_and_worker_count_invariant() {
        let data = heterogeneous_corpus(12);
        let run = |workers: usize| -> Vec<u8> {
            let mut w = AdaptiveWriter::with_params(
                Vec::new(),
                levels(),
                Box::new(StaticModel::new(2, 4)),
                4096,
                1.0,
                Box::new(ManualClock::new()),
            );
            w.set_portfolio(true);
            assert!(w.portfolio());
            if workers > 1 {
                w.set_pipeline_workers(workers);
            }
            w.write_all(&data).unwrap();
            w.finish().unwrap().0
        };
        let reference = run(1);
        // The stream genuinely mixes codec families per block content.
        let distinct: std::collections::BTreeSet<u8> =
            codec_ids(&reference).into_iter().collect();
        assert!(
            distinct.len() >= 3,
            "expected a mixed-codec stream, got ids {distinct:?}"
        );
        assert!(
            distinct.iter().any(|&id| id >= 4),
            "expected a portfolio codec in {distinct:?}"
        );
        for workers in [2usize, 4, 7] {
            assert_eq!(run(workers), reference, "workers {workers}: portfolio wire differs");
        }
        // Mixed-codec streams decode through the ordinary reader, serial
        // and pooled alike.
        for workers in [1usize, 3] {
            let mut r = AdaptiveReader::new(&reference[..]);
            r.set_pipeline_workers(workers);
            let mut out = Vec::new();
            r.read_to_end(&mut out).unwrap();
            assert_eq!(out, data, "decode workers {workers}");
        }
    }

    #[test]
    fn portfolio_adaptive_model_stays_deterministic() {
        let data = heterogeneous_corpus(24);
        let run = |workers: usize| -> (Vec<u8>, StreamStats) {
            let clock = ManualClock::new();
            let mut w = AdaptiveWriter::with_params(
                Vec::new(),
                levels(),
                Box::new(RateBasedModel::paper_default()),
                4096,
                0.01,
                Box::new(clock.clone()),
            );
            w.set_portfolio(true);
            if workers > 1 {
                w.set_pipeline_workers(workers);
            }
            for (i, chunk) in data.chunks(4096).enumerate() {
                clock.set(i as f64 * 0.004);
                w.write_all(chunk).unwrap();
            }
            w.finish().unwrap()
        };
        let (reference, ref_stats) = run(1);
        for workers in [2usize, 4] {
            let (wire, stats) = run(workers);
            assert_eq!(wire, reference, "workers {workers}");
            assert_eq!(stats.blocks_per_level, ref_stats.blocks_per_level);
        }
        let mut out = Vec::new();
        AdaptiveReader::new(&reference[..]).read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn pipelined_reader_roundtrips_and_counts_bytes() {
        let data = b"parallel decode corpus, quite compressible indeed. ".repeat(5000);
        let wire = serial_wire(&data, 2, 4096);
        for workers in [1usize, 2, 4] {
            let mut r = AdaptiveReader::new(&wire[..]);
            r.set_pipeline_workers(workers);
            assert_eq!(r.pipeline_workers(), workers.max(1));
            let mut out = Vec::new();
            r.read_to_end(&mut out).unwrap();
            assert_eq!(out, data, "workers {workers}");
            assert_eq!(r.app_bytes(), data.len() as u64);
            assert_eq!(r.wire_bytes(), wire.len() as u64);
        }
    }

    #[test]
    fn pipelined_degrade_forces_raw_and_level_zero() {
        let clock = ManualClock::new();
        let mut w = AdaptiveWriter::with_params(
            Vec::new(),
            levels(),
            Box::new(StaticModel::new(2, 4)),
            1024,
            1.0,
            Box::new(clock.clone()),
        );
        w.set_pipeline_workers(3);
        let data = b"pipelined degrade payload, rather repetitive too. ".repeat(100);
        w.write_all(&data[..1024]).unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        w.bomb_next_block.set(true);
        w.write_all(&data[1024..2048]).unwrap();
        // The degraded completion may still be in flight; draining the pool
        // applies the forced level before any later submission is observed.
        w.flush().unwrap();
        std::panic::set_hook(prev);
        assert_eq!(w.level(), 0, "degrade must force level NONE");
        w.write_all(&data[2048..]).unwrap();
        let (wire, stats) = w.finish().unwrap();
        assert_eq!(stats.degraded_blocks, 1);
        assert!(stats.blocks_per_level[0] > 0, "{:?}", stats.blocks_per_level);
        let mut out = Vec::new();
        AdaptiveReader::new(&wire[..]).read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn pipelined_skip_policy_survives_corruption() {
        use adcomp_codecs::frame::{RecoveryPolicy, HEADER_LEN};
        let data = b"pipelined corruptible payload, repeated. ".repeat(2000);
        let mut wire = serial_wire(&data, 1, 4096);
        let first_payload = u32::from_le_bytes(wire[8..12].try_into().unwrap()) as usize;
        let second = HEADER_LEN + first_payload;
        wire[second + HEADER_LEN + 10] ^= 0x01;

        let mut r = AdaptiveReader::with_policy(&wire[..], RecoveryPolicy::skip_and_count());
        r.set_pipeline_workers(4);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        let rec = r.recovery();
        assert_eq!(rec.corrupt_frames, 1);
        assert_eq!(rec.resyncs, 1);
        assert_eq!(&out[..4096], &data[..4096]);
        assert_eq!(&out[4096..], &data[2 * 4096..]);
    }

    #[test]
    fn pipelined_traced_stream_emits_pipeline_events() {
        use adcomp_trace::{MemorySink, TraceEvent, TraceHandle};
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let mut w = AdaptiveWriter::with_params(
            Vec::new(),
            levels(),
            Box::new(StaticModel::new(1, 4)),
            2048,
            1.0,
            Box::new(ManualClock::new()),
        );
        w.set_trace(TraceHandle::new(sink.clone()));
        w.set_pipeline_workers(2);
        let data = b"traced pipelined payload with repetition repetition ".repeat(600);
        w.write_all(&data).unwrap();
        let (wire, stats) = w.finish().unwrap();
        let events = sink.snapshot();
        let submits = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Pipeline(p) if p.kind == "submit"))
            .count();
        let drains = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Pipeline(p) if p.kind == "drain"))
            .count();
        let blocks: u64 = stats.blocks_per_level.iter().sum();
        assert_eq!(submits as u64, blocks, "one submit event per block");
        assert_eq!(drains as u64, blocks, "one drain event per block");
        let codecs = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Codec(_)))
            .count();
        assert_eq!(codecs as u64, blocks);
        let mut out = Vec::new();
        AdaptiveReader::new(&wire[..]).read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }
}
