//! Executable reference specification of Algorithm 1.
//!
//! `spec_next` below is a direct, self-contained transcription of the
//! paper's decision table — about fifty lines, written independently of
//! `adcomp_core::controller` and kept deliberately dumb so a reviewer can
//! check it against the paper line by line. The property tests then assert
//! that, for arbitrary rate sequences, the production [`RateController`]
//! and the [`EpochDriver`] stack produce *identical* level trajectories.

use adcomp_core::controller::{ControllerConfig, RateController};
use adcomp_core::epoch::{EpochContext, EpochDriver};
use adcomp_core::model::RateBasedModel;
use proptest::prelude::*;

/// Table I state, named exactly as in the paper.
#[derive(Clone, Debug)]
struct Spec {
    /// Currently applied compression level.
    ccl: usize,
    /// Decision calls since the last level change.
    c: u64,
    /// Whether the last level change was an increase.
    inc: bool,
    /// Per-level backoff exponents.
    bck: Vec<u32>,
    /// Previous epoch's application data rate.
    pdr: Option<f64>,
}

impl Spec {
    fn new(num_levels: usize) -> Self {
        Spec { ccl: 0, c: 0, inc: true, bck: vec![0; num_levels], pdr: None }
    }
}

/// One epoch of Algorithm 1: consumes `cdr`, returns the next level.
fn spec_next(s: &mut Spec, cdr: f64, alpha: f64, max_backoff_exp: u32) -> usize {
    let n = s.bck.len() as i64;
    let pdr = s.pdr.unwrap_or(cdr); // first call: pdr := cdr
    let d = cdr - pdr;
    s.c += 1;
    let mut ncl = s.ccl as i64;
    let mut probed = false;
    if d.abs() <= alpha * pdr {
        // Case 1 — stable: probe once the backoff for ccl has expired.
        if s.c >= 1u64 << s.bck[s.ccl].min(62) {
            ncl += if s.inc { 1 } else { -1 };
            s.c = 0;
            probed = true;
        }
    } else if d > 0.0 {
        // Case 2 — improved: reward ccl with a longer backoff, stay put.
        s.bck[s.ccl] = (s.bck[s.ccl] + 1).min(max_backoff_exp);
        s.c = 0;
    } else {
        // Case 3 — degraded: reset ccl's backoff, revert the last change.
        s.bck[s.ccl] = 0;
        ncl += if s.inc { -1 } else { 1 };
        s.c = 0;
    }
    // Boundaries: clamp, but let an optimistic probe reflect off the wall.
    if ncl < 0 {
        ncl = if probed && n > 1 { 1 } else { 0 };
    } else if ncl >= n {
        ncl = if probed && n > 1 { n - 2 } else { n - 1 };
    }
    // Out-of-algorithm updates of ccl / inc / pdr.
    if ncl as usize != s.ccl {
        s.inc = ncl as usize > s.ccl;
        s.ccl = ncl as usize;
    }
    s.pdr = Some(cdr);
    s.ccl
}

fn spec_trajectory(rates: &[u64], cfg: &ControllerConfig) -> Vec<usize> {
    let mut s = Spec::new(cfg.num_levels);
    rates.iter().map(|&r| spec_next(&mut s, r as f64, cfg.alpha, cfg.max_backoff_exp)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The production controller matches the reference spec decision for
    /// decision on arbitrary rate sequences.
    #[test]
    fn controller_matches_reference_spec(
        rates in proptest::collection::vec(0u64..1_000_000_000, 1..200)
    ) {
        let cfg = ControllerConfig::default();
        let mut ctl = RateController::new(cfg);
        let mut s = Spec::new(cfg.num_levels);
        for &r in &rates {
            let want = spec_next(&mut s, r as f64, cfg.alpha, cfg.max_backoff_exp);
            let got = ctl.observe(r as f64);
            prop_assert_eq!(got.level, want, "diverged at cdr={}", r);
            prop_assert_eq!(ctl.backoffs(), &s.bck[..]);
            prop_assert_eq!(ctl.increasing(), s.inc);
        }
    }

    /// Driving the full EpochDriver + RateBasedModel stack — one record per
    /// epoch boundary, bytes chosen so the epoch rate equals the intended
    /// cdr — yields the reference spec's level trajectory exactly.
    #[test]
    fn epoch_driver_matches_reference_spec(
        rates in proptest::collection::vec(0u64..1_000_000_000, 1..150)
    ) {
        let cfg = ControllerConfig::default();
        let mut driver =
            EpochDriver::new(Box::new(RateBasedModel::new(cfg)), 1.0, 0.0);
        let want = spec_trajectory(&rates, &cfg);
        let ctx = EpochContext::default();
        let mut got = Vec::with_capacity(rates.len());
        for (k, &bytes) in rates.iter().enumerate() {
            // Recording exactly at the boundary closes the epoch with
            // duration 1 s, so rate == bytes.
            got.push(driver.record(bytes, (k + 1) as f64, &ctx));
        }
        prop_assert_eq!(got, want);
        prop_assert_eq!(driver.epochs(), rates.len() as u64);
    }

    /// Spec sanity: trajectories never leave the level range and the
    /// controller still matches under non-default configs.
    #[test]
    fn spec_holds_for_other_configs(
        rates in proptest::collection::vec(0u64..10_000_000, 1..100),
        num_levels in 1usize..6,
        max_exp in 1u32..8,
    ) {
        let cfg = ControllerConfig { alpha: 0.2, num_levels, max_backoff_exp: max_exp };
        let mut ctl = RateController::new(cfg);
        let mut s = Spec::new(num_levels);
        for &r in &rates {
            let want = spec_next(&mut s, r as f64, cfg.alpha, cfg.max_backoff_exp);
            prop_assert!(want < num_levels);
            prop_assert_eq!(ctl.observe(r as f64).level, want);
        }
    }
}
