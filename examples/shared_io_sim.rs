//! A miniature of the paper's Table II inside the virtualized-cloud
//! simulator: completion times for a 5 GB transfer across compression
//! levels, compressibilities and co-located TCP connections — in virtual
//! time, so the whole sweep runs in seconds.
//!
//! Run with: `cargo run --release --example shared_io_sim`

use adcomp::core::model::{RateBasedModel, StaticModel};
use adcomp::corpus::Class;
use adcomp::metrics::Table;
use adcomp::vcloud::{run_transfer, ConstantClass, SpeedModel, TransferConfig};

fn main() {
    let speed = SpeedModel::paper_fit();
    let total: u64 = 5_000_000_000;

    for flows in [0usize, 2] {
        println!(
            "== 5 GB transfer, {} concurrent TCP connection(s) from co-located VMs ==",
            flows
        );
        let mut table = Table::new(vec![
            "Compression Level",
            "HIGH [s]",
            "MODERATE [s]",
            "LOW [s]",
        ]);
        for (name, level) in
            [("NO", Some(0)), ("LIGHT", Some(1)), ("MEDIUM", Some(2)), ("HEAVY", Some(3)), ("DYNAMIC", None)]
        {
            let mut cells = vec![name.to_string()];
            for class in Class::ALL {
                let cfg = TransferConfig {
                    total_bytes: total,
                    background_flows: flows,
                    seed: 11,
                    ..TransferConfig::paper_default()
                };
                let model: Box<dyn adcomp::core::DecisionModel> = match level {
                    Some(l) => Box::new(StaticModel::new(l, 4)),
                    None => Box::new(RateBasedModel::paper_default()),
                };
                let out = run_transfer(&cfg, &speed, &mut ConstantClass(class), model);
                cells.push(format!("{:.0}", out.completion_secs));
            }
            table.row(cells);
        }
        println!("{}", table.render());
    }
    println!(
        "Shape to compare with the paper's Table II: LIGHT wins on compressible data,\n\
         NO wins on incompressible data without contention, HEAVY always loses,\n\
         DYNAMIC lands near the per-column best without being told which that is."
    );
}
