//! BASELINES — the paper's central motivation, quantified: decision models
//! from related work consume system metrics that virtual machines display
//! incorrectly; the rate-based model does not.
//!
//! * `METRIC` (Krintz & Sucu, TPDS'06): offline-trained speeds/ratios +
//!   displayed CPU idle + displayed bandwidth. Inside our simulated VMs the
//!   displayed CPU is distorted by the Fig. 1 gap and the displayed
//!   bandwidth is the NIC's nominal rate, not the contended share — so the
//!   model keeps predicting that compression cannot pay off.
//! * `QUEUE` (Jeannot et al., HPDC'02): reacts to send-queue growth. Works
//!   without metrics, but assumes higher levels compress better — wasteful
//!   on incompressible data (as the paper notes) and slow to settle.
//! * `SAMPLING` (Wiseman et al., ICDCS'04): periodic resampling of all
//!   levels with hard-coded holding periods — pays for the HEAVY sample
//!   every cycle.
//! * `DYNAMIC` (this paper): application data rate only.
//!
//! Run: `cargo run --release -p adcomp-bench --bin baseline_models [--quick]`

use adcomp_bench::{experiment_bytes, to_paper_scale};
use adcomp_core::model::{
    DecisionModel, MetricBasedModel, QueueBasedModel, RateBasedModel, SensorThresholdModel,
    StaticModel, ThresholdSamplingModel, TrainedLevel,
};
use adcomp_corpus::Class;
use adcomp_metrics::Table;
use adcomp_vcloud::{run_transfer, ConstantClass, SpeedModel, TransferConfig};

/// The metric-based model's "training phase": measured on an unloaded
/// system (exactly what its authors prescribe) — here the paper_fit profile
/// of the class it will transfer.
fn trained_levels(speed: &SpeedModel, class: Class) -> Vec<TrainedLevel> {
    (0..4)
        .map(|l| {
            let p = speed.profile(class, l);
            TrainedLevel { compress_bps: p.compress_bps, ratio: p.ratio }
        })
        .collect()
}

/// Factory producing a decision model for a given data class.
type ModelFactory = Box<dyn Fn(Class) -> Box<dyn DecisionModel>>;

fn main() {
    let total = experiment_bytes();
    let speed = SpeedModel::paper_fit();
    println!(
        "BASELINES: completion time [s, 50 GB scale] under distorted guest metrics\n\
         (displayed CPU utilization off by the Fig. 1 gap; displayed bandwidth = nominal NIC)\n"
    );
    for flows in [0usize, 2] {
        println!("-- {flows} concurrent TCP connection(s) --");
        let mut table =
            Table::new(vec!["model", "HIGH [s]", "MODERATE [s]", "LOW [s]"]);
        let make: Vec<(&str, ModelFactory)> = vec![
            ("BEST-STATIC", Box::new(|_c| Box::new(StaticModel::new(0, 4)))), // placeholder, handled below
            ("DYNAMIC (paper)", Box::new(|_c| Box::new(RateBasedModel::paper_default()))),
            ("QUEUE (HPDC'02)", Box::new(|_c| Box::new(QueueBasedModel::new(4)))),
            (
                "METRIC (TPDS'06)",
                {
                    let speed = speed.clone();
                    Box::new(move |c| Box::new(MetricBasedModel::new(trained_levels(&speed, c))))
                },
            ),
            ("SAMPLING (ICDCS'04)", Box::new(|_c| Box::new(ThresholdSamplingModel::new(4, 30)))),
            ("SENSOR (ITCC'01)", Box::new(|_c| Box::new(SensorThresholdModel::paper_scale()))),
        ];
        for (name, factory) in &make {
            let mut cells = vec![name.to_string()];
            for class in Class::ALL {
                let secs = if *name == "BEST-STATIC" {
                    // Oracle: the fastest static level for this cell.
                    (0..4)
                        .map(|l| {
                            let cfg = TransferConfig {
                                total_bytes: total,
                                background_flows: flows,
                                seed: 51,
                                ..TransferConfig::paper_default()
                            };
                            run_transfer(
                                &cfg,
                                &speed,
                                &mut ConstantClass(class),
                                Box::new(StaticModel::new(l, 4)),
                            )
                            .completion_secs
                        })
                        .fold(f64::INFINITY, f64::min)
                } else {
                    let cfg = TransferConfig {
                        total_bytes: total,
                        background_flows: flows,
                        seed: 51,
                        ..TransferConfig::paper_default()
                    };
                    run_transfer(&cfg, &speed, &mut ConstantClass(class), factory(class))
                        .completion_secs
                };
                cells.push(format!("{:.0}", to_paper_scale(secs)));
            }
            table.row(cells);
        }
        println!("{}", table.render());
    }
    println!(
        "Expected shape: DYNAMIC stays closest to BEST-STATIC across all cells.\n\
         METRIC mis-decides because the displayed metrics lie; QUEUE overshoots on\n\
         incompressible data; SAMPLING pays a recurring HEAVY-probe tax."
    );
}
