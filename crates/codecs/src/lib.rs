//! # adcomp-codecs — compression codecs and block framing
//!
//! The paper's prototype offers four compression levels, "ordered by their
//! respective time/compression ratio":
//!
//! | Level | Paper | Here |
//! |---|---|---|
//! | 0 `NO` | no compression | [`CodecId::Raw`] |
//! | 1 `LIGHT` | QuickLZ, fastest setting | [`qlz::compress_light`] |
//! | 2 `MEDIUM` | QuickLZ, better-ratio setting | [`qlz::compress_medium`] |
//! | 3 `HEAVY` | LZMA | [`heavy`] (LZ77 + adaptive range coder) |
//!
//! All codecs are implemented from scratch in this crate. Blocks (the paper
//! buffers at most 128 KiB before compressing) are wrapped in a
//! self-describing [`frame`] carrying codec id, lengths and a CRC-32, so
//! "each block contains all the information to be decompressed by the
//! receiver" — including automatic raw fallback when compression would
//! expand the data.
//!
//! Beyond the paper's ladder, the *portfolio* extension adds two more
//! families selectable per block by content probes (see
//! `adcomp-core::portfolio`):
//!
//! | Id | Name | Family |
//! |---|---|---|
//! | 4 `HUFF` | [`huff`] | LZ + fixed-Huffman bitstream (deflate-style) |
//! | 5 `COLUMNAR` | [`columnar`] | RLE / dictionary / bit-packing cascade |
//!
//! Portfolio ids live outside [`CodecId::ALL`] (the paper's ladder) but
//! inside [`CodecId::REGISTRY`] (every id this build decodes). The wire
//! format is unchanged — readers dispatch on the frame's codec byte, and
//! builds that predate an id fail with a typed
//! [`CodecError::UnknownCodec`], never a panic.

pub mod calibrate;
pub mod columnar;
pub mod crc32;
pub mod frame;
pub mod heavy;
pub mod huff;
pub mod qlz;
pub mod rangecoder;
pub mod scratch;
pub mod seek;

pub use scratch::{DecodeScratch, Scratch};

use std::fmt;

/// Errors surfaced while decoding compressed data or frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the stream was complete.
    Truncated,
    /// Structurally invalid data.
    Corrupt(&'static str),
    /// Frame CRC mismatch.
    ChecksumMismatch { expected: u32, actual: u32 },
    /// Frame names a codec this build does not know.
    UnknownCodec(u8),
    /// Frame magic bytes missing.
    BadMagic,
    /// A frame header declares a length beyond the configured cap — the
    /// decompression-bomb guard. Raised *before* any allocation.
    FrameTooLarge {
        /// Which header field tripped the guard (`"uncompressed_len"` or
        /// `"payload_len"`).
        field: &'static str,
        /// Declared length.
        len: u32,
        /// Configured cap.
        max: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed stream truncated"),
            CodecError::Corrupt(why) => write!(f, "corrupt compressed stream: {why}"),
            CodecError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: expected {expected:#010x}, got {actual:#010x}")
            }
            CodecError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::FrameTooLarge { field, len, max } => {
                write!(f, "frame {field} {len} exceeds cap {max} (decompression-bomb guard)")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Convenience alias used throughout the codec layer.
pub type Result<T> = std::result::Result<T, CodecError>;

/// Identifies the codec used for a block. Stable on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum CodecId {
    /// Stored, no compression.
    Raw = 0,
    /// Fast LZ (QuickLZ level-1 analogue).
    QlzLight = 1,
    /// Ratio-leaning LZ (QuickLZ level-2 analogue).
    QlzMedium = 2,
    /// Range-coded LZ (LZMA analogue).
    Heavy = 3,
    /// LZ + fixed-Huffman bitstream (deflate-style). Portfolio member.
    Huffman = 4,
    /// Columnar cascade: RLE / dictionary / bit-packing. Portfolio member.
    Columnar = 5,
}

impl CodecId {
    /// The paper's four-level ladder, in compression-level order. This is
    /// what [`LevelSet::paper_default`] walks; portfolio members are *not*
    /// included (they are nominated per block, not per level).
    pub const ALL: [CodecId; 4] =
        [CodecId::Raw, CodecId::QlzLight, CodecId::QlzMedium, CodecId::Heavy];

    /// Every codec id this build can decode — ladder plus portfolio.
    pub const REGISTRY: [CodecId; 6] = [
        CodecId::Raw,
        CodecId::QlzLight,
        CodecId::QlzMedium,
        CodecId::Heavy,
        CodecId::Huffman,
        CodecId::Columnar,
    ];

    pub fn from_u8(v: u8) -> Result<CodecId> {
        match v {
            0 => Ok(CodecId::Raw),
            1 => Ok(CodecId::QlzLight),
            2 => Ok(CodecId::QlzMedium),
            3 => Ok(CodecId::Heavy),
            4 => Ok(CodecId::Huffman),
            5 => Ok(CodecId::Columnar),
            other => Err(CodecError::UnknownCodec(other)),
        }
    }

    /// The paper's level name (NO / LIGHT / MEDIUM / HEAVY) or the
    /// portfolio family name.
    pub fn level_name(self) -> &'static str {
        match self {
            CodecId::Raw => "NO",
            CodecId::QlzLight => "LIGHT",
            CodecId::QlzMedium => "MEDIUM",
            CodecId::Heavy => "HEAVY",
            CodecId::Huffman => "HUFF",
            CodecId::Columnar => "COLUMNAR",
        }
    }
}

impl fmt::Display for CodecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.level_name())
    }
}

/// A block compressor/decompressor.
///
/// Implementations are stateless across blocks: every block is independently
/// decodable (the paper requires each 128 KiB block to carry everything the
/// receiver needs).
pub trait Codec: Send + Sync {
    fn id(&self) -> CodecId;

    /// Compresses `input`, appending to `out`.
    fn compress(&self, input: &[u8], out: &mut Vec<u8>);

    /// Compresses `input`, appending to `out`, reusing the working memory
    /// in `scratch` so steady-state block encoding is allocation-free.
    ///
    /// Produces output **bit-identical** to [`Codec::compress`] (a fresh
    /// scratch and a reused one parse identically; see [`Scratch`]). The
    /// default implementation ignores `scratch` for codecs without working
    /// memory.
    fn compress_with(&self, scratch: &mut Scratch, input: &[u8], out: &mut Vec<u8>) {
        let _ = scratch;
        self.compress(input, out);
    }

    /// Decompresses `input` (exactly `expected_len` output bytes), appending
    /// to `out`.
    fn decompress(&self, input: &[u8], expected_len: usize, out: &mut Vec<u8>) -> Result<()>;

    /// Decompresses `input`, appending to `out`, reusing the working memory
    /// in `scratch` so steady-state block decoding is allocation-free — the
    /// decode-side mirror of [`Codec::compress_with`].
    ///
    /// Produces output **byte-identical** to [`Codec::decompress`] and
    /// returns the same result on every input, valid or corrupt. The
    /// default implementation ignores `scratch` for codecs without decode
    /// working memory.
    fn decompress_with(
        &self,
        scratch: &mut DecodeScratch,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let _ = scratch;
        self.decompress(input, expected_len, out)
    }
}

/// Level 0: stored.
#[derive(Debug, Default, Clone, Copy)]
pub struct RawCodec;

impl Codec for RawCodec {
    fn id(&self) -> CodecId {
        CodecId::Raw
    }
    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        out.extend_from_slice(input);
    }
    fn decompress(&self, input: &[u8], expected_len: usize, out: &mut Vec<u8>) -> Result<()> {
        if input.len() != expected_len {
            return Err(CodecError::Corrupt("raw block length mismatch"));
        }
        out.extend_from_slice(input);
        Ok(())
    }
}

/// Level 1: fast LZ.
#[derive(Debug, Default, Clone, Copy)]
pub struct QlzLightCodec;

impl Codec for QlzLightCodec {
    fn id(&self) -> CodecId {
        CodecId::QlzLight
    }
    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        qlz::compress_light(input, out);
    }
    fn compress_with(&self, scratch: &mut Scratch, input: &[u8], out: &mut Vec<u8>) {
        qlz::compress_light_with(scratch, input, out);
    }
    fn decompress(&self, input: &[u8], expected_len: usize, out: &mut Vec<u8>) -> Result<()> {
        qlz::decompress(input, expected_len, out)
    }
}

/// Level 2: ratio-leaning LZ.
#[derive(Debug, Default, Clone, Copy)]
pub struct QlzMediumCodec;

impl Codec for QlzMediumCodec {
    fn id(&self) -> CodecId {
        CodecId::QlzMedium
    }
    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        qlz::compress_medium(input, out);
    }
    fn compress_with(&self, scratch: &mut Scratch, input: &[u8], out: &mut Vec<u8>) {
        qlz::compress_medium_with(scratch, input, out);
    }
    fn decompress(&self, input: &[u8], expected_len: usize, out: &mut Vec<u8>) -> Result<()> {
        qlz::decompress(input, expected_len, out)
    }
}

/// Level 3: range-coded LZ.
#[derive(Debug, Default, Clone, Copy)]
pub struct HeavyCodec;

impl Codec for HeavyCodec {
    fn id(&self) -> CodecId {
        CodecId::Heavy
    }
    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        heavy::compress(input, out);
    }
    fn compress_with(&self, scratch: &mut Scratch, input: &[u8], out: &mut Vec<u8>) {
        heavy::compress_with(scratch, input, out);
    }
    fn decompress(&self, input: &[u8], expected_len: usize, out: &mut Vec<u8>) -> Result<()> {
        heavy::decompress(input, expected_len, out)
    }
    fn decompress_with(
        &self,
        scratch: &mut DecodeScratch,
        input: &[u8],
        expected_len: usize,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        heavy::decompress_with(scratch, input, expected_len, out)
    }
}

/// Portfolio member 4: LZ + fixed-Huffman bitstream.
#[derive(Debug, Default, Clone, Copy)]
pub struct HuffCodec;

impl Codec for HuffCodec {
    fn id(&self) -> CodecId {
        CodecId::Huffman
    }
    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        huff::compress(input, out);
    }
    fn compress_with(&self, scratch: &mut Scratch, input: &[u8], out: &mut Vec<u8>) {
        huff::compress_with(scratch, input, out);
    }
    fn decompress(&self, input: &[u8], expected_len: usize, out: &mut Vec<u8>) -> Result<()> {
        huff::decompress(input, expected_len, out)
    }
}

/// Portfolio member 5: columnar RLE / dictionary / bit-packing cascade.
#[derive(Debug, Default, Clone, Copy)]
pub struct ColumnarCodec;

impl Codec for ColumnarCodec {
    fn id(&self) -> CodecId {
        CodecId::Columnar
    }
    fn compress(&self, input: &[u8], out: &mut Vec<u8>) {
        columnar::compress(input, out);
    }
    fn decompress(&self, input: &[u8], expected_len: usize, out: &mut Vec<u8>) -> Result<()> {
        columnar::decompress(input, expected_len, out)
    }
}

/// Looks up the codec implementation for an id.
pub fn codec_for(id: CodecId) -> &'static dyn Codec {
    static RAW: RawCodec = RawCodec;
    static LIGHT: QlzLightCodec = QlzLightCodec;
    static MEDIUM: QlzMediumCodec = QlzMediumCodec;
    static HEAVY: HeavyCodec = HeavyCodec;
    static HUFF: HuffCodec = HuffCodec;
    static COLUMNAR: ColumnarCodec = ColumnarCodec;
    match id {
        CodecId::Raw => &RAW,
        CodecId::QlzLight => &LIGHT,
        CodecId::QlzMedium => &MEDIUM,
        CodecId::Heavy => &HEAVY,
        CodecId::Huffman => &HUFF,
        CodecId::Columnar => &COLUMNAR,
    }
}

/// The paper's ordered set of compression levels: level index → codec.
///
/// "The individual compression levels must be ordered by their respective
/// time/compression ratio. Compression level 0 stands for no compression."
#[derive(Clone)]
pub struct LevelSet {
    levels: Vec<CodecId>,
}

impl LevelSet {
    /// The four levels of the paper's prototype.
    pub fn paper_default() -> Self {
        LevelSet { levels: CodecId::ALL.to_vec() }
    }

    /// A custom ordering; level 0 must be [`CodecId::Raw`].
    pub fn new(levels: Vec<CodecId>) -> Self {
        assert!(!levels.is_empty(), "need at least one level");
        assert_eq!(levels[0], CodecId::Raw, "level 0 must be no-compression");
        LevelSet { levels }
    }

    pub fn len(&self) -> usize {
        self.levels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Codec for a level index.
    pub fn codec(&self, level: usize) -> &'static dyn Codec {
        codec_for(self.levels[level])
    }

    pub fn id(&self, level: usize) -> CodecId {
        self.levels[level]
    }

    pub fn name(&self, level: usize) -> &'static str {
        self.levels[level].level_name()
    }

    pub fn ids(&self) -> &[CodecId] {
        &self.levels
    }
}

impl Default for LevelSet {
    fn default() -> Self {
        LevelSet::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_id_roundtrip() {
        for id in CodecId::REGISTRY {
            assert_eq!(CodecId::from_u8(id as u8).unwrap(), id);
        }
        assert!(matches!(CodecId::from_u8(9), Err(CodecError::UnknownCodec(9))));
    }

    #[test]
    fn registry_extends_ladder() {
        assert_eq!(&CodecId::REGISTRY[..4], &CodecId::ALL[..]);
        assert_eq!(CodecId::Huffman.level_name(), "HUFF");
        assert_eq!(CodecId::Columnar.level_name(), "COLUMNAR");
    }

    #[test]
    fn level_names_match_paper() {
        let ls = LevelSet::paper_default();
        assert_eq!(
            (0..ls.len()).map(|i| ls.name(i)).collect::<Vec<_>>(),
            vec!["NO", "LIGHT", "MEDIUM", "HEAVY"]
        );
    }

    #[test]
    fn raw_codec_is_identity() {
        let data = b"identity".to_vec();
        let mut c = Vec::new();
        RawCodec.compress(&data, &mut c);
        assert_eq!(c, data);
        let mut d = Vec::new();
        RawCodec.decompress(&c, data.len(), &mut d).unwrap();
        assert_eq!(d, data);
        let mut d2 = Vec::new();
        assert!(RawCodec.decompress(&c, data.len() + 1, &mut d2).is_err());
    }

    #[test]
    fn all_codecs_roundtrip_via_trait() {
        let data = b"roundtrip through the trait object interface. ".repeat(50);
        for id in CodecId::REGISTRY {
            let codec = codec_for(id);
            assert_eq!(codec.id(), id);
            let mut c = Vec::new();
            codec.compress(&data, &mut c);
            let mut d = Vec::new();
            codec.decompress(&c, data.len(), &mut d).unwrap();
            assert_eq!(d, data, "codec {id}");
        }
    }

    #[test]
    #[should_panic(expected = "level 0 must be no-compression")]
    fn custom_level_set_requires_raw_first() {
        LevelSet::new(vec![CodecId::QlzLight]);
    }

    #[test]
    fn errors_render() {
        let e = CodecError::ChecksumMismatch { expected: 1, actual: 2 };
        assert!(e.to_string().contains("checksum"));
        assert!(CodecError::BadMagic.to_string().contains("magic"));
    }
}
