//! HUFF — a deflate-style fixed-Huffman bitstream codec.
//!
//! Greedy LZ77 parse (single-probe hash table, 32 KiB window, matches of
//! 4..=258 bytes) entropy-coded with the *fixed* Huffman trees from
//! RFC 1951 §3.2.6: literal/length symbols in 7–9 bits, distance symbols
//! in 5 bits, both with the standard extra-bit ranges. There is no
//! dynamic-tree mode and no block structure beyond a single end-of-block
//! symbol — every frame is one fixed-tree block, which keeps the encoder a
//! pure streaming `BitWriter` over the caller's output span (zero heap
//! allocations in the scratch path) and the decoder a flat-table loop.
//!
//! Wire format: the LSB-first bitstream of `(litlen, extra, dist, extra)*`
//! tokens terminated by symbol 256, padded with zero bits to a byte
//! boundary. The frame layer supplies lengths and CRC; like every codec in
//! this crate the decoder is bounds-hardened and returns typed
//! [`CodecError`]s on damage, never panics.
//!
//! [`huff_reference`] is an independent bit-at-a-time canonical decoder
//! used by the differential oracle suite: identical output bytes *and*
//! identical errors on every input, valid or corrupt.

use crate::qlz::match_len;
use crate::scratch::reset_table;
use crate::{CodecError, Result, Scratch};

/// Window the matcher may reference (deflate's 32 KiB).
const WINDOW: usize = 32 * 1024;
/// Longest match a single token can encode.
const MAX_MATCH: usize = 258;
/// Shortest match worth a token under the fixed trees.
const MIN_MATCH: usize = 4;
/// Match-finder hash table: 2^15 single-probe slots.
const HASH_BITS: u32 = 15;
const TABLE_LEN: usize = 1 << HASH_BITS;

// --- fixed trees (RFC 1951 §3.2.6) -------------------------------------

/// Code length of literal/length symbol `sym` in the fixed tree.
const fn litlen_len(sym: usize) -> u8 {
    if sym <= 143 {
        8
    } else if sym <= 255 {
        9
    } else if sym <= 279 {
        7
    } else {
        8
    }
}

/// Reverses the low `len` bits of `code` (deflate packs Huffman codes
/// MSB-first into an LSB-first bitstream).
const fn rev(code: u16, len: u8) -> u16 {
    let mut r = 0u16;
    let mut i = 0;
    while i < len {
        r = (r << 1) | ((code >> i) & 1);
        i += 1;
    }
    r
}

/// Canonical codes for all 288 literal/length symbols, already
/// bit-reversed for the LSB-first writer, paired with their lengths.
const fn build_litlen() -> ([u16; 288], [u8; 288]) {
    let mut lens = [0u8; 288];
    let mut bl_count = [0u16; 10];
    let mut s = 0;
    while s < 288 {
        let l = litlen_len(s);
        lens[s] = l;
        bl_count[l as usize] += 1;
        s += 1;
    }
    let mut next_code = [0u16; 10];
    let mut code = 0u16;
    let mut bits = 1;
    while bits <= 9 {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
        bits += 1;
    }
    let mut codes = [0u16; 288];
    let mut s = 0;
    while s < 288 {
        let l = lens[s] as usize;
        codes[s] = rev(next_code[l], lens[s]);
        next_code[l] += 1;
        s += 1;
    }
    (codes, lens)
}

const LITLEN: ([u16; 288], [u8; 288]) = build_litlen();
const LITLEN_CODE: [u16; 288] = LITLEN.0;
const LITLEN_LEN: [u8; 288] = LITLEN.1;

/// Flat decode table: 9 peeked LSB-first bits → (symbol, code length).
/// The fixed litlen tree is complete, so every 9-bit pattern maps to
/// exactly one symbol.
const fn build_litlen_lut() -> ([u16; 512], [u8; 512]) {
    let mut sym_lut = [0u16; 512];
    let mut len_lut = [0u8; 512];
    let mut s = 0;
    while s < 288 {
        let l = LITLEN_LEN[s];
        let start = LITLEN_CODE[s] as usize; // already reversed
        let step = 1usize << l;
        let mut idx = start;
        while idx < 512 {
            sym_lut[idx] = s as u16;
            len_lut[idx] = l;
            idx += step;
        }
        s += 1;
    }
    (sym_lut, len_lut)
}

const LITLEN_LUT: ([u16; 512], [u8; 512]) = build_litlen_lut();

/// 5 peeked LSB-first bits → distance symbol (0..=31; 30/31 are invalid).
const fn build_dist_lut() -> [u8; 32] {
    let mut lut = [0u8; 32];
    let mut s = 0u16;
    while s < 32 {
        lut[rev(s, 5) as usize] = s as u8;
        s += 1;
    }
    lut
}

const DIST_LUT: [u8; 32] = build_dist_lut();

/// Length-code bases and extra-bit counts for symbols 257 + i.
const LEN_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115,
    131, 163, 195, 227, 258,
];
const LEN_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];

/// Match length 3..=258 → length-code index (0..=28).
const fn build_len_to_code() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut idx = 0;
    while idx < 28 {
        let lo = LEN_BASE[idx];
        let hi = LEN_BASE[idx] + (1 << LEN_EXTRA[idx]) - 1;
        let mut l = lo;
        while l <= hi && l <= 258 {
            t[(l - 3) as usize] = idx as u8;
            l += 1;
        }
        idx += 1;
    }
    t[258 - 3] = 28; // 258 has its own zero-extra code (285)
    t
}

const LEN_TO_CODE: [u8; 256] = build_len_to_code();

/// Distance-code bases and extra-bit counts for symbols 0..=29.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12,
    13, 13,
];

/// zlib-style distance→code table: `dist_to_code` consults index `d-1`
/// directly below 256 and `256 + ((d-1) >> 7)` above.
const fn build_dist_to_code() -> [u8; 512] {
    let mut t = [0u8; 512];
    let mut code = 0;
    while code < 30 {
        let lo = (DIST_BASE[code] - 1) as usize;
        let hi = lo + (1usize << DIST_EXTRA[code]) - 1;
        let mut d0 = lo;
        while d0 <= hi && d0 < 32768 {
            if d0 < 256 {
                t[d0] = code as u8;
            } else {
                t[256 + (d0 >> 7)] = code as u8;
            }
            d0 += 1;
        }
        code += 1;
    }
    t
}

const DIST_TO_CODE: [u8; 512] = build_dist_to_code();

#[inline]
fn dist_to_code(dist: usize) -> usize {
    let d0 = dist - 1;
    if d0 < 256 {
        DIST_TO_CODE[d0] as usize
    } else {
        DIST_TO_CODE[256 + (d0 >> 7)] as usize
    }
}

// --- encoder ------------------------------------------------------------

/// LSB-first bit accumulator writing straight into the caller's output
/// span — no internal buffer, so a warmed output `Vec` makes the whole
/// encode path allocation-free.
struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut Vec<u8>) -> Self {
        BitWriter { out, acc: 0, nbits: 0 }
    }

    /// Appends the low `n` bits of `bits` (n <= 32, high bits clear).
    #[inline]
    fn push(&mut self, bits: u32, n: u32) {
        self.acc |= (bits as u64) << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Flushes the final partial byte (zero-padded).
    fn finish(self) {
        if self.nbits > 0 {
            self.out.push(self.acc as u8);
        }
    }
}

#[inline]
fn hash4(bytes: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes(bytes[i..i + 4].try_into().unwrap());
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn compress_impl(table: &mut [u32], input: &[u8], out: &mut Vec<u8>) {
    debug_assert_eq!(table.len(), TABLE_LEN);
    let mut bw = BitWriter::new(out);
    let n = input.len();
    let mut i = 0usize;
    while i < n {
        let mut matched = 0usize;
        let mut dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash4(input, i);
            let cand = table[h];
            table[h] = i as u32;
            if cand != u32::MAX {
                let cand = cand as usize;
                let d = i - cand;
                if d <= WINDOW {
                    let len = match_len(input, cand, i, MAX_MATCH.min(n - i));
                    if len >= MIN_MATCH {
                        matched = len;
                        dist = d;
                    }
                }
            }
        }
        if matched == 0 {
            let sym = input[i] as usize;
            bw.push(LITLEN_CODE[sym] as u32, LITLEN_LEN[sym] as u32);
            i += 1;
            continue;
        }
        let lc = LEN_TO_CODE[matched - 3] as usize;
        let sym = 257 + lc;
        bw.push(LITLEN_CODE[sym] as u32, LITLEN_LEN[sym] as u32);
        bw.push((matched as u32) - LEN_BASE[lc] as u32, LEN_EXTRA[lc] as u32);
        let dc = dist_to_code(dist);
        bw.push(rev(dc as u16, 5) as u32, 5);
        bw.push((dist as u32) - DIST_BASE[dc] as u32, DIST_EXTRA[dc] as u32);
        // Seed the table part-way into the match so the next block of
        // similar content still finds it; skipping every interior position
        // keeps the encoder O(n).
        if matched > 2 && i + matched + MIN_MATCH <= n {
            let mid = i + matched / 2;
            table[hash4(input, mid)] = mid as u32;
        }
        i += matched;
    }
    let eob = 256usize;
    bw.push(LITLEN_CODE[eob] as u32, LITLEN_LEN[eob] as u32);
    bw.finish();
}

/// Compresses `input`, appending the HUFF bitstream to `out`.
pub fn compress(input: &[u8], out: &mut Vec<u8>) {
    let mut table = vec![u32::MAX; TABLE_LEN];
    compress_impl(&mut table, input, out);
}

/// Scratch-reusing twin of [`compress`]; bit-identical output (the hash
/// table is reset to the fresh state before the parse).
pub fn compress_with(scratch: &mut Scratch, input: &[u8], out: &mut Vec<u8>) {
    reset_table(&mut scratch.huff_table, TABLE_LEN);
    compress_impl(&mut scratch.huff_table, input, out);
}

// --- optimized decoder --------------------------------------------------

/// LSB-first bit reader over the input slice with a 64-bit accumulator.
struct BitReader<'a> {
    input: &'a [u8],
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(input: &'a [u8]) -> Self {
        BitReader { input, pos: 0, acc: 0, nbits: 0 }
    }

    #[inline]
    fn refill(&mut self) {
        while self.nbits <= 56 && self.pos < self.input.len() {
            self.acc |= (self.input[self.pos] as u64) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Takes exactly `n` bits; [`CodecError::Truncated`] when fewer remain.
    #[inline]
    fn take(&mut self, n: u32) -> Result<u32> {
        self.refill();
        if self.nbits < n {
            return Err(CodecError::Truncated);
        }
        let v = (self.acc & ((1u64 << n) - 1)) as u32;
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Decodes one literal/length symbol via the flat 9-bit table.
    #[inline]
    fn litlen(&mut self) -> Result<usize> {
        self.refill();
        let idx = (self.acc & 0x1FF) as usize;
        let l = LITLEN_LUT.1[idx] as u32;
        if self.nbits < l {
            return Err(CodecError::Truncated);
        }
        self.acc >>= l;
        self.nbits -= l;
        Ok(LITLEN_LUT.0[idx] as usize)
    }
}

/// Decompresses a HUFF bitstream (exactly `expected_len` output bytes),
/// appending to `out`. Bounds-hardened: damage yields a typed error with
/// whatever prefix was decoded left in `out`, matching
/// [`huff_reference`]'s behaviour byte for byte.
pub fn decompress(input: &[u8], expected_len: usize, out: &mut Vec<u8>) -> Result<()> {
    let start = out.len();
    let mut br = BitReader::new(input);
    loop {
        let sym = br.litlen()?;
        if sym < 256 {
            if out.len() - start >= expected_len {
                return Err(CodecError::Corrupt("output overruns expected length"));
            }
            out.push(sym as u8);
            continue;
        }
        if sym == 256 {
            if out.len() - start != expected_len {
                return Err(CodecError::Corrupt("block ended before expected length"));
            }
            return Ok(());
        }
        if sym > 285 {
            return Err(CodecError::Corrupt("invalid length symbol"));
        }
        let lc = sym - 257;
        let len = LEN_BASE[lc] as usize + br.take(LEN_EXTRA[lc] as u32)? as usize;
        let dsym = DIST_LUT[br.take(5)? as usize] as usize;
        if dsym > 29 {
            return Err(CodecError::Corrupt("invalid distance symbol"));
        }
        let dist = DIST_BASE[dsym] as usize + br.take(DIST_EXTRA[dsym] as u32)? as usize;
        let produced = out.len() - start;
        if dist > produced {
            return Err(CodecError::Corrupt("match offset out of range"));
        }
        if produced + len > expected_len {
            return Err(CodecError::Corrupt("match overruns expected length"));
        }
        copy_match(out, dist, len);
    }
}

/// Appends `len` bytes copied from `dist` back — byte-at-a-time only when
/// the regions overlap, chunked otherwise.
#[inline]
fn copy_match(out: &mut Vec<u8>, dist: usize, len: usize) {
    let from = out.len() - dist;
    if dist >= len {
        out.extend_from_within(from..from + len);
        return;
    }
    // Overlapping (run-like) copy: doubling via extend_from_within keeps
    // the byte semantics of the naive loop.
    let mut remaining = len;
    let mut avail = dist;
    while remaining > 0 {
        let take = avail.min(remaining);
        out.extend_from_within(from..from + take);
        remaining -= take;
        avail += take;
    }
}

// --- reference decoder (differential oracle) ----------------------------

/// Naive bit-at-a-time canonical decoder: walks the fixed tree by code
/// ranges, copies matches byte by byte. Shares no decode tables with
/// [`decompress`]; the differential suite pins them to identical output
/// *and* identical errors on every input.
pub fn huff_reference(input: &[u8], expected_len: usize, out: &mut Vec<u8>) -> Result<()> {
    let start = out.len();
    let mut bitpos = 0usize; // absolute bit index into input
    let total_bits = input.len() * 8;
    let mut read_bit = |bitpos: &mut usize| -> Result<u32> {
        if *bitpos >= total_bits {
            return Err(CodecError::Truncated);
        }
        let b = (input[*bitpos / 8] >> (*bitpos % 8)) & 1;
        *bitpos += 1;
        Ok(b as u32)
    };
    let read_extra = |bitpos: &mut usize, n: u32, rb: &mut dyn FnMut(&mut usize) -> Result<u32>| -> Result<u32> {
        let mut v = 0u32;
        for i in 0..n {
            v |= rb(bitpos)? << i;
        }
        Ok(v)
    };
    loop {
        // Canonical walk: accumulate MSB-first code bits until a range of
        // the fixed tree matches.
        let mut code = 0u32;
        let mut len = 0u8;
        let sym: usize = loop {
            code = (code << 1) | read_bit(&mut bitpos)?;
            len += 1;
            match (len, code) {
                (7, c) if c < 24 => break 256 + c as usize,
                (8, c) if (0x30..=0xBF).contains(&c) => break c as usize - 0x30,
                (8, c) if (0xC0..=0xC7).contains(&c) => break 280 + (c as usize - 0xC0),
                (9, c) if (0x190..=0x1FF).contains(&c) => break 144 + (c as usize - 0x190),
                (9, _) => unreachable!("the fixed litlen tree is complete"),
                _ => {}
            }
        };
        if sym < 256 {
            if out.len() - start >= expected_len {
                return Err(CodecError::Corrupt("output overruns expected length"));
            }
            out.push(sym as u8);
            continue;
        }
        if sym == 256 {
            if out.len() - start != expected_len {
                return Err(CodecError::Corrupt("block ended before expected length"));
            }
            return Ok(());
        }
        if sym > 285 {
            return Err(CodecError::Corrupt("invalid length symbol"));
        }
        let lc = sym - 257;
        let len =
            LEN_BASE[lc] as usize + read_extra(&mut bitpos, LEN_EXTRA[lc] as u32, &mut read_bit)? as usize;
        let mut dcode = 0u32;
        for _ in 0..5 {
            dcode = (dcode << 1) | read_bit(&mut bitpos)?;
        }
        let dsym = dcode as usize;
        if dsym > 29 {
            return Err(CodecError::Corrupt("invalid distance symbol"));
        }
        let dist = DIST_BASE[dsym] as usize
            + read_extra(&mut bitpos, DIST_EXTRA[dsym] as u32, &mut read_bit)? as usize;
        let produced = out.len() - start;
        if dist > produced {
            return Err(CodecError::Corrupt("match offset out of range"));
        }
        if produced + len > expected_len {
            return Err(CodecError::Corrupt("match overruns expected length"));
        }
        for _ in 0..len {
            let b = out[out.len() - dist];
            out.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let mut wire = Vec::new();
        compress(data, &mut wire);
        let mut out = Vec::new();
        decompress(&wire, data.len(), &mut out).unwrap();
        assert_eq!(out, data);
        let mut slow = Vec::new();
        huff_reference(&wire, data.len(), &mut slow).unwrap();
        assert_eq!(slow, data);
    }

    #[test]
    fn fixed_tree_matches_rfc1951() {
        // Spot-check the canonical assignment against the RFC table
        // (codes below are MSB-first; ours are stored reversed).
        assert_eq!(LITLEN_LEN[0], 8);
        assert_eq!(rev(LITLEN_CODE[0], 8), 0b0011_0000);
        assert_eq!(LITLEN_LEN[144], 9);
        assert_eq!(rev(LITLEN_CODE[144], 9), 0b1_1001_0000);
        assert_eq!(LITLEN_LEN[256], 7);
        assert_eq!(rev(LITLEN_CODE[256], 7), 0);
        assert_eq!(LITLEN_LEN[280], 8);
        assert_eq!(rev(LITLEN_CODE[280], 8), 0b1100_0000);
    }

    #[test]
    fn roundtrips_shapes() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"hello hello hello hello hello hello");
        roundtrip(&vec![0u8; 5000]);
        roundtrip(&(0..=255u8).cycle().take(10_000).collect::<Vec<_>>());
        let text = b"the quick brown fox jumps over the lazy dog. ".repeat(200);
        roundtrip(&text);
    }

    #[test]
    fn compresses_text() {
        let text = b"adaptive compression mitigates shared I/O interference. ".repeat(500);
        let mut wire = Vec::new();
        compress(&text, &mut wire);
        assert!(wire.len() < text.len() / 2, "{} of {}", wire.len(), text.len());
    }

    #[test]
    fn scratch_output_is_bit_identical() {
        let data = b"scratch reuse determinism check, repeated a bit. ".repeat(300);
        let mut fresh = Vec::new();
        compress(&data, &mut fresh);
        let mut scratch = Scratch::new();
        for _ in 0..3 {
            let mut reused = Vec::new();
            compress_with(&mut scratch, &data, &mut reused);
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    fn truncation_and_damage_yield_typed_errors() {
        let data = b"truncate me truncate me truncate me".repeat(30);
        let mut wire = Vec::new();
        compress(&data, &mut wire);
        for keep in 0..wire.len() {
            let mut out = Vec::new();
            assert!(decompress(&wire[..keep], data.len(), &mut out).is_err(), "cut {keep}");
        }
        let mut out = Vec::new();
        assert_eq!(decompress(&[], 4, &mut out), Err(CodecError::Truncated));
        // Lone EOB with a nonzero expected length: typed corrupt.
        let mut out = Vec::new();
        assert_eq!(
            decompress(&[0x00], 4, &mut out),
            Err(CodecError::Corrupt("block ended before expected length"))
        );
    }

    #[test]
    fn match_distance_cannot_escape_output() {
        // Hand-build: EOB-only stream declaring length 0 decodes cleanly.
        let mut out = Vec::new();
        decompress(&[0x00], 0, &mut out).unwrap();
        assert!(out.is_empty());
    }
}
