//! # adcomp-core — rate-based adaptive compression (the paper's contribution)
//!
//! This crate implements the decision model of *"Evaluating Adaptive
//! Compression to Mitigate the Effects of Shared I/O in Clouds"* (IPDPS'11)
//! and the transparent stream layer around it:
//!
//! * [`controller`] — Algorithm 1: the rate-based controller with
//!   exponential backoff. No training phase, no CPU/bandwidth metrics; only
//!   the application data rate.
//! * [`model`] — the [`DecisionModel`] abstraction,
//!   the paper's model ([`model::RateBasedModel`]) and reimplementations of
//!   the related-work baselines (static, FIFO-queue, metric-based with
//!   offline training, threshold sampling).
//! * [`epoch`] — clock abstraction and the per-`t`-seconds decision loop.
//! * [`stream`] — [`AdaptiveWriter`] /
//!   [`AdaptiveReader`]: drop-in `Write`/`Read`
//!   wrappers that make the whole scheme transparent to the application,
//!   as in the paper's Nephele integration.
//! * [`pipeline`] — the bounded worker pools ([`CompressPool`],
//!   [`DecodePool`]) that parallelize the pure per-block codec work while
//!   keeping the wire stream byte-identical to the serial path.
//! * [`seek`] — [`IndexedReader`]: O(block) random access over seekable
//!   streams (written with [`AdaptiveWriter::set_seekable`]), with ranged
//!   reads fanned across the decode pool and a streaming fallback when the
//!   index is missing or lies.
//!
//! ## Quick start
//!
//! ```
//! use adcomp_core::prelude::*;
//! use std::io::{Read, Write};
//!
//! let levels = LevelSet::paper_default();
//! let model = Box::new(RateBasedModel::paper_default());
//! let mut writer = AdaptiveWriter::new(Vec::new(), levels, model);
//! writer.write_all(b"hello adaptive world, hello again!").unwrap();
//! let (wire, stats) = writer.finish().unwrap();
//! assert_eq!(stats.app_bytes, 34);
//!
//! let mut out = Vec::new();
//! AdaptiveReader::new(&wire[..]).read_to_end(&mut out).unwrap();
//! assert_eq!(&out[..], b"hello adaptive world, hello again!" as &[u8]);
//! ```

pub mod controller;
pub mod duplex;
pub mod epoch;
pub mod model;
pub mod pipeline;
pub mod portfolio;
pub mod retry;
pub mod seek;
pub mod stream;
pub mod throttle;

pub use controller::{ControllerConfig, Decision, DecisionCase, RateController};
pub use epoch::{Clock, EpochContext, EpochDriver, ManualClock, WallClock};
pub use retry::{Backoff, IdleTimer};
pub use throttle::{SharedThrottle, ThrottledReader, ThrottledWriter, TokenBucket};
pub use model::{
    DecisionModel, EntropyGuidedModel, EpochObservation, GuestMetrics, MetricBasedModel, QueueBasedModel,
    RateBasedModel, SensorThresholdModel, StaticModel, ThresholdSamplingModel, TrainedLevel,
};
pub use duplex::{over_tcp, CompressedDuplex};
pub use pipeline::{Completion, CompressPool, Decoded, DecodePool};
pub use seek::IndexedReader;
pub use stream::{AdaptiveReader, AdaptiveWriter, StreamStats};

/// Common imports for downstream users.
pub mod prelude {
    pub use crate::controller::{ControllerConfig, RateController};
    pub use crate::epoch::{Clock, ManualClock, WallClock};
    pub use crate::model::{DecisionModel, RateBasedModel, StaticModel};
    pub use crate::stream::{AdaptiveReader, AdaptiveWriter, StreamStats};
    pub use adcomp_codecs::{CodecId, LevelSet};
}
