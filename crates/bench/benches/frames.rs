//! Criterion micro-benchmarks: block-frame encode/decode overhead (header,
//! CRC-32, raw fallback) on the paper's 128 KiB block size, plus the
//! tracing layer's overhead guard (`frame_trace`): a [`FrameWriter`] with
//! the statically-disabled `NullSink` and one with a runtime-disabled
//! `TraceHandle` must run at the untraced hot path's speed (<1% apart).

use adcomp_codecs::frame::{decode_block, encode_block, FrameWriter, DEFAULT_BLOCK_LEN};
use adcomp_codecs::{codec_for, CodecId};
use adcomp_corpus::{generate, Class};
use adcomp_trace::{NullSink, TraceHandle};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_frame_raw_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame");
    group.throughput(Throughput::Bytes(DEFAULT_BLOCK_LEN as u64));
    let codec = codec_for(CodecId::Raw);
    let data = generate(Class::Moderate, DEFAULT_BLOCK_LEN, 42);
    group.bench_function("encode_raw_block", |b| {
        let mut out = Vec::with_capacity(DEFAULT_BLOCK_LEN + 64);
        b.iter(|| {
            out.clear();
            encode_block(codec, &data, &mut out);
            out.len()
        });
    });
    let mut wire = Vec::new();
    encode_block(codec, &data, &mut wire);
    group.bench_function("decode_raw_block", |b| {
        let mut out = Vec::with_capacity(DEFAULT_BLOCK_LEN);
        b.iter(|| {
            out.clear();
            decode_block(&wire, &mut out).unwrap().1
        });
    });
    group.finish();
}

fn bench_fallback_path(c: &mut Criterion) {
    // Incompressible block: the codec runs, expands, and the frame layer
    // falls back to raw — the worst-case overhead on LOW data.
    let mut group = c.benchmark_group("frame_fallback");
    group.throughput(Throughput::Bytes(DEFAULT_BLOCK_LEN as u64));
    let data = generate(Class::Low, DEFAULT_BLOCK_LEN, 42);
    for id in [CodecId::QlzLight, CodecId::QlzMedium] {
        group.bench_with_input(BenchmarkId::from_parameter(id.level_name()), &data, |b, data| {
            let codec = codec_for(id);
            let mut out = Vec::with_capacity(DEFAULT_BLOCK_LEN * 2);
            b.iter(|| {
                out.clear();
                let info = encode_block(codec, data, &mut out);
                assert!(info.raw_fallback || info.codec != CodecId::Raw);
                out.len()
            });
        });
    }
    group.finish();
}

fn bench_trace_overhead(c: &mut Criterion) {
    // The zero-cost-when-disabled guard: writing blocks through a
    // `FrameWriter` must cost the same whether the sink is the
    // statically-disabled `NullSink` (trace branches are dead code) or a
    // runtime-disabled `TraceHandle` (one predictable branch per block).
    // Compare the two `frame_trace` rows — they should sit within noise of
    // each other (<1%).
    let mut group = c.benchmark_group("frame_trace");
    group.throughput(Throughput::Bytes(DEFAULT_BLOCK_LEN as u64));
    let data = generate(Class::High, DEFAULT_BLOCK_LEN, 42);
    let codec = codec_for(CodecId::QlzLight);
    group.bench_with_input(BenchmarkId::from_parameter("null_sink"), &data, |b, data| {
        let mut w = FrameWriter::with_sink(std::io::sink(), NullSink);
        b.iter(|| w.write_block(codec, data).unwrap().frame_len);
    });
    group.bench_with_input(BenchmarkId::from_parameter("disabled_handle"), &data, |b, data| {
        let mut w = FrameWriter::with_sink(std::io::sink(), TraceHandle::disabled());
        b.iter(|| w.write_block(codec, data).unwrap().frame_len);
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_frame_raw_path, bench_fallback_path, bench_trace_overhead
}
criterion_main!(benches);
