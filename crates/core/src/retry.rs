//! Retry backoff schedules and idle timers — the timer math of the
//! network client and daemon, kept as pure functions of a clock reading so
//! every property is testable without sleeping.
//!
//! [`Backoff`] answers "how long before attempt *n*": exponential growth
//! from a base delay, hard-capped, with optional deterministic seeded
//! jitter (multiplicative in `[0.5, 1.0]`, so the cap still holds).
//! [`IdleTimer`] answers "has this connection gone quiet": it fires when
//! no activity was recorded for `idle_secs`, under any [`crate::Clock`].

/// An exponential backoff schedule with a hard cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay before the first retry (seconds).
    pub base_secs: f64,
    /// Multiplier between consecutive retries (≥ 1).
    pub factor: f64,
    /// Hard ceiling on any single delay (seconds).
    pub cap_secs: f64,
    /// Attempts allowed before giving up (0 = never retry).
    pub max_retries: u32,
    /// Seed for deterministic jitter; `None` = no jitter.
    pub jitter_seed: Option<u64>,
}

impl Backoff {
    /// A schedule `base * factor^n`, capped at `cap`, without jitter.
    pub fn new(base_secs: f64, factor: f64, cap_secs: f64, max_retries: u32) -> Self {
        assert!(base_secs >= 0.0 && cap_secs >= 0.0, "delays must be non-negative");
        assert!(factor >= 1.0, "backoff factor must be >= 1");
        Backoff { base_secs, factor, cap_secs, max_retries, jitter_seed: None }
    }

    /// The client default: 50 ms base, doubling, 2 s cap, 6 retries.
    pub fn client_default() -> Self {
        Backoff::new(0.05, 2.0, 2.0, 6)
    }

    /// Enables deterministic jitter derived from `seed`.
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = Some(seed);
        self
    }

    /// Whether attempt `attempt` (0-based) is still within budget.
    pub fn allows(&self, attempt: u32) -> bool {
        attempt < self.max_retries
    }

    /// The un-jittered delay before retry `attempt` (0-based): monotone
    /// non-decreasing in `attempt` and never above `cap_secs`.
    pub fn raw_delay_secs(&self, attempt: u32) -> f64 {
        // factor >= 1 can overflow f64 range for huge attempts; powi
        // saturates to +inf, and min() brings it back under the cap.
        let d = self.base_secs * self.factor.powi(attempt.min(1024) as i32);
        d.min(self.cap_secs)
    }

    /// The delay before retry `attempt`, jittered when a seed is set.
    /// Jitter is multiplicative in `[0.5, 1.0]` — a pure function of
    /// `(seed, attempt)` — so the jittered delay never exceeds the raw
    /// (capped) one and never drops below half of it.
    pub fn delay_secs(&self, attempt: u32) -> f64 {
        let raw = self.raw_delay_secs(attempt);
        match self.jitter_seed {
            None => raw,
            Some(seed) => raw * (0.5 + 0.5 * unit(seed, attempt)),
        }
    }
}

/// Splitmix64-derived uniform in `[0, 1)`, pure in `(seed, n)`.
fn unit(seed: u64, n: u32) -> f64 {
    let mut z = seed ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Fires when no activity was recorded for `idle_secs`. Clock-agnostic:
/// callers feed it readings from any [`crate::Clock`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleTimer {
    idle_secs: f64,
    last_activity: f64,
}

impl IdleTimer {
    /// A timer armed at clock reading `now`.
    pub fn new(idle_secs: f64, now: f64) -> Self {
        assert!(idle_secs > 0.0, "idle timeout must be positive");
        IdleTimer { idle_secs, last_activity: now }
    }

    /// Records activity at `now`, re-arming the timer.
    pub fn touch(&mut self, now: f64) {
        // Clamp against time going backwards so a stale reading can only
        // delay firing, never cause a spurious early fire.
        if now > self.last_activity {
            self.last_activity = now;
        }
    }

    /// True once `idle_secs` have elapsed since the last activity.
    pub fn expired(&self, now: f64) -> bool {
        now - self.last_activity >= self.idle_secs
    }

    /// Seconds until the timer would fire absent further activity
    /// (0 once expired) — the poll deadline for a select-style loop.
    pub fn remaining_secs(&self, now: f64) -> f64 {
        (self.last_activity + self.idle_secs - now).max(0.0)
    }

    /// The configured idle window.
    pub fn idle_secs(&self) -> f64 {
        self.idle_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn raw_schedule_doubles_then_caps() {
        let b = Backoff::new(0.1, 2.0, 1.0, 8);
        assert!((b.raw_delay_secs(0) - 0.1).abs() < 1e-12);
        assert!((b.raw_delay_secs(1) - 0.2).abs() < 1e-12);
        assert!((b.raw_delay_secs(2) - 0.4).abs() < 1e-12);
        assert!((b.raw_delay_secs(3) - 0.8).abs() < 1e-12);
        assert_eq!(b.raw_delay_secs(4), 1.0);
        assert_eq!(b.raw_delay_secs(30), 1.0);
    }

    #[test]
    fn allows_counts_retries() {
        let b = Backoff::new(0.1, 2.0, 1.0, 3);
        assert!(b.allows(0) && b.allows(2));
        assert!(!b.allows(3));
        assert!(!Backoff::new(0.1, 2.0, 1.0, 0).allows(0));
    }

    #[test]
    fn jitter_is_deterministic() {
        let b = Backoff::client_default().with_jitter(42);
        for attempt in 0..10 {
            assert_eq!(b.delay_secs(attempt), b.delay_secs(attempt));
        }
        let other = Backoff::client_default().with_jitter(43);
        assert_ne!(
            (0..10).map(|a| b.delay_secs(a)).collect::<Vec<_>>(),
            (0..10).map(|a| other.delay_secs(a)).collect::<Vec<_>>(),
        );
    }

    proptest! {
        #[test]
        fn raw_delays_monotone_and_capped(
            base in 0.0f64..10.0,
            factor in 1.0f64..4.0,
            cap in 0.0f64..60.0,
            attempts in 1u32..64,
        ) {
            let b = Backoff::new(base, factor, cap, attempts);
            let mut prev = 0.0f64;
            for a in 0..attempts {
                let d = b.raw_delay_secs(a);
                prop_assert!(d >= prev - 1e-12, "attempt {a}: {d} < {prev}");
                prop_assert!(d <= cap + 1e-12, "attempt {a}: {d} above cap {cap}");
                prop_assert!(d.is_finite());
                prev = d;
            }
        }

        #[test]
        fn jittered_delays_stay_bounded(
            base in 0.001f64..5.0,
            cap in 0.001f64..30.0,
            seed in any::<u64>(),
            attempt in 0u32..64,
        ) {
            let b = Backoff::new(base, 2.0, cap, 64).with_jitter(seed);
            let raw = b.raw_delay_secs(attempt);
            let d = b.delay_secs(attempt);
            prop_assert!(d <= raw + 1e-12, "jitter raised the delay: {d} > {raw}");
            prop_assert!(d >= raw * 0.5 - 1e-12, "jitter below half: {d} < {}", raw * 0.5);
        }

        #[test]
        fn idle_timer_never_fires_early(
            idle in 0.001f64..100.0,
            touches in proptest::collection::vec(0.0f64..50.0, 1..20),
        ) {
            // Feed a monotone activity trace through a virtual clock; the
            // timer must not be expired strictly before last + idle, and
            // must be expired at last + idle.
            let mut times = touches.clone();
            times.sort_by(f64::total_cmp);
            let mut t = IdleTimer::new(idle, 0.0);
            for &now in &times {
                t.touch(now);
            }
            let last = *times.last().unwrap();
            prop_assert!(!t.expired(last + idle * 0.5));
            // `(last + idle) - last` can round to just under `idle`, so the
            // exact boundary is not float-representable; assert one ulp-safe
            // margin past it instead.
            prop_assert!(t.expired(last + idle + 1e-9));
            prop_assert!(t.expired(last + idle * 2.0));
            prop_assert_eq!(t.remaining_secs(last + idle), 0.0);
            let rem = t.remaining_secs(last);
            prop_assert!((rem - idle).abs() < 1e-9, "remaining {rem} != idle {idle}");
        }

        #[test]
        fn idle_timer_ignores_backwards_time(
            idle in 0.001f64..10.0,
            now in 0.0f64..100.0,
        ) {
            let mut t = IdleTimer::new(idle, now);
            // A stale (earlier) reading must not rewind the arm point.
            t.touch(now - 5.0);
            prop_assert!(!t.expired(now + idle * 0.999));
            prop_assert!(t.expired(now + idle + 1e-9));
        }
    }
}
