//! Minimal, dependency-free benchmarking shim exposing the subset of the
//! `criterion` API this workspace uses. Vendored so the workspace builds in
//! fully offline environments.
//!
//! Measurement model: each benchmark is auto-calibrated (iteration count
//! doubled until a round takes ≥ ~25 ms), then `sample_size`-capped rounds
//! are timed and the **median** ns/iter is reported, plus MB/s when a
//! [`Throughput`] is configured.
//!
//! Set `ADCOMP_BENCH_JSON=/path/file.json` to also append one JSON object
//! per benchmark (`{"name":…,"ns_per_iter":…,"mbps":…}`) — used by the
//! repo's `BENCH_*.json` baselines.

use std::time::{Duration, Instant};

/// Opaque measurement hint for per-iteration throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifies a benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function_id}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Re-export-compatible `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, discarding return values through
    /// `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone)]
struct Config {
    sample_size: usize,
    /// Total measurement budget per benchmark.
    measure: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config { sample_size: 20, measure: Duration::from_millis(300) }
    }
}

/// Top-level benchmark driver (criterion-compatible subset).
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { config: Config::default() }
    }
}

impl Criterion {
    /// Caps the number of timed rounds per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measure = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&self.config, name, None, f);
        self
    }
}

/// A named group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.config.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(&self.criterion.config, &full, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(&self.criterion.config, &full, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(config: &Config, name: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibrate: double the iteration count until one round costs ≥ 25 ms
    // (or we hit a safety cap for extremely slow bodies).
    let round_target = Duration::from_millis(25);
    let mut iters = 1u64;
    let mut bench = Bencher { iters, elapsed: Duration::ZERO };
    loop {
        bench.iters = iters;
        f(&mut bench);
        if bench.elapsed >= round_target || iters >= 1 << 24 {
            break;
        }
        // Jump straight toward the target once we have a measurement.
        let scale = if bench.elapsed.as_nanos() == 0 {
            8
        } else {
            (round_target.as_nanos() / bench.elapsed.as_nanos().max(1)).clamp(2, 8) as u64
        };
        iters = iters.saturating_mul(scale);
    }

    // Measure: up to `sample_size` rounds within the time budget; median.
    let mut samples_ns: Vec<f64> = Vec::with_capacity(config.sample_size);
    samples_ns.push(bench.elapsed.as_nanos() as f64 / bench.iters as f64);
    let deadline = Instant::now() + config.measure;
    while samples_ns.len() < config.sample_size && Instant::now() < deadline {
        f(&mut bench);
        samples_ns.push(bench.elapsed.as_nanos() as f64 / bench.iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples_ns[samples_ns.len() / 2];

    let mbps = match throughput {
        Some(Throughput::Bytes(n)) => {
            let secs = median / 1e9;
            Some(n as f64 / secs.max(1e-12) / 1e6)
        }
        _ => None,
    };

    match mbps {
        Some(m) => println!("bench  {name:<44} {median:>14.1} ns/iter  {m:>10.1} MB/s"),
        None => println!("bench  {name:<44} {median:>14.1} ns/iter"),
    }

    if let Ok(path) = std::env::var("ADCOMP_BENCH_JSON") {
        if !path.is_empty() {
            use std::io::Write;
            let line = match mbps {
                Some(m) => format!(
                    "{{\"name\":\"{name}\",\"ns_per_iter\":{median:.1},\"mbps\":{m:.2}}}\n"
                ),
                None => format!("{{\"name\":\"{name}\",\"ns_per_iter\":{median:.1}}}\n"),
            };
            if let Ok(mut fh) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
                let _ = fh.write_all(line.as_bytes());
            }
        }
    }
}

/// Defines a benchmark group function (both criterion macro forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(30));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| {
            let v: Vec<u64> = (0..256).collect();
            b.iter(|| v.iter().sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("len", "case"), &[1u8, 2, 3][..], |b, s| {
            b.iter(|| s.len())
        });
        group.finish();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
