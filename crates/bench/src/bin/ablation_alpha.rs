//! ABLATION — sensitivity to the dead-band parameter α.
//!
//! The paper (§III-A): "Small values of α allow our algorithm to detect the
//! best compression level even if the performance gains [...] are rather
//! small. However, they also make the decision algorithm more prone to
//! incorrect decisions [...]. During our experiments we found 0.2 to be a
//! reasonable value." This sweep quantifies that trade-off on two
//! scenarios: clearly separated levels (HIGH, no contention) and nearly
//! indistinguishable levels under fluctuation (LOW, two connections).
//!
//! Cells run in parallel on the deterministic experiment runner
//! (`ADCOMP_THREADS` pins the worker count; output is bit-identical for any
//! setting — see `adcomp_bench::runner`).
//!
//! Run: `cargo run --release -p adcomp-bench --bin ablation_alpha [--quick]`

use adcomp_bench::{experiment_bytes, runner, speed_model, to_paper_scale};
use adcomp_core::controller::ControllerConfig;
use adcomp_core::model::RateBasedModel;
use adcomp_corpus::Class;
use adcomp_metrics::Table;
use adcomp_vcloud::{run_transfer, ConstantClass, TransferConfig};

const ALPHAS: [f64; 4] = [0.05, 0.10, 0.20, 0.40];
const SCENARIOS: [(Class, usize); 2] = [(Class::High, 0), (Class::Low, 2)];

fn main() {
    let total = experiment_bytes();
    let speed = speed_model();
    println!("ABLATION α: completion time [s, 50 GB scale] and level switches\n");
    // 4 α values × 2 scenarios fan out at once; every cell's seed is fixed
    // in its TransferConfig, so the grid is independent of scheduling.
    let cells = runner::run_cells(ALPHAS.len() * SCENARIOS.len(), |idx| {
        let (ai, si) = (idx / SCENARIOS.len(), idx % SCENARIOS.len());
        let (class, flows) = SCENARIOS[si];
        let cfg = TransferConfig {
            total_bytes: total,
            background_flows: flows,
            seed: 21,
            ..TransferConfig::paper_default()
        };
        let model = RateBasedModel::new(ControllerConfig { alpha: ALPHAS[ai], ..Default::default() });
        let out = run_transfer(&cfg, &speed, &mut ConstantClass(class), Box::new(model));
        (to_paper_scale(out.completion_secs), out.level_trace.len().saturating_sub(1))
    });
    let mut table = Table::new(vec![
        "alpha",
        "HIGH/0conn time",
        "HIGH/0conn switches",
        "LOW/2conn time",
        "LOW/2conn switches",
    ]);
    for (ai, alpha) in ALPHAS.iter().enumerate() {
        let mut row = vec![format!("{alpha:.2}")];
        for si in 0..SCENARIOS.len() {
            let (secs, switches) = cells[ai * SCENARIOS.len() + si];
            row.push(format!("{secs:.0}"));
            row.push(format!("{switches}"));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: very small α over-reacts to fluctuations (more switches on\n\
         LOW/2conn); very large α tolerates bad levels longer. α = 0.2 balances both,\n\
         matching the paper's choice."
    );
}
