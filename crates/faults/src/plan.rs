//! Seeded, schedule-driven fault plans.
//!
//! A [`FaultSpec`] is a declarative `(seed, rates)` description of how
//! hostile a link is; a [`FaultPlan`] turns it into a deterministic stream
//! of per-frame [`FaultAction`]s and per-operation transient decisions.
//! Two plans built from equal specs make identical decisions on every
//! platform (the PRNG is the workspace's fixed xoshiro256++), which is what
//! lets the chaos soak assert byte-identical summaries for a fixed seed.

use adcomp_corpus::Prng;

/// Declarative description of an injected fault workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Master seed. Sub-streams (frame faults vs transient errors) are
    /// derived from it, so one seed pins the whole schedule.
    pub seed: u64,
    /// Probability that a frame gets a single bit flip.
    pub flip_rate: f64,
    /// Probability that a frame is dropped entirely.
    pub drop_rate: f64,
    /// Probability that a frame is cut mid-way (stream truncation /
    /// mid-frame cut; everything after the cut in that frame is lost).
    pub cut_rate: f64,
    /// Probability that a read/write operation first fails with a
    /// transient (`WouldBlock`-style) error.
    pub transient_rate: f64,
    /// Maximum consecutive transient failures per operation (a stalled
    /// link eventually yields; keeps retry loops bounded by construction).
    pub max_transient_burst: u32,
}

impl FaultSpec {
    /// The ISSUE's `(seed, rate)` form: one knob split across the fault
    /// taxonomy — mostly bit flips, some drops and cuts, plus transient
    /// errors at the same order of magnitude.
    pub fn from_rate(seed: u64, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        FaultSpec {
            seed,
            flip_rate: rate * 0.5,
            drop_rate: rate * 0.25,
            cut_rate: rate * 0.25,
            transient_rate: rate,
            max_transient_burst: 3,
        }
    }

    /// No faults at all (adapters become transparent pass-throughs).
    pub fn quiet(seed: u64) -> Self {
        FaultSpec {
            seed,
            flip_rate: 0.0,
            drop_rate: 0.0,
            cut_rate: 0.0,
            transient_rate: 0.0,
            max_transient_burst: 0,
        }
    }
}

/// What happens to one frame on its way through a faulty adapter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Delivered untouched.
    Pass,
    /// One bit flipped at this byte/bit position (modulo frame length).
    FlipBit { byte: u64, bit: u8 },
    /// Frame silently discarded.
    Drop,
    /// Frame cut: only `keep_permille`/1000 of its bytes are delivered.
    Cut { keep_permille: u16 },
}

/// Deterministic decision stream for one adapter.
///
/// Frame decisions and transient decisions come from independent PRNG
/// sub-streams so that, e.g., adding reads does not perturb the frame
/// fault schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    frames: Prng,
    transients: Prng,
}

impl FaultPlan {
    pub fn new(spec: FaultSpec) -> Self {
        // Derive independent sub-seeds; xor constants keep the streams
        // distinct even for seed 0.
        FaultPlan {
            spec,
            frames: Prng::new(spec.seed ^ 0xF0A7_11E5_0000_0001),
            transients: Prng::new(spec.seed ^ 0xF0A7_11E5_0000_0002),
        }
    }

    /// The spec this plan was built from.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// Decides the fate of the next frame of `frame_len` bytes.
    pub fn next_frame_action(&mut self, frame_len: usize) -> FaultAction {
        // One uniform draw partitioned by the rates: the decision sequence
        // is a pure function of (seed, call index), independent of
        // frame_len except for the flip position.
        let u = self.frames.next_f64();
        let s = self.spec;
        if u < s.flip_rate {
            let byte = self.frames.next_u64();
            let bit = (self.frames.next_u32() % 8) as u8;
            if frame_len == 0 {
                return FaultAction::Pass;
            }
            FaultAction::FlipBit { byte, bit }
        } else if u < s.flip_rate + s.drop_rate {
            // Burn the draws a flip would have used so downstream decisions
            // do not depend on which branch was taken.
            let _ = self.frames.next_u64();
            let _ = self.frames.next_u32();
            FaultAction::Drop
        } else if u < s.flip_rate + s.drop_rate + s.cut_rate {
            let keep = (self.frames.next_u64() % 1000) as u16;
            let _ = self.frames.next_u32();
            FaultAction::Cut { keep_permille: keep }
        } else {
            let _ = self.frames.next_u64();
            let _ = self.frames.next_u32();
            FaultAction::Pass
        }
    }

    /// How many transient failures the next operation suffers before
    /// succeeding (0 = clean).
    pub fn next_transient_burst(&mut self) -> u32 {
        if self.spec.transient_rate <= 0.0 || self.spec.max_transient_burst == 0 {
            // Still burn a draw for schedule stability across specs.
            let _ = self.transients.next_f64();
            return 0;
        }
        if self.transients.next_f64() < self.spec.transient_rate {
            1 + (self.transients.next_u32() % self.spec.max_transient_burst)
        } else {
            0
        }
    }
}

/// Counters an injecting adapter keeps about what it actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectStats {
    pub frames: u64,
    pub flips: u64,
    pub drops: u64,
    pub cuts: u64,
    pub transients: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_schedules() {
        let spec = FaultSpec::from_rate(42, 0.1);
        let mut a = FaultPlan::new(spec);
        let mut b = FaultPlan::new(spec);
        for len in [16usize, 1000, 77, 131072, 5] {
            assert_eq!(a.next_frame_action(len), b.next_frame_action(len));
            assert_eq!(a.next_transient_burst(), b.next_transient_burst());
        }
    }

    #[test]
    fn quiet_spec_always_passes() {
        let mut p = FaultPlan::new(FaultSpec::quiet(7));
        for _ in 0..100 {
            assert_eq!(p.next_frame_action(64), FaultAction::Pass);
            assert_eq!(p.next_transient_burst(), 0);
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let mut p = FaultPlan::new(FaultSpec::from_rate(1, 0.2));
        let mut faults = 0;
        const N: usize = 5000;
        for _ in 0..N {
            if p.next_frame_action(1024) != FaultAction::Pass {
                faults += 1;
            }
        }
        let frac = faults as f64 / N as f64;
        assert!((0.15..0.25).contains(&frac), "fault fraction {frac}");
    }

    #[test]
    fn frame_decisions_do_not_consume_transient_stream() {
        let spec = FaultSpec::from_rate(9, 0.3);
        let mut a = FaultPlan::new(spec);
        let mut b = FaultPlan::new(spec);
        // a interleaves frame decisions; b does not. Transient stream must
        // be unaffected.
        for _ in 0..10 {
            let _ = a.next_frame_action(100);
        }
        for _ in 0..20 {
            assert_eq!(a.next_transient_burst(), b.next_transient_burst());
        }
    }
}
