//! Criterion benchmark of the virtual-time simulator itself: simulated
//! gigabytes per host-second. Documents that a full Table II sweep (sixty
//! 50 GB runs) is minutes of host time, which is what makes the
//! reproduction practical.

use adcomp_core::model::{RateBasedModel, StaticModel};
use adcomp_corpus::Class;
use adcomp_vcloud::{run_transfer, ConstantClass, SpeedModel, TransferConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const SIM_BYTES: u64 = 1_000_000_000;

fn bench_pipeline(c: &mut Criterion) {
    let speed = SpeedModel::paper_fit();
    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Bytes(SIM_BYTES));
    group.bench_function("static_light_1GB", |b| {
        b.iter(|| {
            let cfg = TransferConfig {
                total_bytes: SIM_BYTES,
                deterministic: true,
                cpu_jitter: 0.0,
                ..TransferConfig::paper_default()
            };
            run_transfer(
                &cfg,
                &speed,
                &mut ConstantClass(Class::High),
                Box::new(StaticModel::new(1, 4)),
            )
            .completion_secs
        });
    });
    group.bench_function("dynamic_contended_1GB", |b| {
        b.iter(|| {
            let cfg = TransferConfig {
                total_bytes: SIM_BYTES,
                background_flows: 2,
                seed: 9,
                ..TransferConfig::paper_default()
            };
            run_transfer(
                &cfg,
                &speed,
                &mut ConstantClass(Class::Moderate),
                Box::new(RateBasedModel::paper_default()),
            )
            .completion_secs
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
