//! Binary range coder with adaptive 11-bit probabilities, following the
//! classic LZMA construction. This is the entropy-coding backend of the
//! HEAVY compression level.

/// Number of probability bits (probabilities live in `0..2048`).
pub const PROB_BITS: u32 = 11;
/// Initial probability = 0.5.
pub const PROB_INIT: u16 = (1 << PROB_BITS) / 2;
/// Adaptation shift: higher = slower adaptation.
const MOVE_BITS: u32 = 5;
const TOP: u32 = 1 << 24;

/// Encoder half of the range coder. Produces a byte stream whose first byte
/// is always zero (an artifact of the carry-cache construction).
///
/// Appends directly into a borrowed output buffer so callers (the HEAVY
/// codec hot path) pay no intermediate allocation or copy.
pub struct RangeEncoder<'a> {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: &'a mut Vec<u8>,
}

impl<'a> RangeEncoder<'a> {
    /// Creates an encoder appending to `out` (existing contents are kept).
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        RangeEncoder { low: 0, range: u32::MAX, cache: 0, cache_size: 1, out }
    }

    /// Encodes one bit under the adaptive probability `prob`.
    #[inline]
    pub fn encode_bit(&mut self, prob: &mut u16, bit: u32) {
        let bound = (self.range >> PROB_BITS) * (*prob as u32);
        if bit == 0 {
            self.range = bound;
            *prob += ((1 << PROB_BITS) - *prob) >> MOVE_BITS;
        } else {
            self.low += bound as u64;
            self.range -= bound;
            *prob -= *prob >> MOVE_BITS;
        }
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    /// Encodes `nbits` of `value` (MSB first) at fixed probability 0.5.
    pub fn encode_direct(&mut self, value: u32, nbits: u32) {
        for i in (0..nbits).rev() {
            self.range >>= 1;
            if (value >> i) & 1 != 0 {
                self.low += self.range as u64;
            }
            while self.range < TOP {
                self.shift_low();
                self.range <<= 8;
            }
        }
    }

    /// Encodes a symbol through a bit tree of `nbits` levels.
    pub fn encode_tree(&mut self, probs: &mut [u16], nbits: u32, symbol: u32) {
        debug_assert!(probs.len() >= 1 << nbits);
        let mut m = 1usize;
        for i in (0..nbits).rev() {
            let bit = (symbol >> i) & 1;
            self.encode_bit(&mut probs[m], bit);
            m = (m << 1) | bit as usize;
        }
    }

    fn shift_low(&mut self) {
        if self.low < 0xFF00_0000 || self.low > 0xFFFF_FFFF {
            let carry = (self.low >> 32) as u8;
            self.out.push(self.cache.wrapping_add(carry));
            for _ in 1..self.cache_size {
                self.out.push(0xFFu8.wrapping_add(carry));
            }
            self.cache = (self.low >> 24) as u8;
            self.cache_size = 0;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    /// Flushes remaining state into the output buffer.
    pub fn finish(mut self) {
        for _ in 0..5 {
            self.shift_low();
        }
    }
}

/// Decoder half. Reads the stream produced by [`RangeEncoder`]; reads past
/// the end of the input yield zero bytes (frame-level CRC catches genuine
/// corruption).
pub struct RangeDecoder<'a> {
    input: &'a [u8],
    pos: usize,
    range: u32,
    code: u32,
}

impl<'a> RangeDecoder<'a> {
    pub fn new(input: &'a [u8]) -> Self {
        let mut d = RangeDecoder { input, pos: 0, range: u32::MAX, code: 0 };
        // First byte is the encoder's zero pad; the next four seed the code.
        d.pos = 1;
        for _ in 0..4 {
            d.code = (d.code << 8) | d.next_byte() as u32;
        }
        d
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// True if the decoder has consumed (or run past) the entire input.
    pub fn exhausted(&self) -> bool {
        self.pos >= self.input.len()
    }

    #[inline]
    pub fn decode_bit(&mut self, prob: &mut u16) -> u32 {
        let bound = (self.range >> PROB_BITS) * (*prob as u32);
        let bit;
        if self.code < bound {
            self.range = bound;
            *prob += ((1 << PROB_BITS) - *prob) >> MOVE_BITS;
            bit = 0;
        } else {
            self.code -= bound;
            self.range -= bound;
            *prob -= *prob >> MOVE_BITS;
            bit = 1;
        }
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | self.next_byte() as u32;
        }
        bit
    }

    pub fn decode_direct(&mut self, nbits: u32) -> u32 {
        let mut result = 0u32;
        for _ in 0..nbits {
            self.range >>= 1;
            self.code = self.code.wrapping_sub(self.range);
            let t = 0u32.wrapping_sub(self.code >> 31);
            self.code = self.code.wrapping_add(self.range & t);
            result = (result << 1).wrapping_add(t.wrapping_add(1));
            while self.range < TOP {
                self.range <<= 8;
                self.code = (self.code << 8) | self.next_byte() as u32;
            }
        }
        result
    }

    pub fn decode_tree(&mut self, probs: &mut [u16], nbits: u32) -> u32 {
        debug_assert!(probs.len() >= 1 << nbits);
        let mut m = 1usize;
        for _ in 0..nbits {
            let bit = self.decode_bit(&mut probs[m]);
            m = (m << 1) | bit as usize;
        }
        m as u32 - (1 << nbits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip_adaptive() {
        let bits: Vec<u32> = (0..4000).map(|i| ((i * 7) % 13 < 4) as u32).collect();
        let mut data = Vec::new();
        let mut enc = RangeEncoder::new(&mut data);
        let mut p = PROB_INIT;
        for &b in &bits {
            enc.encode_bit(&mut p, b);
        }
        enc.finish();
        let mut dec = RangeDecoder::new(&data);
        let mut p = PROB_INIT;
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut p), b);
        }
    }

    #[test]
    fn skewed_bits_compress_well() {
        // 4000 zeros with adaptive probability should shrink far below
        // 4000/8 = 500 bytes.
        let mut data = Vec::new();
        let mut enc = RangeEncoder::new(&mut data);
        let mut p = PROB_INIT;
        for _ in 0..4000 {
            enc.encode_bit(&mut p, 0);
        }
        enc.finish();
        assert!(data.len() < 60, "got {}", data.len());
    }

    #[test]
    fn direct_bits_roundtrip() {
        let values = [(0u32, 1u32), (1, 1), (5, 3), (0xFFFF, 16), (0x12345, 20), (0, 24)];
        let mut data = Vec::new();
        let mut enc = RangeEncoder::new(&mut data);
        for &(v, n) in &values {
            enc.encode_direct(v, n);
        }
        enc.finish();
        let mut dec = RangeDecoder::new(&data);
        for &(v, n) in &values {
            assert_eq!(dec.decode_direct(n), v);
        }
    }

    #[test]
    fn tree_roundtrip() {
        let symbols: Vec<u32> = (0..500).map(|i| (i * 37) % 256).collect();
        let mut data = Vec::new();
        let mut enc = RangeEncoder::new(&mut data);
        let mut probs = vec![PROB_INIT; 256];
        for &s in &symbols {
            enc.encode_tree(&mut probs, 8, s);
        }
        enc.finish();
        let mut dec = RangeDecoder::new(&data);
        let mut probs = vec![PROB_INIT; 256];
        for &s in &symbols {
            assert_eq!(dec.decode_tree(&mut probs, 8), s);
        }
    }

    #[test]
    fn mixed_stream_roundtrip() {
        let mut data = Vec::new();
        let mut enc = RangeEncoder::new(&mut data);
        let mut p1 = PROB_INIT;
        let mut tree = vec![PROB_INIT; 32];
        for i in 0..300u32 {
            enc.encode_bit(&mut p1, i & 1);
            enc.encode_direct(i % 64, 6);
            enc.encode_tree(&mut tree, 5, i % 32);
        }
        enc.finish();
        let mut dec = RangeDecoder::new(&data);
        let mut p1 = PROB_INIT;
        let mut tree = vec![PROB_INIT; 32];
        for i in 0..300u32 {
            assert_eq!(dec.decode_bit(&mut p1), i & 1);
            assert_eq!(dec.decode_direct(6), i % 64);
            assert_eq!(dec.decode_tree(&mut tree, 5), i % 32);
        }
    }
}
