//! `/proc/stat` sampling — the paper's instrumentation, verbatim.
//!
//! "In order to monitor the CPU utilization inside the virtual machines we
//! continuously queried the Linux system interface /proc/stat at an
//! interval of one second." This module parses the aggregate CPU line into
//! the same components the paper plots (USR, SYS, HIRQ, SIRQ, STEAL) and
//! turns two snapshots into a utilization breakdown.
//!
//! On non-Linux systems (or sandboxes without `/proc`) the probes report
//! `None`; callers fall back to the simulator.

use adcomp_vcloud::CpuBreakdown;

/// Raw jiffy counters from one `/proc/stat` cpu line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpuTicks {
    pub user: u64,
    pub nice: u64,
    pub system: u64,
    pub idle: u64,
    pub iowait: u64,
    pub irq: u64,
    pub softirq: u64,
    pub steal: u64,
    pub guest: u64,
    pub guest_nice: u64,
}

impl CpuTicks {
    /// All accounted jiffies.
    pub fn total(&self) -> u64 {
        self.user
            + self.nice
            + self.system
            + self.idle
            + self.iowait
            + self.irq
            + self.softirq
            + self.steal
    }

    /// Busy (non-idle, non-iowait) jiffies.
    pub fn busy(&self) -> u64 {
        self.total() - self.idle - self.iowait
    }
}

/// Parses the aggregate `cpu ` line of a `/proc/stat` image.
pub fn parse_proc_stat(content: &str) -> Option<CpuTicks> {
    let line = content.lines().find(|l| l.starts_with("cpu "))?;
    let mut fields = line.split_whitespace().skip(1).map(|f| f.parse::<u64>().ok());
    let mut next = || fields.next().flatten().unwrap_or(0);
    Some(CpuTicks {
        user: next(),
        nice: next(),
        system: next(),
        idle: next(),
        iowait: next(),
        irq: next(),
        softirq: next(),
        steal: next(),
        guest: next(),
        guest_nice: next(),
    })
}

/// Reads the current counters from the live `/proc/stat`, if available.
pub fn read_cpu_ticks() -> Option<CpuTicks> {
    let content = std::fs::read_to_string("/proc/stat").ok()?;
    parse_proc_stat(&content)
}

/// Converts a pair of snapshots into a percentage breakdown over the
/// interval, split the way the paper's Figure 1 splits its bars.
/// Returns `None` when no time passed between the snapshots.
pub fn breakdown_between(before: &CpuTicks, after: &CpuTicks) -> Option<CpuBreakdown> {
    let dt = after.total().checked_sub(before.total())?;
    if dt == 0 {
        return None;
    }
    let pct = |a: u64, b: u64| 100.0 * a.saturating_sub(b) as f64 / dt as f64;
    Some(CpuBreakdown {
        usr: pct(after.user + after.nice, before.user + before.nice),
        sys: pct(after.system, before.system),
        hirq: pct(after.irq, before.irq),
        sirq: pct(after.softirq, before.softirq),
        steal: pct(after.steal, before.steal),
    })
}

/// Samples the displayed CPU utilization while `work` runs, one sample per
/// `interval`; returns per-interval breakdowns (the paper averages ≥ 120 of
/// these). Returns an empty vector when `/proc/stat` is unavailable.
pub fn sample_during<F: FnOnce()>(
    work: F,
    interval: std::time::Duration,
    max_samples: usize,
) -> Vec<CpuBreakdown> {
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stop2 = stop.clone();
    let sampler = std::thread::spawn(move || {
        let mut samples = Vec::new();
        let mut prev = match read_cpu_ticks() {
            Some(t) => t,
            None => return samples,
        };
        while !stop2.load(std::sync::atomic::Ordering::Acquire) && samples.len() < max_samples {
            std::thread::sleep(interval);
            let Some(cur) = read_cpu_ticks() else { break };
            if let Some(b) = breakdown_between(&prev, &cur) {
                samples.push(b);
            }
            prev = cur;
        }
        samples
    });
    work();
    stop.store(true, std::sync::atomic::Ordering::Release);
    sampler.join().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "cpu  58527 3 15131 479428 2926 10 58 1557 0 0\n\
                          cpu0 58527 0 15131 479428 2926 0 58 1557 0 0\n\
                          intr 1144352 0 0\n";

    #[test]
    fn parses_aggregate_line() {
        let t = parse_proc_stat(SAMPLE).unwrap();
        assert_eq!(t.user, 58527);
        assert_eq!(t.nice, 3);
        assert_eq!(t.system, 15131);
        assert_eq!(t.idle, 479428);
        assert_eq!(t.iowait, 2926);
        assert_eq!(t.irq, 10);
        assert_eq!(t.softirq, 58);
        assert_eq!(t.steal, 1557);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_proc_stat("").is_none());
        assert!(parse_proc_stat("cpu0 1 2 3").is_none());
        // Short lines parse with zero-filled tail.
        let t = parse_proc_stat("cpu 5 0 3 100\n").unwrap();
        assert_eq!(t.user, 5);
        assert_eq!(t.steal, 0);
    }

    #[test]
    fn breakdown_percentages_sum_to_busy_share() {
        let before = CpuTicks { user: 100, system: 50, idle: 800, ..Default::default() };
        let after = CpuTicks {
            user: 150,   // +50
            system: 80,  // +30
            idle: 900,   // +100
            irq: 10,     // +10
            softirq: 10, // +10
            ..Default::default()
        };
        let b = breakdown_between(&before, &after).unwrap();
        // dt = 200 jiffies; usr 25 %, sys 15 %, hirq 5 %, sirq 5 %.
        assert!((b.usr - 25.0).abs() < 1e-9);
        assert!((b.sys - 15.0).abs() < 1e-9);
        assert!((b.hirq - 5.0).abs() < 1e-9);
        assert!((b.sirq - 5.0).abs() < 1e-9);
        assert!((b.total() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn identical_snapshots_yield_none() {
        let t = CpuTicks { user: 1, idle: 2, ..Default::default() };
        assert!(breakdown_between(&t, &t).is_none());
    }

    #[test]
    fn counter_regression_yields_none_not_panic() {
        let before = CpuTicks { user: 100, idle: 100, ..Default::default() };
        let after = CpuTicks { user: 50, idle: 50, ..Default::default() };
        assert!(breakdown_between(&before, &after).is_none());
    }

    #[test]
    fn live_proc_stat_readable_on_linux() {
        // This repository targets Linux CI; if /proc exists, parsing must
        // succeed and counters must be monotone.
        if std::path::Path::new("/proc/stat").exists() {
            let a = read_cpu_ticks().expect("parse live /proc/stat");
            std::thread::sleep(std::time::Duration::from_millis(30));
            let b = read_cpu_ticks().unwrap();
            assert!(b.total() >= a.total());
        }
    }

    #[test]
    fn sample_during_collects_breakdowns() {
        if !std::path::Path::new("/proc/stat").exists() {
            return;
        }
        let samples = sample_during(
            || {
                // Busy-spin ~80 ms so at least some CPU time accrues.
                let t0 = std::time::Instant::now();
                let mut x = 1u64;
                while t0.elapsed().as_millis() < 80 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                }
                std::hint::black_box(x);
            },
            std::time::Duration::from_millis(20),
            50,
        );
        // At least one interval should have elapsed and parsed.
        assert!(!samples.is_empty());
        for s in &samples {
            assert!(s.total() >= 0.0);
        }
    }
}
