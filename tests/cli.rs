//! End-to-end tests of the `adcomp` command-line tool, driving the real
//! binary through files and pipes.

use std::io::Write;
use std::process::{Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_adcomp")
}


/// Writes `data` to the child's stdin from a thread (avoids the classic
/// pipe deadlock when the child's stdout fills while stdin is still being
/// written) and returns the child's collected output.
fn feed_and_collect(mut child: std::process::Child, data: Vec<u8>) -> std::process::Output {
    let mut stdin = child.stdin.take().unwrap();
    let writer = std::thread::spawn(move || {
        let _ = stdin.write_all(&data);
    });
    let out = child.wait_with_output().unwrap();
    writer.join().unwrap();
    out
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("adcomp-cli-{}-{name}", std::process::id()))
}

#[test]
fn compress_decompress_file_roundtrip() {
    let input = tmp("in.bin");
    let packed = tmp("packed.adc");
    let output = tmp("out.bin");
    let data = adcomp::corpus::generate(adcomp::corpus::Class::Moderate, 3_000_000, 5);
    std::fs::write(&input, &data).unwrap();

    let status = Command::new(bin())
        .args(["compress", "-l", "MEDIUM"])
        .arg(&input)
        .arg(&packed)
        .status()
        .unwrap();
    assert!(status.success());
    let packed_len = std::fs::metadata(&packed).unwrap().len();
    assert!(packed_len < data.len() as u64 / 2, "packed {packed_len}");

    let status = Command::new(bin()).arg("decompress").arg(&packed).arg(&output).status().unwrap();
    assert!(status.success());
    assert_eq!(std::fs::read(&output).unwrap(), data);

    for p in [&input, &packed, &output] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn stdin_stdout_pipeline_roundtrip() {
    let data = adcomp::corpus::generate(adcomp::corpus::Class::High, 1_000_000, 9);
    let compress = Command::new(bin())
        .args(["compress", "-l", "LIGHT", "-b", "64"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let packed = feed_and_collect(compress, data.clone());
    assert!(packed.status.success());
    assert!(packed.stdout.len() < data.len() / 4);

    let decompress = Command::new(bin())
        .arg("decompress")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let out = feed_and_collect(decompress, packed.stdout);
    assert!(out.status.success());
    assert_eq!(out.stdout, data);
}

#[test]
fn adaptive_mode_roundtrips() {
    let data = adcomp::corpus::generate(adcomp::corpus::Class::Low, 2_000_000, 3);
    let compress = Command::new(bin())
        .args(["compress", "-t", "0.05"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let packed = feed_and_collect(compress, data.clone());
    assert!(packed.status.success());
    // Incompressible input: raw fallback caps expansion near 1.0.
    assert!(packed.stdout.len() < data.len() + data.len() / 100 + 64);

    let decompress = Command::new(bin())
        .arg("d")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let out = feed_and_collect(decompress, packed.stdout);
    assert_eq!(out.stdout, data);
}

#[test]
fn probe_reports_entropy_and_ratios() {
    let input = tmp("probe.bin");
    std::fs::write(&input, adcomp::corpus::generate(adcomp::corpus::Class::High, 500_000, 1))
        .unwrap();
    let out = Command::new(bin()).arg("probe").arg(&input).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("shannon"), "{text}");
    assert!(text.contains("LIGHT"), "{text}");
    assert!(text.contains("HEAVY"), "{text}");
    let _ = std::fs::remove_file(&input);
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = Command::new(bin()).arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let out = Command::new(bin()).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn corrupted_stream_fails_cleanly() {
    let data = adcomp::corpus::generate(adcomp::corpus::Class::Moderate, 500_000, 2);
    let compress = Command::new(bin())
        .args(["compress", "-l", "LIGHT"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut packed = feed_and_collect(compress, data).stdout;
    let mid = packed.len() / 2;
    packed[mid] ^= 0xFF;

    let decompress = Command::new(bin())
        .arg("decompress")
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let out = feed_and_collect(decompress, packed);
    assert!(!out.status.success(), "corrupted stream must not decode successfully");
}
