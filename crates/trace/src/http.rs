//! Minimal hand-rolled HTTP/1.0 server and client for the `/metrics`
//! endpoint — `std::net` only, compat-shim house style (the build runs
//! fully offline, so no hyper/tiny-http).
//!
//! The server is deliberately tiny: one accept thread, one request per
//! connection, `GET /metrics` answered from a render callback, everything
//! else 404/405. That is exactly what a Prometheus scraper (or
//! `adcomp top --url`) needs and nothing more; the multi-tenant daemon of
//! ROADMAP item 1 can grow from here.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-connection read cap and timeout: a scrape request is a few hundred
/// bytes; anything bigger or slower is cut off.
const MAX_REQUEST: usize = 8 * 1024;
const IO_TIMEOUT: Duration = Duration::from_secs(5);
/// Overall budget for reading one request head. Because requests are
/// served inline on the accept thread, this is the longest a slow-loris
/// client (one byte every few seconds, so a per-read timeout never fires)
/// can hold the endpoint before being cut off with 408.
const REQUEST_DEADLINE: Duration = Duration::from_secs(2);

/// A running `/metrics` endpoint. Dropping (or [`MetricsServer::shutdown`])
/// stops the accept loop and joins the thread.
pub struct MetricsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks a free port)
    /// and serves `render()` at `GET /metrics` until shut down.
    pub fn start<F>(addr: &str, render: F) -> std::io::Result<MetricsServer>
    where
        F: Fn() -> String + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new().name("adcomp-metrics-http".into()).spawn(
            move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Serve inline: scrapes are rare and short, and a
                    // single-threaded loop cannot be connection-bombed
                    // into unbounded threads.
                    let _ = serve_one(stream, &render);
                }
            },
        )?;
        Ok(MetricsServer { local_addr, stop, thread: Some(thread) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_one<F: Fn() -> String>(mut stream: TcpStream, render: &F) -> std::io::Result<()> {
    let start = Instant::now();
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the blank line ending the request head — within a fixed
    // overall deadline, not a per-read timeout. A per-read timeout resets
    // on every byte, so one byte every few seconds would hold the accept
    // thread forever (slow-loris); the deadline shrinks with each read.
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() >= MAX_REQUEST {
            return respond(&mut stream, "400 Bad Request", "request too large\n");
        }
        let Some(remaining) = REQUEST_DEADLINE.checked_sub(start.elapsed()) else {
            return respond(&mut stream, "408 Request Timeout", "request head too slow\n");
        };
        stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return respond(&mut stream, "408 Request Timeout", "request head too slow\n");
            }
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    match (method, path.split('?').next().unwrap_or("")) {
        ("GET", "/metrics") => {
            let body = render();
            let header = format!(
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                body.len()
            );
            stream.write_all(header.as_bytes())?;
            stream.write_all(body.as_bytes())
        }
        ("GET", _) => respond(&mut stream, "404 Not Found", "only /metrics is served\n"),
        _ => respond(&mut stream, "405 Method Not Allowed", "GET only\n"),
    }
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())
}

/// Hand-rolled HTTP GET: fetches `path` from `addr` and returns the body.
/// Non-200 statuses come back as `io::Error` with the status line.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<String> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad address"))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let req = format!("GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let response = String::from_utf8_lossy(&response).into_owned();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let status = head.lines().next().unwrap_or("");
    if !status.contains(" 200 ") {
        return Err(std::io::Error::other(format!("HTTP error: {status}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_metrics_and_404s_everything_else() {
        let server =
            MetricsServer::start("127.0.0.1:0", || "adcomp_up 1\n".to_string()).unwrap();
        let addr = server.local_addr().to_string();
        let body = http_get(&addr, "/metrics", Duration::from_secs(5)).unwrap();
        assert_eq!(body, "adcomp_up 1\n");
        // Repeated scrapes work (one connection each).
        let body = http_get(&addr, "/metrics", Duration::from_secs(5)).unwrap();
        assert_eq!(body, "adcomp_up 1\n");
        let err = http_get(&addr, "/other", Duration::from_secs(5)).unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");
        server.shutdown();
    }

    #[test]
    fn stalled_client_cannot_wedge_the_endpoint() {
        let server =
            MetricsServer::start("127.0.0.1:0", || "adcomp_up 1\n".to_string()).unwrap();
        let addr = server.local_addr();
        // Slow-loris: open the connection, send a fragment of a request
        // head, then go silent. Served inline, this used to hold the
        // accept thread until the per-read timeout — which a drip-feed
        // can reset forever.
        let mut loris = TcpStream::connect(addr).unwrap();
        loris.write_all(b"GET /met").unwrap();
        // A well-behaved scrape queued behind the loris must still be
        // answered once the request deadline cuts the loris off.
        let start = Instant::now();
        let body =
            http_get(&addr.to_string(), "/metrics", REQUEST_DEADLINE * 5).unwrap();
        assert_eq!(body, "adcomp_up 1\n");
        assert!(
            start.elapsed() < REQUEST_DEADLINE * 4,
            "scrape took {:?}; the stalled client wedged the endpoint",
            start.elapsed()
        );
        // The loris itself got a 408 (or a plain close), never a hang.
        loris.set_read_timeout(Some(REQUEST_DEADLINE * 5)).unwrap();
        let mut resp = String::new();
        let _ = loris.read_to_string(&mut resp);
        assert!(
            resp.is_empty() || resp.contains("408"),
            "unexpected loris response: {resp:?}"
        );
        server.shutdown();
    }

    #[test]
    fn oversized_request_head_is_cut_off() {
        let server =
            MetricsServer::start("127.0.0.1:0", || "adcomp_up 1\n".to_string()).unwrap();
        let mut sock = TcpStream::connect(server.local_addr()).unwrap();
        // Never send the terminating blank line; the bounded buffer must
        // end the request long before heap exhaustion.
        let junk = vec![b'x'; MAX_REQUEST + 1024];
        let _ = sock.write_all(&junk);
        sock.set_read_timeout(Some(IO_TIMEOUT)).unwrap();
        let mut resp = String::new();
        let _ = sock.read_to_string(&mut resp);
        assert!(resp.contains("400"), "unexpected response: {resp:?}");
        server.shutdown();
    }

    #[test]
    fn render_callback_sees_live_state() {
        use std::sync::atomic::AtomicU64;
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let server = MetricsServer::start("127.0.0.1:0", move || {
            format!("adcomp_scrapes {}\n", n2.load(Ordering::Relaxed))
        })
        .unwrap();
        let addr = server.local_addr().to_string();
        assert_eq!(http_get(&addr, "/metrics", IO_TIMEOUT).unwrap(), "adcomp_scrapes 0\n");
        n.store(7, Ordering::Relaxed);
        assert_eq!(http_get(&addr, "/metrics", IO_TIMEOUT).unwrap(), "adcomp_scrapes 7\n");
    }
}
