//! Decision models: the paper's rate-based scheme plus reimplementations of
//! the related-work schemes it argues against.
//!
//! All models see the same [`EpochObservation`] each epoch and return the
//! compression level for the next epoch. Only the rate-based model restricts
//! itself to the application data rate; the baselines consume queue state or
//! (possibly distorted) guest metrics, which is exactly what makes them
//! fragile in virtualized environments (paper §II).

use crate::controller::{ControllerConfig, Decision, DecisionCase, RateController};
use adcomp_trace::MAX_LEVELS;

/// Guest-visible system metrics, as a VM's `/proc` would display them.
/// In a cloud these can be wildly inaccurate — that is the paper's point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuestMetrics {
    /// Displayed idle CPU fraction in `[0, 1]`.
    pub cpu_idle_frac: f64,
    /// Displayed available network bandwidth estimate, bytes/second.
    pub net_bandwidth: f64,
}

/// Everything a decision model may look at for one epoch.
#[derive(Debug, Clone, Copy)]
pub struct EpochObservation {
    /// Application data rate over the epoch (bytes/second) — the paper's
    /// `cdr`, the only field the rate-based model reads.
    pub app_rate: f64,
    /// Epoch length in seconds.
    pub epoch_secs: f64,
    /// Blocks waiting in the send queue at epoch end.
    pub queue_depth: usize,
    /// Send queue capacity in blocks.
    pub queue_capacity: usize,
    /// Displayed guest metrics, if the platform exposes them.
    pub guest: Option<GuestMetrics>,
    /// Measured wire/app ratio of blocks compressed this epoch, if any.
    pub observed_ratio: Option<f64>,
    /// Order-0 entropy (bits/byte) of a recent data sample, if the channel
    /// probes it. Cheap to compute and — unlike the application data rate at
    /// level 0 — it *does* reveal compressibility changes.
    pub data_entropy: Option<f64>,
}

impl EpochObservation {
    /// A minimal observation carrying only the application data rate.
    pub fn rate_only(app_rate: f64, epoch_secs: f64) -> Self {
        EpochObservation {
            app_rate,
            epoch_secs,
            queue_depth: 0,
            queue_capacity: 0,
            guest: None,
            observed_ratio: None,
            data_entropy: None,
        }
    }
}

/// A fully-detailed model decision: the level plus everything the trace
/// layer wants to know about *why*. Models that are not rate-based leave
/// the optional fields `None`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[must_use = "dropping a ModelDecision loses the decision detail the trace layer needs"]
pub struct ModelDecision {
    /// Level to apply for the next epoch.
    pub level: usize,
    /// Algorithm-1 branch, for rate-based models.
    pub case: Option<DecisionCase>,
    /// The rate the decision consumed (`cdr`).
    pub cdr: f64,
    /// The previous rate it compared against, if the model keeps one.
    pub pdr: Option<f64>,
    /// Snapshot of the per-level backoff exponent table, if the model
    /// keeps one (first `num_levels` entries are meaningful).
    pub backoffs: Option<[u32; MAX_LEVELS]>,
}

impl ModelDecision {
    /// A detail-free decision (for models without Algorithm-1 state).
    pub fn bare(level: usize, cdr: f64) -> Self {
        ModelDecision { level, case: None, cdr, pdr: None, backoffs: None }
    }

    /// Builds the detailed decision from a [`RateController`] outcome.
    fn from_controller(d: Decision, ctl: &RateController) -> Self {
        let mut backoffs = [0u32; MAX_LEVELS];
        for (slot, &b) in backoffs.iter_mut().zip(ctl.backoffs()) {
            *slot = b;
        }
        ModelDecision {
            level: d.level,
            case: Some(d.case),
            cdr: d.cdr,
            pdr: d.pdr,
            backoffs: Some(backoffs),
        }
    }
}

/// A compression-level decision policy, evaluated once per epoch.
pub trait DecisionModel: Send {
    /// Short identifier used in tables (e.g. `DYNAMIC`, `NO`, `QUEUE`).
    fn name(&self) -> String;

    /// Number of levels this model chooses between.
    fn num_levels(&self) -> usize;

    /// Level to apply before the first epoch completes (default: 0, i.e.
    /// start uncompressed like the paper's controller).
    fn initial_level(&self) -> usize {
        0
    }

    /// Returns the level to apply for the next epoch.
    fn decide(&mut self, obs: &EpochObservation) -> usize;

    /// Like [`DecisionModel::decide`], but also surfaces the decision
    /// detail (case, pdr, backoff snapshot) instead of dropping it. The
    /// default adapts `decide` for models without such state; rate-based
    /// models override it. Callers wanting traces must use this entry
    /// point — calling both methods would advance the model twice.
    fn decide_detailed(&mut self, obs: &EpochObservation) -> ModelDecision {
        ModelDecision::bare(self.decide(obs), obs.app_rate)
    }

    /// Resets internal state for a fresh stream.
    fn reset(&mut self) {}
}

/// The paper's model (Table II row `DYNAMIC`): wraps [`RateController`].
pub struct RateBasedModel {
    ctl: RateController,
}

impl RateBasedModel {
    pub fn new(cfg: ControllerConfig) -> Self {
        RateBasedModel { ctl: RateController::new(cfg) }
    }

    pub fn paper_default() -> Self {
        RateBasedModel { ctl: RateController::paper_default() }
    }

    pub fn controller(&self) -> &RateController {
        &self.ctl
    }
}

impl DecisionModel for RateBasedModel {
    fn name(&self) -> String {
        "DYNAMIC".to_string()
    }

    fn num_levels(&self) -> usize {
        self.ctl.config().num_levels
    }

    fn decide(&mut self, obs: &EpochObservation) -> usize {
        self.decide_detailed(obs).level
    }

    fn decide_detailed(&mut self, obs: &EpochObservation) -> ModelDecision {
        let d = self.ctl.observe(obs.app_rate);
        ModelDecision::from_controller(d, &self.ctl)
    }

    fn reset(&mut self) {
        self.ctl.reset();
    }
}

/// Entropy-guided extension of the paper's model.
///
/// The paper observes a weakness of the pure rate-based scheme: "without
/// compression the application data rate is not affected by the
/// compressibility of the data", so backoff accumulated at level 0 during
/// an incompressible phase delays the switch back to compression when the
/// data becomes compressible again (Fig. 6 discussion).
///
/// This variant runs the identical [`RateController`] but additionally
/// watches a *cheap, direct* signal — the order-0 entropy of a small data
/// sample per epoch. When the entropy moves by more than
/// `entropy_threshold` bits/byte, the accumulated backoff is forgotten so
/// optimistic probing resumes immediately. The decision itself is still
/// purely rate-based; the entropy only re-arms the probe timer, so the
/// scheme keeps the paper's "no training phase, no system metrics"
/// properties (the sample comes from the application's own data).
pub struct EntropyGuidedModel {
    ctl: RateController,
    /// Entropy delta (bits/byte) that counts as a compressibility change.
    pub entropy_threshold: f64,
    last_entropy: Option<f64>,
}

impl EntropyGuidedModel {
    pub fn new(cfg: ControllerConfig) -> Self {
        EntropyGuidedModel { ctl: RateController::new(cfg), entropy_threshold: 1.0, last_entropy: None }
    }

    pub fn paper_default() -> Self {
        EntropyGuidedModel::new(ControllerConfig::default())
    }
}

impl DecisionModel for EntropyGuidedModel {
    fn name(&self) -> String {
        "ENTROPY-GUIDED".to_string()
    }

    fn num_levels(&self) -> usize {
        self.ctl.config().num_levels
    }

    fn decide(&mut self, obs: &EpochObservation) -> usize {
        self.decide_detailed(obs).level
    }

    fn decide_detailed(&mut self, obs: &EpochObservation) -> ModelDecision {
        if let Some(h) = obs.data_entropy {
            if let Some(prev) = self.last_entropy {
                if (h - prev).abs() > self.entropy_threshold {
                    self.ctl.forget_backoffs();
                }
            }
            self.last_entropy = Some(h);
        }
        let d = self.ctl.observe(obs.app_rate);
        ModelDecision::from_controller(d, &self.ctl)
    }

    fn reset(&mut self) {
        self.ctl.reset();
        self.last_entropy = None;
    }
}

/// A fixed level (Table II rows `NO`, `LIGHT`, `MEDIUM`, `HEAVY`).
pub struct StaticModel {
    level: usize,
    num_levels: usize,
}

impl StaticModel {
    pub fn new(level: usize, num_levels: usize) -> Self {
        assert!(level < num_levels);
        StaticModel { level, num_levels }
    }
}

impl DecisionModel for StaticModel {
    fn name(&self) -> String {
        match self.level {
            0 => "NO".to_string(),
            1 => "LIGHT".to_string(),
            2 => "MEDIUM".to_string(),
            3 => "HEAVY".to_string(),
            n => format!("STATIC{n}"),
        }
    }

    fn num_levels(&self) -> usize {
        self.num_levels
    }

    fn initial_level(&self) -> usize {
        self.level
    }

    fn decide(&mut self, _obs: &EpochObservation) -> usize {
        self.level
    }
}

/// FIFO-queue-driven model after Jeannot, Knutsson & Björkman (HPDC 2002):
/// the sender is split into a compression thread and a sending thread with a
/// queue in between; a *growing* queue means the network is the bottleneck
/// (→ compress harder), a *shrinking* queue means compression is the
/// bottleneck (→ compress less).
///
/// The paper notes its weakness: it assumes a higher level always yields a
/// better ratio, which fails on incompressible data.
pub struct QueueBasedModel {
    num_levels: usize,
    level: usize,
    prev_depth: Option<usize>,
    /// Hysteresis: queue must move by this many blocks to trigger a change.
    pub hysteresis: usize,
}

impl QueueBasedModel {
    pub fn new(num_levels: usize) -> Self {
        QueueBasedModel { num_levels, level: 0, prev_depth: None, hysteresis: 1 }
    }
}

impl DecisionModel for QueueBasedModel {
    fn name(&self) -> String {
        "QUEUE".to_string()
    }

    fn num_levels(&self) -> usize {
        self.num_levels
    }

    fn decide(&mut self, obs: &EpochObservation) -> usize {
        if let Some(prev) = self.prev_depth {
            let depth = obs.queue_depth;
            if depth > prev + self.hysteresis || depth == obs.queue_capacity.max(1) {
                // Queue filling: network-bound, raise compression.
                self.level = (self.level + 1).min(self.num_levels - 1);
            } else if depth + self.hysteresis < prev || depth == 0 {
                // Queue draining: compression-bound, lower compression.
                self.level = self.level.saturating_sub(1);
            }
        }
        self.prev_depth = Some(obs.queue_depth);
        self.level
    }

    fn reset(&mut self) {
        self.level = 0;
        self.prev_depth = None;
    }
}

/// Characteristics of one level learned in an offline training phase —
/// the input the metric-based scheme depends on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainedLevel {
    /// Compression throughput measured on the *unloaded* training system,
    /// bytes/second of input.
    pub compress_bps: f64,
    /// Wire/app ratio measured during training.
    pub ratio: f64,
}

/// Metric-based model after Krintz & Sucu (TPDS 2006): combines displayed
/// CPU availability and displayed network bandwidth with offline-trained
/// per-level compression speed and ratio, then picks the level with the
/// highest *predicted* throughput.
///
/// Prediction per level: `min(trained_speed × displayed_idle_cpu,
/// displayed_bandwidth / ratio)`. With accurate metrics this is near
/// optimal; with the distorted metrics of §II it mis-decides — which is why
/// the paper's model refuses to use them.
pub struct MetricBasedModel {
    trained: Vec<TrainedLevel>,
    level: usize,
}

impl MetricBasedModel {
    /// `trained` must contain one entry per level (level 0 = raw).
    pub fn new(trained: Vec<TrainedLevel>) -> Self {
        assert!(!trained.is_empty());
        MetricBasedModel { trained, level: 0 }
    }

    /// Predicted application throughput for one level under the displayed
    /// metrics.
    pub fn predict(&self, level: usize, guest: &GuestMetrics) -> f64 {
        let t = &self.trained[level];
        let cpu_limited = t.compress_bps * guest.cpu_idle_frac.clamp(0.0, 1.0);
        let net_limited = guest.net_bandwidth / t.ratio.max(1e-9);
        cpu_limited.min(net_limited)
    }
}

impl DecisionModel for MetricBasedModel {
    fn name(&self) -> String {
        "METRIC".to_string()
    }

    fn num_levels(&self) -> usize {
        self.trained.len()
    }

    fn decide(&mut self, obs: &EpochObservation) -> usize {
        let Some(guest) = obs.guest else {
            // No metrics displayed at all: keep the current level.
            return self.level;
        };
        let mut best = 0usize;
        let mut best_rate = f64::NEG_INFINITY;
        for l in 0..self.trained.len() {
            let r = self.predict(l, &guest);
            if r > best_rate {
                best_rate = r;
                best = l;
            }
        }
        self.level = best;
        best
    }

    fn reset(&mut self) {
        self.level = 0;
    }
}

/// Sensor-threshold model after Motgi & Mukherjee's NCTCSys (ITCC 2001):
/// the level is looked up from displayed *sensor* values — network
/// bandwidth and server load — against fixed thresholds. Scarcer displayed
/// bandwidth selects heavier compression; high displayed load vetoes
/// compression entirely.
///
/// Like the metric-based scheme, it inherits every distortion of the
/// displayed values: a cache-inflated bandwidth reading or an idle-looking
/// CPU flips its decision.
pub struct SensorThresholdModel {
    /// Descending bandwidth thresholds (bytes/second): displayed bandwidth
    /// below `thresholds[i]` selects at least level `i + 1`.
    pub bw_thresholds: Vec<f64>,
    /// Veto: if the displayed idle CPU fraction drops below this, transmit
    /// uncompressed (the "server load" sensor).
    pub load_veto_idle: f64,
    num_levels: usize,
    level: usize,
}

impl SensorThresholdModel {
    pub fn new(num_levels: usize, bw_thresholds: Vec<f64>, load_veto_idle: f64) -> Self {
        assert!(bw_thresholds.len() < num_levels);
        assert!(bw_thresholds.windows(2).all(|w| w[0] >= w[1]), "thresholds must descend");
        SensorThresholdModel { bw_thresholds, load_veto_idle, num_levels, level: 0 }
    }

    /// Thresholds tuned for the paper's 1 GbE setting: compress once the
    /// displayed bandwidth falls under 80 MB/s, harder under 40, hardest
    /// under 10.
    pub fn paper_scale() -> Self {
        SensorThresholdModel::new(4, vec![80.0e6, 40.0e6, 10.0e6], 0.15)
    }
}

impl DecisionModel for SensorThresholdModel {
    fn name(&self) -> String {
        "SENSOR".to_string()
    }

    fn num_levels(&self) -> usize {
        self.num_levels
    }

    fn decide(&mut self, obs: &EpochObservation) -> usize {
        let Some(guest) = obs.guest else {
            return self.level;
        };
        if guest.cpu_idle_frac < self.load_veto_idle {
            self.level = 0;
            return 0;
        }
        let mut level = 0usize;
        for (i, &t) in self.bw_thresholds.iter().enumerate() {
            if guest.net_bandwidth < t {
                level = i + 1;
            }
        }
        self.level = level.min(self.num_levels - 1);
        self.level
    }

    fn reset(&mut self) {
        self.level = 0;
    }
}

/// Sampling model after Wiseman, Schwan & Widener (ICDCS 2004): a short
/// sampling phase cycles through every level measuring the achieved rate,
/// then commits to the winner for a fixed (hard-coded) holding period. The
/// paper criticizes the hard-coded parameters and the need for an unloaded
/// sampling phase.
pub struct ThresholdSamplingModel {
    num_levels: usize,
    /// Epochs to hold the winner before resampling.
    pub hold_epochs: u32,
    state: SamplingState,
    sampled_rates: Vec<f64>,
    level: usize,
    epochs_left: u32,
}

enum SamplingState {
    Sampling(usize),
    Holding,
}

impl ThresholdSamplingModel {
    pub fn new(num_levels: usize, hold_epochs: u32) -> Self {
        ThresholdSamplingModel {
            num_levels,
            hold_epochs,
            state: SamplingState::Sampling(0),
            sampled_rates: vec![0.0; num_levels],
            level: 0,
            epochs_left: 0,
        }
    }
}

impl DecisionModel for ThresholdSamplingModel {
    fn name(&self) -> String {
        "SAMPLING".to_string()
    }

    fn num_levels(&self) -> usize {
        self.num_levels
    }

    fn decide(&mut self, obs: &EpochObservation) -> usize {
        match self.state {
            SamplingState::Sampling(i) => {
                self.sampled_rates[i] = obs.app_rate;
                if i + 1 < self.num_levels {
                    self.state = SamplingState::Sampling(i + 1);
                    self.level = i + 1;
                } else {
                    // Commit to the best sampled level.
                    let best = self
                        .sampled_rates
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    self.level = best;
                    self.state = SamplingState::Holding;
                    self.epochs_left = self.hold_epochs;
                }
            }
            SamplingState::Holding => {
                if self.epochs_left == 0 {
                    self.state = SamplingState::Sampling(0);
                    self.level = 0;
                } else {
                    self.epochs_left -= 1;
                }
            }
        }
        self.level
    }

    fn reset(&mut self) {
        self.state = SamplingState::Sampling(0);
        self.sampled_rates.fill(0.0);
        self.level = 0;
        self.epochs_left = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(rate: f64) -> EpochObservation {
        EpochObservation::rate_only(rate, 2.0)
    }

    #[test]
    fn static_model_never_moves() {
        let mut m = StaticModel::new(2, 4);
        assert_eq!(m.name(), "MEDIUM");
        for r in [10.0, 1000.0, 0.0] {
            assert_eq!(m.decide(&obs(r)), 2);
        }
    }

    #[test]
    fn static_model_names() {
        assert_eq!(StaticModel::new(0, 4).name(), "NO");
        assert_eq!(StaticModel::new(3, 4).name(), "HEAVY");
        assert_eq!(StaticModel::new(4, 6).name(), "STATIC4");
    }

    #[test]
    fn rate_based_delegates_to_controller() {
        let mut m = RateBasedModel::paper_default();
        assert_eq!(m.name(), "DYNAMIC");
        let l = m.decide(&obs(100.0));
        assert_eq!(l, 1, "first epoch probes up, like the raw controller");
    }

    #[test]
    fn queue_model_raises_when_queue_grows() {
        let mut m = QueueBasedModel::new(4);
        let mut o = obs(100.0);
        o.queue_capacity = 16;
        o.queue_depth = 2;
        assert_eq!(m.decide(&o), 0, "first call only records state");
        o.queue_depth = 8;
        assert_eq!(m.decide(&o), 1);
        o.queue_depth = 14;
        assert_eq!(m.decide(&o), 2);
    }

    #[test]
    fn queue_model_lowers_when_queue_drains() {
        let mut m = QueueBasedModel::new(4);
        let mut o = obs(100.0);
        o.queue_capacity = 16;
        o.queue_depth = 10;
        m.decide(&o);
        o.queue_depth = 12;
        m.decide(&o); // -> 1
        o.queue_depth = 3;
        assert_eq!(m.decide(&o), 0);
        o.queue_depth = 0;
        assert_eq!(m.decide(&o), 0, "saturates at zero");
    }

    #[test]
    fn queue_model_hysteresis_suppresses_jitter() {
        let mut m = QueueBasedModel::new(4);
        m.hysteresis = 3;
        let mut o = obs(100.0);
        o.queue_capacity = 16;
        o.queue_depth = 8;
        m.decide(&o);
        o.queue_depth = 9; // within hysteresis
        assert_eq!(m.decide(&o), 0);
        o.queue_depth = 7; // within hysteresis
        assert_eq!(m.decide(&o), 0);
    }

    #[test]
    fn metric_model_picks_best_under_accurate_metrics() {
        // Trained on an unloaded system: level 1 compresses 200 MB/s at
        // ratio 0.5; level 2: 60 MB/s at 0.4; raw "compresses" at 10 GB/s.
        let trained = vec![
            TrainedLevel { compress_bps: 1e10, ratio: 1.0 },
            TrainedLevel { compress_bps: 200e6, ratio: 0.5 },
            TrainedLevel { compress_bps: 60e6, ratio: 0.4 },
        ];
        let mut m = MetricBasedModel::new(trained);
        // Accurate: full CPU idle, 50 MB/s of bandwidth -> level 1 predicted
        // min(200, 100) = 100 beats raw (50) and level 2 (min(60,125)=60).
        let mut o = obs(0.0);
        o.guest = Some(GuestMetrics { cpu_idle_frac: 1.0, net_bandwidth: 50e6 });
        assert_eq!(m.decide(&o), 1);
    }

    #[test]
    fn metric_model_misdecides_under_distorted_metrics() {
        let trained = vec![
            TrainedLevel { compress_bps: 1e10, ratio: 1.0 },
            TrainedLevel { compress_bps: 200e6, ratio: 0.5 },
        ];
        let mut m = MetricBasedModel::new(trained);
        // The VM displays 95 % idle CPU (wrong: the host is saturated) and a
        // cache-inflated 800 MB/s bandwidth. The model predicts compression
        // cannot help (raw "800 MB/s" beats level 1's min(190, 1600) = 190)
        // and stays raw even though the real link is a scarce 30 MB/s where
        // LIGHT would roughly double goodput.
        let mut o = obs(0.0);
        o.guest = Some(GuestMetrics { cpu_idle_frac: 0.95, net_bandwidth: 800e6 });
        assert_eq!(m.decide(&o), 0, "distorted metrics keep it uncompressed");
    }

    #[test]
    fn metric_model_holds_level_without_metrics() {
        let trained = vec![
            TrainedLevel { compress_bps: 1e10, ratio: 1.0 },
            TrainedLevel { compress_bps: 200e6, ratio: 0.5 },
        ];
        let mut m = MetricBasedModel::new(trained);
        let mut o = obs(0.0);
        o.guest = Some(GuestMetrics { cpu_idle_frac: 1.0, net_bandwidth: 10e6 });
        let l = m.decide(&o);
        let o2 = obs(0.0);
        assert_eq!(m.decide(&o2), l);
    }

    #[test]
    fn sampling_model_cycles_then_commits() {
        let mut m = ThresholdSamplingModel::new(3, 5);
        // Sampling phase: level sequence 0 -> 1 -> 2 while recording rates.
        assert_eq!(m.decide(&obs(50.0)), 1); // sampled level 0 at 50
        assert_eq!(m.decide(&obs(90.0)), 2); // sampled level 1 at 90
        let committed = m.decide(&obs(60.0)); // sampled level 2 at 60 -> commit
        assert_eq!(committed, 1, "level 1 had the best sampled rate");
        // Holds for hold_epochs.
        for _ in 0..5 {
            assert_eq!(m.decide(&obs(90.0)), 1);
        }
        // Then resamples from level 0.
        assert_eq!(m.decide(&obs(90.0)), 0);
    }

    #[test]
    fn entropy_guided_behaves_like_rate_based_on_stable_entropy() {
        let mut a = RateBasedModel::paper_default();
        let mut b = EntropyGuidedModel::paper_default();
        for rate in [100.0, 180.0, 180.0, 150.0, 200.0, 200.0, 90.0] {
            let mut o = obs(rate);
            o.data_entropy = Some(2.0);
            assert_eq!(a.decide(&obs(rate)), b.decide(&o));
        }
    }

    #[test]
    fn entropy_shift_rearms_probing() {
        // The paper's asymmetric case: during an incompressible (LOW)
        // phase the controller sits at level 0 and accumulates backoff
        // there; when the data turns compressible, the rate *at level 0*
        // does not change ("without compression the application data rate
        // is not affected by the compressibility of the data"), so only an
        // optimistic probe can discover the better level. The guided model
        // re-arms that probe from the entropy shift.
        let run = |guided: bool| -> usize {
            let mut plain = RateBasedModel::paper_default();
            let mut ent = EntropyGuidedModel::paper_default();
            let mut level = 0usize;
            // Phase 1 (LOW data): level 0 is best; backoff builds at 0.
            let low_rates = [90.0, 60.0, 40.0, 5.0];
            for _ in 0..150 {
                let mut o = obs(low_rates[level]);
                o.data_entropy = Some(7.9);
                level = if guided { ent.decide(&o) } else { plain.decide(&o) };
            }
            assert_eq!(level, 0, "phase 1 must settle at level 0");
            // Phase 2 (HIGH data): entropy drops; level-0 rate is identical,
            // so the rate alone cannot trigger anything. Count epochs until
            // the first probe away from 0.
            let high_rates = [90.0, 205.0, 145.0, 27.0];
            for epoch in 0..300 {
                let mut o = obs(high_rates[level]);
                o.data_entropy = Some(1.4);
                let new = if guided { ent.decide(&o) } else { plain.decide(&o) };
                if new != 0 {
                    return epoch;
                }
                level = new;
            }
            300
        };
        let guided_delay = run(true);
        let plain_delay = run(false);
        assert!(
            guided_delay < plain_delay,
            "guided {guided_delay} should probe sooner than plain {plain_delay}"
        );
        assert!(guided_delay <= 2, "guided should react almost immediately: {guided_delay}");
        assert!(plain_delay >= 8, "plain should be stuck behind backoff: {plain_delay}");
    }

    #[test]
    fn sensor_model_follows_bandwidth_thresholds() {
        let mut m = SensorThresholdModel::paper_scale();
        let mut o = obs(0.0);
        o.guest = Some(GuestMetrics { cpu_idle_frac: 0.9, net_bandwidth: 100e6 });
        assert_eq!(m.decide(&o), 0, "plentiful bandwidth: no compression");
        o.guest = Some(GuestMetrics { cpu_idle_frac: 0.9, net_bandwidth: 60e6 });
        assert_eq!(m.decide(&o), 1);
        o.guest = Some(GuestMetrics { cpu_idle_frac: 0.9, net_bandwidth: 20e6 });
        assert_eq!(m.decide(&o), 2);
        o.guest = Some(GuestMetrics { cpu_idle_frac: 0.9, net_bandwidth: 5e6 });
        assert_eq!(m.decide(&o), 3);
    }

    #[test]
    fn sensor_model_load_veto_forces_raw() {
        let mut m = SensorThresholdModel::paper_scale();
        let mut o = obs(0.0);
        o.guest = Some(GuestMetrics { cpu_idle_frac: 0.05, net_bandwidth: 5e6 });
        assert_eq!(m.decide(&o), 0, "high displayed load vetoes compression");
    }

    #[test]
    fn sensor_model_fooled_by_inflated_bandwidth_display() {
        // A cache-inflated or nominal-NIC bandwidth display keeps NCTCSys
        // uncompressed even when the real share is scarce — the paper's
        // criticism of sensor-driven schemes in VMs.
        let mut m = SensorThresholdModel::paper_scale();
        let mut o = obs(0.0);
        o.guest = Some(GuestMetrics { cpu_idle_frac: 0.95, net_bandwidth: 100e6 });
        assert_eq!(m.decide(&o), 0);
    }

    #[test]
    #[should_panic(expected = "thresholds must descend")]
    fn sensor_model_rejects_unordered_thresholds() {
        SensorThresholdModel::new(4, vec![10e6, 40e6], 0.1);
    }

    #[test]
    fn decide_detailed_surfaces_algorithm_state() {
        let mut m = RateBasedModel::paper_default();
        let d = m.decide_detailed(&obs(100.0));
        assert_eq!(d.level, 1);
        assert_eq!(d.case, Some(DecisionCase::Seed));
        assert_eq!(d.pdr, None);
        let bck = d.backoffs.expect("rate model snapshots backoffs");
        assert_eq!(&bck[..4], &[0, 0, 0, 0]);
        let d2 = m.decide_detailed(&obs(220.0));
        assert_eq!(d2.case, Some(DecisionCase::Improved));
        assert_eq!(d2.pdr, Some(100.0));
        assert_eq!(d2.backoffs.unwrap()[1], 1, "reward went to level 1");
    }

    #[test]
    fn decide_detailed_default_is_bare_for_simple_models() {
        let mut s = StaticModel::new(2, 4);
        let d = s.decide_detailed(&obs(50.0));
        assert_eq!(d.level, 2);
        assert_eq!(d.case, None);
        assert_eq!(d.cdr, 50.0);
        assert_eq!(d.backoffs, None);
    }

    #[test]
    fn decide_and_decide_detailed_agree_on_rate_model() {
        let mut a = RateBasedModel::paper_default();
        let mut b = RateBasedModel::paper_default();
        for rate in [100.0, 180.0, 180.0, 150.0, 60.0, 200.0] {
            assert_eq!(a.decide(&obs(rate)), b.decide_detailed(&obs(rate)).level);
        }
    }

    #[test]
    fn models_reset_cleanly() {
        let mut q = QueueBasedModel::new(4);
        let mut o = obs(1.0);
        o.queue_capacity = 8;
        o.queue_depth = 1;
        q.decide(&o);
        o.queue_depth = 6;
        q.decide(&o);
        q.reset();
        o.queue_depth = 0;
        assert_eq!(q.decide(&o), 0);

        let mut s = ThresholdSamplingModel::new(3, 2);
        s.decide(&obs(1.0));
        s.reset();
        assert_eq!(s.decide(&obs(1.0)), 1, "restarts sampling cycle");
    }
}
