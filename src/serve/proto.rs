//! The serve-mode wire protocol: a tiny fixed handshake around the
//! self-describing adaptive frame stream.
//!
//! ```text
//! client → server   request   "ACSV" ver kind [tenant_len tenant id total]
//! server → client   response  status [start_offset level_cap]
//! client → server   adaptive frame stream of payload[start_offset..], then
//!                   TCP half-close (shutdown write)
//! server → client   done      status verified crc32
//! ```
//!
//! Everything is little-endian and length-prefixed; the handshake carries
//! no compression parameters because frames are self-describing — the only
//! negotiated value is `level_cap`, the circuit-breaker's degrade signal.
//! `start_offset` is the server's count of *verified* application bytes
//! for `(tenant, transfer_id)`, which is what makes reconnect-and-resume
//! safe: a retrying client always continues from a clean, CRC-checked
//! prefix, never from bytes that died in flight.
//!
//! Every control frame carries a CRC-32 trailer over its preceding bytes.
//! The payload stream is already CRC-protected per frame, but an
//! unprotected handshake would let a single flipped wire bit silently
//! redirect a stream to the wrong `(tenant, transfer_id)` or forge a
//! resume offset — the chaos proxy found exactly that. With the trailer,
//! a damaged control frame is a typed `InvalidData` error (shed as
//! `bad_request` server-side, a retryable transport error client-side),
//! never a misrouted transfer.

use adcomp_codecs::crc32::crc32;
use std::io::{self, Read, Write};

/// Request magic: "adcomp serve" v1.
pub const MAGIC: [u8; 4] = *b"ACSV";
/// Protocol version.
pub const VERSION: u8 = 1;
/// `level_cap` value meaning "no cap" (breaker closed).
pub const NO_LEVEL_CAP: u8 = u8::MAX;
/// Longest accepted tenant name, bytes.
pub const MAX_TENANT: usize = 64;

/// What a client asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Stream a transfer of `total_len` application bytes.
    Put { tenant: String, transfer_id: u64, total_len: u64 },
    /// Begin a graceful drain: stop admitting, finish in-flight streams.
    Drain,
    /// Fetch `[offset, offset + len)` of a completed transfer's
    /// application bytes. The server replies with an
    /// [`Response::Accept`] whose `start_offset` is the byte count that
    /// follows (clamped to the transfer end), then the bytes themselves
    /// with a CRC-32 trailer ([`write_get_payload`]).
    Get { tenant: String, transfer_id: u64, offset: u64, len: u64 },
}

/// Why an admission was refused. `as_str` doubles as the
/// `adcomp_serve_shed_total{reason=…}` label value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RejectReason {
    /// Global connection budget exhausted.
    Capacity = 1,
    /// This tenant's quota exhausted (or the transfer is already being
    /// streamed on another connection).
    TenantQuota = 2,
    /// The server is draining for shutdown.
    Draining = 3,
    /// Declared length above the server's per-transfer cap.
    TooLarge = 4,
    /// Malformed or incompatible handshake.
    BadRequest = 5,
}

impl RejectReason {
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::Capacity => "capacity",
            RejectReason::TenantQuota => "tenant_quota",
            RejectReason::Draining => "draining",
            RejectReason::TooLarge => "too_large",
            RejectReason::BadRequest => "bad_request",
        }
    }

    fn from_code(code: u8) -> Option<RejectReason> {
        Some(match code {
            1 => RejectReason::Capacity,
            2 => RejectReason::TenantQuota,
            3 => RejectReason::Draining,
            4 => RejectReason::TooLarge,
            5 => RejectReason::BadRequest,
            _ => return None,
        })
    }

    /// Whether a client should retry after backoff (true) or give up
    /// immediately (false: the request itself is unservable).
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            RejectReason::Capacity | RejectReason::TenantQuota | RejectReason::Draining
        )
    }
}

/// The server's admission verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// Admitted: stream from `start_offset`; keep the compression level at
    /// or below `level_cap` ([`NO_LEVEL_CAP`] = uncapped). For a
    /// [`Request::Drain`], `start_offset` carries the number of transfers
    /// still in flight.
    Accept { start_offset: u64, level_cap: u8 },
    /// Refused, with the reason; the connection is then closed.
    Reject { reason: RejectReason },
}

/// End-of-transfer receipt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Done {
    /// Whether the server holds the complete, CRC-verified transfer.
    pub ok: bool,
    /// Verified application bytes held for the transfer.
    pub verified: u64,
    /// CRC-32 of the verified bytes.
    pub crc: u32,
}

/// Appends the CRC-32 trailer and writes the frame.
fn write_framed(w: &mut impl Write, mut buf: Vec<u8>) -> io::Result<()> {
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    w.write_all(&buf)
}

/// Reads `n` more bytes, appending them to `seen` (the CRC input).
fn read_into(r: &mut impl Read, seen: &mut Vec<u8>, n: usize) -> io::Result<()> {
    let at = seen.len();
    seen.resize(at + n, 0);
    r.read_exact(&mut seen[at..])
}

/// Reads and checks the 4-byte CRC trailer over `seen`.
fn check_trailer(r: &mut impl Read, seen: &[u8]) -> io::Result<()> {
    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer)?;
    if u32::from_le_bytes(trailer) != crc32(seen) {
        return Err(bad("control frame failed CRC check"));
    }
    Ok(())
}

pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    let mut buf = Vec::with_capacity(32);
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    match req {
        Request::Put { tenant, transfer_id, total_len } => {
            if tenant.len() > MAX_TENANT || tenant.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "tenant name must be 1..=64 bytes",
                ));
            }
            buf.push(0);
            buf.push(tenant.len() as u8);
            buf.extend_from_slice(tenant.as_bytes());
            buf.extend_from_slice(&transfer_id.to_le_bytes());
            buf.extend_from_slice(&total_len.to_le_bytes());
        }
        Request::Drain => buf.push(1),
        Request::Get { tenant, transfer_id, offset, len } => {
            if tenant.len() > MAX_TENANT || tenant.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "tenant name must be 1..=64 bytes",
                ));
            }
            buf.push(2);
            buf.push(tenant.len() as u8);
            buf.extend_from_slice(tenant.as_bytes());
            buf.extend_from_slice(&transfer_id.to_le_bytes());
            buf.extend_from_slice(&offset.to_le_bytes());
            buf.extend_from_slice(&len.to_le_bytes());
        }
    }
    write_framed(w, buf)
}

pub fn read_request(r: &mut impl Read) -> io::Result<Request> {
    let mut seen = Vec::with_capacity(40);
    read_into(r, &mut seen, 6)?;
    if seen[..4] != MAGIC {
        return Err(bad("bad magic"));
    }
    if seen[4] != VERSION {
        return Err(bad("unsupported protocol version"));
    }
    match seen[5] {
        0 => {
            read_into(r, &mut seen, 1)?;
            let len = seen[6] as usize;
            if len == 0 || len > MAX_TENANT {
                return Err(bad("tenant name must be 1..=64 bytes"));
            }
            read_into(r, &mut seen, len + 16)?;
            check_trailer(r, &seen)?;
            let tenant = String::from_utf8(seen[7..7 + len].to_vec())
                .map_err(|_| bad("tenant not utf-8"))?;
            let nums = &seen[7 + len..];
            Ok(Request::Put {
                tenant,
                transfer_id: u64::from_le_bytes(nums[..8].try_into().unwrap()),
                total_len: u64::from_le_bytes(nums[8..].try_into().unwrap()),
            })
        }
        1 => {
            check_trailer(r, &seen)?;
            Ok(Request::Drain)
        }
        2 => {
            read_into(r, &mut seen, 1)?;
            let len = seen[6] as usize;
            if len == 0 || len > MAX_TENANT {
                return Err(bad("tenant name must be 1..=64 bytes"));
            }
            read_into(r, &mut seen, len + 24)?;
            check_trailer(r, &seen)?;
            let tenant = String::from_utf8(seen[7..7 + len].to_vec())
                .map_err(|_| bad("tenant not utf-8"))?;
            let nums = &seen[7 + len..];
            Ok(Request::Get {
                tenant,
                transfer_id: u64::from_le_bytes(nums[..8].try_into().unwrap()),
                offset: u64::from_le_bytes(nums[8..16].try_into().unwrap()),
                len: u64::from_le_bytes(nums[16..].try_into().unwrap()),
            })
        }
        _ => Err(bad("unknown request kind")),
    }
}

/// Writes a GET data stream: the raw bytes followed by a CRC-32 trailer.
/// The byte count was already announced in the accept frame's
/// `start_offset`, so the stream needs no length prefix of its own.
pub fn write_get_payload(w: &mut impl Write, bytes: &[u8]) -> io::Result<()> {
    w.write_all(bytes)?;
    w.write_all(&crc32(bytes).to_le_bytes())
}

/// Reads a GET data stream of exactly `n` announced bytes and verifies
/// its CRC-32 trailer.
pub fn read_get_payload(r: &mut impl Read, n: u64) -> io::Result<Vec<u8>> {
    let mut bytes = vec![0u8; n as usize];
    r.read_exact(&mut bytes)?;
    check_trailer(r, &bytes)?;
    Ok(bytes)
}

pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    match *resp {
        Response::Accept { start_offset, level_cap } => {
            let mut buf = vec![0u8; 10];
            buf[1..9].copy_from_slice(&start_offset.to_le_bytes());
            buf[9] = level_cap;
            write_framed(w, buf)
        }
        Response::Reject { reason } => write_framed(w, vec![reason as u8]),
    }
}

pub fn read_response(r: &mut impl Read) -> io::Result<Response> {
    let mut seen = Vec::with_capacity(16);
    read_into(r, &mut seen, 1)?;
    if seen[0] == 0 {
        read_into(r, &mut seen, 9)?;
        check_trailer(r, &seen)?;
        Ok(Response::Accept {
            start_offset: u64::from_le_bytes(seen[1..9].try_into().unwrap()),
            level_cap: seen[9],
        })
    } else {
        let code = seen[0];
        check_trailer(r, &seen)?;
        let reason = RejectReason::from_code(code).ok_or_else(|| bad("unknown status"))?;
        Ok(Response::Reject { reason })
    }
}

pub fn write_done(w: &mut impl Write, done: &Done) -> io::Result<()> {
    let mut buf = vec![0u8; 13];
    buf[0] = u8::from(!done.ok);
    buf[1..9].copy_from_slice(&done.verified.to_le_bytes());
    buf[9..].copy_from_slice(&done.crc.to_le_bytes());
    write_framed(w, buf)
}

pub fn read_done(r: &mut impl Read) -> io::Result<Done> {
    let mut seen = Vec::with_capacity(20);
    read_into(r, &mut seen, 13)?;
    check_trailer(r, &seen)?;
    if seen[0] > 1 {
        return Err(bad("malformed done frame"));
    }
    Ok(Done {
        ok: seen[0] == 0,
        verified: u64::from_le_bytes(seen[1..9].try_into().unwrap()),
        crc: u32::from_le_bytes(seen[9..13].try_into().unwrap()),
    })
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_request_roundtrips() {
        let req = Request::Put {
            tenant: "tenant-a".to_string(),
            transfer_id: 0xDEAD_BEEF_1234,
            total_len: 1 << 30,
        };
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        assert_eq!(read_request(&mut &wire[..]).unwrap(), req);
    }

    #[test]
    fn drain_request_roundtrips() {
        let mut wire = Vec::new();
        write_request(&mut wire, &Request::Drain).unwrap();
        assert_eq!(read_request(&mut &wire[..]).unwrap(), Request::Drain);
    }

    #[test]
    fn get_request_roundtrips() {
        let req = Request::Get {
            tenant: "reader-9".to_string(),
            transfer_id: 0x0102_0304_0506,
            offset: 7 << 20,
            len: 128 * 1024,
        };
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        assert_eq!(read_request(&mut &wire[..]).unwrap(), req);
    }

    #[test]
    fn get_payload_roundtrips_and_rejects_flips() {
        let data = b"ranged get payload bytes".to_vec();
        let mut wire = Vec::new();
        write_get_payload(&mut wire, &data).unwrap();
        assert_eq!(read_get_payload(&mut &wire[..], data.len() as u64).unwrap(), data);
        for i in 0..wire.len() {
            let mut hurt = wire.clone();
            hurt[i] ^= 0x10;
            assert!(
                read_get_payload(&mut &hurt[..], data.len() as u64).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Accept { start_offset: 0, level_cap: NO_LEVEL_CAP },
            Response::Accept { start_offset: 123_456, level_cap: 0 },
            Response::Reject { reason: RejectReason::Capacity },
            Response::Reject { reason: RejectReason::Draining },
            Response::Reject { reason: RejectReason::TooLarge },
        ] {
            let mut wire = Vec::new();
            write_response(&mut wire, &resp).unwrap();
            assert_eq!(read_response(&mut &wire[..]).unwrap(), resp);
        }
    }

    #[test]
    fn done_roundtrips() {
        for done in [
            Done { ok: true, verified: 999, crc: 0xCAFE_F00D },
            Done { ok: false, verified: 0, crc: 0 },
        ] {
            let mut wire = Vec::new();
            write_done(&mut wire, &done).unwrap();
            assert_eq!(read_done(&mut &wire[..]).unwrap(), done);
        }
    }

    #[test]
    fn junk_is_rejected_not_panicked() {
        assert!(read_request(&mut &b"GET / HTTP/1.0\r\n"[..]).is_err());
        assert!(read_request(&mut &b"ACSV"[..]).is_err()); // truncated
        assert!(read_request(&mut &[b'A', b'C', b'S', b'V', 9, 0][..]).is_err()); // bad version
        assert!(read_response(&mut &[200u8][..]).is_err()); // unknown status
        let mut long = vec![b'A', b'C', b'S', b'V', VERSION, 0, 255];
        long.extend_from_slice(&[b'x'; 255]);
        assert!(read_request(&mut &long[..]).is_err(), "overlong tenant accepted");
    }

    #[test]
    fn any_single_byte_flip_in_a_control_frame_is_detected() {
        // The soak's original failure mode: one flipped wire byte in the
        // handshake redirecting a stream to the wrong key. Every control
        // frame must reject every single-byte corruption (CRC-32 catches
        // all bursts shorter than 32 bits).
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut wire = Vec::new();
        write_request(
            &mut wire,
            &Request::Put { tenant: "tenant-0".into(), transfer_id: 58, total_len: 4716 },
        )
        .unwrap();
        frames.push(std::mem::take(&mut wire));
        write_request(&mut wire, &Request::Drain).unwrap();
        frames.push(std::mem::take(&mut wire));
        write_request(
            &mut wire,
            &Request::Get { tenant: "tenant-0".into(), transfer_id: 58, offset: 512, len: 4096 },
        )
        .unwrap();
        frames.push(std::mem::take(&mut wire));
        write_response(&mut wire, &Response::Accept { start_offset: 77, level_cap: 3 }).unwrap();
        frames.push(std::mem::take(&mut wire));
        write_response(&mut wire, &Response::Reject { reason: RejectReason::Capacity }).unwrap();
        frames.push(std::mem::take(&mut wire));
        write_done(&mut wire, &Done { ok: true, verified: 4716, crc: 0x1234_5678 }).unwrap();
        frames.push(std::mem::take(&mut wire));
        for (f, frame) in frames.iter().enumerate() {
            for i in 0..frame.len() {
                for flip in [0x01u8, 0x80, 0xFF] {
                    let mut hurt = frame.clone();
                    hurt[i] ^= flip;
                    let r = &mut &hurt[..];
                    let err = match f {
                        0..=2 => read_request(r).is_err(),
                        3 | 4 => read_response(r).is_err(),
                        _ => read_done(r).is_err(),
                    };
                    assert!(err, "frame {f}: flip {flip:#x} at byte {i} went undetected");
                }
            }
        }
    }

    #[test]
    fn retryability_matches_taxonomy() {
        assert!(RejectReason::Capacity.is_retryable());
        assert!(RejectReason::TenantQuota.is_retryable());
        assert!(RejectReason::Draining.is_retryable());
        assert!(!RejectReason::TooLarge.is_retryable());
        assert!(!RejectReason::BadRequest.is_retryable());
    }
}
