//! Reusable per-encoder working memory for the compression hot path.
//!
//! Every compressing channel pays `compress + transmit` per 128 KiB block on
//! one vCPU, so per-block heap allocation is pure overhead on the reproduced
//! result. A [`Scratch`] owns every table the codecs need (hash tables,
//! hash-chain arrays, the HEAVY probability model) and is reused across
//! blocks: in steady state the adaptive write path performs **zero heap
//! allocations per block**.
//!
//! Determinism contract: compressing a block through a reused `Scratch`
//! produces *bit-identical* output to compressing it through a fresh one.
//! Hash tables are reset between blocks; hash-chain arrays are only
//! reachable through the (reset) table heads, so their stale contents can
//! never influence the parse. A regression test in `qlz` asserts the
//! bit-identity.

/// Reusable codec working memory. Create once per writer/encoder and pass to
/// `compress_with`-style entry points. All tables grow lazily on first use,
/// so an unused `Scratch` costs nothing.
pub struct Scratch {
    /// LIGHT: single-probe hash table (`1 << 14` entries once used).
    pub(crate) light_table: Vec<u32>,
    /// MEDIUM: hash-chain heads (`1 << 15` entries once used).
    pub(crate) med_head: Vec<u32>,
    /// MEDIUM: hash-chain links, one per input byte (grown to the largest
    /// block seen; stale contents are unreachable by construction).
    pub(crate) med_prev: Vec<u32>,
    /// HEAVY: match-finder tables + probability model (boxed so the common
    /// LIGHT/MEDIUM path does not pay for them).
    pub(crate) heavy: Option<Box<crate::heavy::HeavyScratch>>,
    /// HUFF: single-probe hash table (`1 << 15` entries once used).
    pub(crate) huff_table: Vec<u32>,
    /// Last compressed payload size per codec id — used as a capacity hint
    /// for the next block's output.
    pub(crate) last_out: [usize; 6],
}

impl Scratch {
    pub fn new() -> Self {
        Scratch {
            light_table: Vec::new(),
            med_head: Vec::new(),
            med_prev: Vec::new(),
            heavy: None,
            huff_table: Vec::new(),
            last_out: [0; 6],
        }
    }

    /// Capacity hint for the output of the next block: the previous block's
    /// compressed size plus slack, bounded by the worst-case expansion.
    #[inline]
    pub(crate) fn out_hint(&self, codec: crate::CodecId, input_len: usize) -> usize {
        let worst = input_len + input_len / 8 + 16;
        let last = self.last_out[codec as usize];
        if last == 0 {
            // First block: assume mild compression.
            (input_len / 2).max(64).min(worst)
        } else {
            (last + last / 8 + 64).min(worst)
        }
    }

    /// Records the compressed payload size of the block just produced.
    #[inline]
    pub(crate) fn note_out(&mut self, codec: crate::CodecId, len: usize) {
        self.last_out[codec as usize] = len;
    }

    /// Bytes of table memory currently held (diagnostics / tests).
    pub fn table_bytes(&self) -> usize {
        let heavy = self.heavy.as_ref().map_or(0, |h| h.table_bytes());
        (self.light_table.capacity()
            + self.med_head.capacity()
            + self.med_prev.capacity()
            + self.huff_table.capacity())
            * 4
            + heavy
    }
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch::new()
    }
}

/// Reusable per-decoder working memory — the decode-side mirror of
/// [`Scratch`]. Today this is the HEAVY probability model (the only decode
/// state that costs heap); LIGHT/MEDIUM decode is table-free. Held by
/// `FrameReader` and each `DecodePool` worker so steady-state decode
/// performs **zero heap allocations per block**, matching the compress
/// side's contract.
///
/// Determinism contract: decoding through a reused `DecodeScratch` produces
/// byte-identical output to a fresh one — the model is reset in place to
/// the exact state `Model::new()` builds.
pub struct DecodeScratch {
    /// HEAVY: probability model (boxed so qlz-only readers never pay).
    pub(crate) heavy_model: Option<Box<crate::heavy::Model>>,
}

impl DecodeScratch {
    pub fn new() -> Self {
        DecodeScratch { heavy_model: None }
    }
}

impl Default for DecodeScratch {
    fn default() -> Self {
        DecodeScratch::new()
    }
}

/// Resets `v` to `len` entries of `u32::MAX` without shrinking capacity;
/// allocates only when `len` grows beyond the current capacity.
#[inline]
pub(crate) fn reset_table(v: &mut Vec<u32>, len: usize) {
    if v.len() == len {
        v.fill(u32::MAX);
    } else {
        v.clear();
        v.resize(len, u32::MAX);
    }
}

/// Ensures `v.len() >= len` without initializing newly *or* previously held
/// contents — for chain arrays whose entries are provably written before
/// read (each `prev[pos]` is stored before the table head can point at
/// `pos`, and chains only start at heads set in the current block).
#[inline]
pub(crate) fn ensure_len_uninit(v: &mut Vec<u32>, len: usize) {
    if v.len() < len {
        v.resize(len, u32::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_starts_empty() {
        let s = Scratch::new();
        assert_eq!(s.table_bytes(), 0);
    }

    #[test]
    fn reset_table_reuses_capacity() {
        let mut v = Vec::new();
        reset_table(&mut v, 16);
        v[3] = 7;
        let ptr = v.as_ptr();
        reset_table(&mut v, 16);
        assert_eq!(v[3], u32::MAX);
        assert_eq!(v.as_ptr(), ptr, "reset must not reallocate at same size");
    }

    #[test]
    fn ensure_len_uninit_grows_only() {
        let mut v = vec![1, 2, 3];
        ensure_len_uninit(&mut v, 2);
        assert_eq!(v.len(), 3, "never shrinks");
        ensure_len_uninit(&mut v, 5);
        assert_eq!(v.len(), 5);
        assert_eq!(&v[..3], &[1, 2, 3], "existing contents untouched");
    }

    #[test]
    fn out_hint_tracks_previous_block() {
        let mut s = Scratch::new();
        let first = s.out_hint(crate::CodecId::QlzLight, 128 * 1024);
        assert!(first >= 64);
        s.note_out(crate::CodecId::QlzLight, 40_000);
        let next = s.out_hint(crate::CodecId::QlzLight, 128 * 1024);
        assert!((40_000..=128 * 1024 + 128 * 1024 / 8 + 16).contains(&next));
    }
}
