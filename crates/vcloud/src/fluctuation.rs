//! Stochastic processes modelling I/O throughput fluctuation.
//!
//! Section II of the paper measures three qualitatively different regimes:
//! near-constant throughput (native hardware), mildly noisy throughput
//! (local Eucalyptus cloud) and the violent on/off switching reported for
//! Amazon EC2 — "TCP/UDP throughput can vary between 1 GBit/s and zero at a
//! time granularity of tens of milliseconds" (Wang & Ng, INFOCOM'10, which
//! the paper's own EC2 runs confirm).
//!
//! All processes produce a multiplicative factor around 1.0 that scales a
//! nominal bandwidth, sampled at arbitrary (monotone) virtual times.

use adcomp_corpus::Prng;

/// A time-indexed multiplicative throughput factor.
pub trait Fluctuation: Send {
    /// Factor at virtual time `t` (seconds). Calls must use non-decreasing
    /// `t` — processes evolve state forward only.
    fn factor_at(&mut self, t: f64) -> f64;
}

/// No fluctuation: always 1.0.
#[derive(Debug, Clone, Default)]
pub struct Constant;

impl Fluctuation for Constant {
    fn factor_at(&mut self, _t: f64) -> f64 {
        1.0
    }
}

/// First-order autoregressive noise around 1.0, resampled on a fixed grid.
///
/// `x_{k+1} = rho * x_k + e_k`, `e_k ~ N(0, sigma)`; factor = `1 + x`,
/// clamped to stay positive.
#[derive(Debug, Clone)]
pub struct Ar1 {
    rho: f64,
    sigma: f64,
    step: f64,
    state: f64,
    next_t: f64,
    rng: Prng,
}

impl Ar1 {
    /// `sigma` is the innovation standard deviation; `step` the resampling
    /// interval in seconds.
    pub fn new(rho: f64, sigma: f64, step: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rho));
        assert!(sigma >= 0.0 && step > 0.0);
        Ar1 { rho, sigma, step, state: 0.0, next_t: 0.0, rng: Prng::new(seed ^ 0xA21) }
    }

    /// Stationary standard deviation of the process.
    pub fn stationary_sd(&self) -> f64 {
        self.sigma / (1.0 - self.rho * self.rho).sqrt()
    }
}

impl Fluctuation for Ar1 {
    fn factor_at(&mut self, t: f64) -> f64 {
        while t >= self.next_t {
            self.state = self.rho * self.state + self.rng.normal(0.0, self.sigma);
            self.next_t += self.step;
        }
        (1.0 + self.state).max(0.05)
    }
}

/// Two-state on/off (Gilbert-style) process: a *good* state near full
/// throughput and a *bad* state near zero, with exponentially distributed
/// sojourn times — the EC2 regime.
#[derive(Debug, Clone)]
pub struct OnOff {
    good_factor: f64,
    bad_factor: f64,
    mean_good_s: f64,
    mean_bad_s: f64,
    in_good: bool,
    until_t: f64,
    rng: Prng,
}

impl OnOff {
    pub fn new(
        good_factor: f64,
        bad_factor: f64,
        mean_good_s: f64,
        mean_bad_s: f64,
        seed: u64,
    ) -> Self {
        assert!(good_factor > bad_factor && bad_factor >= 0.0);
        assert!(mean_good_s > 0.0 && mean_bad_s > 0.0);
        OnOff {
            good_factor,
            bad_factor,
            mean_good_s,
            mean_bad_s,
            in_good: true,
            until_t: 0.0,
            rng: Prng::new(seed ^ 0x0F0F),
        }
    }

    /// The paper-calibrated EC2 regime: swings between near-line-rate and
    /// near-zero on a tens-of-milliseconds timescale.
    pub fn ec2(seed: u64) -> Self {
        OnOff::new(1.0, 0.04, 0.060, 0.025, seed)
    }

    /// Long-run mean factor.
    pub fn mean_factor(&self) -> f64 {
        let pg = self.mean_good_s / (self.mean_good_s + self.mean_bad_s);
        pg * self.good_factor + (1.0 - pg) * self.bad_factor
    }
}

impl Fluctuation for OnOff {
    fn factor_at(&mut self, t: f64) -> f64 {
        while t >= self.until_t {
            self.in_good = !self.in_good;
            let mean = if self.in_good { self.mean_good_s } else { self.mean_bad_s };
            self.until_t += self.rng.exp(mean);
        }
        if self.in_good {
            self.good_factor
        } else {
            self.bad_factor
        }
    }
}

/// Forwarding impl so combinators like [`Outages`] can wrap an
/// already-boxed process (e.g. the one a [`SharedLink`](crate::link)
/// was built with).
impl Fluctuation for Box<dyn Fluctuation> {
    fn factor_at(&mut self, t: f64) -> f64 {
        (**self).factor_at(t)
    }
}

/// Deterministic full link outages layered over any base process.
///
/// Unlike [`OnOff`], whose "bad" state still trickles a few percent of
/// line rate, an outage forces the factor to **exactly zero** — the link
/// is dead, nothing moves. This models the hard stalls the chaos soak
/// drives through [`SharedLink`](crate::link::SharedLink): live-migration
/// blackouts, ARP storms, or a neighbour VM saturating the host NIC
/// queue outright. Up/outage sojourns are exponentially distributed from
/// a dedicated seeded stream, so two processes built with the same seed
/// stall at the same virtual times.
pub struct Outages<F: Fluctuation> {
    inner: F,
    mean_up_s: f64,
    mean_outage_s: f64,
    up: bool,
    until_t: f64,
    outages_seen: u64,
    rng: Prng,
}

impl<F: Fluctuation> Outages<F> {
    /// `mean_up_s` / `mean_outage_s` are the mean sojourn times of the
    /// healthy and dead states.
    pub fn new(inner: F, mean_up_s: f64, mean_outage_s: f64, seed: u64) -> Self {
        assert!(mean_up_s > 0.0 && mean_outage_s > 0.0);
        Outages {
            inner,
            mean_up_s,
            mean_outage_s,
            // The first `factor_at` flip lands in the *up* state, so a
            // fresh link starts healthy (mirrors `OnOff` mechanics).
            up: false,
            until_t: 0.0,
            outages_seen: 0,
            rng: Prng::new(seed ^ 0x007A6E5),
        }
    }

    /// How many distinct outage windows have started so far.
    pub fn outages_seen(&self) -> u64 {
        self.outages_seen
    }

    /// Fraction of time the link is expected to be up in the long run.
    pub fn availability(&self) -> f64 {
        self.mean_up_s / (self.mean_up_s + self.mean_outage_s)
    }
}

impl<F: Fluctuation> Fluctuation for Outages<F> {
    fn factor_at(&mut self, t: f64) -> f64 {
        while t >= self.until_t {
            self.up = !self.up;
            let mean = if self.up { self.mean_up_s } else { self.mean_outage_s };
            if !self.up {
                self.outages_seen += 1;
            }
            self.until_t += self.rng.exp(mean);
        }
        if self.up {
            self.inner.factor_at(t)
        } else {
            0.0
        }
    }
}

/// Scales another process's deviation from 1.0 (used to derive platform
/// variants from one base process).
pub struct Scaled<F: Fluctuation> {
    inner: F,
    amount: f64,
}

impl<F: Fluctuation> Scaled<F> {
    pub fn new(inner: F, amount: f64) -> Self {
        Scaled { inner, amount }
    }
}

impl<F: Fluctuation> Fluctuation for Scaled<F> {
    fn factor_at(&mut self, t: f64) -> f64 {
        (1.0 + (self.inner.factor_at(t) - 1.0) * self.amount).max(0.01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        let mut c = Constant;
        assert_eq!(c.factor_at(0.0), 1.0);
        assert_eq!(c.factor_at(100.0), 1.0);
    }

    #[test]
    fn ar1_mean_near_one_and_positive() {
        let mut p = Ar1::new(0.9, 0.02, 0.1, 7);
        let mut sum = 0.0;
        let n = 10_000;
        for i in 0..n {
            let f = p.factor_at(i as f64 * 0.1);
            assert!(f > 0.0);
            sum += f;
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn ar1_is_autocorrelated() {
        let mut p = Ar1::new(0.95, 0.05, 0.1, 3);
        let xs: Vec<f64> = (0..5000).map(|i| p.factor_at(i as f64 * 0.1) - 1.0).collect();
        let var: f64 = xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64;
        let cov: f64 =
            xs.windows(2).map(|w| w[0] * w[1]).sum::<f64>() / (xs.len() - 1) as f64;
        let rho = cov / var;
        assert!(rho > 0.7, "lag-1 autocorrelation {rho}");
    }

    #[test]
    fn onoff_alternates_between_exactly_two_levels() {
        let mut p = OnOff::new(1.0, 0.1, 0.05, 0.02, 11);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..20_000 {
            let f = p.factor_at(i as f64 * 0.001);
            seen.insert((f * 1000.0) as i64);
        }
        assert_eq!(seen.len(), 2, "factors seen: {seen:?}");
    }

    #[test]
    fn onoff_occupancy_matches_sojourn_means() {
        let mut p = OnOff::new(1.0, 0.0, 0.06, 0.02, 5);
        let mut good = 0u32;
        let n = 200_000;
        for i in 0..n {
            if p.factor_at(i as f64 * 0.001) > 0.5 {
                good += 1;
            }
        }
        let frac = good as f64 / n as f64;
        let expect = 0.06 / 0.08;
        assert!((frac - expect).abs() < 0.05, "good fraction {frac} vs {expect}");
        assert!((p.mean_factor() - expect).abs() < 1e-12);
    }

    #[test]
    fn ec2_process_is_violent() {
        let mut p = OnOff::ec2(1);
        let xs: Vec<f64> = (0..50_000).map(|i| p.factor_at(i as f64 * 0.001)).collect();
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(0.0, f64::max);
        assert!(min < 0.1 && max > 0.9, "range [{min}, {max}]");
    }

    #[test]
    fn scaled_damps_deviation() {
        let mut base = OnOff::new(1.0, 0.0, 0.05, 0.05, 2);
        let mut scaled = Scaled::new(OnOff::new(1.0, 0.0, 0.05, 0.05, 2), 0.1);
        for i in 0..1000 {
            let t = i as f64 * 0.01;
            let b = base.factor_at(t);
            let s = scaled.factor_at(t);
            assert!((s - 1.0).abs() <= (b - 1.0).abs() + 1e-12);
        }
    }

    #[test]
    fn outages_force_factor_to_exact_zero() {
        let mut p = Outages::new(Constant, 0.05, 0.02, 9);
        let mut zeros = 0u32;
        let mut ones = 0u32;
        for i in 0..50_000 {
            let f = p.factor_at(i as f64 * 0.001);
            if f == 0.0 {
                zeros += 1;
            } else if f == 1.0 {
                ones += 1;
            } else {
                panic!("outage combinator leaked factor {f}");
            }
        }
        assert!(zeros > 0 && ones > 0, "zeros {zeros} ones {ones}");
        assert!(p.outages_seen() > 10);
        let frac_up = ones as f64 / 50_000.0;
        assert!((frac_up - p.availability()).abs() < 0.08, "up fraction {frac_up}");
    }

    #[test]
    fn outages_pass_inner_process_through_when_up() {
        // Same seed: the wrapped AR(1) must agree with a bare copy at
        // every up-instant (outages never perturb the inner stream at
        // times it actually gets sampled).
        let mut bare = Ar1::new(0.9, 0.05, 0.01, 21);
        // mean_up so large the first up window effectively never ends.
        let mut wrapped = Outages::new(Ar1::new(0.9, 0.05, 0.01, 21), 1e9, 100.0, 4);
        for i in 0..40 {
            let t = i as f64 * 0.005;
            assert_eq!(wrapped.factor_at(t), bare.factor_at(t));
        }
    }

    #[test]
    fn outages_deterministic_and_boxable() {
        let mk = || {
            let inner: Box<dyn Fluctuation> = Box::new(OnOff::ec2(5));
            Outages::new(inner, 0.2, 0.05, 77)
        };
        let (mut a, mut b) = (mk(), mk());
        for i in 0..5_000 {
            let t = i as f64 * 0.002;
            assert_eq!(a.factor_at(t), b.factor_at(t));
        }
        assert_eq!(a.outages_seen(), b.outages_seen());
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut a = Ar1::new(0.9, 0.05, 0.1, 42);
        let mut b = Ar1::new(0.9, 0.05, 0.1, 42);
        for i in 0..100 {
            let t = i as f64;
            assert_eq!(a.factor_at(t), b.factor_at(t));
        }
    }
}
