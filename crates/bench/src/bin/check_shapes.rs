//! CHECK — self-verification of DESIGN.md's result-shape acceptance
//! criteria. Runs fast, deterministic versions of every experiment and
//! prints PASS/FAIL per criterion; exits non-zero if anything fails.
//!
//! The simulation cells fan out on the deterministic experiment runner
//! (`ADCOMP_THREADS` pins the worker count; verdicts are bit-identical for
//! any setting — see `adcomp_bench::runner`). `--quick` scales simulated
//! volumes down 2× for CI smoke runs; the shape criteria are volume-robust.
//!
//! Run: `cargo run --release -p adcomp-bench --bin check_shapes [--quick]`

use adcomp_bench::{quick_mode, runner, speed_model, trace_path, write_run_trace};
use adcomp_core::model::{DecisionModel, RateBasedModel, StaticModel};
use adcomp_corpus::Class;
use adcomp_metrics::Table;
use adcomp_trace::{MemorySink, RunManifest, TraceHandle};
use adcomp_vcloud::experiments::{fig1_cpu_accuracy, fig2_net_throughput, fig3_file_write};
use adcomp_vcloud::platform::IoOp;
use adcomp_vcloud::{
    run_transfer, run_transfer_traced, AlternatingClass, ConstantClass, Platform, SpeedModel,
    TransferConfig,
};
use std::sync::Arc;

const GB: u64 = 1_000_000_000;
const NFLOWS: usize = 4;
const NLEVELS: usize = 4;

struct Checker {
    table: Table,
    failures: u32,
}

impl Checker {
    fn new() -> Self {
        Checker { table: Table::new(vec!["criterion", "observed", "verdict"]), failures: 0 }
    }

    fn check(&mut self, name: &str, observed: String, pass: bool) {
        if !pass {
            self.failures += 1;
        }
        self.table.row(vec![
            name.to_string(),
            observed,
            if pass { "PASS".to_string() } else { "FAIL".to_string() },
        ]);
    }
}

fn static_secs(speed: &SpeedModel, vol: u64, class: Class, flows: usize, level: usize) -> f64 {
    let cfg = TransferConfig {
        total_bytes: vol,
        background_flows: flows,
        deterministic: true,
        cpu_jitter: 0.0,
        ..TransferConfig::paper_default()
    };
    run_transfer(&cfg, speed, &mut ConstantClass(class), Box::new(StaticModel::new(level, 4)))
        .completion_secs
}

fn dynamic_secs(speed: &SpeedModel, vol: u64, class: Class, flows: usize) -> f64 {
    let cfg = TransferConfig {
        total_bytes: vol,
        background_flows: flows,
        deterministic: true,
        cpu_jitter: 0.0,
        ..TransferConfig::paper_default()
    };
    run_transfer(
        &cfg,
        speed,
        &mut ConstantClass(class),
        Box::new(RateBasedModel::paper_default()) as Box<dyn DecisionModel>,
    )
    .completion_secs
}

fn main() -> std::process::ExitCode {
    let speed = speed_model();
    // `--quick` shrinks the simulated volumes 2× (CI smoke); the checked
    // *shapes* (orderings, ratios, variance structure) are volume-robust at
    // that scale. FIG4's probe-decay criterion is inherently about run
    // *length* and keeps its full volume.
    let scale = if quick_mode() { 2 } else { 1 };
    let gb = |x: u64| x * GB / scale;
    let mut c = Checker::new();

    // The two TAB2 grids fan out on the runner: 3 classes × 4 contention
    // settings × 4 static levels, plus 3 × 4 dynamic cells. Everything
    // below reads from these precomputed grids.
    let statics = runner::run_cells(Class::ALL.len() * NFLOWS * NLEVELS, |i| {
        let (ci, fl, l) = (i / (NFLOWS * NLEVELS), (i / NLEVELS) % NFLOWS, i % NLEVELS);
        static_secs(&speed, gb(2), Class::ALL[ci], fl, l)
    });
    let dynamics = runner::run_cells(Class::ALL.len() * NFLOWS, |i| {
        dynamic_secs(&speed, gb(2), Class::ALL[i / NFLOWS], i % NFLOWS)
    });
    let cidx = |class: Class| Class::ALL.iter().position(|&c| c == class).unwrap();
    let sgrid = |class: Class, flows: usize, level: usize| {
        statics[(cidx(class) * NFLOWS + flows) * NLEVELS + level]
    };
    let dgrid = |class: Class, flows: usize| dynamics[cidx(class) * NFLOWS + flows];

    // TAB2 shapes.
    for flows in 0..NFLOWS {
        let times: Vec<f64> = (0..NLEVELS).map(|l| sgrid(Class::High, flows, l)).collect();
        let best = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        c.check(
            &format!("TAB2: LIGHT fastest on HIGH, {flows} conn"),
            format!("best level = {best}"),
            best == 1,
        );
    }
    {
        let times: Vec<f64> = (0..NLEVELS).map(|l| sgrid(Class::Low, 0, l)).collect();
        let best = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        c.check("TAB2: NO fastest on LOW, 0 conn", format!("best level = {best}"), best == 0);
    }
    {
        let mut worst_margin = f64::INFINITY;
        for class in Class::ALL {
            let heavy = sgrid(class, 0, 3);
            let others = (0..3).map(|l| sgrid(class, 0, l)).fold(f64::INFINITY, f64::min);
            worst_margin = worst_margin.min(heavy / others);
        }
        c.check(
            "TAB2: HEAVY worst by >= 3x (vs best)",
            format!("min margin {worst_margin:.1}x"),
            worst_margin >= 3.0,
        );
    }
    {
        let mut worst = 0.0f64;
        for class in Class::ALL {
            for flows in [0usize, 2] {
                let best =
                    (0..NLEVELS).map(|l| sgrid(class, flows, l)).fold(f64::INFINITY, f64::min);
                let dynamic = dgrid(class, flows);
                worst = worst.max(dynamic / best - 1.0);
            }
        }
        c.check(
            "TAB2: DYNAMIC within +25% of best static",
            format!("worst {:+.0}%", worst * 100.0),
            worst <= 0.25,
        );
    }
    {
        let no = sgrid(Class::High, 3, 0);
        let dynamic = dgrid(Class::High, 3);
        c.check(
            "Conclusion: up to ~4x throughput improvement",
            format!("{:.1}x on HIGH/3conn", no / dynamic),
            no / dynamic > 3.0,
        );
    }

    // FIG1 shapes. The per-(platform, op) accuracy probes are independent —
    // fan them out too.
    {
        let send = fig1_cpu_accuracy(Platform::KvmPara, IoOp::NetSend, 200, 1).gap().unwrap();
        let read = fig1_cpu_accuracy(Platform::XenPara, IoOp::FileRead, 200, 1).gap().unwrap();
        c.check("FIG1: KVM-para net send gap ~15x", format!("{send:.1}x"), send > 10.0);
        c.check("FIG1: XEN file read gap ~15x", format!("{read:.1}x"), read > 10.0);
        let cells: Vec<(Platform, IoOp)> = [Platform::KvmFull, Platform::KvmPara, Platform::XenPara]
            .into_iter()
            .flat_map(|p| IoOp::ALL.into_iter().map(move |op| (p, op)))
            .collect();
        let gaps = runner::map_cells(&cells, |_, &(p, op)| {
            fig1_cpu_accuracy(p, op, 120, 2).gap().unwrap()
        });
        let all_under = gaps.iter().all(|&g| g > 1.0);
        c.check("FIG1: every virtualized guest under-reports", format!("{all_under}"), all_under);
    }

    // FIG2 / FIG3 shapes.
    {
        let native = fig2_net_throughput(Platform::Native, gb(2), 3).summary();
        let ec2 = fig2_net_throughput(Platform::Ec2, gb(2), 3).summary();
        let ratio = (ec2.sd / ec2.mean) / (native.sd / native.mean);
        c.check("FIG2: EC2 variance >> native", format!("CV ratio {ratio:.0}x"), ratio > 5.0);
        let xen = fig3_file_write(Platform::XenPara, gb(20), 7).summary();
        c.check(
            "FIG3: XEN cache bursts and stalls",
            format!("min {:.1}, max {:.0} MB/s", xen.min / 1e6, xen.max / 1e6),
            xen.min / 1e6 < 30.0 && xen.max / 1e6 > 300.0,
        );
    }

    // FIG4 probe decay. Full volume even under `--quick`: the criterion
    // counts switches in the two halves of the run, which only separates
    // once the backoff has had enough epochs to stretch.
    {
        let cfg = TransferConfig {
            total_bytes: 5 * GB,
            deterministic: true,
            cpu_jitter: 0.0,
            ..TransferConfig::paper_default()
        };
        let out = run_transfer(
            &cfg,
            &speed,
            &mut ConstantClass(Class::High),
            Box::new(RateBasedModel::paper_default()),
        );
        let half = out.completion_secs / 2.0;
        let first = out.level_trace.points().iter().skip(1).filter(|&&(t, _)| t < half).count();
        let second = out.level_trace.points().iter().skip(1).filter(|&&(t, _)| t >= half).count();
        c.check(
            "FIG4: probing decays over the run",
            format!("switches {first} -> {second}"),
            first >= second,
        );
    }

    // FIG6 level tracking.
    {
        let cfg = TransferConfig {
            total_bytes: gb(10),
            deterministic: true,
            cpu_jitter: 0.0,
            ..TransferConfig::paper_default()
        };
        let mut sched =
            AlternatingClass { classes: vec![Class::High, Class::Low], period_bytes: gb(2) };
        let out = run_transfer(&cfg, &speed, &mut sched, Box::new(RateBasedModel::paper_default()));
        let total: u64 = out.blocks_per_level.iter().sum();
        let no_share = out.blocks_per_level[0] as f64 / total as f64;
        let light_share = out.blocks_per_level[1] as f64 / total as f64;
        c.check(
            "FIG6: level follows compressibility",
            format!("NO {:.0}%, LIGHT {:.0}%", no_share * 100.0, light_share * 100.0),
            no_share > 0.10 && light_share > 0.10,
        );
    }

    // `--trace <path>`: emit the structured trace of one representative
    // Table-2 cell (DYNAMIC, HIGH, 2 connections, deterministic) — the CI
    // smoke step lints this JSONL against the event schema.
    if let Some(path) = trace_path() {
        let sink = Arc::new(MemorySink::new());
        let cfg = TransferConfig {
            total_bytes: gb(2),
            background_flows: 2,
            deterministic: true,
            cpu_jitter: 0.0,
            ..TransferConfig::paper_default()
        };
        let out = run_transfer_traced(
            &cfg,
            &speed,
            &mut ConstantClass(Class::High),
            Box::new(RateBasedModel::paper_default()),
            TraceHandle::new(sink.clone()),
        );
        let manifest = RunManifest::new("check_shapes_cell", cfg.seed)
            .coord("scheme", "DYNAMIC")
            .coord("class", Class::High.name())
            .coord("flows", cfg.background_flows)
            .cfg("deterministic", true)
            .volume(cfg.total_bytes);
        write_run_trace(&path, &manifest, &sink.take());
        eprintln!(
            "CHECK: traced cell completed in {:.0} s over {} epochs",
            out.completion_secs, out.epochs
        );
    }

    println!("{}", c.table.render());
    if c.failures == 0 {
        println!("All result-shape criteria hold.");
        std::process::ExitCode::SUCCESS
    } else {
        println!("{} criterion(s) FAILED.", c.failures);
        std::process::ExitCode::FAILURE
    }
}
