//! Minimal, dependency-free shim exposing the subset of the `parking_lot`
//! API this workspace uses, implemented on top of `std::sync`.
//!
//! The workspace vendors this crate so builds work in fully offline
//! environments (no registry access). Semantics match `parking_lot` for the
//! subset exercised here:
//!
//! - `Mutex::lock()` returns a guard directly (no `Result`); a poisoned
//!   std mutex is treated as recovered (`into_inner` of the poison error),
//!   matching parking_lot's "no poisoning" contract.
//! - `Condvar::wait(&mut MutexGuard)` re-acquires the same mutex.

use std::sync::{self, PoisonError};

/// Mutex with a `parking_lot`-style panic-free API.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard { inner: Some(p.into_inner()) }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`]. Wraps the std guard in an `Option` so
/// [`Condvar::wait`] can temporarily take ownership while blocking.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Condition variable with a `parking_lot`-style API (`wait` takes
/// `&mut MutexGuard` and re-acquires the same lock).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    pub fn wait_timeout<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> bool {
        let std_guard = guard.inner.take().expect("guard taken");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        res.timed_out()
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// RwLock with a `parking_lot`-style panic-free API.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
