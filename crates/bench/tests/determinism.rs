//! Regression tests for the parallel runner's determinism contract: the
//! TAB2 grid must be **bit-identical** for any worker count, because every
//! cell derives its randomness from its own coordinates (never from
//! scheduling order). Guards the seed-derivation scheme in
//! `adcomp_bench::table2` and `adcomp_bench::runner`.

use adcomp_bench::table2::{compute_grid, FLOW_SETTINGS};
use adcomp_bench::{runner, schemes};
use adcomp_corpus::Class;
use adcomp_vcloud::SpeedModel;

/// Small volume: the contract under test is about seed derivation, not
/// simulated scale.
const TOTAL: u64 = 200_000_000;
const REPS: usize = 2;

#[test]
fn tab2_grid_bit_identical_for_1_and_4_workers() {
    let speed = SpeedModel::paper_fit();
    let serial = compute_grid(TOTAL, REPS, &speed, 1);
    let par = compute_grid(TOTAL, REPS, &speed, 4);
    assert_eq!(serial.len(), FLOW_SETTINGS * schemes().len() * Class::ALL.len());
    assert_eq!(serial.len(), par.len());
    for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
        assert_eq!((a.flows, a.scheme, a.class), (b.flows, b.scheme, b.class), "cell {i}");
        // Bit-level comparison: even a last-ulp divergence (e.g. from
        // accumulation order leaking into a cell) must fail the test.
        assert_eq!(
            a.mean.to_bits(),
            b.mean.to_bits(),
            "cell {i} mean diverged: {} vs {}",
            a.mean,
            b.mean
        );
        assert_eq!(
            a.sd.to_bits(),
            b.sd.to_bits(),
            "cell {i} sd diverged: {} vs {}",
            a.sd,
            b.sd
        );
    }
}

#[test]
fn tab2_grid_bit_identical_for_oversubscribed_workers() {
    // More workers than cells must also agree (exercises the worker clamp).
    let speed = SpeedModel::paper_fit();
    let serial = compute_grid(TOTAL, REPS, &speed, 1);
    let many = compute_grid(TOTAL, REPS, &speed, 128);
    assert_eq!(serial, many);
}

#[test]
fn runner_cell_order_is_execution_independent() {
    // Cells that finish in scrambled order (longer work for earlier
    // indices) still land in their own slots.
    let out = runner::run_cells_on(4, 50, |i| {
        // Unequal, deterministic busywork per cell.
        let mut acc = 0u64;
        for k in 0..((50 - i) * 1000) as u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
        }
        (i, acc)
    });
    for (slot, (i, _)) in out.iter().enumerate() {
        assert_eq!(slot, *i);
    }
}
