//! CHECK — self-verification of DESIGN.md's result-shape acceptance
//! criteria. Runs fast, deterministic versions of every experiment and
//! prints PASS/FAIL per criterion; exits non-zero if anything fails.
//!
//! Run: `cargo run --release -p adcomp-bench --bin check_shapes`

use adcomp_core::model::{DecisionModel, RateBasedModel, StaticModel};
use adcomp_corpus::Class;
use adcomp_metrics::Table;
use adcomp_vcloud::experiments::{fig1_cpu_accuracy, fig2_net_throughput, fig3_file_write};
use adcomp_vcloud::platform::IoOp;
use adcomp_vcloud::{
    run_transfer, AlternatingClass, ConstantClass, Platform, SpeedModel, TransferConfig,
};

const GB: u64 = 1_000_000_000;

struct Checker {
    table: Table,
    failures: u32,
}

impl Checker {
    fn new() -> Self {
        Checker { table: Table::new(vec!["criterion", "observed", "verdict"]), failures: 0 }
    }

    fn check(&mut self, name: &str, observed: String, pass: bool) {
        if !pass {
            self.failures += 1;
        }
        self.table.row(vec![
            name.to_string(),
            observed,
            if pass { "PASS".to_string() } else { "FAIL".to_string() },
        ]);
    }
}

fn static_secs(speed: &SpeedModel, class: Class, flows: usize, level: usize) -> f64 {
    let cfg = TransferConfig {
        total_bytes: 2 * GB,
        background_flows: flows,
        deterministic: true,
        cpu_jitter: 0.0,
        ..TransferConfig::paper_default()
    };
    run_transfer(&cfg, speed, &mut ConstantClass(class), Box::new(StaticModel::new(level, 4)))
        .completion_secs
}

fn dynamic_secs(speed: &SpeedModel, class: Class, flows: usize) -> f64 {
    let cfg = TransferConfig {
        total_bytes: 2 * GB,
        background_flows: flows,
        deterministic: true,
        cpu_jitter: 0.0,
        ..TransferConfig::paper_default()
    };
    run_transfer(
        &cfg,
        speed,
        &mut ConstantClass(class),
        Box::new(RateBasedModel::paper_default()) as Box<dyn DecisionModel>,
    )
    .completion_secs
}

fn main() -> std::process::ExitCode {
    let speed = SpeedModel::paper_fit();
    let mut c = Checker::new();

    // TAB2 shapes.
    for flows in 0..4 {
        let times: Vec<f64> = (0..4).map(|l| static_secs(&speed, Class::High, flows, l)).collect();
        let best = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        c.check(
            &format!("TAB2: LIGHT fastest on HIGH, {flows} conn"),
            format!("best level = {best}"),
            best == 1,
        );
    }
    {
        let times: Vec<f64> = (0..4).map(|l| static_secs(&speed, Class::Low, 0, l)).collect();
        let best = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        c.check("TAB2: NO fastest on LOW, 0 conn", format!("best level = {best}"), best == 0);
    }
    {
        let mut worst_margin = f64::INFINITY;
        for class in Class::ALL {
            let heavy = static_secs(&speed, class, 0, 3);
            let others =
                (0..3).map(|l| static_secs(&speed, class, 0, l)).fold(f64::INFINITY, f64::min);
            worst_margin = worst_margin.min(heavy / others);
        }
        c.check(
            "TAB2: HEAVY worst by >= 3x (vs best)",
            format!("min margin {worst_margin:.1}x"),
            worst_margin >= 3.0,
        );
    }
    {
        let mut worst = 0.0f64;
        for class in Class::ALL {
            for flows in [0usize, 2] {
                let best =
                    (0..4).map(|l| static_secs(&speed, class, flows, l)).fold(f64::INFINITY, f64::min);
                let dynamic = dynamic_secs(&speed, class, flows);
                worst = worst.max(dynamic / best - 1.0);
            }
        }
        c.check(
            "TAB2: DYNAMIC within +25% of best static",
            format!("worst {:+.0}%", worst * 100.0),
            worst <= 0.25,
        );
    }
    {
        let no = static_secs(&speed, Class::High, 3, 0);
        let dynamic = dynamic_secs(&speed, Class::High, 3);
        c.check(
            "Conclusion: up to ~4x throughput improvement",
            format!("{:.1}x on HIGH/3conn", no / dynamic),
            no / dynamic > 3.0,
        );
    }

    // FIG1 shapes.
    {
        let send = fig1_cpu_accuracy(Platform::KvmPara, IoOp::NetSend, 200, 1).gap().unwrap();
        let read = fig1_cpu_accuracy(Platform::XenPara, IoOp::FileRead, 200, 1).gap().unwrap();
        c.check("FIG1: KVM-para net send gap ~15x", format!("{send:.1}x"), send > 10.0);
        c.check("FIG1: XEN file read gap ~15x", format!("{read:.1}x"), read > 10.0);
        let mut all_under = true;
        for p in [Platform::KvmFull, Platform::KvmPara, Platform::XenPara] {
            for op in IoOp::ALL {
                all_under &= fig1_cpu_accuracy(p, op, 120, 2).gap().unwrap() > 1.0;
            }
        }
        c.check("FIG1: every virtualized guest under-reports", format!("{all_under}"), all_under);
    }

    // FIG2 / FIG3 shapes.
    {
        let native = fig2_net_throughput(Platform::Native, 2 * GB, 3).summary();
        let ec2 = fig2_net_throughput(Platform::Ec2, 2 * GB, 3).summary();
        let ratio = (ec2.sd / ec2.mean) / (native.sd / native.mean);
        c.check("FIG2: EC2 variance >> native", format!("CV ratio {ratio:.0}x"), ratio > 5.0);
        let xen = fig3_file_write(Platform::XenPara, 20 * GB, 7).summary();
        c.check(
            "FIG3: XEN cache bursts and stalls",
            format!("min {:.1}, max {:.0} MB/s", xen.min / 1e6, xen.max / 1e6),
            xen.min / 1e6 < 30.0 && xen.max / 1e6 > 300.0,
        );
    }

    // FIG4 probe decay.
    {
        let cfg = TransferConfig {
            total_bytes: 5 * GB,
            deterministic: true,
            cpu_jitter: 0.0,
            ..TransferConfig::paper_default()
        };
        let out = run_transfer(
            &cfg,
            &speed,
            &mut ConstantClass(Class::High),
            Box::new(RateBasedModel::paper_default()),
        );
        let half = out.completion_secs / 2.0;
        let first = out.level_trace.points().iter().skip(1).filter(|&&(t, _)| t < half).count();
        let second = out.level_trace.points().iter().skip(1).filter(|&&(t, _)| t >= half).count();
        c.check(
            "FIG4: probing decays over the run",
            format!("switches {first} -> {second}"),
            first >= second,
        );
    }

    // FIG6 level tracking.
    {
        let cfg = TransferConfig {
            total_bytes: 10 * GB,
            deterministic: true,
            cpu_jitter: 0.0,
            ..TransferConfig::paper_default()
        };
        let mut sched =
            AlternatingClass { classes: vec![Class::High, Class::Low], period_bytes: 2 * GB };
        let out = run_transfer(&cfg, &speed, &mut sched, Box::new(RateBasedModel::paper_default()));
        let total: u64 = out.blocks_per_level.iter().sum();
        let no_share = out.blocks_per_level[0] as f64 / total as f64;
        let light_share = out.blocks_per_level[1] as f64 / total as f64;
        c.check(
            "FIG6: level follows compressibility",
            format!("NO {:.0}%, LIGHT {:.0}%", no_share * 100.0, light_share * 100.0),
            no_share > 0.10 && light_share > 0.10,
        );
    }

    println!("{}", c.table.render());
    if c.failures == 0 {
        println!("All result-shape criteria hold.");
        std::process::ExitCode::SUCCESS
    } else {
        println!("{} criterion(s) FAILED.", c.failures);
        std::process::ExitCode::FAILURE
    }
}
