//! Error type of the mini-Nephele engine.

use std::fmt;

/// Errors surfaced by job construction and execution.
#[derive(Debug)]
pub enum NepheleError {
    /// Graph validation failed (cycle, unknown vertex, ...).
    InvalidGraph(String),
    /// A task returned an error.
    TaskFailed { vertex: String, message: String },
    /// Channel-level I/O failure.
    Io(std::io::Error),
    /// A worker thread panicked.
    WorkerPanic(String),
}

impl fmt::Display for NepheleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NepheleError::InvalidGraph(why) => write!(f, "invalid job graph: {why}"),
            NepheleError::TaskFailed { vertex, message } => {
                write!(f, "task '{vertex}' failed: {message}")
            }
            NepheleError::Io(e) => write!(f, "channel I/O error: {e}"),
            NepheleError::WorkerPanic(v) => write!(f, "worker thread for '{v}' panicked"),
        }
    }
}

impl std::error::Error for NepheleError {}

impl From<std::io::Error> for NepheleError {
    fn from(e: std::io::Error) -> Self {
        NepheleError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, NepheleError>;
