//! Exportable run manifests.
//!
//! One manifest describes one traced run (or one experiment-grid cell):
//! its name, RNG seed, grid coordinates, configuration, data volume and
//! per-kind event counts. A manifest line precedes the run's events in a
//! JSONL trace, so any table cell can be located, replayed (same seed +
//! coordinates + config) and inspected without re-running the whole grid.
//!
//! Coordinates and config are ordered key/value lists — order is part of
//! the serialized bytes, keeping traces deterministic.

use crate::events::EventCounts;
use crate::json::ObjWriter;

/// See module docs.
#[derive(Debug, Clone, PartialEq)]
#[must_use = "a manifest does nothing until written to a trace"]
pub struct RunManifest {
    /// Run/cell identifier, e.g. `"table2/flows=2/DYNAMIC/TEXT"`.
    pub name: String,
    /// The seed that reproduces the run.
    pub seed: u64,
    /// Grid coordinates as ordered key/value pairs
    /// (e.g. `[("flows","2"),("scheme","DYNAMIC"),("class","TEXT")]`).
    pub coordinates: Vec<(String, String)>,
    /// Configuration as ordered key/value pairs (numbers pre-formatted).
    pub config: Vec<(String, String)>,
    /// Application bytes the run transfers (0 if not applicable).
    pub volume_bytes: u64,
    /// Per-kind event counts for the run's events.
    pub event_counts: EventCounts,
}

impl RunManifest {
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        RunManifest {
            name: name.into(),
            seed,
            coordinates: Vec::new(),
            config: Vec::new(),
            volume_bytes: 0,
            event_counts: EventCounts::default(),
        }
    }

    /// Appends one grid coordinate (builder style).
    pub fn coord(mut self, key: &str, value: impl ToString) -> Self {
        self.coordinates.push((key.to_string(), value.to_string()));
        self
    }

    /// Appends one config entry (builder style).
    pub fn cfg(mut self, key: &str, value: impl ToString) -> Self {
        self.config.push((key.to_string(), value.to_string()));
        self
    }

    /// Sets the transfer volume (builder style).
    pub fn volume(mut self, bytes: u64) -> Self {
        self.volume_bytes = bytes;
        self
    }

    /// Serializes as one JSON object with `"ev":"manifest"` first.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut o = ObjWriter::new();
        o.str_field("ev", "manifest");
        o.str_field("name", &self.name);
        o.u64_field("seed", self.seed);
        o.raw_field("coordinates", &kv_json(&self.coordinates));
        o.raw_field("config", &kv_json(&self.config));
        o.u64_field("volume_bytes", self.volume_bytes);
        o.raw_field("events", &self.event_counts.to_json());
        o.finish()
    }
}

fn kv_json(kvs: &[(String, String)]) -> String {
    let mut o = ObjWriter::new();
    for (k, v) in kvs {
        o.str_field(k, v);
    }
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_line;

    #[test]
    fn manifest_serializes_in_declared_order() {
        let m = RunManifest::new("table2/cell", 1234)
            .coord("flows", 2)
            .coord("scheme", "DYNAMIC")
            .coord("class", "TEXT")
            .cfg("epoch_secs", 2.0)
            .cfg("block_len", 131072)
            .volume(5_000_000_000);
        let j = m.to_json();
        let keys = validate_line(&j).unwrap();
        assert_eq!(
            keys,
            vec!["ev", "name", "seed", "coordinates", "config", "volume_bytes", "events"]
        );
        assert!(j.starts_with("{\"ev\":\"manifest\",\"name\":\"table2/cell\",\"seed\":1234"));
        assert!(j.contains("\"coordinates\":{\"flows\":\"2\",\"scheme\":\"DYNAMIC\",\"class\":\"TEXT\"}"));
        assert!(j.contains("\"epoch_secs\":\"2\""));
    }
}
