//! Accuracy property test for the P² streaming quantile estimator
//! ([`adcomp_metrics::P2Quantile`]) against exact sorted-sample quantiles.
//!
//! ## Error bound
//!
//! P² (Jain & Chlamtac, CACM 1985) keeps five markers and interpolates, so
//! it is an *approximation* whose error depends on the distribution shape
//! at the tracked quantile. As with other streaming sketches, the honest
//! way to state its accuracy is **rank error**: the empirical rank of the
//! estimate within the exact sorted sample must be close to the target
//! `q`. The bound this suite enforces, per case of n ∈ [500, 4000] i.i.d.
//! samples at q ∈ {0.5, 0.9, 0.99}:
//!
//! * uniform and exponential inputs: rank error ≤ **0.05** (5 points);
//! * heavy-tailed Pareto (α = 1.2, infinite variance): rank error ≤
//!   **0.10** — parabolic interpolation across the enormous top cell
//!   genuinely degrades P² here, and callers tracking tail latencies of
//!   heavy-tailed streams should prefer the log-linear histogram in
//!   `adcomp_metrics::registry`, whose bucket error is a fixed ≤ 6.25%
//!   of the value regardless of shape;
//! * for the median of the uniform distribution — the benign case the
//!   original paper reports — the estimate must additionally sit within
//!   5% of the true value's span (`hi − lo`).

use adcomp_metrics::P2Quantile;
use proptest::test_runner::{run_cases, TestRng};

/// Exact empirical quantile by sorting (nearest-rank with interpolation —
/// mirrors `adcomp_metrics::stats::quantile`).
fn exact(sorted: &[f64], q: f64) -> f64 {
    adcomp_metrics::stats::quantile(sorted, q)
}

fn uniform(rng: &mut TestRng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.fraction()
}

fn exponential(rng: &mut TestRng, rate: f64) -> f64 {
    // Inverse transform; 1 - U avoids ln(0).
    -(1.0 - rng.fraction()).ln() / rate
}

fn pareto(rng: &mut TestRng, alpha: f64) -> f64 {
    // Heavy tail: infinite variance for alpha <= 2.
    (1.0 - rng.fraction()).powf(-1.0 / alpha)
}

/// Checks the documented rank-error bound for one sample set and quantile:
/// the fraction of samples at or below the estimate must be within
/// `max_rank_err` of the target `q`.
fn check(samples: &mut [f64], q: f64, max_rank_err: f64, dist: &str) {
    let mut est = P2Quantile::new(q);
    for &x in samples.iter() {
        est.push(x);
    }
    let got = est.estimate();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Mid-rank: ties count half, so the rank of an exact sample value is
    // its center position.
    let below = samples.iter().filter(|&&x| x < got).count() as f64;
    let equal = samples.iter().filter(|&&x| x == got).count() as f64;
    let rank = (below + equal / 2.0) / samples.len() as f64;
    assert!(
        (rank - q).abs() <= max_rank_err,
        "{dist} q={q}: estimate {got} has empirical rank {rank:.4} \
         (bound ±{max_rank_err}, n={}, exact={})",
        samples.len(),
        exact(samples, q),
    );
}

#[test]
fn p2_tracks_uniform_exponential_and_heavy_tails() {
    run_cases(48, "p2_tracks_uniform_exponential_and_heavy_tails", |rng| {
        let n = 500 + rng.below(3501) as usize;
        let qs = [0.5, 0.9, 0.99];
        let q = qs[rng.below(qs.len() as u64) as usize];

        let lo = uniform(rng, -100.0, 100.0);
        let hi = lo + uniform(rng, 1.0, 1000.0);
        let mut u: Vec<f64> = (0..n).map(|_| uniform(rng, lo, hi)).collect();
        check(&mut u, q, 0.05, "uniform");

        let rate = uniform(rng, 0.1, 10.0);
        let mut e: Vec<f64> = (0..n).map(|_| exponential(rng, rate)).collect();
        check(&mut e, q, 0.05, "exponential");

        let mut p: Vec<f64> = (0..n).map(|_| pareto(rng, 1.2)).collect();
        check(&mut p, q, 0.10, "pareto(1.2)");
    });
}

/// The benign headline case: the uniform median must be close in *value*,
/// not just in rank — within 5% of the distribution's span.
#[test]
fn p2_uniform_median_is_value_accurate() {
    run_cases(32, "p2_uniform_median_is_value_accurate", |rng| {
        let n = 1000 + rng.below(3001) as usize;
        let lo = uniform(rng, -50.0, 50.0);
        let hi = lo + uniform(rng, 10.0, 500.0);
        let mut est = P2Quantile::new(0.5);
        for _ in 0..n {
            est.push(uniform(rng, lo, hi));
        }
        let mid = (lo + hi) / 2.0;
        let tol = 0.05 * (hi - lo);
        let got = est.estimate();
        assert!(
            (got - mid).abs() <= tol,
            "uniform median: estimate {got} vs true {mid} (tol {tol}, n={n})"
        );
    });
}

/// Exactness below five observations: P² must fall back to the sorted
/// sample, so tiny streams report true quantiles.
#[test]
fn p2_is_exact_for_small_streams() {
    run_cases(64, "p2_is_exact_for_small_streams", |rng| {
        let n = 1 + rng.below(4) as usize;
        let mut samples: Vec<f64> = (0..n).map(|_| uniform(rng, -10.0, 10.0)).collect();
        let q = rng.fraction();
        let mut est = P2Quantile::new(q);
        for &x in &samples {
            est.push(x);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let want = exact(&samples, q);
        let got = est.estimate();
        assert!(
            (got - want).abs() <= 1e-12 * want.abs().max(1.0),
            "n={n} q={q}: {got} != exact {want}"
        );
    });
}
