//! FIG6 — Responsiveness to changes in data compressibility (paper
//! Figure 6).
//!
//! The stream alternates between the highly compressible HIGH class and the
//! incompressible LOW class every 10 GB (scaled with `--quick`), with no
//! background traffic. The trace shows the compression level tracking the
//! switches — with the paper's noted asymmetry: leaving level 0 after a LOW
//! phase is delayed by the backoff accumulated at level 0, while drops in
//! the data rate are detected within one epoch.
//!
//! Run: `cargo run --release -p adcomp-bench --bin fig6_switching [--quick]`

use adcomp_bench::{experiment_bytes, render_timeseries, trace_path, write_run_trace};
use adcomp_core::model::RateBasedModel;
use adcomp_corpus::Class;
use adcomp_trace::{MemorySink, RunManifest, TraceHandle};
use adcomp_vcloud::{run_transfer_traced, AlternatingClass, SpeedModel, TransferConfig};
use std::sync::Arc;

fn main() {
    // Phases must span dozens of epochs for the adaptation dynamics to show
    // (the paper's 10 GB phases last 50-100 s); keep at least 20 GB.
    let total = experiment_bytes().max(20_000_000_000);
    let period = total / 5; // the paper switches every 10 GB of its 50 GB
    let cfg = TransferConfig {
        total_bytes: total,
        background_flows: 0,
        seed: 6,
        ..TransferConfig::paper_default()
    };
    let speed = SpeedModel::paper_fit();
    let mut schedule =
        AlternatingClass { classes: vec![Class::High, Class::Low], period_bytes: period };
    let trace = trace_path();
    let sink = trace.as_ref().map(|_| Arc::new(MemorySink::new()));
    let handle = sink
        .as_ref()
        .map_or_else(TraceHandle::disabled, |s| TraceHandle::new(s.clone()));
    let out = run_transfer_traced(
        &cfg,
        &speed,
        &mut schedule,
        Box::new(RateBasedModel::paper_default()),
        handle,
    );
    if let (Some(path), Some(sink)) = (trace, sink) {
        let manifest = RunManifest::new("fig6_switching", cfg.seed)
            .coord("classes", "HIGH/LOW")
            .coord("flows", cfg.background_flows)
            .cfg("model", "rate_based")
            .cfg("period_bytes", period)
            .volume(total);
        write_run_trace(&path, &manifest, &sink.take());
    }

    println!(
        "FIG6: adaptive scheme, HIGH ↔ LOW every {} GB, no background traffic\n",
        period / 1_000_000_000
    );
    println!("{}", render_timeseries(&out, 48));
    println!(
        "completion: {:.0} s, epochs {}, level changes {}",
        out.completion_secs,
        out.epochs,
        out.level_trace.len().saturating_sub(1)
    );
    let names = ["NO", "LIGHT", "MEDIUM", "HEAVY"];
    let mix: Vec<String> = out
        .blocks_per_level
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(l, c)| format!("{}×{}", names[l], c))
        .collect();
    println!("block mix: {}", mix.join(", "));
    println!(
        "\nPaper findings to compare against:\n\
         - The level follows the compressibility switches (LIGHT during HIGH phases,\n\
           mostly NO during LOW phases).\n\
         - HIGH→LOW is detected immediately (rate degrades within one epoch);\n\
           LOW→HIGH can lag because level 0 accumulated backoff during the LOW phase."
    );
}
