//! Differential tests pinning the optimized hot loops to their scalar
//! references:
//!
//! * the branch-light `qlz::decompress` against the byte-at-a-time
//!   `qlz::decompress_reference` — identical output bytes on success,
//!   identical partial output *and* error on corrupt/truncated input;
//! * the wide `match_len` against `match_len_naive` on adversarial layouts
//!   (overlap distances 1..16, block-boundary straddles, every length up
//!   to 1 KiB);
//! * the slicing-by-8 CRC against the table-free bitwise reference.
//!
//! The wire format is frozen: these tests are the contract that lets the
//! hot loops change shape without changing a single byte.

use adcomp_codecs::crc32::{crc32, crc32_bitwise, Hasher};
use adcomp_codecs::qlz::{
    compress_light, compress_medium, decompress, decompress_reference, match_len, match_len_naive,
};
use adcomp_codecs::CodecError;
use adcomp_corpus::{generate, Class};
use proptest::prelude::*;

/// Runs both decoders on the same input and asserts byte-identical output
/// and identical results — including the partial output the reference
/// leaves behind before reporting an error.
fn assert_decoders_agree(input: &[u8], expected_len: usize) {
    let mut fast = Vec::new();
    let mut slow = Vec::new();
    let fast_res = decompress(input, expected_len, &mut fast);
    let slow_res = decompress_reference(input, expected_len, &mut slow);
    assert_eq!(fast_res, slow_res, "result mismatch (expected_len={expected_len})");
    assert_eq!(fast, slow, "output mismatch (expected_len={expected_len})");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Valid streams: compress arbitrary small-alphabet data (long matches,
    /// the regime where the fast paths actually fire) and decode through
    /// both paths.
    #[test]
    fn decode_agrees_on_valid_streams(
        data in proptest::collection::vec(0u8..4, 0..4096),
        medium in any::<bool>(),
    ) {
        let mut wire = Vec::new();
        if medium {
            compress_medium(&data, &mut wire);
        } else {
            compress_light(&data, &mut wire);
        }
        assert_decoders_agree(&wire, data.len());
    }

    /// Mutated streams: flip one byte anywhere in a valid token stream.
    /// Both decoders must fail identically (or both still succeed, e.g. a
    /// literal byte flip) with identical partial output.
    #[test]
    fn decode_agrees_on_corrupt_streams(
        data in proptest::collection::vec(0u8..8, 1..2048),
        flip in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut wire = Vec::new();
        compress_medium(&data, &mut wire);
        let pos = flip.index(wire.len());
        wire[pos] ^= xor;
        assert_decoders_agree(&wire, data.len());
    }

    /// Truncated streams: cut a valid stream anywhere. The truncated-run
    /// partial-progress semantics must match exactly.
    #[test]
    fn decode_agrees_on_truncated_streams(
        data in proptest::collection::vec(0u8..4, 1..2048),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut wire = Vec::new();
        compress_light(&data, &mut wire);
        let keep = cut.index(wire.len());
        assert_decoders_agree(&wire[..keep], data.len());
    }

    /// Wrong declared length (shorter and longer than the real payload):
    /// the `target` bookkeeping in the run-length literal path must agree
    /// with the reference's per-byte check.
    #[test]
    fn decode_agrees_on_wrong_expected_len(
        data in proptest::collection::vec(0u8..4, 1..1024),
        declared in 0usize..2048,
    ) {
        let mut wire = Vec::new();
        compress_light(&data, &mut wire);
        assert_decoders_agree(&wire, declared);
    }

    /// Slicing-by-8 CRC equals the bitwise reference on arbitrary data,
    /// and incremental hashing over arbitrary split points equals one-shot.
    #[test]
    fn crc_agrees_with_bitwise(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in any::<prop::sample::Index>(),
    ) {
        let expect = crc32_bitwise(&data);
        prop_assert_eq!(crc32(&data), expect);
        let cut = split.index(data.len() + 1);
        let mut h = Hasher::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finish(), expect);
    }
}

/// Overlapping matches at every small distance: `abab…`-style periods 1..16
/// force `copy_match` through its memset (off=1), periodic-doubling
/// (off<len) and memcpy (off>=len) branches.
#[test]
fn decode_agrees_on_overlap_distances() {
    for period in 1usize..=16 {
        let data: Vec<u8> = (0..3000).map(|i| (i % period) as u8).collect();
        for compress in [compress_light as fn(&[u8], &mut Vec<u8>), compress_medium] {
            let mut wire = Vec::new();
            compress(&data, &mut wire);
            assert_decoders_agree(&wire, data.len());
            let mut out = Vec::new();
            decompress(&wire, data.len(), &mut out).unwrap();
            assert_eq!(out, data, "period={period}");
        }
    }
}

/// Exhaustive `match_len` sweep: every length 0..=1024, with the match
/// straddling the 16-byte block boundary at every phase (a % 16) and
/// running exactly to the end of the buffer (the `b + limit == len` edge).
#[test]
fn match_len_exhaustive_lengths_and_phases() {
    for phase in 0usize..16 {
        // data = prefix junk (phase bytes) + pattern + pattern + mismatch tail
        for len in (0usize..=64).chain([100, 127, 128, 129, 255, 256, 500, 1000, 1024]) {
            let mut data = vec![0x55u8; phase];
            let pattern: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            data.extend_from_slice(&pattern);
            data.extend_from_slice(&pattern);
            data.push(0xFF); // guarantee a mismatch after the copies
            let a = phase;
            let b = phase + len.max(1);
            if b >= data.len() {
                continue;
            }
            let limit = (data.len() - b).min(len + 1);
            assert_eq!(
                match_len(&data, a, b, limit),
                match_len_naive(&data, a, b, limit),
                "phase={phase} len={len}"
            );
        }
    }
}

/// `match_len` with the two windows overlapping each other (b - a < limit):
/// the compressors generate these for RLE-ish input, and the wide compare
/// must still return exactly the naive count.
#[test]
fn match_len_overlapping_windows() {
    let data: Vec<u8> = (0..2048).map(|i| (i / 3 % 5) as u8).collect();
    for dist in 1usize..=16 {
        for a in [0usize, 1, 7, 15, 16, 100] {
            let b = a + dist;
            let limit = (data.len() - b).min(1024);
            assert_eq!(
                match_len(&data, a, b, limit),
                match_len_naive(&data, a, b, limit),
                "dist={dist} a={a}"
            );
        }
    }
}

/// Real corpus round-trips through both decoders, all three classes.
#[test]
fn decode_agrees_on_corpus_blocks() {
    for class in [Class::High, Class::Moderate, Class::Low] {
        let data = generate(class, 128 * 1024, 7);
        for compress in [compress_light as fn(&[u8], &mut Vec<u8>), compress_medium] {
            let mut wire = Vec::new();
            compress(&data, &mut wire);
            assert_decoders_agree(&wire, data.len());
        }
    }
}

/// Pinned error-shape checks: the optimized decoder must report the exact
/// error variants the reference does on hand-built corrupt streams.
#[test]
fn decode_error_variants_pinned() {
    // Empty input, nonzero expected length -> Truncated.
    let mut out = Vec::new();
    assert_eq!(decompress(&[], 5, &mut out), Err(CodecError::Truncated));

    // Control byte announcing a match, but the token is cut off.
    let mut out = Vec::new();
    assert_eq!(decompress(&[0x01, 0x10], 64, &mut out), Err(CodecError::Truncated));

    // Match with offset 0 (encoded distance bytes = 0) -> corrupt offset.
    let mut out = Vec::new();
    assert_eq!(
        decompress(&[0x01, 0x00, 0x00, 0x00], 64, &mut out),
        Err(CodecError::Corrupt("match offset out of range"))
    );

    // Match reaching past the declared uncompressed length.
    let mut wire = vec![0x00]; // 8 literals
    wire.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
    wire.push(0x01); // match token next
    wire.extend_from_slice(&[60, 1, 0]); // len 64, dist 1
    let mut out = Vec::new();
    assert_eq!(
        decompress(&wire, 10, &mut out),
        Err(CodecError::Corrupt("match overruns expected length"))
    );

    // And each of those agrees with the reference, partial output included.
    assert_decoders_agree(&[], 5);
    assert_decoders_agree(&[0x01, 0x10], 64);
    assert_decoders_agree(&[0x01, 0x00, 0x00, 0x00], 64);
    assert_decoders_agree(&wire, 10);
}
