//! Parallel, deterministic experiment runner.
//!
//! Every table/figure binary sweeps a grid of independent simulation cells
//! (compression scheme × data class × contention × repetition). Cells share
//! nothing mutable, so they fan out across cores with a work-stealing
//! counter over [`crossbeam::thread::scope`] workers.
//!
//! # Determinism contract
//!
//! Results are **bit-identical for any worker count** (including 1) because
//!
//! 1. each cell derives *all* of its randomness from its own coordinates
//!    via [`cell_seed`] — never from scheduling order, wall time or thread
//!    identity; and
//! 2. [`run_cells`] writes each result into its cell's slot and returns
//!    them in cell order, regardless of which worker computed what.
//!
//! The `ADCOMP_THREADS` environment variable pins the worker count
//! (`1` = fully serial in the calling thread; default = available cores).
//!
//! The module also hosts the process-wide calibration cache:
//! [`measured_speed_model`] memoizes [`SpeedModel::measure`] runs so a grid
//! whose cells all want the same measured profile pays for calibration
//! once, not once per cell.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use adcomp_vcloud::SpeedModel;

/// Worker count for [`run_cells`]: `ADCOMP_THREADS` if set (clamped to at
/// least 1), otherwise the number of available cores.
pub fn threads() -> usize {
    match std::env::var("ADCOMP_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Derives a deterministic per-cell seed from a base seed and the cell's
/// grid coordinates. Pure function of its inputs — independent of worker
/// count and scheduling — so parallel and serial runs agree bit-for-bit.
///
/// Uses splitmix64 mixing; distinct coordinate vectors give uncorrelated
/// seeds even when coordinates are small consecutive integers.
pub fn cell_seed(base: u64, coords: &[u64]) -> u64 {
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    let mut s = splitmix(base);
    for &c in coords {
        s = splitmix(s ^ c.wrapping_mul(0x2545f4914f6cdd1d));
    }
    s
}

/// Runs `n` independent cells through `f` on [`threads`] workers and
/// returns results in cell order. See the module docs for the determinism
/// contract `f` must uphold.
pub fn run_cells<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_cells_on(threads(), n, f)
}

/// [`run_cells`] with an explicit worker count (used by the determinism
/// regression tests to compare worker counts without touching the
/// process environment).
pub fn run_cells_on<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    // Work stealing via a shared claim counter: each worker repeatedly
    // claims the next unclaimed cell, so long cells never serialize the
    // grid behind a static partition.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let f = &f;
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *slots[i].lock().unwrap() = Some(r);
            });
        }
    })
    .expect("experiment cell panicked");
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("cell never ran"))
        .collect()
}

/// Convenience: maps every item of a slice through `f` in parallel,
/// preserving order. `f` receives `(index, &item)`.
pub fn map_cells<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    run_cells(items.len(), |i| f(i, &items[i]))
}

/// Cache key for [`measured_speed_model`]: `hw_scale` is keyed by bit
/// pattern so the key is `Eq + Hash` without rounding surprises.
type CalKey = (usize, u64, u64, u64);

fn calibration_cache() -> &'static Mutex<HashMap<CalKey, Arc<SpeedModel>>> {
    static CACHE: OnceLock<Mutex<HashMap<CalKey, Arc<SpeedModel>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Process-wide memoized [`SpeedModel::measure`]: measuring all 12
/// (class, level) calibration cells costs real wall time, so grids whose
/// cells share one measured profile calibrate once per process instead of
/// once per cell. Cloning the returned [`Arc`] is free.
pub fn measured_speed_model(
    sample_len: usize,
    seconds_per_cell: f64,
    hw_scale: f64,
    seed: u64,
) -> Arc<SpeedModel> {
    let key = (sample_len, seconds_per_cell.to_bits(), hw_scale.to_bits(), seed);
    // Fast path under the lock; measure outside it would re-measure on a
    // race, so hold the lock across the measurement — callers hitting the
    // same key genuinely want the same (single) calibration run.
    let mut cache = calibration_cache().lock().unwrap();
    Arc::clone(cache.entry(key).or_insert_with(|| {
        Arc::new(SpeedModel::measure(sample_len, seconds_per_cell, hw_scale, seed))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let f = |i: usize| cell_seed(7, &[i as u64]);
        let serial = run_cells_on(1, 33, f);
        let par = run_cells_on(4, 33, f);
        assert_eq!(serial, par);
    }

    #[test]
    fn results_in_cell_order() {
        let out = run_cells_on(4, 100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn cell_seed_distinguishes_coordinates() {
        // Nearby coordinates must not collide or correlate trivially.
        let mut seen = std::collections::HashSet::new();
        for a in 0..8u64 {
            for b in 0..8u64 {
                assert!(seen.insert(cell_seed(1, &[a, b])));
            }
        }
        assert_ne!(cell_seed(1, &[2, 3]), cell_seed(1, &[3, 2]));
        assert_ne!(cell_seed(1, &[5]), cell_seed(2, &[5]));
    }

    #[test]
    fn empty_and_single_grids() {
        assert!(run_cells_on(4, 0, |i| i).is_empty());
        assert_eq!(run_cells_on(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn map_cells_passes_items() {
        let items = ["a", "bb", "ccc"];
        assert_eq!(map_cells(&items, |i, s| s.len() + i), vec![1, 3, 5]);
    }

    #[test]
    fn calibration_cache_returns_same_model() {
        let a = measured_speed_model(64 * 1024, 0.0, 0.5, 9);
        let b = measured_speed_model(64 * 1024, 0.0, 0.5, 9);
        assert!(Arc::ptr_eq(&a, &b));
        let c = measured_speed_model(64 * 1024, 0.0, 0.5, 10);
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
