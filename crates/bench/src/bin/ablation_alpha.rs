//! ABLATION — sensitivity to the dead-band parameter α.
//!
//! The paper (§III-A): "Small values of α allow our algorithm to detect the
//! best compression level even if the performance gains [...] are rather
//! small. However, they also make the decision algorithm more prone to
//! incorrect decisions [...]. During our experiments we found 0.2 to be a
//! reasonable value." This sweep quantifies that trade-off on two
//! scenarios: clearly separated levels (HIGH, no contention) and nearly
//! indistinguishable levels under fluctuation (LOW, two connections).
//!
//! Run: `cargo run --release -p adcomp-bench --bin ablation_alpha [--quick]`

use adcomp_bench::{experiment_bytes, to_paper_scale};
use adcomp_core::controller::ControllerConfig;
use adcomp_core::model::RateBasedModel;
use adcomp_corpus::Class;
use adcomp_metrics::Table;
use adcomp_vcloud::{run_transfer, ConstantClass, SpeedModel, TransferConfig};

fn main() {
    let total = experiment_bytes();
    let speed = SpeedModel::paper_fit();
    println!("ABLATION α: completion time [s, 50 GB scale] and level switches\n");
    let mut table = Table::new(vec![
        "alpha",
        "HIGH/0conn time",
        "HIGH/0conn switches",
        "LOW/2conn time",
        "LOW/2conn switches",
    ]);
    for alpha in [0.05, 0.10, 0.20, 0.40] {
        let mut cells = vec![format!("{alpha:.2}")];
        for (class, flows) in [(Class::High, 0usize), (Class::Low, 2usize)] {
            let cfg = TransferConfig {
                total_bytes: total,
                background_flows: flows,
                seed: 21,
                ..TransferConfig::paper_default()
            };
            let model = RateBasedModel::new(ControllerConfig { alpha, ..Default::default() });
            let out = run_transfer(&cfg, &speed, &mut ConstantClass(class), Box::new(model));
            cells.push(format!("{:.0}", to_paper_scale(out.completion_secs)));
            cells.push(format!("{}", out.level_trace.len().saturating_sub(1)));
        }
        table.row(cells);
    }
    println!("{}", table.render());
    println!(
        "Expected shape: very small α over-reacts to fluctuations (more switches on\n\
         LOW/2conn); very large α tolerates bad levels longer. α = 0.2 balances both,\n\
         matching the paper's choice."
    );
}
