//! Bidirectional adaptive-compressed channels.
//!
//! The paper observes that "the entire adaptive compression/decompression
//! logic can be encapsulated in a higher-level communication library and
//! therefore becomes completely transparent to the application".
//! [`CompressedDuplex`] is that library surface: it wraps any read half +
//! write half (most usefully the two clones of a `TcpStream`) so each
//! direction is an independent adaptive channel — the outbound side adapts
//! to *this* end's application data rate, the inbound side simply decodes
//! whatever self-describing frames arrive.

use crate::epoch::Clock;
use crate::model::DecisionModel;
use crate::stream::{AdaptiveReader, AdaptiveWriter, StreamStats};
use adcomp_codecs::LevelSet;
use std::io::{self, Read, Write};
use std::net::TcpStream;

/// A bidirectional compressed channel over independent read/write halves.
pub struct CompressedDuplex<R: Read, W: Write> {
    reader: AdaptiveReader<R>,
    writer: AdaptiveWriter<W>,
}

impl<R: Read, W: Write> CompressedDuplex<R, W> {
    /// Wraps the two halves with the paper's defaults (128 KiB blocks,
    /// t = 2 s wall-clock epochs).
    pub fn new(read_half: R, write_half: W, levels: LevelSet, model: Box<dyn DecisionModel>) -> Self {
        CompressedDuplex {
            reader: AdaptiveReader::new(read_half),
            writer: AdaptiveWriter::new(write_half, levels, model),
        }
    }

    /// Full-control constructor.
    pub fn with_params(
        read_half: R,
        write_half: W,
        levels: LevelSet,
        model: Box<dyn DecisionModel>,
        block_len: usize,
        epoch_secs: f64,
        clock: Box<dyn Clock>,
    ) -> Self {
        CompressedDuplex {
            reader: AdaptiveReader::new(read_half),
            writer: AdaptiveWriter::with_params(
                write_half, levels, model, block_len, epoch_secs, clock,
            ),
        }
    }

    /// Attaches a trace sink to the outbound adaptive channel (decision,
    /// epoch and codec events); the inbound decode path has no decisions
    /// to trace.
    pub fn set_trace(&mut self, trace: adcomp_trace::TraceHandle) {
        self.writer.set_trace(trace);
    }

    /// Current outbound compression level.
    pub fn level(&self) -> usize {
        self.writer.level()
    }

    /// Outbound statistics snapshot.
    pub fn send_stats(&self) -> StreamStats {
        self.writer.stats()
    }

    /// Inbound byte counters: `(app_bytes, wire_bytes, blocks)`.
    pub fn recv_counters(&self) -> (u64, u64, u64) {
        (self.reader.app_bytes(), self.reader.wire_bytes(), self.reader.blocks())
    }

    /// Flushes outbound buffers and returns the halves plus final stats.
    pub fn finish(self) -> io::Result<(R, W, StreamStats)> {
        let (w, stats) = self.writer.finish()?;
        // Destructure the reader back to its half.
        Ok((self.reader.into_inner(), w, stats))
    }
}

impl<R: Read, W: Write> Read for CompressedDuplex<R, W> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.reader.read(buf)
    }
}

impl<R: Read, W: Write> Write for CompressedDuplex<R, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.writer.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Convenience: a compressed duplex over a TCP stream (clones the socket
/// for the read half).
pub fn over_tcp(
    stream: TcpStream,
    levels: LevelSet,
    model: Box<dyn DecisionModel>,
) -> io::Result<CompressedDuplex<TcpStream, TcpStream>> {
    let read_half = stream.try_clone()?;
    Ok(CompressedDuplex::new(read_half, stream, levels, model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RateBasedModel, StaticModel};
    use std::net::TcpListener;

    fn levels() -> LevelSet {
        LevelSet::paper_default()
    }

    #[test]
    fn two_way_echo_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // Server: echo every line back, through its own compressed duplex.
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut duplex =
                over_tcp(stream, levels(), Box::new(StaticModel::new(1, 4))).unwrap();
            let mut buf = vec![0u8; 64 * 1024];
            let mut echoed = 0u64;
            loop {
                let n = duplex.read(&mut buf).unwrap();
                if n == 0 {
                    break;
                }
                duplex.write_all(&buf[..n]).unwrap();
                duplex.flush().unwrap();
                echoed += n as u64;
            }
            let (_, _, stats) = duplex.finish().unwrap();
            (echoed, stats)
        });

        let stream = TcpStream::connect(addr).unwrap();
        let mut duplex =
            over_tcp(stream, levels(), Box::new(RateBasedModel::paper_default())).unwrap();
        let message = b"duplex message with repetition repetition! ".repeat(2000);
        duplex.write_all(&message).unwrap();
        duplex.flush().unwrap();
        // Read the echo back through the same duplex.
        let mut echo = vec![0u8; message.len()];
        duplex.read_exact(&mut echo).unwrap();
        assert_eq!(echo, message);
        // Closing our write half lets the server finish.
        let (read_half, write_half, stats) = duplex.finish().unwrap();
        drop(write_half);
        drop(read_half);
        assert_eq!(stats.app_bytes, message.len() as u64);
        let (echoed, server_stats) = server.join().unwrap();
        assert_eq!(echoed, message.len() as u64);
        assert!(
            server_stats.wire_ratio() < 0.6,
            "server echo should compress: {}",
            server_stats.wire_ratio()
        );
    }

    #[test]
    fn duplex_over_in_memory_halves() {
        // Write side into a Vec; read side from a pre-encoded buffer.
        let mut pre = AdaptiveWriter::new(Vec::new(), levels(), Box::new(StaticModel::new(2, 4)));
        pre.write_all(b"inbound payload").unwrap();
        let (inbound_wire, _) = pre.finish().unwrap();

        let mut duplex = CompressedDuplex::new(
            &inbound_wire[..],
            Vec::new(),
            levels(),
            Box::new(StaticModel::new(1, 4)),
        );
        duplex.write_all(b"outbound payload, outbound payload").unwrap();
        let mut inbound = Vec::new();
        duplex.read_to_end(&mut inbound).unwrap();
        assert_eq!(inbound, b"inbound payload");
        let (_, wire, stats) = duplex.finish().unwrap();
        assert_eq!(stats.app_bytes, 34);
        // The outbound side produced decodable frames.
        let mut out = Vec::new();
        AdaptiveReader::new(&wire[..]).read_to_end(&mut out).unwrap();
        assert_eq!(out, b"outbound payload, outbound payload");
    }

    #[test]
    fn level_and_stats_accessors() {
        let duplex = CompressedDuplex::new(
            &b""[..],
            Vec::new(),
            levels(),
            Box::new(StaticModel::new(3, 4)),
        );
        assert_eq!(duplex.level(), 3);
        assert_eq!(duplex.send_stats().app_bytes, 0);
        assert_eq!(duplex.recv_counters(), (0, 0, 0));
    }
}
