//! Property-based invariants of the cloud simulator: physically sensible
//! monotonicities that must hold for *any* parameterization.

use adcomp_core::model::StaticModel;
use adcomp_corpus::Class;
use adcomp_vcloud::{
    run_transfer, ConstantClass, Platform, SharedLink, SpeedModel, TransferConfig, VirtualDisk,
};
use proptest::prelude::*;

fn det_cfg(total_mb: u64, flows: usize) -> TransferConfig {
    TransferConfig {
        total_bytes: total_mb * 1_000_000,
        background_flows: flows,
        deterministic: true,
        cpu_jitter: 0.0,
        ..TransferConfig::paper_default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn completion_scales_linearly_with_volume(
        mb in 50u64..400,
        level in 0usize..4,
    ) {
        let speed = SpeedModel::paper_fit();
        let t1 = run_transfer(
            &det_cfg(mb, 0), &speed,
            &mut ConstantClass(Class::Moderate),
            Box::new(StaticModel::new(level, 4)),
        ).completion_secs;
        let t2 = run_transfer(
            &det_cfg(mb * 2, 0), &speed,
            &mut ConstantClass(Class::Moderate),
            Box::new(StaticModel::new(level, 4)),
        ).completion_secs;
        let ratio = t2 / t1;
        prop_assert!((1.85..2.15).contains(&ratio), "volume doubling gave x{ratio}");
    }

    #[test]
    fn more_background_flows_never_speed_things_up(
        mb in 50u64..200,
        level in 0usize..3,
    ) {
        let speed = SpeedModel::paper_fit();
        let times: Vec<f64> = (0..4).map(|flows| {
            run_transfer(
                &det_cfg(mb, flows), &speed,
                &mut ConstantClass(Class::High),
                Box::new(StaticModel::new(level, 4)),
            ).completion_secs
        }).collect();
        for w in times.windows(2) {
            prop_assert!(w[1] >= w[0] * 0.999, "contention sped things up: {times:?}");
        }
    }

    #[test]
    fn wire_bytes_track_profile_ratio(
        mb in 20u64..200,
        level in 0usize..4,
        class_idx in 0usize..3,
    ) {
        let class = Class::ALL[class_idx];
        let speed = SpeedModel::paper_fit();
        let out = run_transfer(
            &det_cfg(mb, 0), &speed,
            &mut ConstantClass(class),
            Box::new(StaticModel::new(level, 4)),
        );
        let expect = speed.profile(class, level).ratio;
        // Frame headers add a tiny constant per block.
        prop_assert!((out.wire_ratio() - expect).abs() < 0.01,
            "{class} L{level}: wire {} vs profile {}", out.wire_ratio(), expect);
    }

    #[test]
    fn link_share_is_monotone_in_flow_count(bw_mbps in 10.0f64..200.0, n in 0usize..6) {
        let a = SharedLink::new(bw_mbps * 1e6, n, Platform::no_fluctuation()).nominal_share_bps();
        let b = SharedLink::new(bw_mbps * 1e6, n + 1, Platform::no_fluctuation()).nominal_share_bps();
        prop_assert!(b < a);
        prop_assert!(a <= bw_mbps * 1e6);
    }

    #[test]
    fn transmit_time_additive_under_constant_bandwidth(
        bytes_a in 1u64..50_000_000,
        bytes_b in 1u64..50_000_000,
    ) {
        let mut link = SharedLink::new(100e6, 0, Platform::no_fluctuation());
        let together = link.transmit_secs(bytes_a + bytes_b, 0.0);
        let separate = link.transmit_secs(bytes_a, 0.0) + link.transmit_secs(bytes_b, 0.0);
        prop_assert!((together - separate).abs() < 1e-6);
    }

    #[test]
    fn write_back_disk_never_loses_bytes(
        chunks in proptest::collection::vec(1_000_000u64..60_000_000, 1..30),
    ) {
        let mut disk = VirtualDisk::write_back(70e6, 700e6, 1_000_000_000);
        let mut t = 0.0;
        let mut total = 0u64;
        for c in chunks {
            let secs = disk.write_secs(c, t);
            prop_assert!(secs.is_finite() && secs >= 0.0);
            t += secs;
            total += c;
        }
        // Everything is either durable already or still dirty; syncing
        // drains the remainder at disk speed.
        let dirty = disk.dirty_bytes();
        prop_assert!(dirty <= total);
        let sync = disk.sync_secs();
        prop_assert!((sync - dirty as f64 / 70e6).abs() < 1e-6);
        prop_assert_eq!(disk.dirty_bytes(), 0);
    }

    #[test]
    fn write_through_disk_time_is_exact(chunk in 1_000u64..100_000_000) {
        let mut disk = VirtualDisk::write_through(85e6);
        let secs = disk.write_secs(chunk, 0.0);
        prop_assert!((secs - chunk as f64 / 85e6).abs() < 1e-9);
    }
}
