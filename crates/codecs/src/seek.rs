//! Seekable container: a trailing block index over a frame stream.
//!
//! Frames are block-independent by construction — every frame carries its
//! codec id, lengths and a CRC-32, and the codecs are stateless across
//! blocks (see the [`crate::Codec`] contract). What a plain stream lacks is
//! a way to *find* block N without walking every frame before it. This
//! module adds that: an optional **index trailer** listing, per block, the
//! frame's wire offset, its first application-byte offset, both lengths,
//! the payload CRC and the codec id.
//!
//! ## Wire layout
//!
//! The trailer is a regular frame (so streaming readers stay compatible)
//! flagged with [`crate::frame::FLAG_INDEX`]:
//!
//! ```text
//! ┌────────────┬────────────┬─────┬──────────────────────────────────┐
//! │ frame 0    │ frame 1    │ ... │ index frame (FLAG_INDEX)         │
//! └────────────┴────────────┴─────┴──────────────────────────────────┘
//!                                   16-byte header  (codec=Raw,
//!                                   uncompressed_len=0, CRC over payload)
//!                                   payload:
//!                                   ┌──────────┬─────┬──────────┬────────┐
//!                                   │ entry 0  │ ... │ entry N-1│ footer │
//!                                   └──────────┴─────┴──────────┴────────┘
//! entry (32 bytes, LE):                                     footer (16 B):
//!   0  u64 frame_offset        (wire offset of frame header)  0 [u8;4] "ADXI"
//!   8  u64 uncompressed_offset (app-byte offset of block)     4 u32 version=1
//!   16 u32 frame_len           (header + payload)             8 u32 entry count
//!   20 u32 uncompressed_len                                  12 u32 CRC-32 of entries
//!   24 u32 payload CRC-32      (same value as frame header)
//!   28 u8  codec id, 3 pad bytes
//! ```
//!
//! The footer sits at the very end of the stream, so a reader can locate
//! the index with two tail reads: 16 bytes for the footer, then
//! `count · 32 + 32` bytes for entries + frame header re-validation.
//!
//! ## Compatibility and trust
//!
//! * A stream without the trailer is byte-for-byte what the non-seekable
//!   writer produces; enabling the index appends exactly one frame.
//! * Streaming readers ([`crate::frame::FrameReader`] and the adaptive
//!   reader above it) skip [`crate::frame::FLAG_INDEX`] frames after CRC
//!   validation: they contribute zero application bytes.
//! * The index is **advisory**. Every block fetched through it is still
//!   validated against its own frame header and payload CRC; a reader that
//!   finds the trailer missing, truncated or lying falls back to
//!   front-to-back streaming decode.

use crate::crc32::crc32;
use crate::frame::{FrameHeader, HEADER_LEN};
use crate::{CodecError, CodecId, Result};

/// Footer magic: "ADXI" (ADcomp indeX).
pub const INDEX_MAGIC: [u8; 4] = *b"ADXI";
/// Index format version.
pub const INDEX_VERSION: u32 = 1;
/// Serialized size of one [`IndexEntry`].
pub const INDEX_ENTRY_LEN: usize = 32;
/// Serialized size of the index footer.
pub const INDEX_FOOTER_LEN: usize = 16;
/// Cap on the entry count a footer may declare — the index-side
/// decompression-bomb guard (2^24 blocks ≈ 2 TiB of 128 KiB blocks).
pub const MAX_INDEX_ENTRIES: u32 = 1 << 24;

/// One block's coordinates in a seekable stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Wire offset of the frame header.
    pub frame_offset: u64,
    /// Application-byte offset of the block's first byte.
    pub uncompressed_offset: u64,
    /// Frame length on the wire (header + payload).
    pub frame_len: u32,
    /// Application bytes in the block.
    pub uncompressed_len: u32,
    /// CRC-32 of the frame payload (mirrors the frame header).
    pub crc: u32,
    /// Codec that produced the payload.
    pub codec: CodecId,
}

impl IndexEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.frame_offset.to_le_bytes());
        out.extend_from_slice(&self.uncompressed_offset.to_le_bytes());
        out.extend_from_slice(&self.frame_len.to_le_bytes());
        out.extend_from_slice(&self.uncompressed_len.to_le_bytes());
        out.extend_from_slice(&self.crc.to_le_bytes());
        out.push(self.codec as u8);
        out.extend_from_slice(&[0u8; 3]);
    }

    fn decode(b: &[u8]) -> Result<IndexEntry> {
        if b.len() < INDEX_ENTRY_LEN {
            return Err(CodecError::Truncated);
        }
        Ok(IndexEntry {
            frame_offset: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            uncompressed_offset: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            frame_len: u32::from_le_bytes(b[16..20].try_into().unwrap()),
            uncompressed_len: u32::from_le_bytes(b[20..24].try_into().unwrap()),
            crc: u32::from_le_bytes(b[24..28].try_into().unwrap()),
            codec: CodecId::from_u8(b[28])?,
        })
    }
}

/// The parsed block index of a seekable stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamIndex {
    /// Entries in stream order (offsets strictly increasing).
    pub entries: Vec<IndexEntry>,
}

impl StreamIndex {
    /// Total application bytes covered by the index.
    pub fn total_uncompressed(&self) -> u64 {
        self.entries
            .last()
            .map_or(0, |e| e.uncompressed_offset + u64::from(e.uncompressed_len))
    }

    /// Wire bytes covered by the indexed frames (excludes the trailer).
    pub fn total_wire(&self) -> u64 {
        self.entries.last().map_or(0, |e| e.frame_offset + u64::from(e.frame_len))
    }

    /// Index of the block containing application-byte `offset`, if any.
    /// Zero-length blocks (flush artifacts) are never returned.
    pub fn block_for(&self, offset: u64) -> Option<usize> {
        if offset >= self.total_uncompressed() {
            return None;
        }
        // Last entry with uncompressed_offset <= offset that has bytes.
        let mut i = self
            .entries
            .partition_point(|e| e.uncompressed_offset <= offset)
            .checked_sub(1)?;
        while self.entries[i].uncompressed_len == 0 {
            i = i.checked_sub(1)?;
        }
        Some(i)
    }

    /// Indices of the blocks covering `[start, start + len)`, clamped to
    /// the stream. Empty range when `len == 0` or `start` is past the end.
    pub fn blocks_covering(&self, start: u64, len: u64) -> std::ops::Range<usize> {
        if len == 0 {
            return 0..0;
        }
        let Some(first) = self.block_for(start) else { return 0..0 };
        let end = start + len.min(self.total_uncompressed() - start);
        let last = self.block_for(end - 1).unwrap_or(first);
        first..last + 1
    }

    /// Serializes entries + footer (the index frame's payload).
    pub fn encode_payload(&self, out: &mut Vec<u8>) {
        let start = out.len();
        for e in &self.entries {
            e.encode(out);
        }
        let entries_crc = crc32(&out[start..]);
        out.extend_from_slice(&INDEX_MAGIC);
        out.extend_from_slice(&INDEX_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        out.extend_from_slice(&entries_crc.to_le_bytes());
    }

    /// Parses an index frame payload (entries + footer) produced by
    /// [`StreamIndex::encode_payload`], validating the footer magic,
    /// version, entry CRC and offset monotonicity.
    pub fn parse_payload(payload: &[u8]) -> Result<StreamIndex> {
        if payload.len() < INDEX_FOOTER_LEN {
            return Err(CodecError::Truncated);
        }
        let footer = &payload[payload.len() - INDEX_FOOTER_LEN..];
        if footer[0..4] != INDEX_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u32::from_le_bytes(footer[4..8].try_into().unwrap());
        if version != INDEX_VERSION {
            return Err(CodecError::Corrupt("unsupported index version"));
        }
        let count = u32::from_le_bytes(footer[8..12].try_into().unwrap());
        if count > MAX_INDEX_ENTRIES {
            return Err(CodecError::Corrupt("index entry count exceeds cap"));
        }
        let entries_len = count as usize * INDEX_ENTRY_LEN;
        if payload.len() != entries_len + INDEX_FOOTER_LEN {
            return Err(CodecError::Corrupt("index payload length mismatch"));
        }
        let entries_crc = u32::from_le_bytes(footer[12..16].try_into().unwrap());
        let entry_bytes = &payload[..entries_len];
        let actual = crc32(entry_bytes);
        if actual != entries_crc {
            return Err(CodecError::ChecksumMismatch { expected: entries_crc, actual });
        }
        let mut entries = Vec::with_capacity(count as usize);
        for chunk in entry_bytes.chunks_exact(INDEX_ENTRY_LEN) {
            entries.push(IndexEntry::decode(chunk)?);
        }
        let index = StreamIndex { entries };
        index.validate_monotone()?;
        Ok(index)
    }

    /// Entries must advance through the stream: strictly increasing frame
    /// offsets, non-decreasing application offsets, consistent lengths.
    fn validate_monotone(&self) -> Result<()> {
        let mut wire = 0u64;
        let mut app = 0u64;
        for e in &self.entries {
            if e.frame_offset != wire || e.uncompressed_offset != app {
                return Err(CodecError::Corrupt("index entries not contiguous"));
            }
            if (e.frame_len as usize) < HEADER_LEN {
                return Err(CodecError::Corrupt("index entry frame too short"));
            }
            wire += u64::from(e.frame_len);
            app += u64::from(e.uncompressed_len);
        }
        Ok(())
    }

    /// Rebuilds an index by walking the frame headers of `wire` front to
    /// back (no decompression). Index frames are excluded. This is the
    /// trust-nothing path: it reads only what the stream itself says, so a
    /// missing or lying trailer never matters. Payload CRCs are *not*
    /// verified here — fetching a block always re-validates them.
    pub fn scan(wire: &[u8]) -> Result<StreamIndex> {
        let mut entries = Vec::new();
        let mut off = 0usize;
        let mut app = 0u64;
        while off < wire.len() {
            if wire.len() - off < HEADER_LEN {
                return Err(CodecError::Truncated);
            }
            let hb: &[u8; HEADER_LEN] = wire[off..off + HEADER_LEN].try_into().unwrap();
            let header = FrameHeader::from_bytes(hb)?;
            let frame_len = HEADER_LEN + header.payload_len as usize;
            if wire.len() - off < frame_len {
                return Err(CodecError::Truncated);
            }
            if !header.index {
                entries.push(IndexEntry {
                    frame_offset: off as u64,
                    uncompressed_offset: app,
                    frame_len: frame_len as u32,
                    uncompressed_len: header.uncompressed_len,
                    crc: header.crc,
                    codec: header.codec,
                });
                app += u64::from(header.uncompressed_len);
            }
            off += frame_len;
        }
        Ok(StreamIndex { entries })
    }
}

/// Appends the complete index trailer frame (header + payload) to `out`.
/// The trailer declares `uncompressed_len = 0` — it carries no application
/// bytes — and is CRC-protected like any other frame.
pub fn encode_index_trailer(index: &StreamIndex, out: &mut Vec<u8>) {
    let header_pos = out.len();
    out.resize(header_pos + HEADER_LEN, 0);
    let payload_pos = out.len();
    index.encode_payload(out);
    let payload_len = out.len() - payload_pos;
    let header = FrameHeader {
        codec: CodecId::Raw,
        raw_fallback: false,
        record_aligned: false,
        index: true,
        uncompressed_len: 0,
        payload_len: payload_len as u32,
        crc: crc32(&out[payload_pos..]),
    };
    out[header_pos..header_pos + HEADER_LEN].copy_from_slice(&header.to_bytes());
}

/// The trailer length for an `n`-entry index (header + entries + footer).
pub fn index_trailer_len(n: usize) -> usize {
    HEADER_LEN + n * INDEX_ENTRY_LEN + INDEX_FOOTER_LEN
}

/// Parses the index from the tail of a seekable stream. `tail` must be the
/// last `n` bytes of the stream with `n >=` the full trailer; callers that
/// only have the 16-byte footer use [`footer_trailer_len`] first to learn
/// how much tail to fetch. Validates the trailer frame header (magic,
/// [`crate::frame::FLAG_INDEX`], lengths, payload CRC) and the index
/// payload itself.
pub fn parse_index_trailer(tail: &[u8]) -> Result<StreamIndex> {
    let trailer_len = footer_trailer_len(tail)?;
    if tail.len() < trailer_len {
        return Err(CodecError::Truncated);
    }
    let frame = &tail[tail.len() - trailer_len..];
    let hb: &[u8; HEADER_LEN] = frame[..HEADER_LEN].try_into().unwrap();
    let header = FrameHeader::from_bytes(hb)?;
    if !header.index || header.uncompressed_len != 0 {
        return Err(CodecError::Corrupt("trailer frame is not an index frame"));
    }
    let payload = &frame[HEADER_LEN..];
    if header.payload_len as usize != payload.len() {
        return Err(CodecError::Corrupt("index trailer length mismatch"));
    }
    let actual = crc32(payload);
    if actual != header.crc {
        return Err(CodecError::ChecksumMismatch { expected: header.crc, actual });
    }
    StreamIndex::parse_payload(payload)
}

/// Reads the footer at the end of `tail` (which must be at least
/// [`INDEX_FOOTER_LEN`] bytes of stream tail) and returns the full trailer
/// frame length, so the caller knows how many tail bytes to fetch for
/// [`parse_index_trailer`].
pub fn footer_trailer_len(tail: &[u8]) -> Result<usize> {
    if tail.len() < INDEX_FOOTER_LEN {
        return Err(CodecError::Truncated);
    }
    let footer = &tail[tail.len() - INDEX_FOOTER_LEN..];
    if footer[0..4] != INDEX_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = u32::from_le_bytes(footer[4..8].try_into().unwrap());
    if version != INDEX_VERSION {
        return Err(CodecError::Corrupt("unsupported index version"));
    }
    let count = u32::from_le_bytes(footer[8..12].try_into().unwrap());
    if count > MAX_INDEX_ENTRIES {
        return Err(CodecError::Corrupt("index entry count exceeds cap"));
    }
    Ok(index_trailer_len(count as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameReader, FrameWriter};
    use crate::{Codec, HeavyCodec, QlzLightCodec, QlzMediumCodec};

    fn sample_stream(blocks: &[&[u8]]) -> (Vec<u8>, StreamIndex) {
        let mut w = FrameWriter::new(Vec::new());
        w.enable_index();
        for (i, b) in blocks.iter().enumerate() {
            let codec: &dyn Codec = match i % 3 {
                0 => &QlzLightCodec,
                1 => &QlzMediumCodec,
                _ => &HeavyCodec,
            };
            w.write_block(codec, b).unwrap();
        }
        let index = w.take_index().unwrap();
        let mut wire = w.into_inner();
        encode_index_trailer(&index, &mut wire);
        (wire, index)
    }

    #[test]
    fn entry_roundtrip() {
        let e = IndexEntry {
            frame_offset: 123_456_789,
            uncompressed_offset: 987_654,
            frame_len: 4242,
            uncompressed_len: 131_072,
            crc: 0xDEAD_BEEF,
            codec: CodecId::Heavy,
        };
        let mut buf = Vec::new();
        e.encode(&mut buf);
        assert_eq!(buf.len(), INDEX_ENTRY_LEN);
        assert_eq!(IndexEntry::decode(&buf).unwrap(), e);
    }

    #[test]
    fn trailer_roundtrip_and_tail_parse() {
        let b1 = b"first block, quite repetitive repetitive. ".repeat(50);
        let b2 = b"second block with different content entirely. ".repeat(40);
        let (wire, index) = sample_stream(&[&b1, &b2]);
        assert_eq!(index.entries.len(), 2);
        assert_eq!(index.total_uncompressed(), (b1.len() + b2.len()) as u64);
        // Full-tail parse recovers the identical index.
        let parsed = parse_index_trailer(&wire).unwrap();
        assert_eq!(parsed, index);
        // Footer-first two-step parse: learn trailer length, then parse.
        let tl = footer_trailer_len(&wire[wire.len() - INDEX_FOOTER_LEN..]).unwrap();
        assert_eq!(tl, index_trailer_len(2));
        let parsed2 = parse_index_trailer(&wire[wire.len() - tl..]).unwrap();
        assert_eq!(parsed2, index);
    }

    #[test]
    fn scan_rebuilds_identical_index_ignoring_trailer() {
        let blocks: Vec<Vec<u8>> = (0..5)
            .map(|i| format!("scan block {i} ").repeat(200 + i * 37).into_bytes())
            .collect();
        let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
        let (wire, index) = sample_stream(&refs);
        let scanned = StreamIndex::scan(&wire).unwrap();
        assert_eq!(scanned, index);
    }

    #[test]
    fn block_for_and_covering_ranges() {
        let blocks: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 1000]).collect();
        let refs: Vec<&[u8]> = blocks.iter().map(Vec::as_slice).collect();
        let (_, index) = sample_stream(&refs);
        assert_eq!(index.block_for(0), Some(0));
        assert_eq!(index.block_for(999), Some(0));
        assert_eq!(index.block_for(1000), Some(1));
        assert_eq!(index.block_for(3999), Some(3));
        assert_eq!(index.block_for(4000), None);
        assert_eq!(index.blocks_covering(0, 1), 0..1);
        assert_eq!(index.blocks_covering(500, 1000), 0..2);
        assert_eq!(index.blocks_covering(1000, 3000), 1..4);
        assert_eq!(index.blocks_covering(3999, 100), 3..4);
        assert_eq!(index.blocks_covering(0, 0), 0..0);
        assert_eq!(index.blocks_covering(4000, 10), 0..0);
        // Huge lengths clamp to the stream end.
        assert_eq!(index.blocks_covering(2500, u64::MAX), 2..4);
    }

    #[test]
    fn corrupt_footer_magic_rejected() {
        let b = b"footer corruption target ".repeat(100);
        let (mut wire, _) = sample_stream(&[&b]);
        let n = wire.len();
        wire[n - INDEX_FOOTER_LEN] ^= 0xFF;
        assert!(parse_index_trailer(&wire).is_err());
        assert!(footer_trailer_len(&wire).is_err());
    }

    #[test]
    fn corrupt_entry_bytes_fail_entry_crc() {
        let b = b"entry corruption target ".repeat(100);
        let (mut wire, _) = sample_stream(&[&b]);
        let n = wire.len();
        // Flip a byte inside the entry table (before the footer).
        wire[n - INDEX_FOOTER_LEN - 5] ^= 0x01;
        assert!(matches!(
            parse_index_trailer(&wire),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_trailer_rejected() {
        let b = b"truncation target ".repeat(100);
        let (wire, _) = sample_stream(&[&b]);
        assert!(parse_index_trailer(&wire[..wire.len() - 3]).is_err());
        assert!(footer_trailer_len(&wire[..INDEX_FOOTER_LEN - 1]).is_err());
    }

    #[test]
    fn forged_entry_count_is_capped() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&INDEX_MAGIC);
        payload.extend_from_slice(&INDEX_VERSION.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            StreamIndex::parse_payload(&payload),
            Err(CodecError::Corrupt("index entry count exceeds cap"))
        ));
        assert!(footer_trailer_len(&payload).is_err());
    }

    #[test]
    fn non_contiguous_entries_rejected() {
        let b = b"contiguity target ".repeat(100);
        let (_, mut index) = sample_stream(&[&b, &b]);
        index.entries[1].frame_offset += 1;
        let mut payload = Vec::new();
        index.encode_payload(&mut payload);
        assert!(matches!(
            StreamIndex::parse_payload(&payload),
            Err(CodecError::Corrupt("index entries not contiguous"))
        ));
    }

    #[test]
    fn streaming_reader_skips_trailer_and_decodes_all_blocks() {
        let b1 = b"stream-compat block one. ".repeat(80);
        let b2 = b"stream-compat block two! ".repeat(60);
        let (wire, _) = sample_stream(&[&b1, &b2]);
        let mut r = FrameReader::new(&wire[..]);
        let mut out = Vec::new();
        while r.read_block(&mut out).unwrap().is_some() {}
        let mut expect = b1.clone();
        expect.extend_from_slice(&b2);
        assert_eq!(out, expect);
        // The trailer's wire bytes are consumed and accounted, but it is
        // not counted as an application block.
        assert_eq!(r.wire_bytes, wire.len() as u64);
        assert_eq!(r.blocks, 2);
        assert!(r.recovery.is_clean());
    }

    #[test]
    fn empty_index_trailer_roundtrips() {
        let index = StreamIndex::default();
        let mut wire = Vec::new();
        encode_index_trailer(&index, &mut wire);
        assert_eq!(wire.len(), index_trailer_len(0));
        let parsed = parse_index_trailer(&wire).unwrap();
        assert!(parsed.entries.is_empty());
        assert_eq!(parsed.total_uncompressed(), 0);
    }
}
