//! Virtual-time simulation of the paper's sample job: a sender task
//! streaming data through a compressing network channel to a receiver task
//! on another VM, with co-located background flows on the shared link.
//!
//! ## Pipeline model
//!
//! The paper's guests have **one CPU core**, so compression and the TCP
//! stack serialize on the sender's vCPU while wire transmission (NIC DMA)
//! overlaps. Each 128 KiB block passes three stages:
//!
//! 1. **Sender CPU** — `block/compress_bps + wire/tcp_proc_bps`, inflated
//!    by co-location CPU pressure and jitter; blocked when the send queue
//!    (socket buffer) is full.
//! 2. **Wire** — `wire_bytes` at the fluctuating contended share.
//! 3. **Receiver CPU** — decompression + TCP receive cost; backpressure
//!    propagates to the sender through the bounded queues, so the
//!    application data rate "also includes the decompression time at the
//!    receiver because of the network's flow control" (paper §III-A).
//!
//! The decision model runs inside the loop: every epoch (t = 2 s of
//! *virtual* time) it sees the application data rate and picks the level
//! for subsequent blocks.
//!
//! ## Worker-pool extension
//!
//! [`TransferConfig::pipeline_workers`] models the pipelined compression
//! engine: `W > 1` gives the sender `W` vCPU lanes, each block is
//! dispatched to the earliest-free lane, and frames still enter the wire
//! stage in submission order (the reorder gate), so `wire_bytes` is
//! invariant across worker counts. `W = 1` reduces to exactly the serial
//! arithmetic above, bit-for-bit.

use crate::link::SharedLink;
use crate::platform::{IoOp, Platform};
use crate::speed::SpeedModel;
use adcomp_codecs::frame::HEADER_LEN;
use adcomp_core::epoch::{EpochContext, EpochDriver};
use adcomp_core::model::{DecisionModel, GuestMetrics};
use adcomp_corpus::{Class, Prng};
use adcomp_metrics::registry::{self, CounterKind, SpanKind};
use adcomp_metrics::TimeSeries;
use adcomp_trace::{SimEvent, TraceHandle, TraceSink as _};
use std::collections::VecDeque;

/// Assigns a compressibility class to every byte offset of the stream.
pub trait ClassSchedule: Send {
    fn class_at(&mut self, byte_offset: u64) -> Class;
}

/// A single class for the whole stream (Table II, Figs. 4–5).
pub struct ConstantClass(pub Class);

impl ClassSchedule for ConstantClass {
    fn class_at(&mut self, _byte_offset: u64) -> Class {
        self.0
    }
}

/// Cycles through classes every `period_bytes` (Fig. 6: HIGH ↔ LOW every
/// 10 GB).
pub struct AlternatingClass {
    pub classes: Vec<Class>,
    pub period_bytes: u64,
}

impl ClassSchedule for AlternatingClass {
    fn class_at(&mut self, byte_offset: u64) -> Class {
        let idx = (byte_offset / self.period_bytes) as usize % self.classes.len();
        self.classes[idx]
    }
}

/// Transfer experiment parameters.
#[derive(Debug, Clone)]
pub struct TransferConfig {
    /// Platform whose link/CPU characteristics apply (the paper's §IV setup
    /// is KVM-paravirtualized).
    pub platform: Platform,
    /// Co-located competing TCP connections (0–3 in Table II).
    pub background_flows: usize,
    /// Total application bytes to move (paper: 50 GB).
    pub total_bytes: u64,
    /// Block size (paper: ≤ 128 KiB).
    pub block_len: usize,
    /// Decision epoch `t` in seconds (paper: 2 s).
    pub epoch_secs: f64,
    /// Bounded send queue between compression and wire, in blocks.
    pub send_queue_blocks: usize,
    /// Bounded receive queue between wire and decompression, in blocks.
    pub recv_queue_blocks: usize,
    /// Relative jitter on per-block CPU time.
    pub cpu_jitter: f64,
    /// Disables bandwidth fluctuation (deterministic tests).
    pub deterministic: bool,
    /// RNG / fluctuation seed — vary per repetition.
    pub seed: u64,
    /// Sender-side compression worker lanes (the pipelined engine's vCPU
    /// count). 1 = the paper's single-core guest, serial arithmetic.
    pub pipeline_workers: usize,
}

impl TransferConfig {
    /// The paper's §IV configuration (50 GB may take a second or two of
    /// host time to simulate; tests use smaller volumes).
    pub fn paper_default() -> Self {
        TransferConfig {
            platform: Platform::KvmPara,
            background_flows: 0,
            total_bytes: 50_000_000_000,
            block_len: 128 * 1024,
            epoch_secs: 2.0,
            send_queue_blocks: 8,
            recv_queue_blocks: 8,
            cpu_jitter: 0.02,
            deterministic: false,
            seed: 1,
            pipeline_workers: 1,
        }
    }
}

/// Result of one simulated transfer.
#[derive(Debug, Clone)]
pub struct TransferOutcome {
    /// Virtual seconds until the receiver finished the last block — the
    /// paper's "completion time".
    pub completion_secs: f64,
    pub app_bytes: u64,
    pub wire_bytes: u64,
    /// `(t, level)` — Figs. 4–6 bottom panels.
    pub level_trace: TimeSeries,
    /// `(t, app bytes/s)` per epoch — "Application Throughput".
    pub app_rate_trace: TimeSeries,
    /// `(t, wire bytes/s)` per epoch — "Network Throughput".
    pub net_rate_trace: TimeSeries,
    /// `(t, sender CPU utilization %)` per epoch.
    pub cpu_trace: TimeSeries,
    /// Blocks emitted at each level.
    pub blocks_per_level: Vec<u64>,
    pub epochs: u64,
}

impl TransferOutcome {
    /// Mean application throughput over the whole run, bytes/second.
    pub fn mean_app_rate(&self) -> f64 {
        self.app_bytes as f64 / self.completion_secs
    }

    /// Overall wire/app ratio.
    pub fn wire_ratio(&self) -> f64 {
        self.wire_bytes as f64 / self.app_bytes.max(1) as f64
    }
}

/// Runs one transfer under the given decision model.
pub fn run_transfer(
    cfg: &TransferConfig,
    speed: &SpeedModel,
    schedule: &mut dyn ClassSchedule,
    model: Box<dyn DecisionModel>,
) -> TransferOutcome {
    run_transfer_traced(cfg, speed, schedule, model, TraceHandle::disabled())
}

/// [`run_transfer`] with a trace sink attached: the epoch driver emits
/// epoch/decision events and the simulator emits [`SimEvent`]s — transfer
/// lifecycle, per-epoch contended-bandwidth samples and wire-rate samples —
/// all under **virtual time**, so traces are bit-identical across hosts and
/// worker counts.
pub fn run_transfer_traced(
    cfg: &TransferConfig,
    speed: &SpeedModel,
    schedule: &mut dyn ClassSchedule,
    model: Box<dyn DecisionModel>,
    trace: TraceHandle,
) -> TransferOutcome {
    assert_eq!(model.num_levels(), speed.num_levels());
    assert!(cfg.block_len > 0 && cfg.total_bytes > 0);

    let fluct = if cfg.deterministic {
        Platform::no_fluctuation()
    } else {
        cfg.platform.net_fluctuation(cfg.seed)
    };
    let mut link =
        SharedLink::new(cfg.platform.net_bandwidth_bps(), cfg.background_flows, fluct);
    let cpu_factor = link.cpu_capacity_factor();
    let mut rng = Prng::new(cfg.seed ^ 0x51D);
    let mut driver = EpochDriver::new(model, cfg.epoch_secs, 0.0);
    driver.set_trace(trace.clone());
    if trace.enabled() {
        trace.emit(
            &SimEvent {
                epoch: 0,
                t: 0.0,
                kind: "transfer_start",
                flow: SimEvent::NO_FLOW,
                value: cfg.total_bytes as f64,
                aux: cfg.background_flows as f64,
            }
            .into(),
        );
    }

    // Pipeline clocks. One CPU lane per compression worker; `W = 1` makes
    // `lanes[0]` exactly the old scalar `cpu_free`.
    let workers = cfg.pipeline_workers.max(1);
    let mut lanes = vec![0.0f64; workers];
    // Monotone clock for epoch bookkeeping: with several lanes, blocks can
    // *finish* compression out of order even though they are dispatched
    // (and shipped) in order.
    let mut record_clock = 0.0f64;
    let mut net_free = 0.0f64;
    let mut rx_free = 0.0f64;
    let mut net_done_q: VecDeque<f64> = VecDeque::with_capacity(cfg.send_queue_blocks);
    let mut rx_done_q: VecDeque<f64> = VecDeque::with_capacity(cfg.recv_queue_blocks);

    // Per-epoch accumulators for the CPU/network traces.
    let mut epoch_cpu_busy = 0.0f64;
    let mut epoch_wire_bytes = 0u64;
    let mut last_epoch_count = 0u64;
    let mut last_epoch_t = 0.0f64;

    let metrics = registry::global();
    let mut produced = 0u64;
    let mut wire_total = 0u64;
    let mut blocks_per_level = vec![0u64; speed.num_levels()];
    let mut net_rate_trace = TimeSeries::new();
    let mut cpu_trace = TimeSeries::new();

    // Guest-displayed metric distortion for the metric-based baseline: the
    // guest sees only a fraction of its true CPU cost (Fig. 1) and believes
    // the NIC's nominal solo bandwidth is available.
    let display_model = cfg.platform.cpu_accuracy(IoOp::NetSend);
    let display_factor = match display_model.gap() {
        Some(gap) if gap > 0.0 => 1.0 / gap,
        _ => 1.0,
    };
    let displayed_bw = cfg.platform.net_bandwidth_bps();

    while produced < cfg.total_bytes {
        let block = (cfg.block_len as u64).min(cfg.total_bytes - produced) as usize;
        let class = schedule.class_at(produced);
        let level = driver.level();
        let prof = speed.profile(class, level);
        let wire = (block as f64 * prof.ratio) as u64 + HEADER_LEN as u64;

        // Stage 1: sender CPU.
        let mut comp_secs =
            (block as f64 / prof.compress_bps + wire as f64 / speed.tcp_proc_bps) / cpu_factor;
        if cfg.cpu_jitter > 0.0 {
            comp_secs *= (1.0 + rng.normal(0.0, cfg.cpu_jitter)).clamp(0.5, 2.0);
        }
        let backpressure = if net_done_q.len() >= cfg.send_queue_blocks {
            net_done_q.pop_front().unwrap()
        } else {
            0.0
        };
        // Dispatch to the earliest-free lane (with one lane this is the old
        // serial `cpu_free` arithmetic, bit-for-bit).
        let lane = lanes
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let cpu_start = lanes[lane].max(backpressure);
        let cpu_done = cpu_start + comp_secs;
        lanes[lane] = cpu_done;
        // The reorder gate ships frames in submission order, so epoch time
        // advances monotonically even when lanes finish out of order.
        let emit_t = cpu_done.max(record_clock);
        record_clock = emit_t;

        // Stage 2: wire.
        let rx_backpressure = if rx_done_q.len() >= cfg.recv_queue_blocks {
            rx_done_q.pop_front().unwrap()
        } else {
            0.0
        };
        let net_start = emit_t.max(net_free).max(rx_backpressure);
        let net_secs = link.transmit_secs(wire, net_start);
        let net_done = net_start + net_secs;
        net_free = net_done;
        net_done_q.push_back(net_done);

        // Stage 3: receiver CPU.
        let rx_secs =
            block as f64 / prof.decompress_bps + wire as f64 / speed.tcp_proc_bps;
        let rx_done = net_done.max(rx_free) + rx_secs;
        rx_free = rx_done;
        rx_done_q.push_back(rx_done);

        produced += block as u64;
        wire_total += wire;
        blocks_per_level[level] += 1;
        epoch_cpu_busy += comp_secs;
        epoch_wire_bytes += wire;
        if let Some(m) = metrics {
            // Virtual-clock feeds: durations come from the simulated
            // pipeline clocks, so the same histograms fill identically
            // whichever wall-clock thread runs this cell.
            m.counter_add(CounterKind::SimBlocks, 1);
            m.counter_add(CounterKind::CodecInBytes, block as u64);
            m.counter_add(CounterKind::CodecOutBytes, wire);
            m.level_block(level, 1);
            m.span_secs(SpanKind::Compress, comp_secs);
            m.span_secs(SpanKind::Decompress, rx_secs);
            m.span_secs(SpanKind::SimBlock, rx_done - cpu_start);
        }

        // Decision epoch bookkeeping: application bytes count at the moment
        // they were handed (compressed) to the I/O layer.
        let queue_depth = net_done_q.iter().filter(|&&d| d > emit_t).count();
        let true_busy_frac = 1.0f64.min(epoch_cpu_busy / cfg.epoch_secs);
        let ctx = EpochContext {
            queue_depth,
            queue_capacity: cfg.send_queue_blocks,
            guest: Some(GuestMetrics {
                cpu_idle_frac: (1.0 - true_busy_frac * display_factor).clamp(0.0, 1.0),
                net_bandwidth: displayed_bw,
            }),
            observed_ratio: Some(prof.ratio),
            // What an in-channel entropy probe of this class's data reports
            // (order-0 bits/byte, measured once on the generated corpus).
            data_entropy: Some(match class {
                Class::High => 1.4,
                Class::Moderate => 4.3,
                Class::Low => 8.0,
            }),
        };
        driver.record(block as u64, emit_t, &ctx);
        if driver.epochs() != last_epoch_count {
            let dt = (emit_t - last_epoch_t).max(1e-9);
            let wire_rate = epoch_wire_bytes as f64 / dt;
            net_rate_trace.push(emit_t, wire_rate);
            cpu_trace.push(emit_t, 100.0 * (epoch_cpu_busy / dt).min(1.0));
            if trace.enabled() {
                // One contended-share sample and one wire-rate sample per
                // epoch keeps trace volume proportional to epochs, not
                // blocks.
                let epoch = driver.epochs() - 1;
                trace.emit(
                    &SimEvent {
                        epoch,
                        t: emit_t,
                        kind: "bandwidth",
                        flow: SimEvent::NO_FLOW,
                        value: link.nominal_share_bps(),
                        aux: cfg.background_flows as f64,
                    }
                    .into(),
                );
                trace.emit(
                    &SimEvent {
                        epoch,
                        t: emit_t,
                        kind: "sample",
                        flow: SimEvent::NO_FLOW,
                        value: wire_rate,
                        aux: 100.0 * (epoch_cpu_busy / dt).min(1.0),
                    }
                    .into(),
                );
            }
            epoch_cpu_busy = 0.0;
            epoch_wire_bytes = 0;
            last_epoch_count = driver.epochs();
            last_epoch_t = emit_t;
        }
    }

    if trace.enabled() {
        trace.emit(
            &SimEvent {
                epoch: driver.epochs(),
                t: rx_free,
                kind: "transfer_done",
                flow: SimEvent::NO_FLOW,
                value: rx_free,
                aux: wire_total as f64,
            }
            .into(),
        );
    }

    TransferOutcome {
        completion_secs: rx_free,
        app_bytes: produced,
        wire_bytes: wire_total,
        level_trace: driver.level_trace().clone(),
        app_rate_trace: driver.rate_trace().clone(),
        net_rate_trace,
        cpu_trace,
        blocks_per_level,
        epochs: driver.epochs(),
    }
}

/// Convenience: run the same configuration `reps` times with distinct
/// seeds; returns completion times in seconds.
pub fn run_repeated(
    cfg: &TransferConfig,
    speed: &SpeedModel,
    make_schedule: impl Fn() -> Box<dyn ClassSchedule>,
    make_model: impl Fn() -> Box<dyn DecisionModel>,
    reps: usize,
) -> Vec<f64> {
    (0..reps)
        .map(|r| {
            let cfg_r = TransferConfig {
                seed: cfg.seed.wrapping_add(r as u64 * 7919 + 13),
                ..cfg.clone()
            };
            let mut sched = make_schedule();
            run_transfer(&cfg_r, speed, sched.as_mut(), make_model()).completion_secs
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_core::model::{RateBasedModel, StaticModel};

    fn small_cfg(total_mb: u64, flows: usize) -> TransferConfig {
        TransferConfig {
            total_bytes: total_mb * 1_000_000,
            background_flows: flows,
            deterministic: true,
            cpu_jitter: 0.0,
            ..TransferConfig::paper_default()
        }
    }

    fn static_run(class: Class, level: usize, total_mb: u64, flows: usize) -> TransferOutcome {
        let cfg = small_cfg(total_mb, flows);
        let speed = SpeedModel::paper_fit();
        run_transfer(&cfg, &speed, &mut ConstantClass(class), Box::new(StaticModel::new(level, 4)))
    }

    #[test]
    fn uncompressed_run_is_wire_bound() {
        // 1 GB at ~100 MB/s nominal KVM-para bandwidth → ≈ 10 s.
        let out = static_run(Class::High, 0, 1000, 0);
        let rate = out.mean_app_rate() / 1e6;
        assert!((85.0..105.0).contains(&rate), "NO rate {rate} MB/s");
        assert_eq!(out.app_bytes, 1_000_000_000);
        assert!(out.wire_ratio() > 1.0 && out.wire_ratio() < 1.01);
    }

    #[test]
    fn light_on_high_data_beats_no_compression() {
        let no = static_run(Class::High, 0, 1000, 0);
        let light = static_run(Class::High, 1, 1000, 0);
        let speedup = no.completion_secs / light.completion_secs;
        // Paper Table II: 569 / 252 ≈ 2.26×.
        assert!((1.8..2.8).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn heavy_is_cpu_bound_and_slow() {
        let heavy = static_run(Class::High, 3, 200, 0);
        let rate = heavy.mean_app_rate() / 1e6;
        // Paper: 50 GB in 1881 s ≈ 27 MB/s.
        assert!((22.0..30.0).contains(&rate), "HEAVY rate {rate}");
    }

    #[test]
    fn light_on_low_data_is_slower_than_no() {
        // Paper Table II LOW column: NO 566 s < LIGHT 629 s (wasted CPU).
        let no = static_run(Class::Low, 0, 1000, 0);
        let light = static_run(Class::Low, 1, 1000, 0);
        assert!(
            light.completion_secs > no.completion_secs * 1.05,
            "LIGHT {} vs NO {}",
            light.completion_secs,
            no.completion_secs
        );
    }

    #[test]
    fn contention_slows_uncompressed_transfers_like_table2() {
        let base = static_run(Class::High, 0, 500, 0).completion_secs;
        let one = static_run(Class::High, 0, 500, 1).completion_secs;
        let three = static_run(Class::High, 0, 500, 3).completion_secs;
        // Paper: 569 → 908 (×1.60) → 1642 (×2.89).
        assert!((1.4..1.9).contains(&(one / base)), "×{}", one / base);
        assert!((2.4..3.4).contains(&(three / base)), "×{}", three / base);
    }

    #[test]
    fn dynamic_tracks_best_static_on_high_data() {
        let cfg = small_cfg(2000, 0);
        let speed = SpeedModel::paper_fit();
        let dynamic = run_transfer(
            &cfg,
            &speed,
            &mut ConstantClass(Class::High),
            Box::new(RateBasedModel::paper_default()),
        );
        let light = static_run(Class::High, 1, 2000, 0);
        let slowdown = dynamic.completion_secs / light.completion_secs;
        // Paper: DYNAMIC within 22 % of the best static level.
        assert!(slowdown < 1.25, "DYNAMIC {slowdown}× of LIGHT");
        assert!(
            dynamic.blocks_per_level[1] > dynamic.blocks_per_level[3],
            "most blocks should be LIGHT: {:?}",
            dynamic.blocks_per_level
        );
    }

    #[test]
    fn dynamic_follows_compressibility_switch() {
        let cfg = TransferConfig {
            total_bytes: 3_000_000_000,
            deterministic: true,
            cpu_jitter: 0.0,
            ..TransferConfig::paper_default()
        };
        let speed = SpeedModel::paper_fit();
        let mut sched = AlternatingClass {
            classes: vec![Class::High, Class::Low],
            period_bytes: 1_000_000_000,
        };
        let out = run_transfer(&cfg, &speed, &mut sched, Box::new(RateBasedModel::paper_default()));
        // Level must move: HIGH phases favour LIGHT+, LOW phases favour NO.
        assert!(out.level_trace.len() > 4, "level changes: {}", out.level_trace.len());
        assert!(out.blocks_per_level[0] > 0, "{:?}", out.blocks_per_level);
        assert!(out.blocks_per_level[1] > 0, "{:?}", out.blocks_per_level);
    }

    #[test]
    fn traces_are_populated_and_causal() {
        let out = static_run(Class::Moderate, 1, 500, 1);
        assert!(out.epochs > 2);
        assert_eq!(out.app_rate_trace.len() as u64, out.epochs);
        assert!(out.net_rate_trace.len() as u64 <= out.epochs);
        for w in out.app_rate_trace.points().windows(2) {
            assert!(w[1].0 >= w[0].0);
        }
        assert!(out.completion_secs > 0.0);
    }

    #[test]
    fn repeated_runs_with_noise_vary_but_cluster() {
        let cfg = TransferConfig {
            total_bytes: 300_000_000,
            deterministic: false,
            ..TransferConfig::paper_default()
        };
        let speed = SpeedModel::paper_fit();
        let times = run_repeated(
            &cfg,
            &speed,
            || Box::new(ConstantClass(Class::High)),
            || Box::new(StaticModel::new(1, 4)),
            5,
        );
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        for t in &times {
            assert!((t / mean - 1.0).abs() < 0.2, "outlier {t} vs mean {mean}");
        }
    }

    #[test]
    fn traced_transfer_emits_virtual_time_events() {
        use adcomp_trace::{MemorySink, TraceEvent};
        use std::sync::Arc;

        let cfg = small_cfg(200, 1);
        let speed = SpeedModel::paper_fit();
        let sink = Arc::new(MemorySink::new());
        let out = run_transfer_traced(
            &cfg,
            &speed,
            &mut ConstantClass(Class::High),
            Box::new(RateBasedModel::paper_default()),
            TraceHandle::new(sink.clone()),
        );
        let events = sink.snapshot();
        let decisions = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Decision(_)))
            .count() as u64;
        assert_eq!(decisions, out.epochs);
        let sims: Vec<&adcomp_trace::SimEvent> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Sim(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(sims.first().map(|s| s.kind), Some("transfer_start"));
        assert_eq!(sims.last().map(|s| s.kind), Some("transfer_done"));
        assert!(sims.iter().filter(|s| s.kind == "bandwidth").count() as u64 <= out.epochs);
        assert!(sims.iter().any(|s| s.kind == "sample"));
        // Virtual-time determinism: a second traced run is event-identical.
        let sink2 = Arc::new(MemorySink::new());
        run_transfer_traced(
            &cfg,
            &speed,
            &mut ConstantClass(Class::High),
            Box::new(RateBasedModel::paper_default()),
            TraceHandle::new(sink2.clone()),
        );
        // Compare via JSON: NaN fields (seed-epoch pdr) serialize to null,
        // while NaN != NaN would fail a direct PartialEq comparison.
        let json = |evs: Vec<TraceEvent>| -> Vec<String> {
            evs.iter().map(|e| e.to_json()).collect()
        };
        assert_eq!(json(sink.snapshot()), json(sink2.snapshot()));
    }

    #[test]
    fn deterministic_runs_reproduce_exactly() {
        let a = static_run(Class::Moderate, 2, 200, 2);
        let b = static_run(Class::Moderate, 2, 200, 2);
        assert_eq!(a.completion_secs, b.completion_secs);
        assert_eq!(a.wire_bytes, b.wire_bytes);
    }

    fn pooled_run(class: Class, level: usize, total_mb: u64, workers: usize) -> TransferOutcome {
        let cfg = TransferConfig { pipeline_workers: workers, ..small_cfg(total_mb, 0) };
        let speed = SpeedModel::paper_fit();
        run_transfer(&cfg, &speed, &mut ConstantClass(class), Box::new(StaticModel::new(level, 4)))
    }

    #[test]
    fn one_worker_pool_is_bit_identical_to_serial() {
        let serial = static_run(Class::Moderate, 2, 200, 0);
        let pooled = pooled_run(Class::Moderate, 2, 200, 1);
        assert_eq!(serial.completion_secs, pooled.completion_secs);
        assert_eq!(serial.wire_bytes, pooled.wire_bytes);
        assert_eq!(serial.epochs, pooled.epochs);
    }

    #[test]
    fn worker_pool_accelerates_cpu_bound_transfer() {
        // HEAVY on HIGH data is CPU-bound (~27 MB/s on one lane); four
        // lanes must cut completion time well past the 1.5× acceptance bar.
        let serial = pooled_run(Class::High, 3, 200, 1);
        let pooled = pooled_run(Class::High, 3, 200, 4);
        let speedup = serial.completion_secs / pooled.completion_secs;
        assert!(speedup >= 1.5, "4-worker speedup only {speedup:.2}×");
        // The reorder gate keeps the wire stream identical.
        assert_eq!(serial.wire_bytes, pooled.wire_bytes);
        assert_eq!(serial.blocks_per_level, pooled.blocks_per_level);
    }

    #[test]
    fn worker_pool_does_not_change_wire_bound_transfer() {
        // Uncompressed transfers are wire-bound: extra CPU lanes must not
        // buy more than a few percent.
        let serial = pooled_run(Class::High, 0, 500, 1);
        let pooled = pooled_run(Class::High, 0, 500, 4);
        let speedup = serial.completion_secs / pooled.completion_secs;
        assert!(speedup < 1.1, "wire-bound speedup {speedup:.2}× should be ~1");
        assert_eq!(serial.wire_bytes, pooled.wire_bytes);
    }
}
