//! The chaos-soak engine: deterministic encode → corrupt → recover →
//! verify round trips.
//!
//! Each [`SoakCase`] is a pure function of its fields (seed, fault rate,
//! compression level, layer, …): [`run_case`] builds the payloads, runs
//! them through a faulted transport, recovers with the configured
//! [`RecoveryPolicy`] and verifies every recovered item byte-for-byte
//! against its regenerated original. The contract asserted per case:
//!
//! 1. **no panic, no hang** — the whole case runs under `catch_unwind`
//!    and only bounded loops;
//! 2. **no silent corruption** — every recovered item must be
//!    byte-identical to an original (items carry their index, so the
//!    original is regenerated, not trusted from the stream);
//! 3. **order preserved** — surviving items arrive in their original
//!    relative order;
//! 4. otherwise the run must end in a **typed error**, which is a legal
//!    outcome (e.g. fail-fast mode on a damaged stream).
//!
//! Aggregation ([`summarize`]) is a commutative sum over case results, so
//! the summary JSON is bit-identical for any `ADCOMP_THREADS` worker
//! count — the property the CI chaos-smoke step diffs.

use crate::io::{CorruptingWriter, FlakyReader};
use crate::plan::{FaultPlan, FaultSpec, InjectStats};
use crate::transport::FaultingTransport;
use adcomp_codecs::frame::{FrameReader, FrameWriter, RecoveryPolicy, RecoveryStats};
use adcomp_codecs::{codec_for, LevelSet};
use adcomp_core::model::StaticModel;
use adcomp_core::portfolio;
use adcomp_core::stream::AdaptiveWriter;
use adcomp_core::{IndexedReader, ManualClock};
use adcomp_corpus::Prng;
use adcomp_nephele::channel::{mem_pair, CompressionMode, RecordReader, RecordWriter};
use adcomp_trace::json::ObjWriter;
use std::io::{Cursor, Read, Write};

/// Which layer of the stack a case attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoakLayer {
    /// `FrameWriter` → corrupting byte stream → `FrameReader`.
    Frame,
    /// `RecordWriter` → faulting block transport → `RecordReader`.
    Record,
    /// Seekable `AdaptiveWriter` (index trailer) → corrupting byte stream
    /// → offset-addressed ranged reads through `IndexedReader`.
    Indexed,
    /// Mixed-codec streams: each block's codec family is chosen by the
    /// portfolio probe (`adcomp_core::portfolio::select`), so one wire
    /// stream interleaves ladder and portfolio codecs before the
    /// corrupting byte stream attacks it.
    Portfolio,
}

impl SoakLayer {
    pub fn name(&self) -> &'static str {
        match self {
            SoakLayer::Frame => "frame",
            SoakLayer::Record => "record",
            SoakLayer::Indexed => "indexed",
            SoakLayer::Portfolio => "portfolio",
        }
    }
}

/// One deterministic chaos run.
#[derive(Debug, Clone, Copy)]
pub struct SoakCase {
    /// Master seed: pins payload contents and the whole fault schedule.
    pub seed: u64,
    /// Fault rate fed to [`FaultSpec::from_rate`]. 0.0 = clean run.
    pub rate: f64,
    /// Compression level index into [`LevelSet::paper_default`] (0..4).
    pub level: usize,
    /// Layer under attack.
    pub layer: SoakLayer,
    /// Items (blocks or records) written.
    pub items: usize,
    /// Base item length in bytes (each item's exact length is a
    /// deterministic function of seed and index around this base).
    pub item_len: usize,
    /// Frame layer only: wrap the reader in a [`FlakyReader`] and use a
    /// bounded-retry policy, exercising transient-error recovery.
    pub transient: bool,
    /// Keep only this many permille of the wire stream (1000 = no cut);
    /// exercises the mid-stream truncation paths.
    pub truncate_permille: u16,
    /// Use the fail-fast policy: a damaged stream must end in a typed
    /// error, a clean one must decode fully.
    pub fail_fast: bool,
}

/// How a case ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The reader reached end of stream; recovered items were verified.
    Recovered,
    /// The reader returned a typed error (legal under fail-fast, or when
    /// recovery bounds were exceeded).
    TypedError,
    /// The case panicked — always a harness/stack bug, never legal.
    Panicked,
}

impl Outcome {
    pub fn name(&self) -> &'static str {
        match self {
            Outcome::Recovered => "recovered",
            Outcome::TypedError => "typed_error",
            Outcome::Panicked => "panic",
        }
    }
}

/// Everything one case did and found.
#[derive(Debug, Clone)]
pub struct CaseResult {
    pub seed: u64,
    pub layer: SoakLayer,
    pub level: usize,
    pub rate: f64,
    pub outcome: Outcome,
    /// Display form of the typed error / panic payload (empty otherwise).
    pub error: String,
    pub items_written: u64,
    pub items_recovered: u64,
    /// Recovered items that did NOT match their regenerated original —
    /// silent corruption. Must be zero.
    pub verify_failures: u64,
    /// Surviving items that arrived out of their original order. Must be
    /// zero.
    pub order_violations: u64,
    pub injected: InjectStats,
    pub recovery: RecoveryStats,
}

impl CaseResult {
    /// The soak contract for this case.
    pub fn ok(&self) -> bool {
        match self.outcome {
            Outcome::Recovered => self.verify_failures == 0 && self.order_violations == 0,
            Outcome::TypedError => true,
            Outcome::Panicked => false,
        }
    }

    /// One deterministic JSON line describing this case (for `--verbose`).
    pub fn to_json(&self) -> String {
        let mut o = ObjWriter::new();
        o.u64_field("seed", self.seed);
        o.str_field("layer", self.layer.name());
        o.u64_field("level", self.level as u64);
        o.f64_field("rate", self.rate);
        o.str_field("outcome", self.outcome.name());
        o.bool_field("ok", self.ok());
        o.u64_field("written", self.items_written);
        o.u64_field("recovered", self.items_recovered);
        o.u64_field("verify_failures", self.verify_failures);
        o.u64_field("order_violations", self.order_violations);
        o.u64_field("flips", self.injected.flips);
        o.u64_field("drops", self.injected.drops);
        o.u64_field("cuts", self.injected.cuts);
        o.u64_field("corrupt_frames", self.recovery.corrupt_frames);
        o.u64_field("resyncs", self.recovery.resyncs);
        o.u64_field("retries", self.recovery.retries);
        o.u64_field("truncations", self.recovery.truncations);
        if !self.error.is_empty() {
            o.str_field("error", &self.error);
        }
        o.finish()
    }
}

/// Deterministic payload for item `index` of a case: 8-byte little-endian
/// index, then seed-derived content in one of three shapes (repetitive
/// text, byte runs, incompressible noise) so every codec sees both its
/// best and worst case. Length is `base_len/2 ..= base_len` plus the
/// index prefix, derived from the same stream.
pub fn gen_item(seed: u64, index: u64, base_len: usize) -> Vec<u8> {
    let mut p = Prng::new(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x50AC);
    let len = base_len / 2 + p.below(base_len as u64 / 2 + 1) as usize;
    let mut v = Vec::with_capacity(len + 8);
    v.extend_from_slice(&index.to_le_bytes());
    match index % 3 {
        0 => {
            while v.len() < len + 8 {
                v.extend_from_slice(b"adaptive compression chaos soak payload ");
            }
        }
        1 => {
            while v.len() < len + 8 {
                let b = p.next_u8();
                let n = (p.below(48) + 1) as usize;
                v.extend(std::iter::repeat_n(b, n));
            }
        }
        _ => {
            let start = v.len();
            v.resize(len + 8, 0);
            p.fill_bytes(&mut v[start..]);
        }
    }
    v.truncate(len + 8);
    v
}

/// The standard case grid: cycles levels, layers, rates and scenario
/// flags so `runs` cases cover the full taxonomy. Seeds are splitmix-mixed
/// from `base_seed`, so the grid is a pure function of `(base_seed, runs)`.
pub fn grid(base_seed: u64, runs: usize) -> Vec<SoakCase> {
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e3779b97f4a7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
    const RATES: [f64; 4] = [0.0, 0.02, 0.08, 0.2];
    (0..runs)
        .map(|i| {
            let layer = match (i / 4) % 4 {
                0 => SoakLayer::Frame,
                1 => SoakLayer::Record,
                2 => SoakLayer::Indexed,
                _ => SoakLayer::Portfolio,
            };
            let rate = RATES[(i / 8) % 4];
            SoakCase {
                seed: splitmix(base_seed ^ (i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D)),
                rate,
                level: i % 4,
                layer,
                items: match layer {
                    SoakLayer::Frame | SoakLayer::Portfolio => 48,
                    SoakLayer::Record => 160,
                    SoakLayer::Indexed => 40,
                },
                item_len: match layer {
                    SoakLayer::Frame | SoakLayer::Portfolio => 2048,
                    SoakLayer::Record => 280,
                    SoakLayer::Indexed => 1600,
                },
                transient: layer == SoakLayer::Frame && i % 3 == 0,
                truncate_permille: if layer != SoakLayer::Record && i % 5 == 0 && rate > 0.0 {
                    700
                } else {
                    1000
                },
                fail_fast: i % 16 == 15,
            }
        })
        .collect()
}

/// Runs one case under `catch_unwind`; a panic becomes
/// [`Outcome::Panicked`] (which fails the soak) instead of taking the
/// harness down.
pub fn run_case(case: &SoakCase) -> CaseResult {
    let c = *case;
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match c.layer {
        SoakLayer::Frame => run_frame_case(&c),
        SoakLayer::Record => run_record_case(&c),
        SoakLayer::Indexed => run_indexed_case(&c),
        SoakLayer::Portfolio => run_portfolio_case(&c),
    })) {
        Ok(r) => r,
        Err(p) => {
            let msg = p
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            CaseResult {
                seed: c.seed,
                layer: c.layer,
                level: c.level,
                rate: c.rate,
                outcome: Outcome::Panicked,
                error: msg,
                items_written: c.items as u64,
                items_recovered: 0,
                verify_failures: 0,
                order_violations: 0,
                injected: InjectStats::default(),
                recovery: RecoveryStats::default(),
            }
        }
    }
}

/// Shared verification loop: pulls decoded items via `next`, checks each
/// against its regenerated original and tracks ordering. Returns
/// `(recovered, verify_failures, order_violations, error)`.
fn verify_items<E: std::fmt::Display>(
    case: &SoakCase,
    mut next: impl FnMut() -> Result<Option<Vec<u8>>, E>,
) -> (u64, u64, u64, Option<String>) {
    let mut recovered = 0u64;
    let mut verify_failures = 0u64;
    let mut order_violations = 0u64;
    let mut last_idx: Option<u64> = None;
    // Bounded: a reader may never yield more items than were written plus
    // slack; more means a resync invented frames (harness failure).
    let cap = case.items as u64 * 2 + 16;
    loop {
        match next() {
            Ok(Some(item)) => {
                recovered += 1;
                if recovered > cap {
                    verify_failures += 1;
                    return (recovered, verify_failures, order_violations, None);
                }
                if item.len() < 8 {
                    verify_failures += 1;
                    continue;
                }
                let idx = u64::from_le_bytes(item[..8].try_into().unwrap());
                if idx >= case.items as u64 {
                    verify_failures += 1;
                    continue;
                }
                if gen_item(case.seed, idx, case.item_len) != item {
                    verify_failures += 1;
                }
                if let Some(last) = last_idx {
                    if idx <= last {
                        order_violations += 1;
                    }
                }
                last_idx = Some(idx);
            }
            Ok(None) => return (recovered, verify_failures, order_violations, None),
            Err(e) => return (recovered, verify_failures, order_violations, Some(e.to_string())),
        }
    }
}

fn frame_policy(case: &SoakCase) -> RecoveryPolicy {
    if case.fail_fast {
        RecoveryPolicy::fail_fast()
    } else if case.transient {
        RecoveryPolicy::bounded_retry(8, 0)
    } else {
        RecoveryPolicy::skip_and_count()
    }
}

fn run_frame_case(case: &SoakCase) -> CaseResult {
    let levels = LevelSet::paper_default();
    let plan = FaultPlan::new(FaultSpec::from_rate(case.seed, case.rate));
    let mut cw = CorruptingWriter::new(Vec::new(), plan);
    {
        let mut fw = FrameWriter::new(&mut cw);
        for i in 0..case.items {
            let item = gen_item(case.seed, i as u64, case.item_len);
            fw.write_block(levels.codec(case.level), &item).expect("Vec write cannot fail");
        }
    }
    let mut injected = cw.stats();
    let mut wire = cw.into_inner();
    if case.truncate_permille < 1000 {
        let keep = wire.len() * case.truncate_permille as usize / 1000;
        wire.truncate(keep);
    }
    let policy = frame_policy(case);
    let (recovered, verify_failures, order_violations, error, recovery) = if case.transient {
        // Transients only (rate-derived); frame damage already happened on
        // the write side.
        let trate = if case.rate > 0.0 { case.rate } else { 0.15 };
        let tspec = FaultSpec {
            transient_rate: trate,
            max_transient_burst: 3,
            ..FaultSpec::quiet(case.seed ^ 0x007A_5E17)
        };
        let flaky = FlakyReader::new(&wire[..], FaultPlan::new(tspec));
        let mut reader = FrameReader::with_policy(flaky, policy);
        let (recovered, vf, ov, error) = verify_items(case, || {
            let mut out = Vec::new();
            reader.read_block(&mut out).map(|h| h.map(|_| out))
        });
        let recovery = reader.recovery;
        // The flaky reader is the only party that saw the WouldBlock
        // storms — fold its count into the injection ledger.
        injected.transients += reader.into_inner().stats().transients;
        (recovered, vf, ov, error, recovery)
    } else {
        read_frames(case, &wire[..], policy)
    };
    CaseResult {
        seed: case.seed,
        layer: case.layer,
        level: case.level,
        rate: case.rate,
        outcome: if error.is_some() { Outcome::TypedError } else { Outcome::Recovered },
        error: error.unwrap_or_default(),
        items_written: case.items as u64,
        items_recovered: recovered,
        verify_failures,
        order_violations,
        injected,
        recovery,
    }
}

fn read_frames<R: Read>(
    case: &SoakCase,
    inner: R,
    policy: RecoveryPolicy,
) -> (u64, u64, u64, Option<String>, RecoveryStats) {
    let mut reader = FrameReader::with_policy(inner, policy);
    let (recovered, vf, ov, error) = verify_items(case, || {
        let mut out = Vec::new();
        reader.read_block(&mut out).map(|h| h.map(|_| out))
    });
    (recovered, vf, ov, error, reader.recovery)
}

/// Portfolio layer: every block's codec family comes from the content
/// probe, so a single stream interleaves COLUMNAR, HUFF and the ladder
/// codecs (the three `gen_item` shapes — text, runs, noise — pull the
/// nomination in different directions). The corrupting byte stream then
/// attacks the mixed-codec wire: survivors must be byte-accurate and
/// in order, damage must surface as skip-counted corruption or a typed
/// error, never a panic — the same contract as the frame layer, now
/// across codec families.
fn run_portfolio_case(case: &SoakCase) -> CaseResult {
    let plan = FaultPlan::new(FaultSpec::from_rate(case.seed, case.rate));
    let mut cw = CorruptingWriter::new(Vec::new(), plan);
    {
        let mut fw = FrameWriter::new(&mut cw);
        for i in 0..case.items {
            let item = gen_item(case.seed, i as u64, case.item_len);
            let codec = codec_for(portfolio::select(&item, case.level));
            fw.write_block(codec, &item).expect("Vec write cannot fail");
        }
    }
    let injected = cw.stats();
    let mut wire = cw.into_inner();
    if case.truncate_permille < 1000 {
        let keep = wire.len() * case.truncate_permille as usize / 1000;
        wire.truncate(keep);
    }
    let (recovered, verify_failures, order_violations, error, recovery) =
        read_frames(case, &wire[..], frame_policy(case));
    CaseResult {
        seed: case.seed,
        layer: case.layer,
        level: case.level,
        rate: case.rate,
        outcome: if error.is_some() { Outcome::TypedError } else { Outcome::Recovered },
        error: error.unwrap_or_default(),
        items_written: case.items as u64,
        items_recovered: recovered,
        verify_failures,
        order_violations,
        injected,
        recovery,
    }
}

fn run_record_case(case: &SoakCase) -> CaseResult {
    let plan = FaultPlan::new(FaultSpec::from_rate(case.seed, case.rate));
    let (tx, rx) = mem_pair(1 << 15);
    let ft = FaultingTransport::new(tx, plan);
    let inj_handle = ft.stats_handle();
    let mut w = RecordWriter::new(
        Box::new(ft),
        &CompressionMode::Static(case.level),
        LevelSet::paper_default(),
        3600.0,
    );
    w.set_block_len(2048);
    w.set_record_aligned(true);
    for i in 0..case.items {
        w.write_record(&gen_item(case.seed, i as u64, case.item_len))
            .expect("mem transport send cannot fail");
    }
    w.finish().expect("mem transport close cannot fail");
    let injected = *inj_handle.lock().unwrap();

    let policy = if case.fail_fast {
        RecoveryPolicy::fail_fast()
    } else {
        RecoveryPolicy::skip_and_count()
    };
    let mut reader = RecordReader::with_policy(Box::new(rx), policy);
    let (recovered, verify_failures, order_violations, error) =
        verify_items(case, || reader.next_record());
    let recovery = reader.stats().recovery;
    CaseResult {
        seed: case.seed,
        layer: case.layer,
        level: case.level,
        rate: case.rate,
        outcome: if error.is_some() { Outcome::TypedError } else { Outcome::Recovered },
        error: error.unwrap_or_default(),
        items_written: case.items as u64,
        items_recovered: recovered,
        verify_failures,
        order_violations,
        injected,
        recovery,
    }
}

/// Indexed layer: items are concatenated into a seekable stream (4 KiB
/// blocks, index trailer) written through a corrupting byte stream, then
/// read back item by item as offset-addressed ranged reads through an
/// [`IndexedReader`] — the chaos gauntlet for the random-access path,
/// attacking blocks, frame headers and the index trailer alike.
///
/// The fault plan keeps flips and cuts but disables whole-frame drops: a
/// cleanly excised frame leaves a valid-but-shifted stream that no
/// offset-addressed reader can distinguish from intended content (the
/// index is advisory and its fallback is plain streaming decode); drop
/// recovery belongs to the record layer, which frames every item.
///
/// Contract: every ranged read returns bytes identical to the regenerated
/// item (per-block CRC on the indexed path, fail-fast streaming decode on
/// fallback), stops at the truncated tail, or ends in a typed error —
/// never a panic, never silent corruption. Streaming fallbacks taken are
/// surfaced in `recovery.resyncs`.
fn run_indexed_case(case: &SoakCase) -> CaseResult {
    let spec = FaultSpec { drop_rate: 0.0, ..FaultSpec::from_rate(case.seed, case.rate) };
    let cw = CorruptingWriter::new(Vec::new(), FaultPlan::new(spec));
    let items: Vec<Vec<u8>> =
        (0..case.items).map(|i| gen_item(case.seed, i as u64, case.item_len)).collect();
    let mut w = AdaptiveWriter::with_params(
        cw,
        LevelSet::paper_default(),
        Box::new(StaticModel::new(case.level, 4)),
        4096,
        3600.0,
        Box::new(ManualClock::new()),
    );
    w.set_seekable(true);
    for item in &items {
        w.write_all(item).expect("Vec write cannot fail");
    }
    let (cw, _) = w.finish().expect("Vec write cannot fail");
    let injected = cw.stats();
    let mut wire = cw.into_inner();
    if case.truncate_permille < 1000 {
        let keep = wire.len() * case.truncate_permille as usize / 1000;
        wire.truncate(keep);
    }

    let mut recovered = 0u64;
    let mut verify_failures = 0u64;
    let mut error: Option<String> = None;
    let mut recovery = RecoveryStats::default();
    match IndexedReader::with_policy(Cursor::new(&wire[..]), RecoveryPolicy::fail_fast()) {
        Ok(mut reader) => {
            let mut off = 0u64;
            let mut out = Vec::new();
            for (idx, item) in items.iter().enumerate() {
                out.clear();
                match reader.read_range(off, item.len() as u64, &mut out) {
                    Ok(_) if out == item[..] => recovered += 1,
                    Ok(n) if n < item.len() && out[..] == item[..n] => {
                        // Clean end of a truncated stream mid-item.
                        error = Some(format!(
                            "short read at item {idx}: {n} of {} bytes",
                            item.len()
                        ));
                        break;
                    }
                    Ok(_) => verify_failures += 1,
                    Err(e) => {
                        error = Some(e.to_string());
                        break;
                    }
                }
                off += item.len() as u64;
            }
            recovery.resyncs = reader.fallback_scans;
        }
        Err(e) => error = Some(e.to_string()),
    }
    CaseResult {
        seed: case.seed,
        layer: case.layer,
        level: case.level,
        rate: case.rate,
        outcome: if error.is_some() { Outcome::TypedError } else { Outcome::Recovered },
        error: error.unwrap_or_default(),
        items_written: case.items as u64,
        items_recovered: recovered,
        verify_failures,
        order_violations: 0,
        injected,
        recovery,
    }
}

/// Commutative aggregate of a soak run — every field is a sum or an AND,
/// so the summary is identical for any execution order / worker count.
#[derive(Debug, Clone, Default)]
pub struct SoakSummary {
    pub runs: u64,
    pub ok_runs: u64,
    pub recovered_runs: u64,
    pub typed_errors: u64,
    pub panics: u64,
    pub verify_failures: u64,
    pub order_violations: u64,
    pub items_written: u64,
    pub items_recovered: u64,
    pub injected: InjectStats,
    pub recovery: RecoveryStats,
    /// Items recovered per compression level (paper levels 0..4).
    pub recovered_per_level: [u64; 4],
}

impl SoakSummary {
    /// True when every case upheld the soak contract.
    pub fn all_ok(&self) -> bool {
        self.runs == self.ok_runs && self.panics == 0
    }

    /// The deterministic summary JSON the CI chaos-smoke step diffs.
    pub fn to_json(&self) -> String {
        let mut o = ObjWriter::new();
        o.str_field("v", "chaos-soak-1");
        o.u64_field("runs", self.runs);
        o.u64_field("ok_runs", self.ok_runs);
        o.bool_field("all_ok", self.all_ok());
        o.u64_field("recovered_runs", self.recovered_runs);
        o.u64_field("typed_errors", self.typed_errors);
        o.u64_field("panics", self.panics);
        o.u64_field("verify_failures", self.verify_failures);
        o.u64_field("order_violations", self.order_violations);
        o.u64_field("items_written", self.items_written);
        o.u64_field("items_recovered", self.items_recovered);
        o.u64_field("inject_frames", self.injected.frames);
        o.u64_field("inject_flips", self.injected.flips);
        o.u64_field("inject_drops", self.injected.drops);
        o.u64_field("inject_cuts", self.injected.cuts);
        o.u64_field("inject_transients", self.injected.transients);
        o.u64_field("corrupt_frames", self.recovery.corrupt_frames);
        o.u64_field("resyncs", self.recovery.resyncs);
        o.u64_field("retries", self.recovery.retries);
        o.u64_field("truncations", self.recovery.truncations);
        o.u64_field("skipped_bytes", self.recovery.skipped_bytes);
        let per_level: Vec<u32> =
            self.recovered_per_level.iter().map(|&v| v.min(u32::MAX as u64) as u32).collect();
        o.u32_array_field("recovered_per_level", &per_level);
        o.finish()
    }
}

/// Folds case results into a [`SoakSummary`].
pub fn summarize(results: &[CaseResult]) -> SoakSummary {
    let mut s = SoakSummary::default();
    for r in results {
        s.runs += 1;
        if r.ok() {
            s.ok_runs += 1;
        }
        match r.outcome {
            Outcome::Recovered => s.recovered_runs += 1,
            Outcome::TypedError => s.typed_errors += 1,
            Outcome::Panicked => s.panics += 1,
        }
        s.verify_failures += r.verify_failures;
        s.order_violations += r.order_violations;
        s.items_written += r.items_written;
        s.items_recovered += r.items_recovered;
        s.injected.frames += r.injected.frames;
        s.injected.flips += r.injected.flips;
        s.injected.drops += r.injected.drops;
        s.injected.cuts += r.injected.cuts;
        s.injected.transients += r.injected.transients;
        s.injected.bytes_in += r.injected.bytes_in;
        s.injected.bytes_out += r.injected.bytes_out;
        s.recovery.merge(&r.recovery);
        if r.level < 4 {
            s.recovered_per_level[r.level] += r.items_recovered;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_cases_recover_everything() {
        for layer in
            [SoakLayer::Frame, SoakLayer::Record, SoakLayer::Indexed, SoakLayer::Portfolio]
        {
            for level in 0..4 {
                let case = SoakCase {
                    seed: 1000 + level as u64,
                    rate: 0.0,
                    level,
                    layer,
                    items: 24,
                    item_len: 600,
                    transient: false,
                    truncate_permille: 1000,
                    fail_fast: true,
                };
                let r = run_case(&case);
                assert_eq!(r.outcome, Outcome::Recovered, "{layer:?} L{level}: {}", r.error);
                assert_eq!(r.items_recovered, 24);
                assert_eq!(r.verify_failures, 0);
                assert!(r.recovery.is_clean());
                assert!(r.ok());
            }
        }
    }

    #[test]
    fn hostile_cases_uphold_the_contract() {
        for case in grid(0xC405, 32) {
            let r = run_case(&case);
            assert!(r.ok(), "case {case:?} violated the contract: {}", r.to_json());
            assert_ne!(r.outcome, Outcome::Panicked);
        }
    }

    #[test]
    fn skip_mode_recovers_most_items_under_moderate_fire() {
        let case = SoakCase {
            seed: 42,
            rate: 0.05,
            level: 1,
            layer: SoakLayer::Frame,
            items: 64,
            item_len: 1500,
            transient: false,
            truncate_permille: 1000,
            fail_fast: false,
        };
        let r = run_case(&case);
        assert_eq!(r.outcome, Outcome::Recovered, "{}", r.error);
        assert_eq!(r.verify_failures, 0);
        // At 5% frame fault rate the vast majority of frames survive.
        assert!(r.items_recovered >= 48, "only {} of 64 recovered", r.items_recovered);
        assert_eq!(
            r.items_recovered + r.injected.drops + r.recovery.corrupt_frames
                + r.recovery.truncations,
            64,
            "every frame accounted for: {r:?}"
        );
    }

    #[test]
    fn summary_is_deterministic_and_order_independent() {
        let cases = grid(7, 24);
        let fwd: Vec<CaseResult> = cases.iter().map(run_case).collect();
        let mut rev: Vec<CaseResult> = cases.iter().rev().map(run_case).collect();
        rev.reverse();
        let a = summarize(&fwd);
        let b = summarize(&rev);
        assert_eq!(a.to_json(), b.to_json());
        // And re-running the same grid reproduces it bit-for-bit.
        let again: Vec<CaseResult> = cases.iter().map(run_case).collect();
        assert_eq!(a.to_json(), summarize(&again).to_json());
    }

    #[test]
    fn indexed_layer_survives_trailer_and_block_damage() {
        let mut fallbacks = 0u64;
        let mut typed = 0u64;
        let mut recovered_items = 0u64;
        for i in 0..12u64 {
            let case = SoakCase {
                seed: 0x1D7 + i,
                rate: 0.1,
                level: (i % 4) as usize,
                layer: SoakLayer::Indexed,
                items: 32,
                item_len: 1200,
                transient: false,
                truncate_permille: if i % 4 == 0 { 600 } else { 1000 },
                fail_fast: true,
            };
            let r = run_case(&case);
            assert!(r.ok(), "indexed case violated the contract: {}", r.to_json());
            assert_ne!(r.outcome, Outcome::Panicked);
            fallbacks += r.recovery.resyncs;
            if r.outcome == Outcome::TypedError {
                typed += 1;
            }
            recovered_items += r.items_recovered;
        }
        assert!(recovered_items > 0, "no item ever survived");
        assert!(typed > 0, "damage at 10% never surfaced");
        assert!(fallbacks > 0, "index fallback path never exercised");

        // Pure truncation, no corruption: the index trailer is cut off,
        // every read below the cut still decodes via the streaming
        // fallback, and the cut itself surfaces as a typed error.
        let case = SoakCase {
            seed: 0xC07,
            rate: 0.0,
            level: 1,
            layer: SoakLayer::Indexed,
            items: 32,
            item_len: 1200,
            transient: false,
            truncate_permille: 500,
            fail_fast: true,
        };
        let r = run_case(&case);
        assert!(r.ok(), "{}", r.to_json());
        assert_eq!(r.outcome, Outcome::TypedError, "the cut must surface: {}", r.to_json());
        assert!(r.items_recovered > 0, "prefix items must still read: {}", r.to_json());
        // The trailer is gone, so the stream opens as non-indexed and
        // streaming is its normal path — not counted as an index fallback.
        assert_eq!(r.recovery.resyncs, 0, "{}", r.to_json());
    }

    #[test]
    fn portfolio_layer_mixes_codecs_and_survives_fire() {
        // The three gen_item shapes must pull the probe into several codec
        // families (level 3 ladders converge on HEAVY as the ratio
        // ceiling, so the spread is widest at level 2).
        for (level, want) in [(2usize, 3usize), (3, 2)] {
            let ids: std::collections::BTreeSet<u8> = (0..12u64)
                .map(|i| {
                    let item = gen_item(0xBEEF, i, 2048);
                    portfolio::select(&item, level) as u8
                })
                .collect();
            assert!(ids.len() >= want, "level {level}: portfolio picked only {ids:?}");
        }
        // Under moderate fire the mixed-codec stream recovers most items
        // byte-accurately, like the single-codec frame layer.
        let case = SoakCase {
            seed: 43,
            rate: 0.05,
            level: 2,
            layer: SoakLayer::Portfolio,
            items: 64,
            item_len: 1500,
            transient: false,
            truncate_permille: 1000,
            fail_fast: false,
        };
        let r = run_case(&case);
        assert_eq!(r.outcome, Outcome::Recovered, "{}", r.error);
        assert_eq!(r.verify_failures, 0);
        assert_eq!(r.order_violations, 0);
        assert!(r.items_recovered >= 48, "only {} of 64 recovered", r.items_recovered);
    }

    #[test]
    fn gen_item_is_pure() {
        for idx in 0..9 {
            assert_eq!(gen_item(5, idx, 512), gen_item(5, idx, 512));
        }
        assert_ne!(gen_item(5, 0, 512), gen_item(6, 0, 512));
    }

    #[test]
    fn summary_json_is_valid() {
        let results: Vec<CaseResult> = grid(11, 8).iter().map(run_case).collect();
        let s = summarize(&results);
        adcomp_trace::json::validate_line(&s.to_json()).expect("summary JSON invalid");
        for r in &results {
            adcomp_trace::json::validate_line(&r.to_json()).expect("case JSON invalid");
        }
    }
}
