//! # adcomp-vcloud — a discrete-event simulator of virtualized cloud I/O
//!
//! The paper's evaluation environment — Eucalyptus-provisioned XEN/KVM
//! guests, Amazon EC2 instances, a shared 1 GbE link with co-located
//! virtual machines — is rebuilt here as a deterministic virtual-time
//! simulator:
//!
//! * [`platform`] — the five platforms with constants calibrated from the
//!   paper's Section II measurements (guest-vs-host CPU display gaps of up
//!   to 15×, per-platform bandwidth and fluctuation regimes);
//! * [`fluctuation`] — AR(1) noise for the local cloud, a violent on/off
//!   process for EC2;
//! * [`link`] — bandwidth sharing with co-located flows (β-contention fit
//!   to Table II);
//! * [`disk`] — host write-back page-cache model (XEN's "tremendous caching
//!   effects", Fig. 3);
//! * [`cpu`] — guest/host CPU utilization breakdowns and sampling (Fig. 1);
//! * [`speed`] — per-(compressibility, level) codec profiles, either
//!   back-fitted from Table II or measured from this repo's real codecs;
//! * [`pipeline`] — the virtual-time sender → wire → receiver transfer with
//!   any [`DecisionModel`](adcomp_core::model::DecisionModel) in the loop;
//! * [`experiments`] — sample generators for Figures 1–3.
//!
//! Virtual time means a 50 GB × 4 levels × 4 contention sweep simulates in
//! seconds while preserving the paper's bottleneck structure.

pub mod cpu;
pub mod disk;
pub mod experiments;
pub mod filepipe;
pub mod fluctuation;
pub mod link;
pub mod multiflow;
pub mod pipeline;
pub mod platform;
pub mod speed;

pub use cpu::{CpuAccuracyModel, CpuBreakdown};
pub use disk::VirtualDisk;
pub use filepipe::{run_file_transfer, FileOutcome, FileTransferConfig};
pub use fluctuation::{Ar1, Constant, Fluctuation, OnOff, Outages, Scaled};
pub use link::{FlowChurn, SharedLink};
pub use multiflow::{
    run_multiflow, run_multiflow_traced, FlowOutcome, FlowSpec, MultiFlowConfig, MultiFlowOutcome,
};
pub use pipeline::{
    run_repeated, run_transfer, run_transfer_traced, AlternatingClass, ClassSchedule,
    ConstantClass, TransferConfig, TransferOutcome,
};
pub use platform::{IoOp, Platform};
pub use speed::{LevelProfile, SpeedModel};

/// Frame header length re-exported for the pipeline models (wire bytes per
/// block include the 16-byte frame header).
pub fn pipeline_header_len() -> usize {
    adcomp_codecs::frame::HEADER_LEN
}
