//! CHAOS SOAK — the repo's standing fault-injection gauntlet.
//!
//! Fans a seeded grid of chaos cases (frame-layer and record-layer
//! channels × all four compression levels × corruption rates from quiet
//! to 20 % × transient-I/O and truncation variants) across the
//! deterministic experiment runner, and holds every case to the soak
//! contract:
//!
//! 1. **no panic, no hang** — every run terminates through `Ok` or a
//!    typed error;
//! 2. **no silent corruption** — every record the reader hands back is
//!    byte-identical to the one that was written (items embed their index
//!    and are regenerated from the pure generator for comparison);
//! 3. **order preserved** — survivors appear in write order;
//! 4. anything the faults destroyed is *accounted for* in
//!    `InjectStats`/`RecoveryStats`, not quietly absorbed.
//!
//! The summary JSON on stdout is a commutative fold over per-case
//! results, so it is **bit-identical for any `ADCOMP_THREADS` setting**
//! — CI runs the quick grid twice (1 worker, then 4) and diffs the two
//! lines. `--cases` additionally streams one JSON line per case (in
//! deterministic grid order) before the summary.
//!
//! Run: `cargo run --release -p adcomp-bench --bin chaos_soak [--quick] \
//!       [--runs N] [--seed S] [--cases]`
//!
//! Exits non-zero if any case breaks the contract.

use adcomp_bench::{quick_mode, runner};
use adcomp_faults::soak::{grid, run_case, summarize};
use std::process::ExitCode;

/// Default grid sizes: `--quick` stays CI-friendly (< a few seconds),
/// the full soak clears the ≥200-run bar from DESIGN.md's fault-model
/// acceptance criteria.
const QUICK_RUNS: usize = 48;
const FULL_RUNS: usize = 256;
const DEFAULT_SEED: u64 = 0xC4405;

fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() -> ExitCode {
    let runs = match arg_value("--runs") {
        Some(v) => match v.parse() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--runs must be a positive integer");
                return ExitCode::from(2);
            }
        },
        None => {
            if quick_mode() {
                QUICK_RUNS
            } else {
                FULL_RUNS
            }
        }
    };
    let seed = match arg_value("--seed") {
        Some(v) => match v.parse() {
            Ok(s) => s,
            Err(_) => {
                eprintln!("--seed must be a u64");
                return ExitCode::from(2);
            }
        },
        None => DEFAULT_SEED,
    };
    let emit_cases = std::env::args().any(|a| a == "--cases");

    let cases = grid(seed, runs);
    let start = std::time::Instant::now();
    let results = runner::map_cells(&cases, |_, case| run_case(case));
    let wall = start.elapsed().as_secs_f64();

    if emit_cases {
        for r in &results {
            println!("{}", r.to_json());
        }
    }

    let summary = summarize(&results);
    println!("{}", summary.to_json());

    let mut first_failures = 0u32;
    for r in results.iter().filter(|r| !r.ok()) {
        first_failures += 1;
        if first_failures <= 8 {
            eprintln!("CONTRACT BROKEN: {}", r.to_json());
        }
    }
    eprintln!(
        "chaos_soak: {} runs (seed {:#x}) on {} worker(s) in {:.2} s: \
         {} recovered, {} typed errors, {} panics; \
         {}/{} items intact, {} corrupt frames, {} resyncs, {} frames dropped on the wire{}",
        summary.runs,
        seed,
        runner::threads(),
        wall,
        summary.recovered_runs,
        summary.typed_errors,
        summary.panics,
        summary.items_recovered,
        summary.items_written,
        summary.recovery.corrupt_frames,
        summary.recovery.resyncs,
        summary.injected.drops,
        if summary.all_ok() { "" } else { " — CONTRACT BROKEN" },
    );
    if summary.all_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
