//! Canned Section-II experiments: generators for the metric-accuracy
//! figures (Figs. 1–3). Each returns raw samples; the bench binaries format
//! them into the paper's tables/plots.

use crate::cpu::{mean_breakdown, sample_pairs, CpuBreakdown};
use crate::disk::VirtualDisk;
use crate::platform::{IoOp, Platform};
use adcomp_corpus::Prng;
use adcomp_metrics::Summary;

/// One bar pair of Figure 1: the averaged guest and host CPU breakdowns for
/// a platform × operation cell.
#[derive(Debug, Clone)]
pub struct CpuAccuracyResult {
    pub platform: Platform,
    pub op: IoOp,
    pub guest_mean: CpuBreakdown,
    pub host_mean: Option<CpuBreakdown>,
    pub samples: usize,
}

impl CpuAccuracyResult {
    /// Host/guest display gap of the averaged totals.
    pub fn gap(&self) -> Option<f64> {
        self.host_mean.map(|h| h.total() / self.guest_mean.total().max(1e-9))
    }
}

/// Figure 1: samples the displayed vs host-accounted CPU utilization.
/// The paper averages "at least 120 individual samples".
pub fn fig1_cpu_accuracy(platform: Platform, op: IoOp, samples: usize, seed: u64) -> CpuAccuracyResult {
    let model = platform.cpu_accuracy(op);
    let pairs = sample_pairs(&model, samples, seed ^ (platform as u64) << 8 ^ op as u64);
    let guest_mean = mean_breakdown(pairs.iter().map(|p| &p.guest));
    let host_mean = if model.host.is_some() {
        let hosts: Vec<CpuBreakdown> = pairs.iter().filter_map(|p| p.host).collect();
        Some(mean_breakdown(hosts.iter()))
    } else {
        None
    };
    CpuAccuracyResult { platform, op, guest_mean, host_mean, samples }
}

/// Figure 2/3 sample sets: application-layer throughput observed inside the
/// VM, one sample per 20 MB of data (the paper's instrumentation).
#[derive(Debug, Clone)]
pub struct ThroughputDistribution {
    pub platform: Platform,
    /// Per-20 MB throughput samples, bytes/second.
    pub samples: Vec<f64>,
}

impl ThroughputDistribution {
    pub fn summary(&self) -> Summary {
        Summary::from_samples(&self.samples).expect("non-empty sample set")
    }
}

/// The paper's instrumentation interval: a timestamp every 20 MB.
pub const SAMPLE_INTERVAL_BYTES: u64 = 20_000_000;

/// Figure 2: network send throughput distribution over `total_bytes`
/// (paper: 50 GB), sampled every 20 MB.
pub fn fig2_net_throughput(platform: Platform, total_bytes: u64, seed: u64) -> ThroughputDistribution {
    let mut fluct = platform.net_fluctuation(seed);
    let base = platform.net_bandwidth_bps();
    let mut samples = Vec::new();
    let mut t = 0.0f64;
    let mut produced = 0u64;
    while produced < total_bytes {
        // Integrate the fluctuating rate across one 20 MB window.
        let mut remaining = SAMPLE_INTERVAL_BYTES as f64;
        let start = t;
        const STEP: f64 = 0.005;
        while remaining > 0.0 {
            let bw = (base * fluct.factor_at(t)).max(1.0);
            let chunk = bw * STEP;
            if remaining <= chunk {
                t += remaining / bw;
                break;
            }
            remaining -= chunk;
            t += STEP;
        }
        samples.push(SAMPLE_INTERVAL_BYTES as f64 / (t - start).max(1e-9));
        produced += SAMPLE_INTERVAL_BYTES;
    }
    ThroughputDistribution { platform, samples }
}

/// Figure 3: file-write throughput distribution over `total_bytes`
/// (paper: 50 GB), sampled every 20 MB. On platforms with a host
/// write-back cache (XEN) the distribution is bimodal: memory-speed bursts
/// and flush stalls.
pub fn fig3_file_write(platform: Platform, total_bytes: u64, seed: u64) -> ThroughputDistribution {
    let mut disk = if platform.host_writeback_cache() {
        VirtualDisk::xen_paper_default()
    } else {
        VirtualDisk::write_through(platform.disk_write_bps())
    };
    let mut rng = Prng::new(seed ^ 0xD15C);
    let jitter = platform.disk_jitter();
    let mut samples = Vec::new();
    let mut produced = 0u64;
    let mut t = 0.0f64;
    while produced < total_bytes {
        let mut secs = disk.write_secs(SAMPLE_INTERVAL_BYTES, t);
        secs *= (1.0 + rng.normal(0.0, jitter)).clamp(0.3, 3.0);
        t += secs;
        samples.push(SAMPLE_INTERVAL_BYTES as f64 / secs.max(1e-9));
        produced += SAMPLE_INTERVAL_BYTES;
    }
    ThroughputDistribution { platform, samples }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_gaps_match_paper_reading() {
        let r = fig1_cpu_accuracy(Platform::KvmPara, IoOp::NetSend, 200, 1);
        let gap = r.gap().unwrap();
        assert!(gap > 8.0, "KVM-para send gap {gap}");
        let r = fig1_cpu_accuracy(Platform::Native, IoOp::NetSend, 200, 1);
        assert!((r.gap().unwrap() - 1.0).abs() < 0.1);
        let r = fig1_cpu_accuracy(Platform::Ec2, IoOp::FileRead, 200, 1);
        assert!(r.host_mean.is_none());
        assert_eq!(r.samples, 200);
    }

    #[test]
    fn fig2_native_tight_ec2_wild() {
        let native = fig2_net_throughput(Platform::Native, 2_000_000_000, 3).summary();
        let ec2 = fig2_net_throughput(Platform::Ec2, 2_000_000_000, 3).summary();
        let native_cv = native.sd / native.mean;
        let ec2_cv = ec2.sd / ec2.mean;
        assert!(native_cv < 0.03, "native CV {native_cv}");
        assert!(ec2_cv > 5.0 * native_cv, "EC2 CV {ec2_cv} vs native {native_cv}");
        // EC2 range swings over hundreds of MBit/s.
        assert!((ec2.max - ec2.min) * 8.0 / 1e6 > 200.0);
    }

    #[test]
    fn fig2_native_mean_near_wire_rate() {
        let s = fig2_net_throughput(Platform::Native, 1_000_000_000, 5).summary();
        let mbit = s.mean * 8.0 / 1e6;
        assert!((880.0..1000.0).contains(&mbit), "native ≈ 940 MBit/s, got {mbit}");
    }

    #[test]
    fn fig3_xen_cache_effects() {
        let xen = fig3_file_write(Platform::XenPara, 10_000_000_000, 7);
        let native = fig3_file_write(Platform::Native, 10_000_000_000, 7);
        let xs = xen.summary();
        let ns = native.summary();
        // Spurious high mean and violent spread on XEN.
        assert!(xs.mean > ns.mean, "xen {} vs native {}", xs.mean, ns.mean);
        assert!(xs.max / 1e6 > 300.0, "cache bursts, got max {} MB/s", xs.max / 1e6);
        assert!(xs.min / 1e6 < 30.0, "flush stalls, got min {} MB/s", xs.min / 1e6);
        // Native stays in a narrow band around the disk rate.
        assert!((ns.sd / ns.mean) < 0.1);
    }

    #[test]
    fn sample_counts_match_volume() {
        let d = fig2_net_throughput(Platform::KvmPara, 400_000_000, 1);
        assert_eq!(d.samples.len(), 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = fig3_file_write(Platform::KvmFull, 400_000_000, 9);
        let b = fig3_file_write(Platform::KvmFull, 400_000_000, 9);
        assert_eq!(a.samples, b.samples);
    }
}
