//! Adaptive compression for **file I/O** — the paper's declared future
//! work, implemented.
//!
//! The paper integrated its scheme into Nephele's file channels but had to
//! exclude file I/O from the evaluation: on XEN, the *host's* write-back
//! page cache absorbs writes at memory speed, so the application data rate
//! observed by the guest has nothing to do with the disk. A rate-based
//! controller is then actively misled — no compression maximizes the
//! *apparent* rate, while the *durable* rate (what the disk actually
//! sustains) would favour compression by the compression ratio.
//!
//! This module simulates that file-write pipeline and implements the fix
//! the paper hints at: **sync-aware rate measurement**. With
//! [`FileTransferConfig::sync_aware`] enabled, the channel issues an
//! `fsync` at every decision epoch and charges its duration to the epoch,
//! so the controller observes the durable data rate instead of the cache
//! mirage. Completion time is always measured to durability (final sync
//! included), which is the metric that matters for a dataflow engine's
//! file channels.

use crate::disk::VirtualDisk;
use crate::platform::Platform;
use crate::speed::SpeedModel;
use adcomp_core::epoch::{EpochContext, EpochDriver};
use adcomp_core::model::DecisionModel;
use adcomp_corpus::Class;

/// File-transfer experiment parameters.
#[derive(Debug, Clone)]
pub struct FileTransferConfig {
    pub platform: Platform,
    pub total_bytes: u64,
    pub block_len: usize,
    pub epoch_secs: f64,
    /// `fsync` every epoch so the controller sees the durable rate.
    pub sync_aware: bool,
}

impl Default for FileTransferConfig {
    fn default() -> Self {
        FileTransferConfig {
            platform: Platform::XenPara,
            total_bytes: 10_000_000_000,
            block_len: 128 * 1024,
            epoch_secs: 2.0,
            sync_aware: false,
        }
    }
}

/// Result of a simulated file transfer.
#[derive(Debug, Clone)]
pub struct FileOutcome {
    /// Seconds until all data was *durable* (final sync included).
    pub durable_secs: f64,
    /// Seconds until the last write was merely *accepted* (what a naive
    /// benchmark would report).
    pub apparent_secs: f64,
    pub app_bytes: u64,
    pub wire_bytes: u64,
    pub blocks_per_level: Vec<u64>,
    pub epochs: u64,
}

impl FileOutcome {
    /// Durable goodput, bytes/second.
    pub fn durable_rate(&self) -> f64 {
        self.app_bytes as f64 / self.durable_secs
    }
}

/// Runs one adaptive (or static) compressed file write.
pub fn run_file_transfer(
    cfg: &FileTransferConfig,
    speed: &SpeedModel,
    class: Class,
    model: Box<dyn DecisionModel>,
) -> FileOutcome {
    assert_eq!(model.num_levels(), speed.num_levels());
    let mut disk = if cfg.platform.host_writeback_cache() {
        VirtualDisk::xen_paper_default()
    } else {
        VirtualDisk::write_through(cfg.platform.disk_write_bps())
    };
    let mut driver = EpochDriver::new(model, cfg.epoch_secs, 0.0);
    let mut t = 0.0f64;
    let mut produced = 0u64;
    let mut wire_total = 0u64;
    let mut blocks_per_level = vec![0u64; speed.num_levels()];
    let mut next_sync_t = cfg.epoch_secs;

    while produced < cfg.total_bytes {
        let block = (cfg.block_len as u64).min(cfg.total_bytes - produced);
        let level = driver.level();
        let prof = speed.profile(class, level);
        let wire = (block as f64 * prof.ratio) as u64 + crate::pipeline_header_len() as u64;
        // Single core: compression, then the (page-cache) write.
        let comp_secs = block as f64 / prof.compress_bps;
        let write_secs = disk.write_secs(wire, t);
        t += comp_secs + write_secs;
        if cfg.sync_aware && t >= next_sync_t {
            // fsync *before* the epoch boundary is recorded: the drain time
            // stretches the closing epoch's window, so its measured rate is
            // the durable rate, not the cache mirage — consistently, every
            // epoch.
            t += disk.sync_secs();
            next_sync_t = t + cfg.epoch_secs;
        }
        produced += block;
        wire_total += wire;
        blocks_per_level[level] += 1;
        driver.record(block, t, &EpochContext::default());
    }

    let apparent_secs = t;
    let durable_secs = t + disk.sync_secs();
    FileOutcome {
        durable_secs,
        apparent_secs,
        app_bytes: produced,
        wire_bytes: wire_total,
        blocks_per_level,
        epochs: driver.epochs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcomp_core::model::{RateBasedModel, StaticModel};

    fn cfg(platform: Platform, sync_aware: bool) -> FileTransferConfig {
        FileTransferConfig {
            platform,
            total_bytes: 5_000_000_000,
            sync_aware,
            ..Default::default()
        }
    }

    #[test]
    fn write_through_static_levels_behave_like_network_case() {
        let speed = SpeedModel::paper_fit();
        // KVM (write-through): LIGHT beats NO on compressible data because
        // the 76 MB/s disk is the bottleneck.
        let no = run_file_transfer(
            &cfg(Platform::KvmPara, false),
            &speed,
            Class::High,
            Box::new(StaticModel::new(0, 4)),
        );
        let light = run_file_transfer(
            &cfg(Platform::KvmPara, false),
            &speed,
            Class::High,
            Box::new(StaticModel::new(1, 4)),
        );
        assert!(
            light.durable_secs < no.durable_secs / 2.0,
            "LIGHT {} vs NO {}",
            light.durable_secs,
            no.durable_secs
        );
    }

    #[test]
    fn xen_cache_inflates_apparent_over_durable() {
        let speed = SpeedModel::paper_fit();
        let out = run_file_transfer(
            &cfg(Platform::XenPara, false),
            &speed,
            Class::High,
            Box::new(StaticModel::new(0, 4)),
        );
        assert!(
            out.durable_secs > out.apparent_secs * 1.1,
            "durable {} vs apparent {}",
            out.durable_secs,
            out.apparent_secs
        );
    }

    #[test]
    fn cache_mirage_misleads_naive_adaptive_controller() {
        let speed = SpeedModel::paper_fit();
        let naive = run_file_transfer(
            &cfg(Platform::XenPara, false),
            &speed,
            Class::High,
            Box::new(RateBasedModel::paper_default()),
        );
        // Under the cache mirage the apparent rate is maximized by *not*
        // compressing, so the naive controller keeps most blocks at NO.
        let total: u64 = naive.blocks_per_level.iter().sum();
        assert!(
            naive.blocks_per_level[0] > total / 2,
            "naive mix {:?}",
            naive.blocks_per_level
        );
    }

    #[test]
    fn sync_aware_controller_recovers_compression_benefit() {
        let speed = SpeedModel::paper_fit();
        let naive = run_file_transfer(
            &cfg(Platform::XenPara, false),
            &speed,
            Class::High,
            Box::new(RateBasedModel::paper_default()),
        );
        let aware = run_file_transfer(
            &cfg(Platform::XenPara, true),
            &speed,
            Class::High,
            Box::new(RateBasedModel::paper_default()),
        );
        // The first epoch is an unavoidable cache-speed NO burst (~1.2 GB
        // before the first decision fires), so the achievable gain on 5 GB
        // is bounded; it grows with volume.
        assert!(
            aware.durable_secs < naive.durable_secs * 0.75,
            "sync-aware {} vs naive {}",
            aware.durable_secs,
            naive.durable_secs
        );
        // And it should carry most bytes compressed.
        let total: u64 = aware.blocks_per_level.iter().sum();
        assert!(
            aware.blocks_per_level[1] + aware.blocks_per_level[2] + aware.blocks_per_level[3]
                > total / 2,
            "aware mix {:?}",
            aware.blocks_per_level
        );
    }

    #[test]
    fn incompressible_data_keeps_no_compression_either_way() {
        let speed = SpeedModel::paper_fit();
        let aware = run_file_transfer(
            &cfg(Platform::XenPara, true),
            &speed,
            Class::Low,
            Box::new(RateBasedModel::paper_default()),
        );
        let no = run_file_transfer(
            &cfg(Platform::XenPara, true),
            &speed,
            Class::Low,
            Box::new(StaticModel::new(0, 4)),
        );
        // On LOW data, sync-aware DYNAMIC must stay close to plain NO.
        assert!(
            aware.durable_secs < no.durable_secs * 1.3,
            "DYNAMIC {} vs NO {}",
            aware.durable_secs,
            no.durable_secs
        );
    }
}
