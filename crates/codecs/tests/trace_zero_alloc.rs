//! Verifies the tracing layer's **zero-cost-when-disabled contract** at the
//! allocator level: a [`FrameWriter`] carrying the default [`NullSink`] —
//! and one carrying a *disabled* [`TraceHandle`] (the adaptive writer's
//! configuration) — must perform **zero heap allocations** per block in
//! steady state, exactly like the untraced scratch path.
//!
//! A counting global allocator tallies every `alloc`/`realloc`. After a
//! warm-up that grows scratch tables and the wire buffer to their
//! high-water marks, further blocks across all codec levels and corpus
//! classes must not touch the heap.
//!
//! This file intentionally contains a single `#[test]` so no concurrent
//! test can disturb the allocation counter.

use adcomp_codecs::frame::FrameWriter;
use adcomp_codecs::{codec_for, CodecId};
use adcomp_corpus::{generate, Class};
use adcomp_trace::{NullSink, TraceHandle};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers to `System` for all operations; only adds relaxed
// counter bumps.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const BLOCK_LEN: usize = 128 * 1024;
const CODECS: [CodecId; 4] = [CodecId::QlzLight, CodecId::QlzMedium, CodecId::Heavy, CodecId::Raw];

/// Runs warm-up + steady-state rounds through `writer`, returning the
/// number of heap allocations observed during steady state.
fn steady_state_allocs<S: adcomp_trace::TraceSink>(
    writer: &mut FrameWriter<std::io::Sink, S>,
    blocks: &[Vec<u8>],
) -> u64 {
    // Warm-up: two rounds over every (codec, class) pair grow every
    // scratch table and the wire buffer to their high-water marks.
    for _ in 0..2 {
        for id in CODECS {
            for block in blocks {
                writer.write_block(codec_for(id), block).unwrap();
            }
        }
    }
    // Steady state: level switches and class changes block to block, plus
    // the epoch marks the adaptive layer stamps at epoch rollover.
    let before = ALLOCS.load(Ordering::Relaxed);
    for round in 0..8 {
        writer.set_trace_mark(round as u64, round as f64 * 2.0);
        for (ci, id) in CODECS.into_iter().enumerate() {
            let block = &blocks[(round + ci) % blocks.len()];
            writer.write_block(codec_for(id), block).unwrap();
        }
    }
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn disabled_tracing_adds_zero_allocations_to_frame_writer() {
    let blocks: Vec<Vec<u8>> = Class::ALL
        .into_iter()
        .enumerate()
        .map(|(i, class)| generate(class, BLOCK_LEN, 11 + i as u64))
        .collect();

    // The statically-disabled default: trace branches are dead code.
    let mut null_writer = FrameWriter::with_sink(std::io::sink(), NullSink);
    let null_allocs = steady_state_allocs(&mut null_writer, &blocks);
    assert_eq!(
        null_allocs, 0,
        "NullSink steady state performed {null_allocs} heap allocation(s)"
    );
    assert!(null_writer.blocks > 0 && null_writer.wire_bytes > 0);

    // The runtime-disabled handle the adaptive writer carries: same
    // contract, checked through the dynamic `enabled()` gate.
    let mut handle_writer = FrameWriter::with_sink(std::io::sink(), TraceHandle::disabled());
    let handle_allocs = steady_state_allocs(&mut handle_writer, &blocks);
    assert_eq!(
        handle_allocs, 0,
        "disabled TraceHandle steady state performed {handle_allocs} heap allocation(s)"
    );
    // Both writers saw identical inputs and must produce identical wire
    // byte counts — the disabled trace path may not perturb encoding.
    assert_eq!(null_writer.wire_bytes, handle_writer.wire_bytes);
}
