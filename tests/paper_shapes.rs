//! Result-shape acceptance tests: the claims of the paper's evaluation,
//! checked against the simulator (DESIGN.md's acceptance criteria).

use adcomp::core::model::{DecisionModel, RateBasedModel, StaticModel};
use adcomp::corpus::Class;
use adcomp::vcloud::{
    run_transfer, AlternatingClass, ConstantClass, Platform, SpeedModel, TransferConfig,
};

const GB: u64 = 1_000_000_000;

fn run(class: Class, flows: usize, model: Box<dyn DecisionModel>, total: u64) -> f64 {
    let cfg = TransferConfig {
        total_bytes: total,
        background_flows: flows,
        deterministic: true,
        cpu_jitter: 0.0,
        ..TransferConfig::paper_default()
    };
    let speed = SpeedModel::paper_fit();
    run_transfer(&cfg, &speed, &mut ConstantClass(class), model).completion_secs
}

fn static_run(class: Class, flows: usize, level: usize) -> f64 {
    run(class, flows, Box::new(StaticModel::new(level, 4)), 2 * GB)
}

#[test]
fn light_is_fastest_static_level_on_high_data_under_all_contention() {
    for flows in 0..4 {
        let times: Vec<f64> = (0..4).map(|l| static_run(Class::High, flows, l)).collect();
        let best = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 1, "flows {flows}: times {times:?}");
    }
}

#[test]
fn no_compression_wins_on_low_data_without_contention() {
    let times: Vec<f64> = (0..4).map(|l| static_run(Class::Low, 0, l)).collect();
    let best = times
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert_eq!(best, 0, "times {times:?}");
}

#[test]
fn heavy_is_always_worst_by_a_wide_margin() {
    for class in Class::ALL {
        for flows in [0, 3] {
            let heavy = static_run(class, flows, 3);
            for l in 0..3 {
                let other = static_run(class, flows, l);
                assert!(
                    heavy > other * 1.3,
                    "{class}/{flows}: HEAVY {heavy} vs level {l} {other}"
                );
            }
        }
    }
}

#[test]
fn dynamic_within_25_percent_of_best_static_everywhere() {
    // The paper: "at most 22% worse than the fastest average completion
    // times with statically set compression levels". We allow 25 % for the
    // deterministic small-volume runs.
    for class in Class::ALL {
        for flows in [0usize, 2] {
            let best = (0..4)
                .map(|l| static_run(class, flows, l))
                .fold(f64::INFINITY, f64::min);
            let dynamic = run(class, flows, Box::new(RateBasedModel::paper_default()), 2 * GB);
            assert!(
                dynamic <= best * 1.25,
                "{class}/{flows}: DYNAMIC {dynamic} vs best {best}"
            );
        }
    }
}

#[test]
fn dynamic_improves_throughput_up_to_factor_four_over_uncompressed() {
    // The paper's conclusion: "improved the overall application throughput
    // up to a factor of 4" — the HIGH / 3-connections cell (1642 s NO vs
    // 411 s DYNAMIC).
    let no = static_run(Class::High, 3, 0);
    let dynamic = run(Class::High, 3, Box::new(RateBasedModel::paper_default()), 2 * GB);
    let factor = no / dynamic;
    assert!(
        factor > 3.0,
        "expected ~4x improvement on HIGH with 3 background flows, got {factor:.2}x"
    );
}

#[test]
fn contention_degrades_uncompressed_completion_progressively() {
    let t: Vec<f64> = (0..4).map(|f| static_run(Class::High, f, 0)).collect();
    assert!(t[0] < t[1] && t[1] < t[2] && t[2] < t[3], "{t:?}");
    // Paper's NO row grows by ~2.9x from 0 to 3 connections.
    let growth = t[3] / t[0];
    assert!((2.2..3.6).contains(&growth), "growth {growth}");
}

#[test]
fn probing_decays_exponentially_with_backoff() {
    let cfg = TransferConfig {
        total_bytes: 5 * GB,
        deterministic: true,
        cpu_jitter: 0.0,
        ..TransferConfig::paper_default()
    };
    let speed = SpeedModel::paper_fit();
    let out = run_transfer(
        &cfg,
        &speed,
        &mut ConstantClass(Class::High),
        Box::new(RateBasedModel::paper_default()),
    );
    // Count level switches in the first vs the second half of the run.
    let half = out.completion_secs / 2.0;
    let first: usize =
        out.level_trace.points().iter().skip(1).filter(|&&(t, _)| t < half).count();
    let second: usize =
        out.level_trace.points().iter().skip(1).filter(|&&(t, _)| t >= half).count();
    assert!(
        first >= second,
        "switches should not increase over time: first half {first}, second half {second}"
    );
}

#[test]
fn switching_workload_changes_levels_with_the_data() {
    let cfg = TransferConfig {
        total_bytes: 10 * GB,
        deterministic: true,
        cpu_jitter: 0.0,
        ..TransferConfig::paper_default()
    };
    let speed = SpeedModel::paper_fit();
    let mut sched =
        AlternatingClass { classes: vec![Class::High, Class::Low], period_bytes: 2 * GB };
    let out = run_transfer(&cfg, &speed, &mut sched, Box::new(RateBasedModel::paper_default()));
    // Both NO and LIGHT must carry substantial traffic.
    let total: u64 = out.blocks_per_level.iter().sum();
    assert!(
        out.blocks_per_level[0] as f64 > 0.10 * total as f64,
        "NO blocks: {:?}",
        out.blocks_per_level
    );
    assert!(
        out.blocks_per_level[1] as f64 > 0.10 * total as f64,
        "LIGHT blocks: {:?}",
        out.blocks_per_level
    );
}

#[test]
fn ec2_platform_fluctuation_increases_completion_variance() {
    let speed = SpeedModel::paper_fit();
    let sd_of = |platform: Platform| {
        let times: Vec<f64> = (0..6)
            .map(|rep| {
                let cfg = TransferConfig {
                    total_bytes: GB / 2,
                    platform,
                    seed: 100 + rep,
                    ..TransferConfig::paper_default()
                };
                run_transfer(
                    &cfg,
                    &speed,
                    &mut ConstantClass(Class::Low),
                    Box::new(StaticModel::new(0, 4)),
                )
                .completion_secs
            })
            .collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let var =
            times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / (times.len() - 1) as f64;
        (var.sqrt() / mean, mean)
    };
    let (cv_kvm, _) = sd_of(Platform::KvmPara);
    let (cv_ec2, _) = sd_of(Platform::Ec2);
    assert!(cv_ec2 > cv_kvm, "EC2 CV {cv_ec2} should exceed KVM CV {cv_kvm}");
}

// ---------------------------------------------------------------------------
// Table-2 grid under the pipelined sender (worker-pool model).
// ---------------------------------------------------------------------------

const TABLE2_CLASSES: [(Class, &str); 3] = [
    (Class::High, "HIGH"),
    (Class::Moderate, "MODERATE"),
    (Class::Low, "LOW"),
];
const TABLE2_LEVELS: [&str; 4] = ["NO", "LIGHT", "MEDIUM", "HEAVY"];

fn table2_cell(class: Class, flows: usize, level: usize, workers: usize) -> f64 {
    let cfg = TransferConfig {
        total_bytes: GB,
        background_flows: flows,
        deterministic: true,
        cpu_jitter: 0.0,
        pipeline_workers: workers,
        ..TransferConfig::paper_default()
    };
    let speed = SpeedModel::paper_fit();
    run_transfer(
        &cfg,
        &speed,
        &mut ConstantClass(class),
        Box::new(StaticModel::new(level, 4)),
    )
    .completion_secs
}

/// Renders the Table-2-style grid as canonical JSON, keeping only the
/// quantities the worker pool must never perturb: application bytes, wire
/// bytes and block counts. Completion times are deliberately excluded —
/// they are *supposed* to change with the worker count.
fn table2_grid(workers: usize) -> String {
    let speed = SpeedModel::paper_fit();
    let mut s = String::from("{\n");
    let mut first = true;
    for (class, cname) in TABLE2_CLASSES {
        for (level, lname) in TABLE2_LEVELS.iter().enumerate() {
            let cfg = TransferConfig {
                total_bytes: GB / 2,
                background_flows: 1,
                deterministic: true,
                cpu_jitter: 0.0,
                pipeline_workers: workers,
                ..TransferConfig::paper_default()
            };
            let out = run_transfer(
                &cfg,
                &speed,
                &mut ConstantClass(class),
                Box::new(StaticModel::new(level, 4)),
            );
            if !first {
                s.push_str(",\n");
            }
            first = false;
            s.push_str(&format!(
                "  \"{cname}/{lname}\": {{\"app_bytes\": {}, \"wire_bytes\": {}, \"blocks\": {}}}",
                out.app_bytes, out.wire_bytes, out.blocks_per_level[level]
            ));
        }
    }
    s.push_str("\n}\n");
    s
}

/// The wire-level Table-2 grid is byte-identical no matter how many
/// compression workers the sender runs, and matches the pinned golden.
/// Regenerate the golden with `ADCOMP_REGEN_GOLDEN=1 cargo test
/// --test paper_shapes table2` after an intentional codec change.
#[test]
fn table2_grid_is_byte_identical_across_worker_counts() {
    let serial = table2_grid(1);
    for workers in [2usize, 4] {
        assert_eq!(table2_grid(workers), serial, "workers {workers}");
    }
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/table2_pipeline.json"
    );
    if std::env::var_os("ADCOMP_REGEN_GOLDEN").is_some() {
        std::fs::write(golden_path, &serial).unwrap();
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden missing — run once with ADCOMP_REGEN_GOLDEN=1");
    assert_eq!(serial, golden, "Table-2 grid drifted from the pinned golden");
}

/// The paper's crossover structure survives the pipelined sender. Extra
/// workers shrink the CPU share, which can only shift the crossover
/// *toward* heavier compression — they never make compression less
/// attractive and never touch the uncompressed (wire-bound) path.
#[test]
fn crossover_ordering_survives_pipelined_path() {
    let no_serial: Vec<f64> = TABLE2_CLASSES
        .iter()
        .map(|(class, _)| table2_cell(*class, 2, 0, 1))
        .collect();
    for workers in [1usize, 2, 4] {
        // LIGHT beats NO on compressible data under contention — the
        // paper's central crossover — at every worker count.
        let no = table2_cell(Class::High, 2, 0, workers);
        let light = table2_cell(Class::High, 2, 1, workers);
        assert!(
            light < no * 0.5,
            "workers {workers}: LIGHT {light} vs NO {no}"
        );
        for (ci, (class, cname)) in TABLE2_CLASSES.iter().enumerate() {
            // The uncompressed path never enters the worker pool: its
            // completion time is bit-identical at every worker count.
            let no_w = table2_cell(*class, 2, 0, workers);
            assert_eq!(no_w, no_serial[ci], "{cname}: NO drifted at {workers} workers");
            // HEAVY stays the worst *compressed* level in every cell.
            let heavy = table2_cell(*class, 2, 3, workers);
            for level in 1..3 {
                let other = table2_cell(*class, 2, level, workers);
                assert!(
                    heavy > other,
                    "{cname}/{workers}: HEAVY {heavy} vs level {level} {other}"
                );
                // More workers never slow a compressed transfer down.
                let serial_t = table2_cell(*class, 2, level, 1);
                assert!(
                    other <= serial_t + 1e-9,
                    "{cname}/{level}: {workers} workers {other} vs serial {serial_t}"
                );
            }
        }
    }
}
