//! # adcomp-nephele — a miniature Nephele dataflow engine
//!
//! The paper integrates its adaptive compression scheme into Nephele, the
//! authors' "framework for massively parallel data processing \[which\]
//! executes data flow programs expressed as directed acyclic graphs". This
//! crate rebuilds the parts the integration needs:
//!
//! * [`graph`] — job DAGs of named task vertices and channel edges;
//! * [`task`] — the task trait plus ready-made source/sink/map tasks;
//! * [`channel`] — in-memory, TCP network and file channels; records are
//!   packed into ≤ 128 KiB blocks, each block independently compressed
//!   (off / static level / the paper's adaptive scheme) into a
//!   self-describing frame — completely transparent to task code;
//! * [`executor`] — one worker thread per vertex, real transports per edge,
//!   per-channel compression statistics in the final report.
//!
//! ## Example: the paper's sample job
//!
//! ```
//! use adcomp_nephele::prelude::*;
//! use adcomp_corpus::Class;
//!
//! let mut g = JobGraph::new("sample-job");
//! let send = g.add_vertex("sender", Box::new(SourceTask {
//!     class: Class::High, total_bytes: 1_000_000, record_len: 8192, seed: 1,
//! }));
//! let recv = g.add_vertex("receiver", Box::new(SinkTask::new()));
//! g.connect(send, recv, ChannelType::InMemory,
//!           CompressionMode::Adaptive(Default::default())).unwrap();
//! let report = Executor::default().run(g).unwrap();
//! assert_eq!(report.task::<SinkTask>("receiver").unwrap().bytes, 1_000_000);
//! ```

pub mod channel;
pub mod error;
pub mod executor;
pub mod graph;
pub mod task;

pub use channel::{ChannelStats, ChannelType, CompressionMode, RecordReader, RecordWriter};
pub use error::{NepheleError, Result};
pub use executor::{EdgeReport, Executor, JobReport};
pub use graph::{JobGraph, VertexId};
pub use task::{FnTask, MapTask, MergeTask, SinkTask, SourceTask, SplitTask, Task, TaskContext};

/// Common imports.
pub mod prelude {
    pub use crate::channel::{ChannelType, CompressionMode};
    pub use crate::executor::{Executor, JobReport};
    pub use crate::graph::JobGraph;
    pub use crate::task::{FnTask, SinkTask, SourceTask, Task, TaskContext};
}
