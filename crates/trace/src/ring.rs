//! Fixed-capacity, epoch-tagged ring buffer sink.
//!
//! Writers claim a monotonically increasing *generation* with one
//! `fetch_add` — the lock-free part: an emitter never waits on another
//! emitter to make progress — then publish the event into the slot the
//! generation maps onto. Slot payloads are guarded by a per-slot try-lock:
//! in the (rare) case that two writers race onto the *same* slot, i.e. one
//! writer laps another by a full ring, the loser drops its event and bumps
//! a counter instead of blocking. `emit` therefore never blocks and never
//! allocates.
//!
//! Readers take a consistent [`RingSink::snapshot`] of the most recent
//! `capacity` events in generation order — the "flight recorder" view used
//! by long-running channels where a full JSONL trace would be unbounded.

use crate::events::TraceEvent;
use crate::sink::TraceSink;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct Slot {
    /// Generation stored in the slot (`u64::MAX` = never written), plus
    /// the event payload, guarded together.
    data: Mutex<(u64, Option<TraceEvent>)>,
}

/// See module docs.
pub struct RingSink {
    slots: Box<[Slot]>,
    /// Next generation to claim.
    cursor: AtomicU64,
    /// Events dropped because the target slot was mid-write.
    dropped: AtomicU64,
}

impl RingSink {
    /// Creates a ring holding the last `capacity` events (`capacity` ≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be >= 1");
        let slots = (0..capacity)
            .map(|_| Slot { data: Mutex::new((u64::MAX, None)) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        RingSink { slots, cursor: AtomicU64::new(0), dropped: AtomicU64::new(0) }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever emitted (including overwritten and dropped ones).
    pub fn generation(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Events dropped due to same-slot write races.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The most recent events, oldest first. At most `capacity` entries;
    /// fewer if the ring has not wrapped yet or drops occurred.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let gen = self.generation();
        let cap = self.slots.len() as u64;
        let lo = gen.saturating_sub(cap);
        let mut tagged: Vec<(u64, TraceEvent)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let guard = slot.data.lock().unwrap();
            if let (g, Some(ev)) = &*guard {
                if *g != u64::MAX && *g >= lo && *g < gen {
                    tagged.push((*g, *ev));
                }
            }
        }
        tagged.sort_by_key(|(g, _)| *g);
        tagged.into_iter().map(|(_, ev)| ev).collect()
    }
}

impl TraceSink for RingSink {
    fn emit(&self, ev: &TraceEvent) {
        let gen = self.cursor.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(gen % self.slots.len() as u64) as usize];
        match slot.data.try_lock() {
            Ok(mut guard) => {
                // A concurrent writer may already have published a *newer*
                // generation into this slot (it lapped us between our claim
                // and our lock). Never roll a slot backwards.
                if guard.0 == u64::MAX || guard.0 < gen {
                    *guard = (gen, Some(*ev));
                }
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EpochEvent;
    use std::sync::Arc;

    fn ev(epoch: u64) -> TraceEvent {
        EpochEvent { epoch, t: epoch as f64, duration: 1.0, bytes: 1, rate: 1.0, level: 0 }
            .into()
    }

    #[test]
    fn fills_then_wraps() {
        let ring = RingSink::new(4);
        assert!(ring.snapshot().is_empty());

        for i in 0..3 {
            ring.emit(&ev(i));
        }
        let evs = ring.snapshot();
        assert_eq!(evs.iter().map(|e| e.epoch()).collect::<Vec<_>>(), vec![0, 1, 2]);

        // Wrap around twice; only the last 4 survive, oldest first.
        for i in 3..11 {
            ring.emit(&ev(i));
        }
        let evs = ring.snapshot();
        assert_eq!(evs.iter().map(|e| e.epoch()).collect::<Vec<_>>(), vec![7, 8, 9, 10]);
        assert_eq!(ring.generation(), 11);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn capacity_one_keeps_latest() {
        let ring = RingSink::new(1);
        for i in 0..5 {
            ring.emit(&ev(i));
        }
        let evs = ring.snapshot();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].epoch(), 4);
    }

    #[test]
    fn concurrent_emitters_stay_consistent() {
        let ring = Arc::new(RingSink::new(64));
        let threads: Vec<_> = (0..4)
            .map(|tid| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        ring.emit(&ev(tid * 1000 + i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.generation(), 4000);
        let evs = ring.snapshot();
        // Everything present is from the final window and in order; drops
        // (same-slot races) only shrink the snapshot, never corrupt it.
        assert!(evs.len() <= 64);
        assert!(evs.len() + ring.dropped() as usize >= 64 || ring.generation() < 64);
    }
}
