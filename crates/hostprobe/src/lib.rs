//! # adcomp-hostprobe — the paper's Section II methodology on a real host
//!
//! The paper's accuracy study was driven by "a set of small auxiliary
//! programs to generate network and file I/O load" while "continuously
//! quer\[ying\] the Linux system interface /proc/stat at an interval of one
//! second". This crate reimplements those auxiliary programs:
//!
//! * [`procstat`] — `/proc/stat` parsing into the paper's USR / SYS / HIRQ
//!   / SIRQ / STEAL components, snapshot differencing, and a sampler that
//!   runs alongside a workload;
//! * [`load`] — saturating loopback-TCP and file read/write load
//!   generators with the paper's per-20 MB throughput instrumentation.
//!
//! Together they let `real_metrics_probe` (in `adcomp-bench`) produce a
//! Figure-1-style row for *this* machine: the displayed CPU utilization
//! during saturating I/O — directly comparable to the calibrated
//! simulation constants in `adcomp-vcloud`. If this crate runs inside a
//! VM, the displayed numbers exhibit exactly the distortions the paper
//! measured; on bare metal they are the "host" truth.
//!
//! Everything degrades gracefully where `/proc` is unavailable (non-Linux
//! or restricted sandboxes): probes return `None`/empty instead of
//! failing.

pub mod load;
pub mod procstat;

pub use load::{file_read_load, file_write_load, net_send_load, LoadResult};
pub use procstat::{breakdown_between, parse_proc_stat, read_cpu_ticks, sample_during, CpuTicks};
