//! Virtual disk with an optional host-side write-back page cache.
//!
//! Figure 3 of the paper shows that on their XEN configuration, writes into
//! the VM's disk landed in the *host's* page cache: the guest-visible data
//! rate "occasionally appeared to be exceedingly high" (hundreds of MB/s,
//! pure memory speed) and then "dropped to a few MB/s" whenever the host
//! flushed dirty pages. After writing 50 GB, much of it still sat in host
//! RAM. These cache effects are why the paper restricts the adaptive
//! evaluation to network I/O — and why we model them explicitly.

/// Write-behaviour model of a virtual disk.
pub struct VirtualDisk {
    /// Streaming bandwidth of the physical device, bytes/second.
    disk_bps: f64,
    /// Apparent bandwidth while writes are absorbed by the host cache.
    cache_bps: f64,
    /// Host cache capacity available for dirty data (bytes); 0 disables
    /// write-back caching.
    cache_capacity: u64,
    /// Dirty bytes currently in the cache.
    dirty: u64,
    /// Dirty threshold at which the host begins a blocking flush.
    flush_threshold: u64,
    /// During a flush the guest sees only a trickle.
    flush_visible_bps: f64,
    /// True while a blocking flush is draining.
    flushing: bool,
}

impl VirtualDisk {
    /// A write-through disk (KVM and native behaviour in the paper).
    pub fn write_through(disk_bps: f64) -> Self {
        VirtualDisk {
            disk_bps,
            cache_bps: disk_bps,
            cache_capacity: 0,
            dirty: 0,
            flush_threshold: 0,
            flush_visible_bps: disk_bps,
            flushing: false,
        }
    }

    /// A host write-back cache in front of the disk (the paper's XEN
    /// configuration): `cache_capacity` bytes of host RAM absorb writes at
    /// `cache_bps` until `flush_threshold` dirty bytes force a blocking
    /// flush at disk speed.
    pub fn write_back(disk_bps: f64, cache_bps: f64, cache_capacity: u64) -> Self {
        assert!(cache_capacity > 0);
        VirtualDisk {
            disk_bps,
            cache_bps,
            cache_capacity,
            dirty: 0,
            // Linux-style dirty ratio: block the writer when ~60 % of the
            // cache is dirty, drain down to ~20 %.
            flush_threshold: cache_capacity * 6 / 10,
            flush_visible_bps: 4.0e6,
            flushing: false,
        }
    }

    /// The paper's host configuration: 32 GB hosts; a XEN blkback in
    /// write-back mode can keep multiple GB dirty.
    pub fn xen_paper_default() -> Self {
        VirtualDisk::write_back(72.0e6, 700.0e6, 8 * 1024 * 1024 * 1024)
    }

    /// Bytes still dirty in the host cache (unsynced data the guest
    /// believes is written).
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty
    }

    pub fn is_write_back(&self) -> bool {
        self.cache_capacity > 0
    }

    /// Simulates writing `bytes` starting at time `t`; returns the seconds
    /// the *guest* observes for the write to be accepted. Background
    /// draining of the cache during that interval is accounted.
    pub fn write_secs(&mut self, bytes: u64, _t: f64) -> f64 {
        if !self.is_write_back() {
            return bytes as f64 / self.disk_bps;
        }
        let mut remaining = bytes as f64;
        let mut elapsed = 0.0;
        while remaining > 0.0 {
            if self.flushing {
                // Blocking flush: writer trickles while the cache drains to
                // the low watermark at disk speed.
                let low_watermark = self.cache_capacity as f64 * 0.2;
                let drain = self.dirty as f64 - low_watermark;
                let drain_secs = drain.max(0.0) / self.disk_bps;
                // While draining, the guest still pushes a trickle.
                let absorbed = (self.flush_visible_bps * drain_secs).min(remaining);
                elapsed += drain_secs.max(absorbed / self.flush_visible_bps);
                remaining -= absorbed;
                self.dirty = low_watermark as u64 + absorbed as u64;
                self.flushing = false;
            } else {
                // Cache absorbs at memory speed until the dirty threshold,
                // while the disk drains concurrently.
                let headroom = self.flush_threshold.saturating_sub(self.dirty) as f64;
                let absorb = remaining.min(headroom);
                let secs = absorb / self.cache_bps;
                let drained = (self.disk_bps * secs).min(self.dirty as f64 + absorb);
                self.dirty = (self.dirty as f64 + absorb - drained).max(0.0) as u64;
                remaining -= absorb;
                elapsed += secs;
                if remaining > 0.0 {
                    self.flushing = true;
                }
            }
        }
        elapsed
    }

    /// Drains all dirty data (e.g. `fsync` / end of experiment); returns
    /// the seconds the drain takes at disk speed.
    pub fn sync_secs(&mut self) -> f64 {
        let secs = self.dirty as f64 / self.disk_bps;
        self.dirty = 0;
        self.flushing = false;
        secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_through_is_linear() {
        let mut d = VirtualDisk::write_through(80e6);
        let s = d.write_secs(160_000_000, 0.0);
        assert!((s - 2.0).abs() < 1e-9);
        assert_eq!(d.dirty_bytes(), 0);
        assert_eq!(d.sync_secs(), 0.0);
    }

    #[test]
    fn write_back_absorbs_at_memory_speed_initially() {
        let mut d = VirtualDisk::write_back(70e6, 700e6, 1_000_000_000);
        // 100 MB fits well under the 600 MB threshold: absorbed at ~700MB/s.
        let s = d.write_secs(100_000_000, 0.0);
        assert!(s < 0.2, "absorbed write took {s}s");
        assert!(d.dirty_bytes() > 0);
    }

    #[test]
    fn write_back_alternates_bursts_and_stalls() {
        let mut d = VirtualDisk::write_back(70e6, 700e6, 1_000_000_000);
        let mut rates = Vec::new();
        for _ in 0..200 {
            let chunk = 20_000_000u64; // the paper samples every 20 MB
            let s = d.write_secs(chunk, 0.0);
            rates.push(chunk as f64 / s / 1e6);
        }
        let fast = rates.iter().filter(|&&r| r > 300.0).count();
        let slow = rates.iter().filter(|&&r| r < 30.0).count();
        assert!(fast > 10, "expected cache-speed bursts, got {fast}");
        assert!(slow > 5, "expected flush stalls, got {slow}");
    }

    #[test]
    fn mean_apparent_rate_exceeds_disk_rate() {
        // The paper: "the average data throughput for the XEN-based
        // experiments spuriously appears to be higher" because data is
        // still in host RAM at the end.
        let mut d = VirtualDisk::xen_paper_default();
        let total = 50_000_000_000u64; // the paper's 50 GB
        let mut secs = 0.0;
        for _ in 0..(total / 100_000_000) {
            secs += d.write_secs(100_000_000, 0.0);
        }
        let apparent = total as f64 / secs;
        assert!(
            apparent > 72e6 * 1.05,
            "apparent rate {:.1} MB/s should beat the 72 MB/s disk",
            apparent / 1e6
        );
        assert!(d.dirty_bytes() > 1_000_000_000, "large residue should remain cached");
        assert!(d.sync_secs() > 10.0);
    }

    #[test]
    #[should_panic]
    fn write_back_requires_capacity() {
        VirtualDisk::write_back(70e6, 700e6, 0);
    }
}
