//! Epoch driving: glue between a clock, the application byte stream and a
//! [`crate::model::DecisionModel`].
//!
//! The paper reconsiders the compression level every `t` seconds (t = 2 s in
//! all experiments). [`EpochDriver`] owns that loop: it meters application
//! bytes, detects epoch boundaries from any clock, builds the observation
//! and records the model's decision together with a level trace for the
//! time-series figures.

use crate::model::{DecisionModel, EpochObservation, GuestMetrics};
use adcomp_metrics::{RateMeter, TimeSeries};
use std::time::Instant;

/// A monotonically nondecreasing time source in seconds.
pub trait Clock: Send {
    fn now(&self) -> f64;
}

/// Wall-clock time since creation.
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        WallClock { start: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// A manually advanced clock for tests and simulation.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl ManualClock {
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Sets the current time (seconds). Time must not go backwards.
    pub fn set(&self, secs: f64) {
        self.now
            .store(secs.to_bits(), std::sync::atomic::Ordering::Release);
    }

    pub fn advance(&self, secs: f64) {
        let cur = f64::from_bits(self.now.load(std::sync::atomic::Ordering::Acquire));
        self.set(cur + secs);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> f64 {
        f64::from_bits(self.now.load(std::sync::atomic::Ordering::Acquire))
    }
}

/// Auxiliary inputs for building the epoch observation; the caller (stream
/// or simulator) refreshes these as its state changes.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochContext {
    pub queue_depth: usize,
    pub queue_capacity: usize,
    pub guest: Option<GuestMetrics>,
    pub observed_ratio: Option<f64>,
    pub data_entropy: Option<f64>,
}

/// Drives a [`DecisionModel`] from a stream of byte completions.
pub struct EpochDriver {
    meter: RateMeter,
    model: Box<dyn DecisionModel>,
    level: usize,
    level_trace: TimeSeries,
    rate_trace: TimeSeries,
    epochs: u64,
}

impl EpochDriver {
    /// `epoch_len` is the paper's `t` in seconds; the model starts at its
    /// initial level (0 for fresh models).
    pub fn new(model: Box<dyn DecisionModel>, epoch_len: f64, now: f64) -> Self {
        let level = model.initial_level();
        let mut level_trace = TimeSeries::new();
        level_trace.push(now, level as f64);
        EpochDriver {
            meter: RateMeter::new(epoch_len, now),
            model,
            level,
            level_trace,
            rate_trace: TimeSeries::new(),
            epochs: 0,
        }
    }

    /// Currently applied compression level.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Number of completed epochs.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// `(time, level)` history.
    pub fn level_trace(&self) -> &TimeSeries {
        &self.level_trace
    }

    /// `(time, application bytes/s)` history, one point per epoch.
    pub fn rate_trace(&self) -> &TimeSeries {
        &self.rate_trace
    }

    pub fn model_name(&self) -> String {
        self.model.name()
    }

    /// Records `app_bytes` of application data accepted at time `now`;
    /// on an epoch boundary, consults the model. Returns the level to use
    /// for subsequent data.
    pub fn record(&mut self, app_bytes: u64, now: f64, ctx: &EpochContext) -> usize {
        if let Some(epoch) = self.meter.record(app_bytes, now) {
            self.on_epoch(epoch.rate, epoch.duration, now, ctx);
        }
        self.level
    }

    /// Forces an epoch check without new bytes (e.g. while stalled).
    pub fn poll(&mut self, now: f64, ctx: &EpochContext) -> usize {
        if let Some(epoch) = self.meter.poll(now) {
            self.on_epoch(epoch.rate, epoch.duration, now, ctx);
        }
        self.level
    }

    fn on_epoch(&mut self, rate: f64, duration: f64, now: f64, ctx: &EpochContext) {
        let obs = EpochObservation {
            app_rate: rate,
            epoch_secs: duration,
            queue_depth: ctx.queue_depth,
            queue_capacity: ctx.queue_capacity,
            guest: ctx.guest,
            observed_ratio: ctx.observed_ratio,
            data_entropy: ctx.data_entropy,
        };
        let new_level = self.model.decide(&obs);
        debug_assert!(new_level < self.model.num_levels());
        self.epochs += 1;
        self.rate_trace.push(now, rate);
        if new_level != self.level {
            self.level = new_level;
            self.level_trace.push(now, new_level as f64);
        }
    }

    /// Total application bytes metered.
    pub fn total_bytes(&self) -> u64 {
        self.meter.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{RateBasedModel, StaticModel};

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_set_and_advance() {
        let c = ManualClock::new();
        assert_eq!(c.now(), 0.0);
        c.set(5.0);
        assert_eq!(c.now(), 5.0);
        c.advance(2.5);
        assert_eq!(c.now(), 7.5);
    }

    #[test]
    fn driver_consults_model_only_on_epoch_boundaries() {
        let mut d = EpochDriver::new(Box::new(RateBasedModel::paper_default()), 2.0, 0.0);
        assert_eq!(d.record(1000, 0.5, &EpochContext::default()), 0);
        assert_eq!(d.record(1000, 1.5, &EpochContext::default()), 0);
        // Crosses t = 2 s: first decision probes to level 1.
        assert_eq!(d.record(1000, 2.1, &EpochContext::default()), 1);
        assert_eq!(d.epochs(), 1);
    }

    #[test]
    fn driver_traces_levels_and_rates() {
        let mut d = EpochDriver::new(Box::new(RateBasedModel::paper_default()), 1.0, 0.0);
        d.record(1_000, 1.0, &EpochContext::default());
        d.record(5_000, 2.0, &EpochContext::default());
        d.record(5_000, 3.0, &EpochContext::default());
        assert_eq!(d.rate_trace().len(), 3);
        assert!(d.level_trace().len() >= 2, "initial point plus the first probe");
        assert_eq!(d.total_bytes(), 11_000);
    }

    #[test]
    fn static_model_driver_never_changes_level() {
        let mut d = EpochDriver::new(Box::new(StaticModel::new(0, 4)), 1.0, 0.0);
        for i in 1..10 {
            assert_eq!(d.record(100, i as f64, &EpochContext::default()), 0);
        }
        assert_eq!(d.level_trace().len(), 1);
    }

    #[test]
    fn poll_advances_epochs_without_bytes() {
        let mut d = EpochDriver::new(Box::new(RateBasedModel::paper_default()), 1.0, 0.0);
        d.poll(1.5, &EpochContext::default());
        assert_eq!(d.epochs(), 1);
        assert_eq!(d.rate_trace().points()[0].1, 0.0);
    }
}
