//! CPU utilization accounting and the guest-visible distortion model.
//!
//! Figure 1 of the paper contrasts the CPU utilization displayed *inside* a
//! virtual machine with what the host accounts to that VM during saturating
//! I/O. The displayed value is often a small fraction of the real cost —
//! up to 15× off (e.g. network send on paravirtualized KVM, file read on
//! XEN) — because most of the I/O path (virtio backends, dom0 drivers,
//! interrupt handling) runs outside the guest's accounting domain.
//!
//! This module carries the per-platform, per-operation utilization pairs we
//! calibrated from Figure 1, plus sampling with realistic jitter.

use adcomp_corpus::Prng;

/// A CPU utilization breakdown in percent, split the way the paper splits
/// its bars: user, system, hard-IRQ, soft-IRQ and (XEN/EC2) steal time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CpuBreakdown {
    pub usr: f64,
    pub sys: f64,
    pub hirq: f64,
    pub sirq: f64,
    pub steal: f64,
}

impl CpuBreakdown {
    pub const fn new(usr: f64, sys: f64, hirq: f64, sirq: f64, steal: f64) -> Self {
        CpuBreakdown { usr, sys, hirq, sirq, steal }
    }

    /// Total utilization in percent.
    pub fn total(&self) -> f64 {
        self.usr + self.sys + self.hirq + self.sirq + self.steal
    }

    /// Scales every component by `f`.
    pub fn scale(&self, f: f64) -> CpuBreakdown {
        CpuBreakdown {
            usr: self.usr * f,
            sys: self.sys * f,
            hirq: self.hirq * f,
            sirq: self.sirq * f,
            steal: self.steal * f,
        }
    }

    /// Draws a jittered sample of this breakdown (one `/proc/stat` second).
    pub fn sample(&self, rng: &mut Prng, rel_jitter: f64) -> CpuBreakdown {
        let j = |rng: &mut Prng, v: f64| {
            if v <= 0.0 {
                0.0
            } else {
                (v * (1.0 + rng.normal(0.0, rel_jitter))).max(0.0)
            }
        };
        CpuBreakdown {
            usr: j(rng, self.usr),
            sys: j(rng, self.sys),
            hirq: j(rng, self.hirq),
            sirq: j(rng, self.sirq),
            steal: j(rng, self.steal),
        }
    }
}

/// The VM-displayed vs host-accounted utilization pair for one I/O
/// operation on one platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuAccuracyModel {
    /// What `/proc/stat` inside the guest shows.
    pub guest: CpuBreakdown,
    /// What the host accounts to the VM (qemu process / xentop), `None` for
    /// EC2 where the paper could not observe the host.
    pub host: Option<CpuBreakdown>,
}

impl CpuAccuracyModel {
    /// Host-to-guest display gap (≥ 1 when the guest under-reports).
    pub fn gap(&self) -> Option<f64> {
        self.host.map(|h| h.total() / self.guest.total().max(1e-9))
    }
}

/// One collected accuracy sample pair.
#[derive(Debug, Clone, Copy)]
pub struct CpuSamplePair {
    pub guest: CpuBreakdown,
    pub host: Option<CpuBreakdown>,
}

/// Draws `n` one-second sample pairs from a model (the paper averages at
/// least 120 samples per bar).
pub fn sample_pairs(model: &CpuAccuracyModel, n: usize, seed: u64) -> Vec<CpuSamplePair> {
    let mut rng = Prng::new(seed ^ 0xC1B);
    (0..n)
        .map(|_| CpuSamplePair {
            guest: model.guest.sample(&mut rng, 0.08),
            host: model.host.map(|h| h.sample(&mut rng, 0.08)),
        })
        .collect()
}

/// Averages a set of breakdowns component-wise.
pub fn mean_breakdown<'a>(samples: impl Iterator<Item = &'a CpuBreakdown>) -> CpuBreakdown {
    let mut acc = CpuBreakdown::default();
    let mut n = 0u32;
    for s in samples {
        acc.usr += s.usr;
        acc.sys += s.sys;
        acc.hirq += s.hirq;
        acc.sirq += s.sirq;
        acc.steal += s.steal;
        n += 1;
    }
    if n == 0 {
        acc
    } else {
        acc.scale(1.0 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_components() {
        let b = CpuBreakdown::new(10.0, 20.0, 1.0, 4.0, 5.0);
        assert!((b.total() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn scale_is_linear() {
        let b = CpuBreakdown::new(10.0, 20.0, 0.0, 4.0, 6.0).scale(0.5);
        assert_eq!(b.usr, 5.0);
        assert_eq!(b.steal, 3.0);
        assert!((b.total() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn samples_jitter_but_average_out() {
        let b = CpuBreakdown::new(10.0, 50.0, 2.0, 8.0, 0.0);
        let model = CpuAccuracyModel { guest: b, host: Some(b.scale(3.0)) };
        let pairs = sample_pairs(&model, 500, 1);
        assert_eq!(pairs.len(), 500);
        let mean = mean_breakdown(pairs.iter().map(|p| &p.guest));
        assert!((mean.total() - b.total()).abs() / b.total() < 0.05);
        // Zero components stay exactly zero.
        assert!(pairs.iter().all(|p| p.guest.steal == 0.0));
        // Samples are never negative.
        assert!(pairs.iter().all(|p| p.guest.usr >= 0.0));
    }

    #[test]
    fn gap_reflects_distortion() {
        let model = CpuAccuracyModel {
            guest: CpuBreakdown::new(2.0, 4.0, 0.0, 2.0, 0.0),
            host: Some(CpuBreakdown::new(10.0, 90.0, 5.0, 15.0, 0.0)),
        };
        assert!((model.gap().unwrap() - 15.0).abs() < 1e-9);
        let no_host = CpuAccuracyModel { guest: model.guest, host: None };
        assert!(no_host.gap().is_none());
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let m = mean_breakdown(std::iter::empty());
        assert_eq!(m.total(), 0.0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let b = CpuBreakdown::new(10.0, 50.0, 2.0, 8.0, 1.0);
        let model = CpuAccuracyModel { guest: b, host: None };
        let a = sample_pairs(&model, 10, 9);
        let c = sample_pairs(&model, 10, 9);
        for (x, y) in a.iter().zip(&c) {
            assert_eq!(x.guest, y.guest);
        }
    }
}
