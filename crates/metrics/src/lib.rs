//! # adcomp-metrics — measurement instruments and reporting
//!
//! Shared measurement layer for the adaptive-compression workspace:
//!
//! * [`rate`] — epoch-based application-data-rate meters (the only input
//!   the paper's decision model consumes) and time series for the figures;
//! * [`registry`] — the live, lock-free sharded [`MetricsRegistry`]
//!   (atomic counters/gauges, log-linear histograms, span timers) that
//!   running processes scrape while under load;
//! * [`stats`] — online moments, five-number summaries, histograms;
//! * [`table`] — paper-style ASCII tables and CSV output.
//!
//! Everything here is clock-agnostic: timestamps are plain `f64` seconds,
//! supplied either by a wall clock or by the discrete-event simulator
//! (the registry makes the split explicit via [`RegistryMode`]).

pub mod plot;
pub mod quantile;
pub mod rate;
pub mod registry;
pub mod stats;
pub mod table;

pub use quantile::{P2Quantile, StreamingSummary};
pub use rate::{EpochRate, RateMeter, TimeSeries};
pub use registry::{
    HistKind, HistSnapshot, LabelFamily, MetricsRegistry, RegistryMode, RegistrySnapshot,
    SpanKind, SpanTimer,
};
pub use registry::{CounterKind, GaugeKind};
pub use stats::{Histogram, OnlineStats, Summary};
pub use table::{mean_sd_cell, Align, Table};

/// Converts bytes/second to MBit/s (decimal, as the paper's figures use).
pub fn bps_to_mbit(bytes_per_sec: f64) -> f64 {
    bytes_per_sec * 8.0 / 1e6
}

/// Converts bytes/second to MB/s (decimal).
pub fn bps_to_mb(bytes_per_sec: f64) -> f64 {
    bytes_per_sec / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert!((bps_to_mbit(125_000_000.0) - 1000.0).abs() < 1e-9);
        assert!((bps_to_mb(125_000_000.0) - 125.0).abs() < 1e-9);
    }
}
