//! Result-shape acceptance tests: the claims of the paper's evaluation,
//! checked against the simulator (DESIGN.md's acceptance criteria).

use adcomp::core::model::{DecisionModel, RateBasedModel, StaticModel};
use adcomp::corpus::Class;
use adcomp::vcloud::{
    run_transfer, AlternatingClass, ConstantClass, Platform, SpeedModel, TransferConfig,
};

const GB: u64 = 1_000_000_000;

fn run(class: Class, flows: usize, model: Box<dyn DecisionModel>, total: u64) -> f64 {
    let cfg = TransferConfig {
        total_bytes: total,
        background_flows: flows,
        deterministic: true,
        cpu_jitter: 0.0,
        ..TransferConfig::paper_default()
    };
    let speed = SpeedModel::paper_fit();
    run_transfer(&cfg, &speed, &mut ConstantClass(class), model).completion_secs
}

fn static_run(class: Class, flows: usize, level: usize) -> f64 {
    run(class, flows, Box::new(StaticModel::new(level, 4)), 2 * GB)
}

#[test]
fn light_is_fastest_static_level_on_high_data_under_all_contention() {
    for flows in 0..4 {
        let times: Vec<f64> = (0..4).map(|l| static_run(Class::High, flows, l)).collect();
        let best = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best, 1, "flows {flows}: times {times:?}");
    }
}

#[test]
fn no_compression_wins_on_low_data_without_contention() {
    let times: Vec<f64> = (0..4).map(|l| static_run(Class::Low, 0, l)).collect();
    let best = times
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert_eq!(best, 0, "times {times:?}");
}

#[test]
fn heavy_is_always_worst_by_a_wide_margin() {
    for class in Class::ALL {
        for flows in [0, 3] {
            let heavy = static_run(class, flows, 3);
            for l in 0..3 {
                let other = static_run(class, flows, l);
                assert!(
                    heavy > other * 1.3,
                    "{class}/{flows}: HEAVY {heavy} vs level {l} {other}"
                );
            }
        }
    }
}

#[test]
fn dynamic_within_25_percent_of_best_static_everywhere() {
    // The paper: "at most 22% worse than the fastest average completion
    // times with statically set compression levels". We allow 25 % for the
    // deterministic small-volume runs.
    for class in Class::ALL {
        for flows in [0usize, 2] {
            let best = (0..4)
                .map(|l| static_run(class, flows, l))
                .fold(f64::INFINITY, f64::min);
            let dynamic = run(class, flows, Box::new(RateBasedModel::paper_default()), 2 * GB);
            assert!(
                dynamic <= best * 1.25,
                "{class}/{flows}: DYNAMIC {dynamic} vs best {best}"
            );
        }
    }
}

#[test]
fn dynamic_improves_throughput_up_to_factor_four_over_uncompressed() {
    // The paper's conclusion: "improved the overall application throughput
    // up to a factor of 4" — the HIGH / 3-connections cell (1642 s NO vs
    // 411 s DYNAMIC).
    let no = static_run(Class::High, 3, 0);
    let dynamic = run(Class::High, 3, Box::new(RateBasedModel::paper_default()), 2 * GB);
    let factor = no / dynamic;
    assert!(
        factor > 3.0,
        "expected ~4x improvement on HIGH with 3 background flows, got {factor:.2}x"
    );
}

#[test]
fn contention_degrades_uncompressed_completion_progressively() {
    let t: Vec<f64> = (0..4).map(|f| static_run(Class::High, f, 0)).collect();
    assert!(t[0] < t[1] && t[1] < t[2] && t[2] < t[3], "{t:?}");
    // Paper's NO row grows by ~2.9x from 0 to 3 connections.
    let growth = t[3] / t[0];
    assert!((2.2..3.6).contains(&growth), "growth {growth}");
}

#[test]
fn probing_decays_exponentially_with_backoff() {
    let cfg = TransferConfig {
        total_bytes: 5 * GB,
        deterministic: true,
        cpu_jitter: 0.0,
        ..TransferConfig::paper_default()
    };
    let speed = SpeedModel::paper_fit();
    let out = run_transfer(
        &cfg,
        &speed,
        &mut ConstantClass(Class::High),
        Box::new(RateBasedModel::paper_default()),
    );
    // Count level switches in the first vs the second half of the run.
    let half = out.completion_secs / 2.0;
    let first: usize =
        out.level_trace.points().iter().skip(1).filter(|&&(t, _)| t < half).count();
    let second: usize =
        out.level_trace.points().iter().skip(1).filter(|&&(t, _)| t >= half).count();
    assert!(
        first >= second,
        "switches should not increase over time: first half {first}, second half {second}"
    );
}

#[test]
fn switching_workload_changes_levels_with_the_data() {
    let cfg = TransferConfig {
        total_bytes: 10 * GB,
        deterministic: true,
        cpu_jitter: 0.0,
        ..TransferConfig::paper_default()
    };
    let speed = SpeedModel::paper_fit();
    let mut sched =
        AlternatingClass { classes: vec![Class::High, Class::Low], period_bytes: 2 * GB };
    let out = run_transfer(&cfg, &speed, &mut sched, Box::new(RateBasedModel::paper_default()));
    // Both NO and LIGHT must carry substantial traffic.
    let total: u64 = out.blocks_per_level.iter().sum();
    assert!(
        out.blocks_per_level[0] as f64 > 0.10 * total as f64,
        "NO blocks: {:?}",
        out.blocks_per_level
    );
    assert!(
        out.blocks_per_level[1] as f64 > 0.10 * total as f64,
        "LIGHT blocks: {:?}",
        out.blocks_per_level
    );
}

#[test]
fn ec2_platform_fluctuation_increases_completion_variance() {
    let speed = SpeedModel::paper_fit();
    let sd_of = |platform: Platform| {
        let times: Vec<f64> = (0..6)
            .map(|rep| {
                let cfg = TransferConfig {
                    total_bytes: GB / 2,
                    platform,
                    seed: 100 + rep,
                    ..TransferConfig::paper_default()
                };
                run_transfer(
                    &cfg,
                    &speed,
                    &mut ConstantClass(Class::Low),
                    Box::new(StaticModel::new(0, 4)),
                )
                .completion_secs
            })
            .collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let var =
            times.iter().map(|t| (t - mean) * (t - mean)).sum::<f64>() / (times.len() - 1) as f64;
        (var.sqrt() / mean, mean)
    };
    let (cv_kvm, _) = sd_of(Platform::KvmPara);
    let (cv_ec2, _) = sd_of(Platform::Ec2);
    assert!(cv_ec2 > cv_kvm, "EC2 CV {cv_ec2} should exceed KVM CV {cv_kvm}");
}
