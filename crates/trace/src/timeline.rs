//! ASCII "level over time" timeline — the shape of the paper's Fig. 5.
//!
//! Renders the compression level chosen by the controller as a step
//! function over time, one row per level, plus an optional second panel
//! with the per-epoch application data rate as a sparkline. Input is the
//! run's decision (or epoch) events.

use crate::events::TraceEvent;
use std::fmt::Write as _;

/// Options for [`render_level_timeline`].
#[derive(Debug, Clone)]
pub struct TimelineOptions {
    /// Plot width in columns (time buckets).
    pub width: usize,
    /// Level names, index = level. Falls back to `L<n>` beyond the list.
    pub level_names: Vec<String>,
    /// Also render the epoch-rate sparkline panel.
    pub with_rate: bool,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions {
            width: 72,
            level_names: ["NO", "LIGHT", "MEDIUM", "HEAVY"]
                .into_iter()
                .map(String::from)
                .collect(),
            with_rate: true,
        }
    }
}

/// The (t, level) step function extracted from a run's events.
///
/// Decision events are preferred (they carry the post-decision level);
/// epoch events are used when no decisions are present (static models).
fn level_steps(events: &[TraceEvent]) -> Vec<(f64, u32)> {
    let mut steps: Vec<(f64, u32)> =
        events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Decision(e) => Some((e.t, e.ccl)),
                _ => None,
            })
            .collect();
    if steps.is_empty() {
        steps = events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Epoch(e) => Some((e.t, e.level)),
                _ => None,
            })
            .collect();
    }
    steps
}

/// Renders the timeline; returns `None` when `events` holds no decision
/// or epoch events to plot.
#[must_use]
pub fn render_level_timeline(events: &[TraceEvent], opts: &TimelineOptions) -> Option<String> {
    let steps = level_steps(events);
    if steps.is_empty() {
        return None;
    }
    let t_end = steps.iter().map(|&(t, _)| t).fold(0.0f64, f64::max).max(1e-9);
    let width = opts.width.max(8);
    let max_level = steps.iter().map(|&(_, l)| l).max().unwrap_or(0);
    let rows = (max_level + 1).max(
        opts.level_names.len().min(u32::MAX as usize) as u32,
    );

    // Majority level per column.
    let mut col_level = vec![0u32; width];
    let mut counts = vec![vec![0u32; rows as usize]; width];
    // Walk the step function over a fine grid (4 samples per column).
    let samples = width * 4;
    let mut idx = 0usize;
    let mut level = steps[0].1;
    for s in 0..samples {
        let t = t_end * (s as f64 + 0.5) / samples as f64;
        while idx < steps.len() && steps[idx].0 <= t {
            level = steps[idx].1;
            idx += 1;
        }
        let col = (s * width / samples).min(width - 1);
        counts[col][level.min(rows - 1) as usize] += 1;
    }
    for (col, c) in counts.iter().enumerate() {
        let best = c
            .iter()
            .enumerate()
            .max_by_key(|&(_, n)| *n)
            .map(|(l, _)| l as u32)
            .unwrap_or(0);
        col_level[col] = best;
    }

    let name_of = |l: u32| -> String {
        opts.level_names
            .get(l as usize)
            .cloned()
            .unwrap_or_else(|| format!("L{l}"))
    };
    let label_w = (0..rows).map(|l| name_of(l).len()).max().unwrap_or(2).max(2);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "level over time — {} decisions, t = 0..{:.1} s",
        steps.len(),
        t_end
    );
    for l in (0..rows).rev() {
        let _ = write!(out, "{:>label_w$} |", name_of(l));
        for &cl in &col_level {
            out.push(if cl == l { '█' } else if cl > l { '·' } else { ' ' });
        }
        out.push('\n');
    }
    let _ = write!(out, "{:>label_w$} +", "");
    for _ in 0..width {
        out.push('-');
    }
    out.push('\n');
    let mid = format!("{:.0}s", t_end / 2.0);
    let end = format!("{:.0}s", t_end);
    let _ = writeln!(
        out,
        "{:>label_w$}  0s{:>mid_pos$}{:>end_pos$}",
        "",
        mid,
        end,
        mid_pos = width / 2 - 2,
        end_pos = width - width / 2 - mid.len().min(width / 2)
    );

    if opts.with_rate {
        let rates: Vec<(f64, f64)> = events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Epoch(e) if e.rate.is_finite() => Some((e.t, e.rate)),
                _ => None,
            })
            .collect();
        if !rates.is_empty() {
            let max_rate = rates.iter().map(|&(_, r)| r).fold(0.0f64, f64::max).max(1e-9);
            const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
            let mut cols = vec![(0.0f64, 0u32); width];
            for &(t, r) in &rates {
                let col = ((t / t_end * width as f64) as usize).min(width - 1);
                cols[col].0 += r;
                cols[col].1 += 1;
            }
            let mut line = String::new();
            for &(sum, n) in &cols {
                if n == 0 {
                    line.push(' ');
                } else {
                    let frac = (sum / n as f64) / max_rate;
                    let g = ((frac * (GLYPHS.len() - 1) as f64).round() as usize)
                        .min(GLYPHS.len() - 1);
                    line.push(GLYPHS[g]);
                }
            }
            let _ = writeln!(
                out,
                "{:>label_w$} |{line}| app rate (peak {:.1} MB/s)",
                "rate",
                max_rate / 1e6
            );
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{DecisionEvent, EpochEvent, MAX_LEVELS};

    fn decision(t: f64, ccl: u32) -> TraceEvent {
        DecisionEvent {
            epoch: (t / 2.0) as u64,
            t,
            cdr: 1e6,
            pdr: 0.9e6,
            ccl,
            prev_level: ccl,
            case: "stable",
            backoffs: [0; MAX_LEVELS],
            num_levels: 4,
        }
        .into()
    }

    #[test]
    fn renders_all_rows_and_axis() {
        let events: Vec<TraceEvent> = (0..60)
            .map(|i| decision(2.0 * (i + 1) as f64, (i / 15) as u32))
            .collect();
        let s = render_level_timeline(&events, &TimelineOptions::default()).unwrap();
        for name in ["HEAVY", "MEDIUM", "LIGHT", "NO"] {
            assert!(s.contains(name), "missing row {name} in:\n{s}");
        }
        assert!(s.contains('█'));
        assert!(s.contains("0s"));
    }

    #[test]
    fn empty_events_render_nothing() {
        assert!(render_level_timeline(&[], &TimelineOptions::default()).is_none());
    }

    #[test]
    fn falls_back_to_epoch_events() {
        let events: Vec<TraceEvent> = (0..10)
            .map(|i| {
                EpochEvent {
                    epoch: i,
                    t: 2.0 * (i + 1) as f64,
                    duration: 2.0,
                    bytes: 1000,
                    rate: 500.0,
                    level: 1,
                }
                .into()
            })
            .collect();
        let s = render_level_timeline(&events, &TimelineOptions::default()).unwrap();
        assert!(s.contains("LIGHT"));
        assert!(s.contains('▁') || s.contains('█'));
    }
}
