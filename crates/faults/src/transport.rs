//! Fault injection at the nephele block-transport layer.
//!
//! [`FaultingTransport`] wraps any [`BlockTransport`] and applies the same
//! fault taxonomy as [`CorruptingWriter`](crate::io::CorruptingWriter) —
//! but at the granularity the record layer actually ships: one `send` is
//! one self-describing frame. This is the adapter the chaos soak uses to
//! attack a whole `RecordWriter → transport → RecordReader` channel
//! without either endpoint knowing.

use crate::plan::{FaultAction, FaultPlan, InjectStats};
use adcomp_nephele::channel::BlockTransport;
use adcomp_nephele::error::Result;
use adcomp_trace::{FaultEvent, NullSink, TraceEvent, TraceSink, NO_EPOCH};
use std::sync::{Arc, Mutex};

/// A [`BlockTransport`] decorator that deterministically corrupts, drops
/// or cuts the frames flowing through it.
///
/// Injection counters live behind a shared handle
/// ([`FaultingTransport::stats_handle`]) because the transport itself is
/// typically swallowed by a `Box<dyn BlockTransport>` (e.g. handed to a
/// `RecordWriter`), yet the harness still needs to know what was done to
/// the stream afterwards.
pub struct FaultingTransport<T: BlockTransport, S: TraceSink + Send = NullSink> {
    inner: T,
    plan: FaultPlan,
    sink: S,
    scratch: Vec<u8>,
    stats: Arc<Mutex<InjectStats>>,
}

impl<T: BlockTransport> FaultingTransport<T> {
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultingTransport::with_sink(inner, plan, NullSink)
    }
}

impl<T: BlockTransport, S: TraceSink + Send> FaultingTransport<T, S> {
    pub fn with_sink(inner: T, plan: FaultPlan, sink: S) -> Self {
        FaultingTransport {
            inner,
            plan,
            sink,
            scratch: Vec::new(),
            stats: Arc::new(Mutex::new(InjectStats::default())),
        }
    }

    /// What the adapter actually did so far.
    pub fn stats(&self) -> InjectStats {
        *self.stats.lock().unwrap()
    }

    /// Shared counter handle that stays readable after the transport has
    /// been boxed away into a `RecordWriter`.
    pub fn stats_handle(&self) -> Arc<Mutex<InjectStats>> {
        Arc::clone(&self.stats)
    }

    pub fn into_inner(self) -> T {
        self.inner
    }

    fn emit(&self, kind: &'static str, bytes: u64, attempt: u64) {
        if self.sink.enabled() {
            self.sink.emit(&TraceEvent::Fault(FaultEvent {
                epoch: NO_EPOCH,
                t: 0.0,
                kind,
                bytes,
                attempt,
            }));
        }
    }
}

impl<T: BlockTransport, S: TraceSink + Send> BlockTransport for FaultingTransport<T, S> {
    fn send(&mut self, frame: &[u8]) -> Result<()> {
        let mut stats = *self.stats.lock().unwrap();
        stats.frames += 1;
        stats.bytes_in += frame.len() as u64;
        match self.plan.next_frame_action(frame.len()) {
            FaultAction::Pass => {
                self.inner.send(frame)?;
                stats.bytes_out += frame.len() as u64;
            }
            FaultAction::FlipBit { byte, bit } => {
                self.scratch.clear();
                self.scratch.extend_from_slice(frame);
                let idx = (byte % frame.len().max(1) as u64) as usize;
                self.scratch[idx] ^= 1 << (bit & 7);
                self.inner.send(&self.scratch)?;
                stats.flips += 1;
                stats.bytes_out += frame.len() as u64;
                self.emit("inject_flip", frame.len() as u64, idx as u64);
            }
            FaultAction::Drop => {
                stats.drops += 1;
                self.emit("inject_drop", frame.len() as u64, stats.frames);
            }
            FaultAction::Cut { keep_permille } => {
                let keep = (frame.len() as u64 * keep_permille as u64 / 1000) as usize;
                self.inner.send(&frame[..keep])?;
                stats.cuts += 1;
                stats.bytes_out += keep as u64;
                self.emit("inject_cut", (frame.len() - keep) as u64, keep as u64);
            }
        }
        *self.stats.lock().unwrap() = stats;
        Ok(())
    }

    fn close(&mut self) -> Result<()> {
        self.inner.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultSpec;
    use adcomp_nephele::channel::{mem_pair, BlockSource};

    #[test]
    fn quiet_transport_is_transparent() {
        let (tx, mut rx) = mem_pair(16);
        let mut t = FaultingTransport::new(tx, FaultPlan::new(FaultSpec::quiet(1)));
        t.send(b"frame a").unwrap();
        t.send(b"frame b").unwrap();
        t.close().unwrap();
        assert_eq!(rx.recv().unwrap().unwrap(), b"frame a");
        assert_eq!(rx.recv().unwrap().unwrap(), b"frame b");
        assert!(rx.recv().unwrap().is_none());
        let s = t.stats();
        assert_eq!((s.flips, s.drops, s.cuts), (0, 0, 0));
        assert_eq!(s.bytes_in, s.bytes_out);
    }

    #[test]
    fn hostile_transport_damages_deterministically() {
        let spec = FaultSpec::from_rate(77, 0.5);
        let run = || {
            let (tx, mut rx) = mem_pair(256);
            let mut t = FaultingTransport::new(tx, FaultPlan::new(spec));
            for i in 0..100u8 {
                t.send(&[i; 48]).unwrap();
            }
            t.close().unwrap();
            let mut frames = Vec::new();
            while let Some(f) = rx.recv().unwrap() {
                frames.push(f);
            }
            (t.stats(), frames)
        };
        let (s1, f1) = run();
        let (s2, f2) = run();
        assert_eq!(s1, s2);
        assert_eq!(f1, f2);
        assert!(s1.flips > 0 && s1.drops > 0 && s1.cuts > 0, "{s1:?}");
        assert_eq!(f1.len() as u64, 100 - s1.drops);
    }
}
