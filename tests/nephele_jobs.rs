//! Integration: full Nephele jobs across every channel type × compression
//! mode combination, verifying payload integrity and compression effect.

use adcomp::corpus::Class;
use adcomp::nephele::prelude::*;
use adcomp::nephele::{ChannelStats, NepheleError, SinkTask};

fn sample_job(
    channel: ChannelType,
    mode: CompressionMode,
    class: Class,
    bytes: u64,
) -> (u64, u64, ChannelStats) {
    let mut g = JobGraph::new("it-sample");
    let s = g.add_vertex(
        "sender",
        Box::new(SourceTask { class, total_bytes: bytes, record_len: 4096, seed: 3 }),
    );
    let r = g.add_vertex("receiver", Box::new(SinkTask::new()));
    g.connect(s, r, channel, mode).unwrap();
    let report = Executor::default().run(g).unwrap();
    let sink: &SinkTask = report.task("receiver").unwrap();
    (sink.bytes, sink.checksum, report.edges[0].stats.clone())
}

#[test]
fn all_channel_and_mode_combinations_preserve_payload() {
    let bytes = 2_000_000u64;
    let mut checksums = Vec::new();
    for channel in [ChannelType::InMemory, ChannelType::Network, ChannelType::File] {
        for mode in [
            CompressionMode::Off,
            CompressionMode::Static(1),
            CompressionMode::Static(3),
            CompressionMode::Adaptive(Default::default()),
        ] {
            let (got, checksum, _) = sample_job(channel.clone(), mode, Class::Moderate, bytes);
            assert_eq!(got, bytes, "{channel:?}");
            checksums.push(checksum);
        }
    }
    // Same source data => identical checksum through every combination.
    assert!(checksums.windows(2).all(|w| w[0] == w[1]), "checksums diverged: {checksums:?}");
}

#[test]
fn compression_shrinks_wire_traffic_on_compressible_data() {
    let (_, _, off) =
        sample_job(ChannelType::InMemory, CompressionMode::Off, Class::High, 3_000_000);
    let (_, _, light) =
        sample_job(ChannelType::InMemory, CompressionMode::Static(1), Class::High, 3_000_000);
    assert!(off.wire_ratio() > 0.99);
    assert!(
        light.wire_bytes < off.wire_bytes / 4,
        "LIGHT {} vs OFF {}",
        light.wire_bytes,
        off.wire_bytes
    );
}

#[test]
fn incompressible_data_does_not_blow_up_wire_traffic() {
    let (_, _, heavy) =
        sample_job(ChannelType::InMemory, CompressionMode::Static(3), Class::Low, 2_000_000);
    assert!(heavy.wire_ratio() < 1.02, "ratio {}", heavy.wire_ratio());
}

#[test]
fn multi_stage_job_with_mixed_channels() {
    // src --mem--> stage --net--> sink, different compression per hop.
    let mut g = JobGraph::new("mixed");
    let src = g.add_vertex(
        "src",
        Box::new(SourceTask {
            class: Class::High,
            total_bytes: 1_000_000,
            record_len: 2048,
            seed: 5,
        }),
    );
    let stage = g.add_vertex(
        "stage",
        Box::new(FnTask(|ctx: &mut TaskContext| -> Result<(), NepheleError> {
            while let Some(rec) = ctx.read(0)? {
                ctx.write(0, &rec)?;
            }
            Ok(())
        })),
    );
    let sink = g.add_vertex("sink", Box::new(SinkTask::new()));
    g.connect(src, stage, ChannelType::InMemory, CompressionMode::Static(1)).unwrap();
    g.connect(stage, sink, ChannelType::Network, CompressionMode::Adaptive(Default::default()))
        .unwrap();
    let report = Executor::default().run(g).unwrap();
    assert_eq!(report.task::<SinkTask>("sink").unwrap().bytes, 1_000_000);
    assert_eq!(report.edges.len(), 2);
    assert!(report.edges[0].stats.wire_ratio() < 0.5);
}

#[test]
fn many_parallel_edges_do_not_deadlock() {
    // A source fanning out to 4 sinks over mixed channel types.
    let mut g = JobGraph::new("fan4");
    let src = g.add_vertex(
        "src",
        Box::new(FnTask(|ctx: &mut TaskContext| -> Result<(), NepheleError> {
            for i in 0..2000u32 {
                let payload = i.to_le_bytes().repeat(64);
                ctx.write((i % 4) as usize, &payload)?;
            }
            Ok(())
        })),
    );
    for (i, ch) in [
        ChannelType::InMemory,
        ChannelType::Network,
        ChannelType::File,
        ChannelType::InMemory,
    ]
    .into_iter()
    .enumerate()
    {
        let sink = g.add_vertex(format!("sink{i}"), Box::new(SinkTask::new()));
        g.connect(src, sink, ch, CompressionMode::Static(1)).unwrap();
    }
    let report = Executor::default().run(g).unwrap();
    let total: u64 =
        (0..4).map(|i| report.task::<SinkTask>(&format!("sink{i}")).unwrap().records).sum();
    assert_eq!(total, 2000);
}

#[test]
fn split_merge_diamond_preserves_every_record() {
    use adcomp::nephele::{MergeTask, SplitTask};
    let mut g = JobGraph::new("diamond");
    let src = g.add_vertex(
        "src",
        Box::new(SourceTask {
            class: Class::Moderate,
            total_bytes: 2_000_000,
            record_len: 1024,
            seed: 21,
        }),
    );
    let split = g.add_vertex("split", Box::new(SplitTask));
    let m1 = g.add_vertex(
        "worker1",
        Box::new(adcomp::nephele::MapTask(|r: Vec<u8>| r)),
    );
    let m2 = g.add_vertex(
        "worker2",
        Box::new(adcomp::nephele::MapTask(|r: Vec<u8>| r)),
    );
    let merge = g.add_vertex("merge", Box::new(MergeTask));
    let sink = g.add_vertex("sink", Box::new(SinkTask::new()));
    g.connect(src, split, ChannelType::InMemory, CompressionMode::Off).unwrap();
    g.connect(split, m1, ChannelType::InMemory, CompressionMode::Static(1)).unwrap();
    g.connect(split, m2, ChannelType::Network, CompressionMode::Static(1)).unwrap();
    g.connect(m1, merge, ChannelType::InMemory, CompressionMode::Off).unwrap();
    g.connect(m2, merge, ChannelType::InMemory, CompressionMode::Off).unwrap();
    g.connect(merge, sink, ChannelType::InMemory, CompressionMode::Adaptive(Default::default()))
        .unwrap();
    let report = Executor::default().run(g).unwrap();
    let s: &SinkTask = report.task("sink").unwrap();
    assert_eq!(s.bytes, 2_000_000);
    assert_eq!(s.records, 2_000_000 / 1024 + 1); // 1953 full + 1 tail record
}
