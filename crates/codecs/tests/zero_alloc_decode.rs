//! Decode-side mirror of `zero_alloc.rs`: **zero heap allocation per block
//! in the steady-state decode path.**
//!
//! A counting global allocator tallies every `alloc`/`realloc`. After a
//! warm-up (which grows the payload buffer, the output buffer and the
//! `DecodeScratch`'s HEAVY model to their high-water marks), decoding
//! further blocks — across all codec levels and corpus classes — must not
//! touch the heap at all.
//!
//! This file intentionally contains a single `#[test]` so no concurrent
//! test can disturb the allocation counter.

use adcomp_codecs::frame::{decode_block_with, encode_block, DEFAULT_MAX_FRAME};
use adcomp_codecs::{codec_for, CodecId, DecodeScratch};
use adcomp_corpus::{generate, Class};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers to `System` for all operations; only adds relaxed
// counter bumps.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const BLOCK_LEN: usize = 128 * 1024;

#[test]
fn steady_state_block_decoding_allocates_nothing() {
    // Setup (may allocate freely): one encoded frame per (codec, class),
    // one decode scratch, one output buffer.
    let codecs = [CodecId::QlzLight, CodecId::QlzMedium, CodecId::Heavy, CodecId::Raw];
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for codec in codecs {
        for (i, class) in Class::ALL.into_iter().enumerate() {
            let block = generate(class, BLOCK_LEN, 23 + i as u64);
            let mut wire = Vec::new();
            encode_block(codec_for(codec), &block, &mut wire);
            frames.push(wire);
        }
    }
    let mut scratch = DecodeScratch::new();
    let mut out = Vec::new();

    // Warm-up: two rounds over every frame grow the output buffer and the
    // HEAVY model to their high-water marks.
    for _ in 0..2 {
        for wire in &frames {
            out.clear();
            decode_block_with(&mut scratch, wire, &mut out, DEFAULT_MAX_FRAME).unwrap();
        }
    }

    // Steady state: an adaptive reader sees level and class changes frame
    // to frame; none of it may allocate.
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut app_bytes = 0usize;
    for _ in 0..8 {
        for wire in &frames {
            out.clear();
            decode_block_with(&mut scratch, wire, &mut out, DEFAULT_MAX_FRAME).unwrap();
            app_bytes += out.len();
        }
    }
    let delta = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(app_bytes, 8 * frames.len() * BLOCK_LEN);
    assert_eq!(
        delta, 0,
        "steady-state decode path performed {delta} heap allocation(s)"
    );
}
