//! FIG3 — Distribution of file I/O throughput (write) as observed within
//! the virtual machine (paper Figure 3).
//!
//! Writes the experiment volume to each platform's virtual disk, sampling
//! the apparent rate every 20 MB. On XEN, the host's write-back page cache
//! produces the paper's signature pattern: memory-speed bursts, flush
//! stalls of a few MB/s, and a spuriously inflated mean — with gigabytes
//! still unflushed at the end.
//!
//! Run: `cargo run --release -p adcomp-bench --bin fig3_file_write [--quick]`

use adcomp_bench::{distribution_events, experiment_bytes, trace_path};
use adcomp_metrics::{bps_to_mb, Table};
use adcomp_trace::{JsonlWriter, RunManifest};
use adcomp_vcloud::experiments::fig3_file_write;
use adcomp_vcloud::Platform;

fn main() {
    // Below ~10 GB the XEN host cache never hits its dirty threshold and the
    // flush stalls disappear — keep at least 20 GB even in quick mode (the
    // disk model is cheap to simulate).
    let total = experiment_bytes().max(20_000_000_000);
    println!(
        "FIG3: file write throughput distribution, {} GB per platform, one sample per 20 MB\n",
        total / 1_000_000_000
    );
    let mut tracer = trace_path().map(|p| {
        (JsonlWriter::create(&p).expect("create trace file"), p)
    });
    let mut table = Table::new(vec![
        "Platform", "n", "mean", "sd", "min", "q1", "median", "q3", "max",
    ]);
    for platform in Platform::ALL {
        let dist = fig3_file_write(platform, total, 42);
        if let Some((w, _)) = tracer.as_mut() {
            let manifest = RunManifest::new("fig3_file_write", 42)
                .coord("platform", platform.name())
                .volume(total);
            w.write_run(&manifest, &distribution_events(&dist)).expect("write platform trace");
        }
        let s = dist.summary();
        table.row(vec![
            platform.name().to_string(),
            s.n.to_string(),
            format!("{:.1}", bps_to_mb(s.mean)),
            format!("{:.1}", bps_to_mb(s.sd)),
            format!("{:.1}", bps_to_mb(s.min)),
            format!("{:.1}", bps_to_mb(s.q1)),
            format!("{:.1}", bps_to_mb(s.median)),
            format!("{:.1}", bps_to_mb(s.q3)),
            format!("{:.1}", bps_to_mb(s.max)),
        ]);
    }
    if let Some((w, path)) = tracer.take() {
        let n = w.counts().total();
        w.finish().expect("flush trace file");
        eprintln!("FIG3: wrote {} events to {}", n, path.display());
    }
    println!("{}  (all values MB/s)", table.render());
    println!(
        "Paper findings to compare against:\n\
         - Native/KVM/EC2 cluster near the physical disk rate with moderate spread.\n\
         - XEN shows cache bursts to hundreds of MB/s, stalls of a few MB/s, and a\n\
           spuriously high mean — data still sits in host RAM after the 50 GB write.\n\
         - These caching effects are why the paper evaluates adaptive compression\n\
           on network I/O only."
    );
}
