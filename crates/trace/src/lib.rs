//! # adcomp-trace — zero-cost-when-disabled structured tracing
//!
//! The paper's core claim is that guest-visible metrics lie under shared
//! I/O, so the adaptive controller must be judged *only* by what it
//! observed (cdr/pdr) and what it decided (Algorithm 1 branches). This
//! crate makes those observations and decisions first-class, durable
//! artifacts:
//!
//! * [`events`] — the typed, `Copy`, epoch-tagged event taxonomy:
//!   [`DecisionEvent`], [`EpochEvent`], [`CodecEvent`], [`SimEvent`],
//!   [`ChannelEvent`], [`FaultEvent`], [`PipelineEvent`];
//! * [`sink`] — the [`TraceSink`] trait, the statically-disabled
//!   [`NullSink`], the in-memory [`MemorySink`], the dynamic
//!   [`TraceHandle`] and [`TeeSink`];
//! * [`ring`] — a fixed-capacity [`RingSink`] flight recorder with a
//!   lock-free generation claim;
//! * [`jsonl`] — JSONL serialization ([`JsonlWriter`]) and the live
//!   [`JsonlSink`];
//! * [`prom`] — Prometheus-text snapshots ([`PromSnapshot`],
//!   [`TraceStats`]) built on `adcomp-metrics` instruments, plus
//!   [`render_registry`] for the live `adcomp_metrics` registry;
//! * [`promlint`] — hand-rolled exposition parser and the conformance
//!   lint shared by CI, tests and the dashboard;
//! * [`http`] — the minimal `/metrics` HTTP listener ([`MetricsServer`])
//!   and scrape client ([`http_get`]);
//! * [`dash`] — the `adcomp top` ASCII dashboard ([`render_top`]),
//!   rendered purely from exposition text;
//! * [`timeline`] — the ASCII Fig.-5-style level-over-time renderer;
//! * [`manifest`] — per-run/per-cell [`RunManifest`]s so any table cell
//!   can be replayed and inspected;
//! * [`diag`] — the stderr [`progress!`](crate::progress) channel that
//!   keeps experiment stdout machine-parseable;
//! * [`json`] — the hand-rolled (offline, serde-free) JSON layer and the
//!   JSONL schema validator the lint tool uses.
//!
//! ## Overhead contract
//!
//! Instrumentation points are generic over `S: TraceSink` (default
//! [`NullSink`]) or take a [`TraceHandle`]. All trace-only work —
//! timestamping, event construction, emission — must be gated on
//! `sink.enabled()`. `NullSink::enabled()` is a constant `false`, so
//! disabled tracing monomorphizes to the untraced code: the codecs
//! zero-alloc test and the `compress_scratch` bench guard hold with
//! tracing compiled in.

pub mod dash;
pub mod diag;
pub mod events;
pub mod http;
pub mod json;
pub mod jsonl;
pub mod manifest;
pub mod prom;
pub mod promlint;
pub mod ring;
pub mod sink;
pub mod timeline;

pub use events::{
    ChannelEvent, CodecEvent, DecisionEvent, EpochEvent, EventCounts, FaultEvent, PipelineEvent,
    ServerEvent, SimEvent, TraceEvent, MAX_LEVELS, NO_EPOCH,
};
pub use dash::render_top;
pub use http::{http_get, MetricsServer};
pub use jsonl::{JsonlSink, JsonlWriter};
pub use manifest::RunManifest;
pub use prom::{render_registry, PromSnapshot, TraceStats};
pub use promlint::{conformance_lint, parse_samples};
pub use ring::RingSink;
pub use sink::{MemorySink, NullSink, TeeSink, TraceHandle, TraceSink};
pub use timeline::{render_level_timeline, TimelineOptions};
