//! The task-programming interface.
//!
//! A task sees only record readers and writers; whether a channel crosses a
//! thread, a socket or a file — and whether its blocks are compressed, and
//! at which level — is invisible, exactly as the paper requires ("the
//! implementation is completely transparent to the tasks, so there is no
//! modification required to their program code").

use crate::channel::{RecordReader, RecordWriter};
use crate::error::Result;

/// Execution context handed to [`Task::run`]: the connected inputs and
/// outputs, in connection order.
pub struct TaskContext {
    pub(crate) vertex_name: String,
    pub(crate) inputs: Vec<RecordReader>,
    pub(crate) outputs: Vec<RecordWriter>,
}

impl TaskContext {
    pub fn vertex_name(&self) -> &str {
        &self.vertex_name
    }

    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Reads the next record from input `idx` (`None` = end of stream).
    pub fn read(&mut self, idx: usize) -> Result<Option<Vec<u8>>> {
        self.inputs[idx].next_record()
    }

    /// Writes a record to output `idx`.
    pub fn write(&mut self, idx: usize, record: &[u8]) -> Result<()> {
        self.outputs[idx].write_record(record)
    }
}

/// A unit of work at a job-graph vertex.
///
/// `Any` is a supertrait so finished tasks can be downcast from a
/// [`JobReport`](crate::executor::JobReport) to read their results.
pub trait Task: Send + std::any::Any {
    /// Consumes inputs and produces outputs until done. Outputs are
    /// finished (flushed + closed) by the executor after `run` returns.
    fn run(&mut self, ctx: &mut TaskContext) -> Result<()>;
}

/// Wraps a closure as a task.
pub struct FnTask<F: FnMut(&mut TaskContext) -> Result<()> + Send + 'static>(pub F);

impl<F: FnMut(&mut TaskContext) -> Result<()> + Send + 'static> Task for FnTask<F> {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<()> {
        (self.0)(ctx)
    }
}

/// Generates `total_bytes` of synthetic data of a compressibility class as
/// fixed-size records — the paper's sender task, which replays a test file
/// until 50 GB have been produced.
pub struct SourceTask {
    pub class: adcomp_corpus::Class,
    pub total_bytes: u64,
    pub record_len: usize,
    pub seed: u64,
}

impl Task for SourceTask {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<()> {
        use adcomp_corpus::{ByteSource, CyclicSource};
        let mut src = CyclicSource::of_class(self.class, adcomp_corpus::DEFAULT_FILE_LEN, self.seed);
        let mut produced = 0u64;
        let mut buf = vec![0u8; self.record_len];
        while produced < self.total_bytes {
            let len = (self.record_len as u64).min(self.total_bytes - produced) as usize;
            src.fill(&mut buf[..len]);
            ctx.write(0, &buf[..len])?;
            produced += len as u64;
        }
        Ok(())
    }
}

/// Consumes and counts everything from input 0 — the paper's receiver task.
pub struct SinkTask {
    pub records: u64,
    pub bytes: u64,
    /// Simple checksum so tests can assert payload integrity end to end.
    pub checksum: u64,
}

impl SinkTask {
    pub fn new() -> Self {
        SinkTask { records: 0, bytes: 0, checksum: 0 }
    }
}

impl Default for SinkTask {
    fn default() -> Self {
        SinkTask::new()
    }
}

impl Task for SinkTask {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<()> {
        while let Some(rec) = ctx.read(0)? {
            self.records += 1;
            self.bytes += rec.len() as u64;
            for &b in &rec {
                self.checksum = self.checksum.wrapping_mul(31).wrapping_add(b as u64);
            }
        }
        Ok(())
    }
}

/// Distributes records from input 0 round-robin across all outputs — the
/// fan-out building block of larger job graphs.
pub struct SplitTask;

impl Task for SplitTask {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<()> {
        let n = ctx.num_outputs();
        assert!(n > 0, "SplitTask needs at least one output");
        let mut i = 0usize;
        while let Some(rec) = ctx.read(0)? {
            ctx.write(i % n, &rec)?;
            i += 1;
        }
        Ok(())
    }
}

/// Interleaves all inputs into output 0, one record per input round-robin
/// (order within each input is preserved) — the fan-in building block.
///
/// Round-robin keeps a split → workers → merge diamond deadlock-free when
/// the branches carry balanced record counts (which [`SplitTask`]
/// guarantees). For wildly unbalanced branches, size the channel capacity
/// to the imbalance or merge from independent sources.
pub struct MergeTask;

impl Task for MergeTask {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<()> {
        let n = ctx.num_inputs();
        let mut open = vec![true; n];
        let mut remaining = n;
        while remaining > 0 {
            #[allow(clippy::needless_range_loop)] // i also names the input port
            for i in 0..n {
                if !open[i] {
                    continue;
                }
                match ctx.read(i)? {
                    Some(rec) => ctx.write(0, &rec)?,
                    None => {
                        open[i] = false;
                        remaining -= 1;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Applies a byte-level map to every record from input 0 to output 0.
pub struct MapTask<F: FnMut(Vec<u8>) -> Vec<u8> + Send + 'static>(pub F);

impl<F: FnMut(Vec<u8>) -> Vec<u8> + Send + 'static> Task for MapTask<F> {
    fn run(&mut self, ctx: &mut TaskContext) -> Result<()> {
        while let Some(rec) = ctx.read(0)? {
            let mapped = (self.0)(rec);
            ctx.write(0, &mapped)?;
        }
        Ok(())
    }
}
